#!/usr/bin/env python
"""Quickstart: REX raw-data sharing vs model sharing in one minute.

Builds a small decentralized deployment (16 nodes, small-world graph) on
a synthetic MovieLens-shaped dataset, trains a matrix-factorization
recommender with both sharing schemes, and prints the paper's headline
comparison: same accuracy, far less time and traffic for REX.

Run:  python examples/quickstart.py
"""

from repro import (
    Dissemination,
    MovieLensSpec,
    RexConfig,
    SharingScheme,
    Topology,
    generate_movielens,
)
from repro.data import partition_users_across_nodes
from repro.ml.mf import MfHyperParams
from repro.sim import MfFleetSim, run_centralized

N_NODES = 16
EPOCHS = 60

SPEC = MovieLensSpec(
    name="quickstart", n_ratings=20_000, n_items=800, n_users=160, last_updated=2020
)


def run(scheme: SharingScheme, train, test, topology, global_mean):
    config = RexConfig(
        scheme=scheme,
        dissemination=Dissemination.DPSGD,
        epochs=EPOCHS,
        share_points=100,
        mf=MfHyperParams(k=8),
    )
    return MfFleetSim(train, test, topology, config, global_mean=global_mean).run()


def main():
    print(f"generating {SPEC.name}: {SPEC.n_ratings} ratings, "
          f"{SPEC.n_users} users, {SPEC.n_items} items")
    split = generate_movielens(SPEC, seed=42).split(0.7, seed=1)
    train = partition_users_across_nodes(split.train, N_NODES, seed=2)
    test = partition_users_across_nodes(split.test, N_NODES, seed=2)
    topology = Topology.small_world(N_NODES, k=4, rewire_probability=0.1, seed=7)
    gm = split.train.global_mean()

    print(f"topology: {topology.name} ({topology.n_edges} edges)")
    print(f"training {EPOCHS} epochs per scheme...\n")

    rex = run(SharingScheme.DATA, train, test, topology, gm)
    ms = run(SharingScheme.MODEL, train, test, topology, gm)
    central = run_centralized(split.train, split.test, RexConfig(epochs=30, mf=MfHyperParams(k=8)))

    print(f"{'scheme':<14} {'final RMSE':>10} {'sim time [s]':>14} {'total MiB moved':>16}")
    for label, result in (("REX (data)", rex), ("MS (model)", ms), ("Centralized", central)):
        print(
            f"{label:<14} {result.final_rmse:>10.4f} "
            f"{result.total_time_s:>14.1f} {result.total_bytes / 2**20:>16.2f}"
        )

    target = max(rex.final_rmse, ms.final_rmse) + 0.002
    t_rex, t_ms = rex.time_to_target(target), ms.time_to_target(target)
    if t_rex and t_ms:
        print(f"\ntime to RMSE <= {target:.3f}: REX {t_rex:.1f}s vs MS {t_ms:.1f}s "
              f"-> {t_ms / t_rex:.1f}x speed-up")
    print(f"traffic ratio MS/REX: {ms.total_bytes / max(1, rex.total_bytes):.0f}x")


if __name__ == "__main__":
    main()
