#!/usr/bin/env python
"""A decentralized movie recommender, end to end -- training AND serving.

The scenario from the paper's introduction: users keep their ratings on
their own devices, yet want recommendations informed by everyone else's
taste.  REX nodes gossip raw (encrypted) ratings; every node ends up
with a personal model good enough to rank unseen movies for its users.

This example trains a 30-node REX deployment on a synthetic MovieLens
dataset, then turns node 0 into a *serving endpoint* with the
:mod:`repro.serve` stack: the trained model is published as an immutable
snapshot into a serving enclave, a Zipf query workload is driven through
the host-side admission queue, and a few users get their top-10 -- with
movies they already rated excluded, straight from the enclave.

Run:  python examples/movie_recommender.py
"""

import numpy as np

from repro import (
    Dissemination,
    MovieLensSpec,
    RexConfig,
    SharingScheme,
    Topology,
    generate_movielens,
)
from repro.data import partition_users_across_nodes
from repro.ml.mf import MfHyperParams
from repro.net.serialization import encode_triplets
from repro.obs import Observability
from repro.serve import RecServer, ServePolicy, WorkloadGenerator, WorkloadSpec
from repro.serve.endpoint import ServeEnclaveApp
from repro.serve.report import ServeReport
from repro.serve.snapshot import encode_snapshot, snapshot_from_arrays
from repro.serve.workload import run_trace
from repro.sim import MfFleetSim
from repro.tee import AttestationService, Platform

N_NODES = 30
EPOCHS = 120
TOP_K = 10

SPEC = MovieLensSpec(
    name="recommender-demo", n_ratings=60_000, n_items=2_000,
    n_users=400, last_updated=2020,
)


def main():
    dataset = generate_movielens(SPEC, seed=42)
    split = dataset.split(0.7, seed=1)
    train = partition_users_across_nodes(split.train, N_NODES, seed=2)
    test = partition_users_across_nodes(split.test, N_NODES, seed=2)
    topology = Topology.small_world(N_NODES, k=6, rewire_probability=0.03, seed=7)

    config = RexConfig(
        scheme=SharingScheme.DATA,
        dissemination=Dissemination.DPSGD,
        epochs=EPOCHS,
        share_points=150,
        mf=MfHyperParams(k=10),
    )
    print(f"training REX on {topology.name}: {N_NODES} nodes, {EPOCHS} epochs...")
    sim = MfFleetSim(train, test, topology, config,
                     global_mean=split.train.global_mean())
    result = sim.run()
    print(f"mean local test RMSE: {result.final_rmse:.4f} "
          f"(started at {result.records[0].test_rmse:.4f})")
    print(f"total traffic: {result.total_bytes / 2**20:.1f} MiB "
          f"across {EPOCHS} epochs\n")

    # ------------------------------------------------------------------ #
    # Publish node 0's trained model into a serving enclave.
    # ------------------------------------------------------------------ #
    node = 0
    snapshot = snapshot_from_arrays(
        sim.XU[node], sim.YI[node], sim.BU[node], sim.BI[node],
        sim.SU[node], sim.SI[node], sim.global_mean,
        version=1, node_id=node, epoch=EPOCHS,
    )
    obs = Observability.create()
    platform = Platform("serve-demo", AttestationService(), metrics=obs.metrics)
    enclave = platform.create_enclave(ServeEnclaveApp, f"serve-{node}")
    meta = enclave.ecall("ecall_load", {
        "snapshot": encode_snapshot(snapshot),
        # The user's full training history drives exclusion: a movie
        # rated anywhere must never be recommended back.
        "ratings": encode_triplets(split.train),
    })
    print(f"published snapshot v{meta['version']} "
          f"({meta['digest'][:16]}..., {meta['wire_bytes'] / 1024:.0f} KiB wire, "
          f"{meta['resident_bytes'] / 1024:.0f} KiB resident)")

    # ------------------------------------------------------------------ #
    # Drive a Zipf workload through the admission front-end.
    # ------------------------------------------------------------------ #
    server = RecServer(
        enclave,
        policy=ServePolicy(top_k=TOP_K),
        epc=platform.epc,
        metrics=obs.metrics,
    )
    workload = WorkloadSpec(seed=0, n_users=SPEC.n_users, ticks=150, rate=5.0)
    completions = run_trace(server, WorkloadGenerator(workload).trace())
    latencies = [c.latency_s for c in completions]
    summary = ServeReport.latency_summary(latencies)
    print(f"served {len(completions)} queries: "
          f"p50 {summary['p50'] * 1e3:.2f} ms, p99 {summary['p99'] * 1e3:.2f} ms, "
          f"{server.shed_count} shed")
    hits = obs.metrics.value("serve.cache.hits", cache="topn")
    misses = obs.metrics.value("serve.cache.misses", cache="topn")
    print(f"result cache: {hits:.0f} hits / {misses:.0f} misses "
          f"({100 * hits / (hits + misses):.0f}% hit rate)\n")

    # ------------------------------------------------------------------ #
    # Top-10 for a few of the node's own users.
    # ------------------------------------------------------------------ #
    node_users = sorted(set(train[node].users.tolist()))
    print(f"node {node} serves users {node_users[:5]}... "
          f"({len(node_users)} users)")
    reply = server.enclave.ecall("ecall_serve", node_users[:3], TOP_K)
    for row, user in enumerate(node_users[:3]):
        recs = ", ".join(
            f"movie {item} ({score:.2f} stars)"
            for item, score in zip(reply["items"][row][:5], reply["scores"][row][:5])
        )
        print(f"  user {user}: {recs}, ...")

    # Sanity: served lists never contain movies the user already rated.
    rated = {}
    for u, i, _r in split.train.iter_triplets():
        rated.setdefault(u, set()).add(i)
    for row, user in enumerate(node_users[:3]):
        assert not rated.get(user, set()) & set(reply["items"][row])
    print("\nexclusion check passed: no already-rated movie was recommended")


if __name__ == "__main__":
    main()
