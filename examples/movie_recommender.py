#!/usr/bin/env python
"""A decentralized movie recommender, end to end.

The scenario from the paper's introduction: users keep their ratings on
their own devices, yet want recommendations informed by everyone else's
taste.  REX nodes gossip raw (encrypted) ratings; every node ends up with
a personal model good enough to rank unseen movies for its users.

This example trains a 30-node REX deployment on a synthetic MovieLens
dataset, then produces top-5 recommendations for a few users from their
*own node's* model -- no central service involved -- and compares the
hit quality against the held-out test set.

Run:  python examples/movie_recommender.py
"""

import numpy as np

from repro import (
    Dissemination,
    MovieLensSpec,
    RexConfig,
    SharingScheme,
    Topology,
    generate_movielens,
)
from repro.data import partition_users_across_nodes
from repro.ml.mf import MatrixFactorization, MfHyperParams
from repro.sim import MfFleetSim

N_NODES = 30
EPOCHS = 120

SPEC = MovieLensSpec(
    name="recommender-demo", n_ratings=60_000, n_items=2_000,
    n_users=400, last_updated=2020,
)


def top_n(model: MatrixFactorization, user: int, seen_items: set, n: int = 5):
    """Rank all unseen items for ``user`` by predicted rating."""
    candidates = np.array(
        [i for i in range(model.n_items) if i not in seen_items], dtype=np.int64
    )
    scores = model.predict(np.full(len(candidates), user), candidates)
    order = np.argsort(scores)[::-1][:n]
    return list(zip(candidates[order].tolist(), scores[order].tolist()))


def main():
    dataset = generate_movielens(SPEC, seed=42)
    split = dataset.split(0.7, seed=1)
    train = partition_users_across_nodes(split.train, N_NODES, seed=2)
    test = partition_users_across_nodes(split.test, N_NODES, seed=2)
    topology = Topology.small_world(N_NODES, k=6, rewire_probability=0.03, seed=7)

    config = RexConfig(
        scheme=SharingScheme.DATA,
        dissemination=Dissemination.DPSGD,
        epochs=EPOCHS,
        share_points=150,
        mf=MfHyperParams(k=10),
    )
    print(f"training REX on {topology.name}: {N_NODES} nodes, {EPOCHS} epochs...")
    sim = MfFleetSim(train, test, topology, config,
                     global_mean=split.train.global_mean())
    result = sim.run()
    print(f"mean local test RMSE: {result.final_rmse:.4f} "
          f"(started at {result.records[0].test_rmse:.4f})")
    print(f"total traffic: {result.total_bytes / 2**20:.1f} MiB "
          f"across {EPOCHS} epochs\n")

    # Rebuild one node's trained model from the fleet's stacked arrays.
    node = 0
    node_users = sorted(set(train[node].users.tolist()))
    model = MatrixFactorization(
        dataset.n_users, dataset.n_items, config.mf,
        seed=config.seed, global_mean=split.train.global_mean(),
    )
    model.user_factors[:] = sim.XU[node]
    model.item_factors[:] = sim.YI[node]
    model.user_bias[:] = sim.BU[node]
    model.item_bias[:] = sim.BI[node]

    print(f"node {node} serves users {node_users[:5]}... "
          f"({len(node_users)} users)")
    train_by_user = {}
    for u, i, _r in split.train.iter_triplets():
        train_by_user.setdefault(u, set()).add(i)

    for user in node_users[:3]:
        seen = train_by_user.get(user, set())
        recs = top_n(model, user, seen)
        rec_str = ", ".join(f"movie {item} ({score:.2f} stars)" for item, score in recs)
        print(f"  user {user}: {rec_str}")

    # Sanity: on the held-out set, the node's predictions for its own
    # users beat the predict-the-mean baseline.
    mask = np.isin(split.test.users, node_users)
    local_test = split.test.take(np.flatnonzero(mask))
    model_rmse = model.evaluate_rmse(local_test)
    baseline = float(
        np.sqrt(np.mean((split.train.global_mean() - local_test.ratings) ** 2))
    )
    print(f"\nnode {node} held-out RMSE: {model_rmse:.4f} "
          f"(predict-the-mean baseline: {baseline:.4f})")


if __name__ == "__main__":
    main()
