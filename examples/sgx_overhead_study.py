#!/usr/bin/env python
"""SGX overhead study on a real (simulated-hardware) enclave cluster.

Runs the full REX stack -- enclaves, mutual attestation, sealed channels
-- on a 4-node fully connected deployment, twice per sharing scheme: an
SGX build and a native build of the same code base, then prints the
Table IV-style comparison: per-stage epoch breakdown, RAM, overhead %.

Run:  python examples/sgx_overhead_study.py
"""

from repro import (
    CryptoMode,
    Dissemination,
    MovieLensSpec,
    RexCluster,
    RexConfig,
    SharingScheme,
    Topology,
    generate_movielens,
)
from repro.analysis.report import format_table
from repro.analysis.tables import sgx_overhead_table
from repro.data import partition_users_across_nodes
from repro.ml.mf import MfHyperParams
from repro.sim import LAN_TIME_MODEL, timeline_from_cluster

N_NODES = 4
EPOCHS = 40

SPEC = MovieLensSpec(
    name="sgx-demo", n_ratings=30_000, n_items=1_500, n_users=300, last_updated=2020
)


def run(scheme: SharingScheme, secure: bool, split, shards):
    config = RexConfig(
        scheme=scheme,
        dissemination=Dissemination.DPSGD,
        epochs=EPOCHS,
        share_points=100,
        crypto_mode=CryptoMode.REAL if secure else CryptoMode.ACCOUNTED,
        mf=MfHyperParams(k=10, dtype="float64"),
    )
    cluster = RexCluster(Topology.fully_connected(N_NODES), config, secure=secure)
    train, test = shards
    result = cluster.run(train, test, global_mean=split.train.global_mean())
    return timeline_from_cluster(result, time_model=LAN_TIME_MODEL)


def main():
    split = generate_movielens(SPEC, seed=42).split(0.7, seed=1)
    shards = (
        partition_users_across_nodes(split.train, N_NODES, seed=2),
        partition_users_across_nodes(split.test, N_NODES, seed=2),
    )

    runs = {}
    for scheme in (SharingScheme.DATA, SharingScheme.MODEL):
        for secure in (True, False):
            label = f"{scheme.label} ({'SGX' if secure else 'native'})"
            print(f"running {label}: {EPOCHS} epochs, "
                  f"{'real attestation + AEAD' if secure else 'plaintext'}...")
            runs[(scheme, secure)] = run(scheme, secure, split, shards)

    rows = []
    for (scheme, secure), result in runs.items():
        stages = result.stage_means()
        rows.append(
            [
                f"{scheme.label} ({'SGX' if secure else 'native'})",
                *(f"{stages[s] * 1000:.2f}" for s in ("merge", "train", "share", "test")),
                f"{result.memory_mib():.1f}",
                f"{result.final_rmse:.4f}",
            ]
        )
    print()
    print(
        format_table(
            ["build", "merge [ms]", "train [ms]", "share [ms]", "test [ms]",
             "RAM [MiB]", "final RMSE"],
            rows,
            title="Per-epoch stage breakdown (means across nodes and epochs)",
        )
    )

    table = sgx_overhead_table(
        [
            ("REX", runs[(SharingScheme.DATA, True)], runs[(SharingScheme.DATA, False)]),
            ("MS", runs[(SharingScheme.MODEL, True)], runs[(SharingScheme.MODEL, False)]),
        ]
    )
    print()
    print(
        format_table(
            ["scheme", "RAM [MiB]", "SGX overhead [%]"],
            [row.as_cells() for row in table],
            title="SGX overhead over native (Table IV methodology)",
        )
    )
    rex_pct = table[0].overhead_pct
    ms_pct = table[1].overhead_pct
    print(f"\nmodel sharing pays {ms_pct / max(rex_pct, 1e-9):.1f}x the SGX "
          f"overhead of raw-data sharing")


if __name__ == "__main__":
    main()
