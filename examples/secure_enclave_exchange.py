#!/usr/bin/env python
"""Attestation walkthrough: how two REX enclaves come to trust each other.

Demonstrates the full SGX trust chain from the paper's Sections II-D and
III-A, step by step:

1. two platforms register with the DCAP-style attestation service;
2. each enclave produces a report carrying its X25519 public key, the
   quoting enclave signs it into a quote;
3. the peers verify each other's quotes, compare measurements, and derive
   the same 32-byte channel key;
4. raw rating triplets cross the untrusted network only as AEAD
   ciphertext -- and tampering or replay is detected;
5. a *rogue* enclave (different trusted code) on a genuine platform is
   rejected by the measurement check, and a quote signed by an
   unregistered platform fails DCAP verification.

Run:  python examples/secure_enclave_exchange.py
"""

import dataclasses

import numpy as np

from repro.core.channel import SecureChannel
from repro.data.dataset import RatingsDataset
from repro.net.serialization import decode_triplets, encode_triplets
from repro.tee import (
    AttestationService,
    MeasurementMismatch,
    MutualAttestation,
    Platform,
    QuoteVerificationError,
    TrustedApp,
    ecall,
)
from repro.tee.crypto.aead import AeadError


class RexLikeApp(TrustedApp):
    """Stand-in trusted application (all honest nodes run this code)."""

    @ecall
    def ping(self):
        return "pong"


class RogueApp(TrustedApp):
    """A tampered code base: same interface, different measurement."""

    @ecall
    def ping(self):
        return "pong (evil)"


def main():
    print("== 1. provisioning ==")
    service = AttestationService()
    alice_machine = Platform("alice-laptop", service)
    bob_machine = Platform("bob-laptop", service)
    print(f"platforms registered with the attestation service: "
          f"{service.registered_platforms}")

    alice = alice_machine.create_enclave(RexLikeApp, "alice")
    bob = bob_machine.create_enclave(RexLikeApp, "bob")
    print(f"alice measurement: {alice.measurement.short()}")
    print(f"bob measurement  : {bob.measurement.short()} "
          f"(identical: {alice.measurement == bob.measurement})")

    print("\n== 2. quotes ==")
    alice_att = MutualAttestation("alice", alice.measurement, service, key_seed=b"a")
    bob_att = MutualAttestation("bob", bob.measurement, service, key_seed=b"b")
    alice_quote = alice.get_quote(
        alice_machine.make_report(alice.measurement, alice_att.user_data())
    )
    bob_quote = bob.get_quote(
        bob_machine.make_report(bob.measurement, bob_att.user_data())
    )
    print(f"alice's quote: platform={alice_quote.platform_id}, "
          f"user-data carries her X25519 public key "
          f"({alice_quote.user_data[:8].hex()}...)")

    print("\n== 3. mutual verification & key agreement ==")
    key_ab = alice_att.process_peer_quote("bob", bob_quote)
    key_ba = bob_att.process_peer_quote("alice", alice_quote)
    print(f"alice derived {key_ab.hex()[:24]}...")
    print(f"bob derived   {key_ba.hex()[:24]}...")
    print(f"keys match: {key_ab == key_ba}")

    print("\n== 4. sealed raw-data exchange ==")
    ratings = RatingsDataset(
        np.array([3, 3, 7]), np.array([10, 42, 5]),
        np.array([4.5, 2.0, 5.0], dtype=np.float32), n_users=50, n_items=100,
    )
    alice_channel = SecureChannel(key_ab, local_id=0, peer_id=1)
    bob_channel = SecureChannel(key_ba, local_id=1, peer_id=0)
    wire = alice_channel.seal(encode_triplets(ratings))
    print(f"plaintext payload: {len(encode_triplets(ratings))} bytes; "
          f"on the wire: {len(wire)} bytes of ciphertext")
    received = decode_triplets(bob_channel.open(wire))
    print(f"bob decrypted {len(received)} triplets, equal to sent: "
          f"{received == ratings}")

    tampered = bytearray(alice_channel.seal(encode_triplets(ratings)))
    tampered[-1] ^= 1
    try:
        bob_channel.open(bytes(tampered))
    except AeadError:
        print("a bit-flipped ciphertext is rejected (AEAD tag mismatch)")

    print("\n== 5. attacks that fail ==")
    rogue = bob_machine.create_enclave(RogueApp, "mallory")
    rogue_att = MutualAttestation("mallory", rogue.measurement, service, key_seed=b"m")
    rogue_quote = rogue.get_quote(
        bob_machine.make_report(rogue.measurement, rogue_att.user_data())
    )
    try:
        alice_att.process_peer_quote("mallory", rogue_quote)
    except MeasurementMismatch as exc:
        print(f"rogue enclave rejected: {exc}")

    forged = dataclasses.replace(bob_quote, signature=b"\x00" * 32)
    try:
        alice_att.process_peer_quote("bob2", forged)
    except QuoteVerificationError:
        print("forged quote signature rejected by the attestation service")

    off_grid = Platform("unregistered-box", AttestationService())  # own registry
    stranger = off_grid.create_enclave(RexLikeApp, "stranger")
    stranger_att = MutualAttestation("stranger", stranger.measurement, service, key_seed=b"s")
    stranger_quote = stranger.get_quote(
        off_grid.make_report(stranger.measurement, stranger_att.user_data())
    )
    try:
        alice_att.process_peer_quote("stranger", stranger_quote)
    except QuoteVerificationError:
        print("quote from an unregistered platform rejected (DCAP)")


if __name__ == "__main__":
    main()
