"""TEE substrate: a faithful software model of Intel SGX for REX.

The paper runs REX inside SGX enclaves on Xeon E-2288G servers.  This
package reproduces every mechanism that REX's design depends on:

- :mod:`~repro.tee.enclave` -- the trusted/untrusted split, ecall/ocall
  boundary with transition accounting, trusted-memory tracking.
- :mod:`~repro.tee.measurement` -- MRENCLAVE-style code identity.
- :mod:`~repro.tee.attestation` -- report -> quote -> DCAP-verify chain and
  the mutual-attestation state machine with ECDH key agreement.
- :mod:`~repro.tee.epc` -- the 128 MiB (93.5 usable) enclave page cache and
  its paging behaviour under overcommit.
- :mod:`~repro.tee.cost_model` -- calibrated charges for transitions,
  enclave crypto, memory encryption and paging, plus the native build.
- :mod:`~repro.tee.crypto` -- from-scratch X25519 / ChaCha20-Poly1305 /
  HKDF used by attestation and the secure channels.
"""

from repro.tee.attestation import (
    AttestationService,
    MutualAttestation,
    Quote,
    QuotingEnclave,
    Report,
    derive_channel_key,
)
from repro.tee.cost_model import NATIVE_COST_MODEL, SGX1_COST_MODEL, SgxCostModel
from repro.tee.enclave import (
    Enclave,
    EnclaveContext,
    Platform,
    TransitionCounters,
    TrustedApp,
    TrustedMemory,
    ecall,
)
from repro.tee.epc import PAGE_SIZE, EpcModel
from repro.tee.errors import (
    AttestationError,
    BoundaryViolation,
    ChannelNotEstablished,
    EnclaveError,
    MeasurementMismatch,
    QuoteVerificationError,
    TeeError,
    UnknownEcall,
    UnknownOcall,
)
from repro.tee.measurement import Measurement, measure_class, measure_code

__all__ = [
    "AttestationError",
    "AttestationService",
    "BoundaryViolation",
    "ChannelNotEstablished",
    "Enclave",
    "EnclaveContext",
    "EnclaveError",
    "EpcModel",
    "Measurement",
    "MeasurementMismatch",
    "MutualAttestation",
    "NATIVE_COST_MODEL",
    "PAGE_SIZE",
    "Platform",
    "Quote",
    "QuoteVerificationError",
    "QuotingEnclave",
    "Report",
    "SGX1_COST_MODEL",
    "SgxCostModel",
    "TeeError",
    "TransitionCounters",
    "TrustedApp",
    "TrustedMemory",
    "UnknownEcall",
    "UnknownOcall",
    "derive_channel_key",
    "ecall",
    "measure_class",
    "measure_code",
]
