"""Measured scalar/vector dispatch tuning for the AEAD fast path.

The AEAD layer picks between the scalar ChaCha20 path (cheap per call,
slow per byte) and the vectorized NumPy path (fixed dispatch overhead,
fast per byte).  The crossover used to be a hard-coded constant; it is
now a *measured* threshold:

- :func:`measure_crossover` times both paths across a size sweep and
  returns the smallest size where the vectorized path wins.  The clock is
  **injected by the caller** (the crypto throughput benchmark passes
  ``time.perf_counter``) so this module performs no wall-clock reads of
  its own -- simulated-time determinism (lint rule REX-D001) is preserved
  and the measurement stays testable with a fake clock.
- The shipped default below is the measured median from the committed
  ``BENCH_crypto.json`` run; deployments on different hardware can pin
  their own measurement via the ``REPRO_AEAD_FAST_THRESHOLD`` environment
  variable without code changes.

Thresholds only steer dispatch: both paths are bit-identical by
construction and by test, so a mistuned threshold can cost speed, never
correctness.
"""

from __future__ import annotations

import os
from typing import Callable, Optional, Sequence

from repro.tee.crypto.chacha20 import chacha20_encrypt
from repro.tee.crypto.fastchacha import chacha20_seal_xor_many, chacha20_xor

__all__ = [
    "DEFAULT_FAST_PATH_THRESHOLD",
    "DEFAULT_BATCH_PATH_THRESHOLD",
    "batch_path_threshold",
    "fast_path_threshold",
    "measure_crossover",
    "measure_batch_crossover",
    "set_batch_path_threshold",
    "set_fast_path_threshold",
]

#: Measured on the reference container (see EXPERIMENTS.md, "Crypto
#: throughput"): the unrolled scalar loop beats NumPy dispatch overhead
#: up to roughly five keystream blocks (~270 us of fixed vector setup vs
#: ~0.7 us/byte scalar cost; the sweep crosses at 384 bytes).
DEFAULT_FAST_PATH_THRESHOLD = 384

_ENV_VAR = "REPRO_AEAD_FAST_THRESHOLD"

_override: Optional[int] = None


def fast_path_threshold() -> int:
    """Payload size in bytes at which the AEAD switches to the vector path.

    Resolution order: :func:`set_fast_path_threshold` override, then the
    ``REPRO_AEAD_FAST_THRESHOLD`` environment variable, then the shipped
    measured default.
    """
    if _override is not None:
        return _override
    env = os.environ.get(_ENV_VAR)
    if env:
        try:
            return max(0, int(env))
        except ValueError:
            pass
    return DEFAULT_FAST_PATH_THRESHOLD


def set_fast_path_threshold(value: Optional[int]) -> None:
    """Pin (or with ``None`` clear) the in-process threshold override."""
    global _override
    _override = None if value is None else max(0, int(value))


#: Separate crossover for the *multi-message* lane kernel: below this
#: aggregate payload size (sum over all messages in a batch) the
#: per-message scalar/vector pipeline wins; at or above it the stacked
#: lane matrix amortizes its fixed dispatch cost across every lane.
#: Measured on the reference container via :func:`measure_batch_crossover`
#: (see EXPERIMENTS.md, "Crypto throughput, round two"): at 8-way fan-out
#: the lane kernel already wins at 128 B aggregate (one vector dispatch
#: for the whole epoch vs eight scalar per-message setups); at 2-way the
#: crossover sits near ~600 B.  512 splits the realistic fan-out range.
DEFAULT_BATCH_PATH_THRESHOLD = 512

_BATCH_ENV_VAR = "REPRO_AEAD_BATCH_THRESHOLD"

_batch_override: Optional[int] = None


def batch_path_threshold() -> int:
    """Aggregate batch size in bytes at which ``seal_many`` goes vectorized.

    Resolution order mirrors :func:`fast_path_threshold`: in-process
    override, then ``REPRO_AEAD_BATCH_THRESHOLD``, then the deployment-
    wide ``REPRO_AEAD_FAST_THRESHOLD`` override (kept as the coarse knob:
    pinning it scales both dispatch decisions), then the measured default.
    """
    if _batch_override is not None:
        return _batch_override
    for var in (_BATCH_ENV_VAR, _ENV_VAR):
        env = os.environ.get(var)
        if env:
            try:
                return max(0, int(env))
            except ValueError:
                continue
    return DEFAULT_BATCH_PATH_THRESHOLD


def set_batch_path_threshold(value: Optional[int]) -> None:
    """Pin (or with ``None`` clear) the in-process batch threshold."""
    global _batch_override
    _batch_override = None if value is None else max(0, int(value))


_SWEEP_SIZES = (32, 64, 128, 192, 256, 384, 512, 768, 1024)


def measure_crossover(
    clock: Callable[[], float],
    *,
    sizes: Sequence[int] = _SWEEP_SIZES,
    repeats: int = 50,
) -> dict:
    """Time scalar vs vectorized keystream-XOR and locate the crossover.

    ``clock`` is a monotonic-seconds callable supplied by the caller (the
    benchmark injects ``time.perf_counter``); this module never reads the
    wall clock itself.  Returns ``{"threshold": int, "samples": {size:
    {"scalar_s": float, "vector_s": float}}}`` where ``threshold`` is the
    smallest swept size from which the vectorized path stays ahead (the
    largest swept size + 1 if it never wins).
    """
    key = bytes(range(32))
    nonce = bytes(12)
    samples = {}
    for size in sorted(sizes):
        payload = bytes(size)
        scalar_best = vector_best = None
        for _ in range(max(1, repeats)):
            t0 = clock()
            chacha20_encrypt(key, 1, nonce, payload)
            t1 = clock()
            chacha20_xor(key, 1, nonce, payload)
            t2 = clock()
            scalar_s, vector_s = t1 - t0, t2 - t1
            scalar_best = scalar_s if scalar_best is None else min(scalar_best, scalar_s)
            vector_best = vector_s if vector_best is None else min(vector_best, vector_s)
        samples[size] = {"scalar_s": scalar_best, "vector_s": vector_best}
    threshold = max(samples) + 1
    # Smallest size from which the vector path never falls behind again.
    for size in sorted(samples, reverse=True):
        if samples[size]["vector_s"] <= samples[size]["scalar_s"]:
            threshold = size
        else:
            break
    return {"threshold": threshold, "samples": samples}


_BATCH_SWEEP_AGGREGATES = (128, 256, 512, 1024, 2048, 4096, 8192)


def measure_batch_crossover(
    clock: Callable[[], float],
    *,
    messages: int = 8,
    aggregates: Sequence[int] = _BATCH_SWEEP_AGGREGATES,
    repeats: int = 30,
) -> dict:
    """Locate the aggregate size where the lane-batched kernel wins.

    Times the per-message scalar loop (what ``seal_many`` falls back to
    for tiny epochs) against one multi-message lane-kernel invocation for
    a ``messages``-way batch, across a sweep of *aggregate* payload sizes.
    The clock is injected exactly as in :func:`measure_crossover`.
    Returns ``{"threshold": int, "messages": int, "samples": {aggregate:
    {"scalar_s": float, "batched_s": float}}}``; the threshold is over
    aggregate bytes (the quantity :func:`batch_path_threshold` gates on).
    """
    key = bytes(range(32))
    nonce = bytes(12)
    samples = {}
    for aggregate in sorted(aggregates):
        per = max(1, aggregate // messages)
        batch = [(key, nonce, bytes(per)) for _ in range(messages)]
        scalar_best = batched_best = None
        for _ in range(max(1, repeats)):
            t0 = clock()
            for _, _, payload in batch:
                chacha20_encrypt(key, 1, nonce, payload)
            t1 = clock()
            chacha20_seal_xor_many(batch)
            t2 = clock()
            scalar_s, batched_s = t1 - t0, t2 - t1
            scalar_best = scalar_s if scalar_best is None else min(scalar_best, scalar_s)
            batched_best = batched_s if batched_best is None else min(batched_best, batched_s)
        samples[aggregate] = {"scalar_s": scalar_best, "batched_s": batched_best}
    threshold = max(samples) + 1
    for aggregate in sorted(samples, reverse=True):
        if samples[aggregate]["batched_s"] <= samples[aggregate]["scalar_s"]:
            threshold = aggregate
        else:
            break
    return {"threshold": threshold, "messages": messages, "samples": samples}
