"""ChaCha20 stream cipher (RFC 8439 section 2).

The block function and the keystream-XOR cipher used by the
:class:`~repro.tee.crypto.aead.ChaCha20Poly1305` AEAD.  Inside REX this is
what stands in for the SGX SSL symmetric cipher protecting every raw-data
and model message between attested enclaves.

The implementation follows the RFC exactly -- a 4x4 state of 32-bit words
(constants | key | counter | nonce), 20 rounds of quarter-rounds (10
column + 10 diagonal), serialized little-endian -- but the round function
is fully unrolled into straight-line code over 16 local variables: the
transcription with one helper call per quarter round spent most of its
time on call frames and list indexing, which made the scalar path the
wall-clock floor for every small sealed message.  The keystream XOR is a
single big-integer XOR over the whole message rather than a per-byte
loop.  Validated against the RFC 8439 test vectors in the test suite.
"""

from __future__ import annotations

import struct

__all__ = ["chacha20_block", "chacha20_blocks", "chacha20_encrypt", "chacha20_decrypt"]

_MASK32 = 0xFFFFFFFF
_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)  # "expand 32-byte k"


def _core(words: tuple) -> bytes:
    """Run the 20 ChaCha rounds on one 16-word state; returns the
    serialized output block (working state + input state)."""
    s0, s1, s2, s3, s4, s5, s6, s7, s8, s9, s10, s11, s12, s13, s14, s15 = words
    x0, x1, x2, x3 = s0, s1, s2, s3
    x4, x5, x6, x7 = s4, s5, s6, s7
    x8, x9, x10, x11 = s8, s9, s10, s11
    x12, x13, x14, x15 = s12, s13, s14, s15

    for _ in range(10):
        # Column quarter-rounds: (0,4,8,12) (1,5,9,13) (2,6,10,14) (3,7,11,15).
        x0 = (x0 + x4) & _MASK32
        x12 ^= x0
        x12 = ((x12 << 16) | (x12 >> 16)) & _MASK32
        x8 = (x8 + x12) & _MASK32
        x4 ^= x8
        x4 = ((x4 << 12) | (x4 >> 20)) & _MASK32
        x0 = (x0 + x4) & _MASK32
        x12 ^= x0
        x12 = ((x12 << 8) | (x12 >> 24)) & _MASK32
        x8 = (x8 + x12) & _MASK32
        x4 ^= x8
        x4 = ((x4 << 7) | (x4 >> 25)) & _MASK32

        x1 = (x1 + x5) & _MASK32
        x13 ^= x1
        x13 = ((x13 << 16) | (x13 >> 16)) & _MASK32
        x9 = (x9 + x13) & _MASK32
        x5 ^= x9
        x5 = ((x5 << 12) | (x5 >> 20)) & _MASK32
        x1 = (x1 + x5) & _MASK32
        x13 ^= x1
        x13 = ((x13 << 8) | (x13 >> 24)) & _MASK32
        x9 = (x9 + x13) & _MASK32
        x5 ^= x9
        x5 = ((x5 << 7) | (x5 >> 25)) & _MASK32

        x2 = (x2 + x6) & _MASK32
        x14 ^= x2
        x14 = ((x14 << 16) | (x14 >> 16)) & _MASK32
        x10 = (x10 + x14) & _MASK32
        x6 ^= x10
        x6 = ((x6 << 12) | (x6 >> 20)) & _MASK32
        x2 = (x2 + x6) & _MASK32
        x14 ^= x2
        x14 = ((x14 << 8) | (x14 >> 24)) & _MASK32
        x10 = (x10 + x14) & _MASK32
        x6 ^= x10
        x6 = ((x6 << 7) | (x6 >> 25)) & _MASK32

        x3 = (x3 + x7) & _MASK32
        x15 ^= x3
        x15 = ((x15 << 16) | (x15 >> 16)) & _MASK32
        x11 = (x11 + x15) & _MASK32
        x7 ^= x11
        x7 = ((x7 << 12) | (x7 >> 20)) & _MASK32
        x3 = (x3 + x7) & _MASK32
        x15 ^= x3
        x15 = ((x15 << 8) | (x15 >> 24)) & _MASK32
        x11 = (x11 + x15) & _MASK32
        x7 ^= x11
        x7 = ((x7 << 7) | (x7 >> 25)) & _MASK32

        # Diagonal quarter-rounds: (0,5,10,15) (1,6,11,12) (2,7,8,13) (3,4,9,14).
        x0 = (x0 + x5) & _MASK32
        x15 ^= x0
        x15 = ((x15 << 16) | (x15 >> 16)) & _MASK32
        x10 = (x10 + x15) & _MASK32
        x5 ^= x10
        x5 = ((x5 << 12) | (x5 >> 20)) & _MASK32
        x0 = (x0 + x5) & _MASK32
        x15 ^= x0
        x15 = ((x15 << 8) | (x15 >> 24)) & _MASK32
        x10 = (x10 + x15) & _MASK32
        x5 ^= x10
        x5 = ((x5 << 7) | (x5 >> 25)) & _MASK32

        x1 = (x1 + x6) & _MASK32
        x12 ^= x1
        x12 = ((x12 << 16) | (x12 >> 16)) & _MASK32
        x11 = (x11 + x12) & _MASK32
        x6 ^= x11
        x6 = ((x6 << 12) | (x6 >> 20)) & _MASK32
        x1 = (x1 + x6) & _MASK32
        x12 ^= x1
        x12 = ((x12 << 8) | (x12 >> 24)) & _MASK32
        x11 = (x11 + x12) & _MASK32
        x6 ^= x11
        x6 = ((x6 << 7) | (x6 >> 25)) & _MASK32

        x2 = (x2 + x7) & _MASK32
        x13 ^= x2
        x13 = ((x13 << 16) | (x13 >> 16)) & _MASK32
        x8 = (x8 + x13) & _MASK32
        x7 ^= x8
        x7 = ((x7 << 12) | (x7 >> 20)) & _MASK32
        x2 = (x2 + x7) & _MASK32
        x13 ^= x2
        x13 = ((x13 << 8) | (x13 >> 24)) & _MASK32
        x8 = (x8 + x13) & _MASK32
        x7 ^= x8
        x7 = ((x7 << 7) | (x7 >> 25)) & _MASK32

        x3 = (x3 + x4) & _MASK32
        x14 ^= x3
        x14 = ((x14 << 16) | (x14 >> 16)) & _MASK32
        x9 = (x9 + x14) & _MASK32
        x4 ^= x9
        x4 = ((x4 << 12) | (x4 >> 20)) & _MASK32
        x3 = (x3 + x4) & _MASK32
        x14 ^= x3
        x14 = ((x14 << 8) | (x14 >> 24)) & _MASK32
        x9 = (x9 + x14) & _MASK32
        x4 ^= x9
        x4 = ((x4 << 7) | (x4 >> 25)) & _MASK32

    return struct.pack(
        "<16L",
        (x0 + s0) & _MASK32,
        (x1 + s1) & _MASK32,
        (x2 + s2) & _MASK32,
        (x3 + s3) & _MASK32,
        (x4 + s4) & _MASK32,
        (x5 + s5) & _MASK32,
        (x6 + s6) & _MASK32,
        (x7 + s7) & _MASK32,
        (x8 + s8) & _MASK32,
        (x9 + s9) & _MASK32,
        (x10 + s10) & _MASK32,
        (x11 + s11) & _MASK32,
        (x12 + s12) & _MASK32,
        (x13 + s13) & _MASK32,
        (x14 + s14) & _MASK32,
        (x15 + s15) & _MASK32,
    )


def _check_params(key: bytes, counter: int, nonce: bytes) -> None:
    if len(key) != 32:
        raise ValueError("ChaCha20 key must be 32 bytes")
    if len(nonce) != 12:
        raise ValueError("ChaCha20 nonce must be 12 bytes")
    if not 0 <= counter <= _MASK32:
        raise ValueError("ChaCha20 counter must fit in 32 bits")


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """Compute one 64-byte ChaCha20 keystream block.

    Parameters
    ----------
    key:
        32-byte key.
    counter:
        32-bit block counter.
    nonce:
        12-byte nonce.
    """
    _check_params(key, counter, nonce)
    return _core(_CONSTANTS + struct.unpack("<8L", key) + (counter,) + struct.unpack("<3L", nonce))


def _check_block_span(counter: int, n_blocks: int) -> None:
    """Reject keystream spans that would wrap the 32-bit block counter.

    RFC 8439 gives ChaCha20 a 32-bit counter; a span crossing 2**32 would
    silently wrap to block 0 and *reuse keystream* -- for this AEAD that
    means the Poly1305 one-time key XORed into late ciphertext, a
    catastrophic confidentiality break.  Every keystream producer (scalar
    and vectorized) must reject the span instead.
    """
    if n_blocks and counter + n_blocks - 1 > _MASK32:
        raise ValueError(
            f"ChaCha20 block counter overflow: counter {counter} + "
            f"{n_blocks} blocks crosses 2**32; keystream would repeat"
        )


def chacha20_blocks(key: bytes, counter: int, nonce: bytes, n_blocks: int) -> bytes:
    """Concatenated keystream blocks ``counter .. counter + n_blocks - 1``.

    The shared head/tail of the state tuple is built once; only the
    counter word changes per block.
    """
    _check_params(key, counter, nonce)
    _check_block_span(counter, n_blocks)
    head = _CONSTANTS + struct.unpack("<8L", key)
    tail = struct.unpack("<3L", nonce)
    return b"".join(_core(head + (counter + i,) + tail) for i in range(n_blocks))


def chacha20_encrypt(key: bytes, counter: int, nonce: bytes, plaintext) -> bytes:
    """Encrypt (or decrypt) ``plaintext`` with the ChaCha20 keystream.

    The cipher is its own inverse; :func:`chacha20_decrypt` is an alias
    provided for readability at call sites.
    """
    n = len(plaintext)
    keystream = chacha20_blocks(key, counter, nonce, (n + 63) // 64)
    x = int.from_bytes(plaintext, "little") ^ int.from_bytes(keystream[:n], "little")
    return x.to_bytes(n, "little")


def chacha20_decrypt(key: bytes, counter: int, nonce: bytes, ciphertext) -> bytes:
    """Decrypt ChaCha20 ciphertext (identical to encryption)."""
    return chacha20_encrypt(key, counter, nonce, ciphertext)
