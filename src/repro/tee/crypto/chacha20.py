"""ChaCha20 stream cipher (RFC 8439 section 2).

The block function and the keystream-XOR cipher used by the
:class:`~repro.tee.crypto.aead.ChaCha20Poly1305` AEAD.  Inside REX this is
what stands in for the SGX SSL symmetric cipher protecting every raw-data
and model message between attested enclaves.

The implementation is a direct transcription of the RFC: a 4x4 state of
32-bit words (constants | key | counter | nonce), 20 rounds of
quarter-rounds (10 column + 10 diagonal), serialized little-endian.
Validated against the RFC 8439 test vectors in the test suite.
"""

from __future__ import annotations

import struct

__all__ = ["chacha20_block", "chacha20_encrypt", "chacha20_decrypt"]

_MASK32 = 0xFFFFFFFF
_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)  # "expand 32-byte k"


def _quarter_round(state: list, a: int, b: int, c: int, d: int) -> None:
    """Apply the ChaCha quarter round to state indices a, b, c, d in place."""
    sa, sb, sc, sd = state[a], state[b], state[c], state[d]

    sa = (sa + sb) & _MASK32
    sd ^= sa
    sd = ((sd << 16) | (sd >> 16)) & _MASK32

    sc = (sc + sd) & _MASK32
    sb ^= sc
    sb = ((sb << 12) | (sb >> 20)) & _MASK32

    sa = (sa + sb) & _MASK32
    sd ^= sa
    sd = ((sd << 8) | (sd >> 24)) & _MASK32

    sc = (sc + sd) & _MASK32
    sb ^= sc
    sb = ((sb << 7) | (sb >> 25)) & _MASK32

    state[a], state[b], state[c], state[d] = sa, sb, sc, sd


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """Compute one 64-byte ChaCha20 keystream block.

    Parameters
    ----------
    key:
        32-byte key.
    counter:
        32-bit block counter.
    nonce:
        12-byte nonce.
    """
    if len(key) != 32:
        raise ValueError("ChaCha20 key must be 32 bytes")
    if len(nonce) != 12:
        raise ValueError("ChaCha20 nonce must be 12 bytes")
    if not 0 <= counter <= _MASK32:
        raise ValueError("ChaCha20 counter must fit in 32 bits")

    state = list(_CONSTANTS)
    state.extend(struct.unpack("<8L", key))
    state.append(counter)
    state.extend(struct.unpack("<3L", nonce))

    working = state.copy()
    for _ in range(10):
        # Column rounds.
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        # Diagonal rounds.
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)

    out = [(w + s) & _MASK32 for w, s in zip(working, state)]
    return struct.pack("<16L", *out)


def chacha20_encrypt(key: bytes, counter: int, nonce: bytes, plaintext: bytes) -> bytes:
    """Encrypt (or decrypt) ``plaintext`` with the ChaCha20 keystream.

    The cipher is its own inverse; :func:`chacha20_decrypt` is an alias
    provided for readability at call sites.
    """
    out = bytearray(len(plaintext))
    for block_index in range(0, len(plaintext), 64):
        keystream = chacha20_block(key, counter + block_index // 64, nonce)
        chunk = plaintext[block_index : block_index + 64]
        for i, byte in enumerate(chunk):
            out[block_index + i] = byte ^ keystream[i]
    return bytes(out)


def chacha20_decrypt(key: bytes, counter: int, nonce: bytes, ciphertext: bytes) -> bytes:
    """Decrypt ChaCha20 ciphertext (identical to encryption)."""
    return chacha20_encrypt(key, counter, nonce, ciphertext)
