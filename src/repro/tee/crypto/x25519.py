"""X25519 elliptic-curve Diffie-Hellman key agreement (RFC 7748).

This is the key-agreement scheme REX nodes run during mutual attestation:
each enclave embeds its ephemeral public key in the *user data* field of its
SGX quote, and after a successful quote verification both sides combine the
peer's public key with their own private key to obtain the same 32-byte
shared secret (Section III-A of the paper).

The implementation follows RFC 7748 section 5 exactly: the Montgomery
ladder over Curve25519 (p = 2^255 - 19, A = 486662) with the standard
scalar clamping.  Python's arbitrary-precision integers make the field
arithmetic straightforward; this is not constant-time (it does not need to
be -- the "hardware" here is simulated), but it is *correct*, and the test
suite checks the RFC 7748 vectors including the 1,000-iteration ladder.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field

__all__ = ["P", "A24", "x25519", "X25519PrivateKey", "X25519PublicKey"]

#: The Curve25519 prime, 2^255 - 19.
P = 2**255 - 19

#: (A - 2) / 4 for A = 486662, used in the Montgomery ladder step.
A24 = 121665

#: The standard base point (u = 9).
_BASE_POINT = (9).to_bytes(32, "little")


def _decode_u_coordinate(u: bytes) -> int:
    """Decode a 32-byte little-endian u-coordinate, masking the top bit."""
    if len(u) != 32:
        raise ValueError(f"u-coordinate must be 32 bytes, got {len(u)}")
    value = int.from_bytes(u, "little")
    return value & ((1 << 255) - 1)


def _decode_scalar(k: bytes) -> int:
    """Decode and clamp a 32-byte scalar per RFC 7748 section 5."""
    if len(k) != 32:
        raise ValueError(f"scalar must be 32 bytes, got {len(k)}")
    raw = bytearray(k)
    raw[0] &= 248
    raw[31] &= 127
    raw[31] |= 64
    return int.from_bytes(raw, "little")


def _cswap(swap: int, x2: int, x3: int) -> tuple[int, int]:
    """Conditionally swap two field elements (branch form; not const-time)."""
    if swap:
        return x3, x2
    return x2, x3


def _ladder(k: int, u: int) -> int:
    """Montgomery ladder scalar multiplication on Curve25519.

    Returns the u-coordinate of ``k * (u, v)`` working entirely in the
    x-only (Montgomery) coordinate system, per RFC 7748.
    """
    x1 = u
    x2, z2 = 1, 0
    x3, z3 = u, 1
    swap = 0
    for t in range(254, -1, -1):
        k_t = (k >> t) & 1
        swap ^= k_t
        x2, x3 = _cswap(swap, x2, x3)
        z2, z3 = _cswap(swap, z2, z3)
        swap = k_t

        a = (x2 + z2) % P
        aa = (a * a) % P
        b = (x2 - z2) % P
        bb = (b * b) % P
        e = (aa - bb) % P
        c = (x3 + z3) % P
        d = (x3 - z3) % P
        da = (d * a) % P
        cb = (c * b) % P
        x3 = (da + cb) % P
        x3 = (x3 * x3) % P
        z3 = (da - cb) % P
        z3 = (z3 * z3) % P
        z3 = (z3 * x1) % P
        x2 = (aa * bb) % P
        z2 = (e * (aa + A24 * e)) % P

    x2, x3 = _cswap(swap, x2, x3)
    z2, z3 = _cswap(swap, z2, z3)
    # Fermat inversion: z2^(p-2) mod p.
    return (x2 * pow(z2, P - 2, P)) % P


def x25519(scalar: bytes, u_coordinate: bytes = _BASE_POINT) -> bytes:
    """RFC 7748 X25519 function: scalar multiplication on Curve25519.

    Parameters
    ----------
    scalar:
        32-byte private scalar (clamped internally).
    u_coordinate:
        32-byte little-endian u-coordinate of the input point; defaults to
        the curve base point (u = 9), which computes the public key.

    Returns
    -------
    bytes
        The 32-byte little-endian u-coordinate of the result.
    """
    k = _decode_scalar(scalar)
    u = _decode_u_coordinate(u_coordinate)
    return _ladder(k, u).to_bytes(32, "little")


@dataclass(frozen=True)
class X25519PublicKey:
    """An X25519 public key (a 32-byte u-coordinate)."""

    data: bytes

    def __post_init__(self) -> None:
        if len(self.data) != 32:
            raise ValueError("X25519 public key must be 32 bytes")

    def fingerprint(self) -> str:
        """Short hex fingerprint (first 8 bytes of SHA-256) for logging."""
        return hashlib.sha256(self.data).hexdigest()[:16]


@dataclass(frozen=True)
class X25519PrivateKey:
    """An X25519 private key with Diffie-Hellman exchange.

    Notes
    -----
    ``exchange`` rejects the all-zero shared secret, which arises when the
    peer supplied a low-order point -- the standard contributory-behaviour
    check mandated by RFC 7748 section 6.1.
    """

    data: bytes = field(repr=False)

    def __post_init__(self) -> None:
        if len(self.data) != 32:
            raise ValueError("X25519 private key must be 32 bytes")

    @classmethod
    def generate(cls) -> "X25519PrivateKey":
        """Generate a fresh private key from the OS entropy source."""
        # Sanctioned entropy shim: real keygen for ad-hoc use outside
        # seeded experiments; every experiment path uses from_seed().
        return cls(os.urandom(32))  # repro-lint: disable=REX-D003

    @classmethod
    def from_seed(cls, seed: bytes) -> "X25519PrivateKey":
        """Derive a deterministic private key from arbitrary seed bytes.

        Used throughout the simulator so experiments are reproducible while
        still exercising the real key-agreement math.
        """
        return cls(hashlib.sha256(b"x25519-seed:" + seed).digest())

    def public_key(self) -> X25519PublicKey:
        """Compute the corresponding public key (scalar * base point)."""
        return X25519PublicKey(x25519(self.data))

    def exchange(self, peer: X25519PublicKey) -> bytes:
        """Compute the 32-byte shared secret with ``peer``.

        Raises
        ------
        ValueError
            If the resulting shared secret is all zeros (low-order point).
        """
        secret = x25519(self.data, peer.data)
        if secret == b"\x00" * 32:
            raise ValueError("X25519 exchange produced the all-zero secret")
        return secret
