"""From-scratch cryptographic primitives used by the TEE substrate.

The REX paper uses Intel SGX SSL for cryptography inside enclaves: an
elliptic-curve Diffie-Hellman exchange to derive a pairwise shared secret
during attestation (the ECDH public key rides in the quote's *user data*
field) and authenticated encryption for all subsequent raw-data / model
exchanges.  This package re-implements the equivalent primitives in pure
Python so the full attestation + secure-channel protocol can be exercised
end-to-end without any external crypto dependency:

- :mod:`~repro.tee.crypto.x25519` -- Curve25519 Diffie-Hellman (RFC 7748).
- :mod:`~repro.tee.crypto.chacha20` / :mod:`~repro.tee.crypto.poly1305` /
  :mod:`~repro.tee.crypto.aead` -- ChaCha20-Poly1305 AEAD (RFC 8439).
- :mod:`~repro.tee.crypto.hkdf` -- HMAC-based key derivation (RFC 5869).
- :mod:`~repro.tee.crypto.signing` -- MAC-based signing used to model the
  platform quoting key and the DCAP verification chain.

Only :mod:`hashlib`/:mod:`hmac` from the standard library are used (for
SHA-256); every other primitive is implemented here and validated against
the official RFC test vectors in the test suite.
"""

from repro.tee.crypto.aead import AeadError, ChaCha20Poly1305
from repro.tee.crypto.hkdf import hkdf, hkdf_expand, hkdf_extract
from repro.tee.crypto.signing import SigningKey, VerifyKey
from repro.tee.crypto.tuning import (
    fast_path_threshold,
    measure_crossover,
    set_fast_path_threshold,
)
from repro.tee.crypto.x25519 import X25519PrivateKey, X25519PublicKey, x25519

__all__ = [
    "AeadError",
    "ChaCha20Poly1305",
    "SigningKey",
    "VerifyKey",
    "X25519PrivateKey",
    "X25519PublicKey",
    "fast_path_threshold",
    "hkdf",
    "hkdf_expand",
    "hkdf_extract",
    "measure_crossover",
    "set_fast_path_threshold",
    "x25519",
]
