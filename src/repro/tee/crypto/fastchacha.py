"""Vectorized ChaCha20 keystream generation with NumPy.

The scalar implementation in :mod:`repro.tee.crypto.chacha20` is a direct
RFC transcription, ideal for auditing but slow in pure Python.  REX's
model-sharing baseline pushes hundreds of kilobytes of ciphertext per edge
per epoch, so the AEAD layer uses this batch implementation for large
payloads: all keystream blocks are produced at once by running the 20
ChaCha rounds over a ``(16, n_blocks)`` uint32 array, turning the per-block
Python loop into whole-array NumPy operations (the "vectorize your for
loops" rule from the scientific-Python optimization playbook).

Equivalence with the scalar reference is asserted by tests over random
keys, nonces, counters and lengths.
"""

from __future__ import annotations

import struct

import numpy as np

__all__ = ["chacha20_keystream", "chacha20_xor"]

_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)


def _rotl(x: np.ndarray, n: int) -> np.ndarray:
    """Rotate each uint32 lane left by ``n`` bits."""
    return (x << np.uint32(n)) | (x >> np.uint32(32 - n))


def _quarter_round(s: np.ndarray, a: int, b: int, c: int, d: int) -> None:
    """Vectorized quarter round across all blocks simultaneously."""
    s[a] += s[b]
    s[d] = _rotl(s[d] ^ s[a], 16)
    s[c] += s[d]
    s[b] = _rotl(s[b] ^ s[c], 12)
    s[a] += s[b]
    s[d] = _rotl(s[d] ^ s[a], 8)
    s[c] += s[d]
    s[b] = _rotl(s[b] ^ s[c], 7)


def chacha20_keystream(key: bytes, counter: int, nonce: bytes, length: int) -> bytes:
    """Generate ``length`` bytes of ChaCha20 keystream, all blocks at once."""
    if len(key) != 32:
        raise ValueError("ChaCha20 key must be 32 bytes")
    if len(nonce) != 12:
        raise ValueError("ChaCha20 nonce must be 12 bytes")
    n_blocks = (length + 63) // 64
    if n_blocks == 0:
        return b""
    if counter + n_blocks - 1 > 0xFFFFFFFF:
        raise ValueError("counter overflow for requested keystream length")

    key_words = struct.unpack("<8L", key)
    nonce_words = struct.unpack("<3L", nonce)

    state = np.empty((16, n_blocks), dtype=np.uint32)
    for i, word in enumerate(_CONSTANTS):
        state[i] = word
    for i, word in enumerate(key_words):
        state[4 + i] = word
    state[12] = np.arange(counter, counter + n_blocks, dtype=np.uint64).astype(np.uint32)
    for i, word in enumerate(nonce_words):
        state[13 + i] = word

    working = state.copy()
    with np.errstate(over="ignore"):
        for _ in range(10):
            _quarter_round(working, 0, 4, 8, 12)
            _quarter_round(working, 1, 5, 9, 13)
            _quarter_round(working, 2, 6, 10, 14)
            _quarter_round(working, 3, 7, 11, 15)
            _quarter_round(working, 0, 5, 10, 15)
            _quarter_round(working, 1, 6, 11, 12)
            _quarter_round(working, 2, 7, 8, 13)
            _quarter_round(working, 3, 4, 9, 14)
        working += state

    # Column-major (block-major) serialization: block j is working[:, j].
    stream = working.T.astype("<u4").tobytes()
    return stream[:length]


def chacha20_xor(key: bytes, counter: int, nonce: bytes, data: bytes) -> bytes:
    """XOR ``data`` with the keystream (encrypt == decrypt)."""
    keystream = chacha20_keystream(key, counter, nonce, len(data))
    a = np.frombuffer(data, dtype=np.uint8)
    b = np.frombuffer(keystream, dtype=np.uint8)
    return (a ^ b).tobytes()
