"""Vectorized ChaCha20 keystream generation with NumPy.

The scalar implementation in :mod:`repro.tee.crypto.chacha20` is a direct
RFC transcription, ideal for auditing but slow in pure Python.  REX's
model-sharing baseline pushes hundreds of kilobytes of ciphertext per edge
per epoch, so the AEAD layer uses this batch implementation for large
payloads: all keystream blocks are produced at once by running the 20
ChaCha rounds over the full block batch.

Two structural optimizations keep per-operation NumPy dispatch off the
profile (it dominated the original ``(16, n)``-row formulation):

- **Row grouping.** The state lives in four row groups A/B/C/D (constants,
  key-low, key-high, counter+nonce), each a ``(4, n)`` array, so the four
  independent column quarter-rounds of a round execute as *one* sequence
  of whole-group operations instead of four.  Diagonal rounds reuse the
  same sequence through the classic SIMD lane-rotation trick: each group
  carries 1-3 duplicated rows so its rotated-by-k view is a contiguous
  slice; two bulk row copies per group sync the duplicates per double
  round.
- **In-place arithmetic.** All adds/xors/rotates write into the group
  arrays or two preallocated scratch buffers, so the round loop performs
  no allocations.

Equivalence with the scalar reference is asserted by tests over random
keys, nonces, counters and lengths.
"""

from __future__ import annotations

import struct
import sys

import numpy as np

from repro.tee.crypto.chacha20 import _check_block_span

__all__ = [
    "chacha20_keystream",
    "chacha20_xor",
    "chacha20_seal_xor",
    "chacha20_seal_xor_many",
]

_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)
_NATIVE_LE = sys.byteorder == "little"


def _grouped_rounds(groups: tuple, scratch: tuple) -> None:
    """Run the 20 ChaCha rounds in place on the A/B/C/D row groups."""
    a_rows, b_rows, c_rows, d_rows = groups
    t1, t2 = scratch
    a = a_rows
    b0, b1 = b_rows[0:4], b_rows[1:5]
    c0, c1 = c_rows[0:4], c_rows[2:6]
    d0, d1 = d_rows[0:4], d_rows[3:7]

    def quarter_rounds(va, vb, vc, vd):
        """Four independent quarter-rounds as whole-group operations."""
        va += vb
        np.bitwise_xor(vd, va, out=vd)
        np.left_shift(vd, 16, out=t1)
        np.right_shift(vd, 16, out=t2)
        np.bitwise_or(t1, t2, out=vd)
        vc += vd
        np.bitwise_xor(vb, vc, out=vb)
        np.left_shift(vb, 12, out=t1)
        np.right_shift(vb, 20, out=t2)
        np.bitwise_or(t1, t2, out=vb)
        va += vb
        np.bitwise_xor(vd, va, out=vd)
        np.left_shift(vd, 8, out=t1)
        np.right_shift(vd, 24, out=t2)
        np.bitwise_or(t1, t2, out=vd)
        vc += vd
        np.bitwise_xor(vb, vc, out=vb)
        np.left_shift(vb, 7, out=t1)
        np.right_shift(vb, 25, out=t2)
        np.bitwise_or(t1, t2, out=vb)

    with np.errstate(over="ignore"):
        for _ in range(10):
            quarter_rounds(a, b0, c0, d0)
            # Rotate lanes: sync the duplicate rows so the shifted views
            # b1/c1/d1 see the post-column-round values.
            b_rows[4] = b_rows[0]
            c_rows[4:6] = c_rows[0:2]
            d_rows[4:7] = d_rows[0:3]
            quarter_rounds(a, b1, c1, d1)
            # Rotate back: the canonical rows 0..3 pick up diagonal results.
            b_rows[0] = b_rows[4]
            c_rows[0:2] = c_rows[4:6]
            d_rows[0:3] = d_rows[4:7]


def _keystream_bytes(key: bytes, counter: int, nonce: bytes, n_blocks: int) -> np.ndarray:
    """All keystream blocks for ``counter .. counter+n_blocks-1`` as a flat
    uint8 array of length ``64 * n_blocks`` (block-major, little-endian)."""
    key_words = struct.unpack("<8L", key)
    nonce_words = struct.unpack("<3L", nonce)
    counters = np.arange(counter, counter + n_blocks, dtype=np.uint64).astype(np.uint32)

    a_rows = np.empty((4, n_blocks), dtype=np.uint32)
    b_rows = np.empty((5, n_blocks), dtype=np.uint32)
    c_rows = np.empty((6, n_blocks), dtype=np.uint32)
    d_rows = np.empty((7, n_blocks), dtype=np.uint32)
    for i in range(4):
        a_rows[i] = _CONSTANTS[i]
        b_rows[i] = key_words[i]
        c_rows[i] = key_words[4 + i]
    d_rows[0] = counters
    for i in range(3):
        d_rows[1 + i] = nonce_words[i]

    scratch = (np.empty((4, n_blocks), dtype=np.uint32), np.empty((4, n_blocks), dtype=np.uint32))
    _grouped_rounds((a_rows, b_rows, c_rows, d_rows), scratch)

    out = np.empty((n_blocks, 16), dtype=np.uint32)
    with np.errstate(over="ignore"):
        for i in range(4):
            out[:, i] = a_rows[i]
            out[:, i] += _CONSTANTS[i]
            out[:, 4 + i] = b_rows[i]
            out[:, 4 + i] += key_words[i]
            out[:, 8 + i] = c_rows[i]
            out[:, 8 + i] += key_words[4 + i]
        out[:, 12] = d_rows[0]
        out[:, 12] += counters
        for i in range(3):
            out[:, 13 + i] = d_rows[1 + i]
            out[:, 13 + i] += nonce_words[i]
    if not _NATIVE_LE:
        out = out.astype("<u4")
    return out.reshape(-1).view(np.uint8)


def _check_params(key: bytes, counter: int, nonce: bytes, n_blocks: int) -> None:
    if len(key) != 32:
        raise ValueError("ChaCha20 key must be 32 bytes")
    if len(nonce) != 12:
        raise ValueError("ChaCha20 nonce must be 12 bytes")
    # Same counter-wrap contract as the scalar reference: a span crossing
    # 2**32 would wrap to block 0 and reuse keystream.
    _check_block_span(counter, n_blocks)


def chacha20_keystream(key: bytes, counter: int, nonce: bytes, length: int) -> bytes:
    """Generate ``length`` bytes of ChaCha20 keystream, all blocks at once."""
    n_blocks = (length + 63) // 64
    _check_params(key, counter, nonce, n_blocks)
    if n_blocks == 0:
        return b""
    return _keystream_bytes(key, counter, nonce, n_blocks)[:length].tobytes()


def chacha20_xor(key: bytes, counter: int, nonce: bytes, data) -> bytes:
    """XOR ``data`` with the keystream (encrypt == decrypt).

    The keystream buffer doubles as the output buffer: the data is XORed
    into it in place, so the only allocation besides the keystream is the
    final immutable ``bytes`` copy.
    """
    n = len(data)
    n_blocks = (n + 63) // 64
    _check_params(key, counter, nonce, n_blocks)
    if n_blocks == 0:
        return b""
    stream = _keystream_bytes(key, counter, nonce, n_blocks)[:n]
    np.bitwise_xor(stream, np.frombuffer(data, dtype=np.uint8), out=stream)
    return stream.tobytes()


def chacha20_seal_xor(key: bytes, nonce: bytes, data) -> tuple:
    """Fused AEAD seal pipeline: one keystream request per seal.

    Generates blocks ``0 .. ceil(len/64)`` in a single batch and returns
    ``(poly_key, xored)`` where ``poly_key`` is the 32-byte Poly1305
    one-time key (block 0, RFC 8439 section 2.6) and ``xored`` is ``data``
    XORed with the payload keystream (blocks 1..).  The unfused path costs
    two keystream generations per seal/open; this costs one.
    """
    n = len(data)
    n_blocks = 1 + (n + 63) // 64
    _check_params(key, 0, nonce, n_blocks)
    stream = _keystream_bytes(key, 0, nonce, n_blocks)
    poly_key = stream[:32].tobytes()
    payload = stream[64 : 64 + n]
    np.bitwise_xor(payload, np.frombuffer(data, dtype=np.uint8), out=payload)
    return poly_key, payload.tobytes()


def _keystream_bytes_many(keys, nonces, blocks: np.ndarray) -> np.ndarray:
    """Concatenated keystreams for ``M`` messages as one lane matrix.

    ``keys``/``nonces`` are length-``M`` sequences; ``blocks[i]`` is the
    number of 64-byte blocks message ``i`` contributes (counters start at
    0 per message).  All ``T = blocks.sum()`` lanes are stacked into one
    state matrix and the 20 grouped rounds run *once* over every lane --
    the per-call NumPy dispatch cost of the rounds loop is paid once per
    epoch instead of once per neighbor.

    Lane layout is an exact ragged concatenation: message ``i`` owns lane
    columns ``starts[i] .. starts[i]+blocks[i]-1``, so mixed message sizes
    waste zero pad lanes (contrast the padded-rectangle layout discussed
    in DESIGN.md).  Returns a flat uint8 array of ``64 * T`` bytes,
    block-major in lane order.
    """
    m = len(keys)
    total = int(blocks.sum())
    starts = np.zeros(m, dtype=np.int64)
    np.cumsum(blocks[:-1], out=starts[1:])
    msg_idx = np.repeat(np.arange(m, dtype=np.int64), blocks)

    # Per-lane init words for rows 4..15 (key / counter / nonce); the
    # constants row group is uniform across lanes, as in the single-
    # message kernel.  ``astype`` normalizes to native order on BE hosts.
    kw = np.frombuffer(b"".join(bytes(k) for k in keys), dtype="<u4")
    kw = kw.astype(np.uint32, copy=False).reshape(m, 8)
    nw = np.frombuffer(b"".join(bytes(v) for v in nonces), dtype="<u4")
    nw = nw.astype(np.uint32, copy=False).reshape(m, 3)
    counters = (np.arange(total, dtype=np.int64) - starts[msg_idx]).astype(np.uint32)

    init = np.empty((12, total), dtype=np.uint32)
    for i in range(8):
        init[i] = kw[msg_idx, i]
    init[8] = counters
    for i in range(3):
        init[9 + i] = nw[msg_idx, i]

    # Working set per lane is ~180 B (state groups + scratch + init +
    # output row); an unchunked 16k-lane matrix (~1 MiB aggregate) spills
    # L2 and the rounds loop drops ~20%.  Processing the lane matrix in
    # fixed-width chunks keeps the hot state resident; chunk width is a
    # measured value (see DESIGN.md), small enough for commodity L2 yet
    # wide enough that per-chunk dispatch overhead stays negligible.
    out = np.empty((total, 16), dtype=np.uint32)
    for lo in range(0, total, _LANE_CHUNK):
        hi = min(lo + _LANE_CHUNK, total)
        _run_lane_chunk(init[:, lo:hi], out[lo:hi])
    if not _NATIVE_LE:
        out = out.astype("<u4")
    return out.reshape(-1).view(np.uint8)


_LANE_CHUNK = 8192  # lanes (64 B blocks) per rounds invocation
_WORKER_MIN_BYTES = 1 << 20  # aggregate floor for the process-pool dispatcher


def _run_lane_chunk(init: np.ndarray, out: np.ndarray) -> None:
    """Rounds + feed-forward for one slice of the lane matrix.

    ``init`` is the ``(12, n)`` per-lane key/counter/nonce word slice;
    ``out`` the matching ``(n, 16)`` keystream-word destination.
    """
    n = init.shape[1]
    a_rows = np.empty((4, n), dtype=np.uint32)
    b_rows = np.empty((5, n), dtype=np.uint32)
    c_rows = np.empty((6, n), dtype=np.uint32)
    d_rows = np.empty((7, n), dtype=np.uint32)
    for i in range(4):
        a_rows[i] = _CONSTANTS[i]
    b_rows[0:4] = init[0:4]
    c_rows[0:4] = init[4:8]
    d_rows[0:4] = init[8:12]

    scratch = (np.empty((4, n), dtype=np.uint32), np.empty((4, n), dtype=np.uint32))
    _grouped_rounds((a_rows, b_rows, c_rows, d_rows), scratch)

    with np.errstate(over="ignore"):
        for i in range(4):
            out[:, i] = a_rows[i]
            out[:, i] += _CONSTANTS[i]
            out[:, 4 + i] = b_rows[i]
            out[:, 4 + i] += init[i]
            out[:, 8 + i] = c_rows[i]
            out[:, 8 + i] += init[4 + i]
            out[:, 12 + i] = d_rows[i]
            out[:, 12 + i] += init[8 + i]


def chacha20_seal_xor_many(items, outs=None) -> list:
    """Batch form of :func:`chacha20_seal_xor` over many messages.

    ``items`` is a sequence of ``(key, nonce, data)`` triples, one per
    message; every message gets its own block-0 Poly1305 key and payload
    keystream (blocks 1..), exactly as the sequential pipeline would, but
    all lanes run through the rounds in a single kernel invocation.

    Returns a list of ``(poly_key, xored)`` pairs.  With ``outs`` (a
    per-message sequence of writable buffers, ``len(outs[i]) ==
    len(data_i)``) the XORed payload is written directly into the caller's
    buffer -- e.g. the ciphertext span of a preallocated wire frame -- and
    ``xored`` is that buffer; otherwise a fresh ``bytes`` is returned.

    XOR is an involution, so passing ciphertexts decrypts: the pair then
    reads ``(poly_key, plaintext)``.
    """
    m = len(items)
    if m == 0:
        return []
    if outs is not None and len(outs) != m:
        raise ValueError("outs must have one buffer per message")
    keys = []
    nonces = []
    lens = np.empty(m, dtype=np.int64)
    for i, (key, nonce, data) in enumerate(items):
        n = len(data)
        _check_params(key, 0, nonce, 1 + (n + 63) // 64)
        keys.append(key)
        nonces.append(nonce)
        lens[i] = n
    blocks = 1 + (lens + 63) // 64
    stream = None
    if int(lens.sum()) >= _WORKER_MIN_BYTES:
        # Opt-in process-pool lane dispatcher (REPRO_AEAD_WORKERS): shards
        # lane columns across cores for very large aggregate seals; falls
        # back to the in-process kernel whenever the pool cannot help.
        from repro.tee.crypto import workers

        if workers.worker_count() > 1:
            stream = workers.keystream_many_parallel(keys, nonces, blocks)
    if stream is None:
        stream = _keystream_bytes_many(keys, nonces, blocks)

    results = []
    base = 0
    for i, (_, _, data) in enumerate(items):
        n = int(lens[i])
        poly_key = stream[base : base + 32].tobytes()
        payload = stream[base + 64 : base + 64 + n]
        if outs is None:
            np.bitwise_xor(payload, np.frombuffer(data, dtype=np.uint8), out=payload)
            results.append((poly_key, payload.tobytes()))
        else:
            dest = np.frombuffer(outs[i], dtype=np.uint8)
            if dest.size != n:
                raise ValueError("output buffer size must equal message size")
            np.bitwise_xor(payload, np.frombuffer(data, dtype=np.uint8), out=dest)
            results.append((poly_key, outs[i]))
        base += int(blocks[i]) * 64
    return results
