"""AEAD backend selection: portable NumPy kernel vs native OpenSSL.

The NumPy lane kernel (:mod:`fastchacha` + :mod:`poly1305`) is the
reference implementation -- auditable, dependency-light, and the thing
our RFC-vector and oracle tests actually exercise.  On a box with the
``cryptography`` package installed, OpenSSL's fused ChaCha20-Poly1305
runs an order of magnitude faster than any interpreter-resident kernel,
and produces byte-identical wire output (RFC 8439 fixes the ciphertext
and tag exactly; the oracle tests in tests/tee pin the equivalence).

Resolution order for the active backend:

1. in-process override via :func:`set_aead_backend` (tests),
2. ``REPRO_AEAD_BACKEND`` env var: ``numpy`` | ``native`` | ``auto``,
3. ``auto``: native when importable, NumPy otherwise.

Requesting ``native`` when ``cryptography`` is missing raises at first
use rather than silently downgrading -- a deployment that pinned the
fast backend should notice losing it.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

_ENV_VAR = "REPRO_AEAD_BACKEND"
_VALID = ("auto", "numpy", "native")

_override: Optional[str] = None

# Lazily-resolved handle to cryptography's ChaCha20Poly1305 class, or
# False once probing failed.  None means "not probed yet".
_native_cls = None
_native_invalid_tag = None


def _probe_native() -> bool:
    """Import the OpenSSL AEAD lazily; remember the outcome."""
    global _native_cls, _native_invalid_tag
    if _native_cls is None:
        try:
            from cryptography.exceptions import InvalidTag
            from cryptography.hazmat.primitives.ciphers.aead import (
                ChaCha20Poly1305 as _OsslAead,
            )

            _native_cls = _OsslAead
            _native_invalid_tag = InvalidTag
        except Exception:  # pragma: no cover - environment-dependent
            _native_cls = False
            _native_invalid_tag = False
    return bool(_native_cls)


def native_available() -> bool:
    """True when the OpenSSL-backed AEAD can be used on this host."""
    return _probe_native()


def set_aead_backend(name: Optional[str]) -> None:
    """Force a backend in-process (``None`` restores env/auto resolution)."""
    global _override
    if name is not None and name not in _VALID:
        raise ValueError(f"unknown AEAD backend {name!r}; expected one of {_VALID}")
    _override = name


def aead_backend() -> str:
    """Resolve the active backend to ``"numpy"`` or ``"native"``."""
    choice = _override
    if choice is None:
        choice = os.environ.get(_ENV_VAR, "auto").strip().lower() or "auto"
    if choice not in _VALID:
        raise ValueError(
            f"invalid {_ENV_VAR}={choice!r}; expected one of {_VALID}"
        )
    if choice == "auto":
        return "native" if _probe_native() else "numpy"
    if choice == "native" and not _probe_native():
        raise RuntimeError(
            "REPRO_AEAD_BACKEND=native but the 'cryptography' package is "
            "not importable; install it or select numpy/auto"
        )
    return choice


# ---------------------------------------------------------------------------
# Native primitives.  A tiny per-key cipher cache avoids re-deriving the
# OpenSSL key schedule for every frame; channels reuse one key for the
# whole session, so the hit rate in the share loop is ~100%.
# ---------------------------------------------------------------------------

_CIPHER_CACHE_MAX = 256
_cipher_cache: dict = {}


def _native_cipher(key: bytes):
    cipher = _cipher_cache.get(key)
    if cipher is None:
        if not _probe_native():  # pragma: no cover - guarded by callers
            raise RuntimeError("native AEAD backend unavailable")
        if len(_cipher_cache) >= _CIPHER_CACHE_MAX:
            _cipher_cache.clear()
        cipher = _native_cls(bytes(key))
        _cipher_cache[key] = cipher
    return cipher


def native_seal(key: bytes, nonce: bytes, plaintext, aad) -> bytes:
    """OpenSSL one-shot seal; returns ``ciphertext || tag`` (RFC 8439)."""
    return _native_cipher(key).encrypt(bytes(nonce), plaintext, aad if aad else None)


def native_open(key: bytes, nonce: bytes, data, aad) -> Tuple[bool, bytes]:
    """OpenSSL one-shot open; ``(ok, plaintext)`` -- no exception leak."""
    try:
        return True, _native_cipher(key).decrypt(
            bytes(nonce), data, aad if aad else None
        )
    except _native_invalid_tag:
        return False, b""
