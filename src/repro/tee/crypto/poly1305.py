"""Poly1305 one-time authenticator (RFC 8439 section 2.5).

Produces the 16-byte tag that makes ChaCha20-Poly1305 an *authenticated*
cipher: any bit-flip in a REX message in transit makes the tag check fail,
which models the integrity guarantee SGX-attested channels provide against
a malicious network or untrusted host relaying the traffic.

Fast-path design
----------------
The straightforward transcription -- one ``(acc + block) * r % P`` per
16-byte block -- is what bounded every secure-channel benchmark, so large
messages take a batched-Horner path instead:

- The message is converted to 130-bit block values ("limbs") in one pass.
- Blocks are split into ``K`` interleaved Horner lanes, all evaluated at
  the precomputed power ``r^K``, so each iteration advances ``K`` blocks.
- Lane state lives in radix-2^26 limb vectors (five uint64 NumPy arrays),
  the multiply by ``r^K`` is a single 5x5 integer matrix product per
  iteration, and modular reduction is deferred: only lazy carry
  propagation happens per step, with the single exact ``% P`` reduction
  at the very end instead of once per block.
- The ``K`` lane results are folded with a vectorized halving tree
  (multiply evens by ``x``, add odds, square ``x``), so the fold costs
  ``O(log K)`` vector operations, not ``K`` big-int multiplications.

The radix-2^26 schoolbook product bound is the classic "donna" argument:
lane limbs stay below 2^27, multiplier limbs below 2^28.4, so each of the
five dot products is below ``5 * 2^27 * 2^28.4 < 2^58`` and never
overflows uint64.  Equivalence with the scalar reference is pinned by the
RFC 8439 vectors and a randomized cross-check in the test suite.
"""

from __future__ import annotations

import hmac

import numpy as np

__all__ = ["poly1305_mac", "poly1305_verify", "poly1305_aead_tag"]

_P = (1 << 130) - 5
_CLAMP = 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF
_HIBIT = 1 << 128

#: Messages below this many bytes stay on the scalar Horner loop: lane
#: setup (limb extraction, power precompute, fold tree) costs more than
#: it saves under ~10 KiB (see BENCH_crypto.json for the measured curve).
_LANE_THRESHOLD_BYTES = 10240

#: Lane-count planning: at least this many blocks per lane step, lanes a
#: power of two in [_MIN_LANES, _MAX_LANES].
_MIN_STEPS = 2
_MIN_LANES = 32
_MAX_LANES = 4096

#: Below this width the halving tree degrades to a scalar fold.
_FOLD_WIDTH = 16

_M26 = np.uint64((1 << 26) - 1)
_M26_INT = (1 << 26) - 1


def _limbs5(x: int) -> list:
    """Split a value < 2^130 into five 26-bit limbs (little-endian)."""
    return [(x >> (26 * i)) & _M26_INT for i in range(5)]


def _mul_matrix(x: int) -> np.ndarray:
    """(5, 5) uint64 matrix ``M`` such that ``M @ h`` is ``h * x`` in
    radix-2^26 limb form (pre-carry), using the ``2^130 = 5 (mod P)``
    wraparound for the high cross terms."""
    r = _limbs5(x)
    s = [5 * v for v in r]
    m = np.zeros((5, 5), dtype=np.uint64)
    for i in range(5):
        for j in range(5):
            m[i, j] = r[i - j] if j <= i else s[5 + i - j]
    return m


def _carry(d: np.ndarray) -> None:
    """Lazy carry propagation in place on a (5, n) uint64 limb array.

    Brings every limb back under 2^26 (+ epsilon on limb 1), which is all
    the next multiplication needs -- the exact ``% P`` happens once, at
    fold time.
    """
    s26 = np.uint64(26)
    five = np.uint64(5)
    c = d[0] >> s26
    d[0] &= _M26
    d[1] += c
    c = d[1] >> s26
    d[1] &= _M26
    d[2] += c
    c = d[2] >> s26
    d[2] &= _M26
    d[3] += c
    c = d[3] >> s26
    d[3] &= _M26
    d[4] += c
    c = d[4] >> s26
    d[4] &= _M26
    d[0] += c * five
    c = d[0] >> s26
    d[0] &= _M26
    d[1] += c


def _block_limbs(mv: memoryview, nblocks: int) -> np.ndarray:
    """One-pass conversion of ``nblocks`` 16-byte blocks to a (5, nblocks)
    radix-2^26 limb array, with the RFC's 2^128 marker bit set."""
    words = np.frombuffer(mv[: nblocks * 16], dtype="<u8").reshape(nblocks, 2).T
    lo, hi = words[0], words[1]
    out = np.empty((5, nblocks), dtype=np.uint64)
    out[0] = lo & _M26
    out[1] = (lo >> np.uint64(26)) & _M26
    out[2] = ((lo >> np.uint64(52)) | (hi << np.uint64(12))) & _M26
    out[3] = (hi >> np.uint64(14)) & _M26
    out[4] = (hi >> np.uint64(40)) | np.uint64(1 << 24)
    return out


def _fold_int(col: np.ndarray) -> int:
    """Recombine one (5,) limb column into a python int."""
    return (
        int(col[0])
        + (int(col[1]) << 26)
        + (int(col[2]) << 52)
        + (int(col[3]) << 78)
        + (int(col[4]) << 104)
    )


def _eval_lanes(acc: int, r: int, mv: memoryview, nlanes: int, nsteps: int) -> int:
    """Advance the Horner accumulator over ``nlanes * nsteps`` full blocks.

    Lane ``t`` owns blocks ``j * nlanes + t``; every lane is a Horner
    chain at the point ``r^nlanes``, so one vectorized step consumes
    ``nlanes`` blocks.  The incoming accumulator folds into block 0 (its
    coefficient is the highest power, exactly like scalar Horner).
    """
    body = nlanes * nsteps
    limbs = _block_limbs(mv, body)
    if acc:
        limbs[:, 0] += np.array(_limbs5(acc), dtype=np.uint64)
    mul_rk = _mul_matrix(pow(r, nlanes, _P))
    h = limbs[:, :nlanes].copy()
    for j in range(1, nsteps):
        d = mul_rk @ h
        d += limbs[:, j * nlanes : (j + 1) * nlanes]
        _carry(d)
        h = d
    # Halving-tree fold: G = sum_t S_t x^(width-1-t) keeps its shape when
    # evens are multiplied by x, odds added, and x squared.
    x = r
    width = nlanes
    while width > _FOLD_WIDTH:
        t = _mul_matrix(x) @ h[:, 0:width:2]
        t += h[:, 1:width:2]
        _carry(t)
        h = t
        x = (x * x) % _P
        width //= 2
    g = 0
    for t in range(width):
        g = (g * x + _fold_int(h[:, t])) % _P
    return (g * r) % _P


def _plan_lanes(nblocks: int) -> int:
    """Pick the lane count: a power of two with >= _MIN_STEPS blocks per
    lane, clamped to [_MIN_LANES, _MAX_LANES]; 0 means stay scalar."""
    if nblocks < _MIN_LANES * _MIN_STEPS:
        return 0
    lanes = 1 << ((nblocks // _MIN_STEPS).bit_length() - 1)
    return min(lanes, _MAX_LANES)


def _absorb(acc: int, r: int, data, pad: bool) -> int:
    """Absorb ``data`` into the Horner accumulator.

    With ``pad=True`` the final partial block is zero-padded to 16 bytes
    (the AEAD transcript convention, so every block carries the 2^128
    marker); with ``pad=False`` the RFC message convention applies (the
    marker bit sits just past the last byte).
    """
    mv = memoryview(data)
    if mv.ndim != 1 or mv.itemsize != 1:
        mv = mv.cast("B")
    n = len(mv)
    nfull = n // 16
    pos = 0
    if n >= _LANE_THRESHOLD_BYTES:
        remaining = nfull
        while True:
            nlanes = _plan_lanes(remaining)
            if not nlanes:
                break
            nsteps = remaining // nlanes
            acc = _eval_lanes(acc, r, mv[pos:], nlanes, nsteps)
            consumed = nlanes * nsteps
            pos += consumed * 16
            remaining -= consumed
    while pos + 16 <= n:
        acc = ((acc + (int.from_bytes(mv[pos : pos + 16], "little") | _HIBIT)) * r) % _P
        pos += 16
    if pos < n:
        tail = int.from_bytes(mv[pos:], "little")
        tail |= _HIBIT if pad else 1 << (8 * (n - pos))
        acc = ((acc + tail) * r) % _P
    return acc


def _split_key(key: bytes) -> tuple:
    if len(key) != 32:
        raise ValueError("Poly1305 key must be 32 bytes")
    r = int.from_bytes(key[:16], "little") & _CLAMP
    s = int.from_bytes(key[16:], "little")
    return r, s


def _finalize(acc: int, s: int) -> bytes:
    acc = ((acc % _P) + s) & ((1 << 128) - 1)
    return acc.to_bytes(16, "little")


def poly1305_mac(key: bytes, message) -> bytes:
    """Compute the 16-byte Poly1305 tag of ``message`` under a 32-byte key.

    The first 16 key bytes form the (clamped) evaluation point ``r``, the
    second 16 the final pad ``s``; the message is processed in 16-byte
    blocks each with an appended 0x01 byte, as a polynomial over 2^130 - 5.
    """
    r, s = _split_key(key)
    return _finalize(_absorb(0, r, message, pad=False), s)


def poly1305_aead_tag(key: bytes, aad, ciphertext) -> bytes:
    """Tag the RFC 8439 AEAD transcript without materializing it.

    Computes ``Poly1305(aad || pad16 || ciphertext || pad16 || lengths)``
    directly from the three logical segments: the zero padding makes each
    segment block-aligned, so the accumulator simply carries across
    segment boundaries and no padded copy of the (potentially large)
    ciphertext is ever built.  ``aad`` and ``ciphertext`` may be any
    bytes-like object, including memoryviews of the wire buffer.
    """
    r, s = _split_key(key)
    acc = _absorb(0, r, aad, pad=True)
    acc = _absorb(acc, r, ciphertext, pad=True)
    lengths = len(memoryview(aad)).to_bytes(8, "little") + len(
        memoryview(ciphertext)
    ).to_bytes(8, "little")
    acc = _absorb(acc, r, lengths, pad=True)
    return _finalize(acc, s)


def poly1305_verify(key: bytes, message, tag: bytes) -> bool:
    """Constant-time comparison of the expected tag against ``tag``."""
    if len(tag) != 16:
        return False
    return hmac.compare_digest(poly1305_mac(key, message), tag)
