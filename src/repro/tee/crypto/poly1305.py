"""Poly1305 one-time authenticator (RFC 8439 section 2.5).

Produces the 16-byte tag that makes ChaCha20-Poly1305 an *authenticated*
cipher: any bit-flip in a REX message in transit makes the tag check fail,
which models the integrity guarantee SGX-attested channels provide against
a malicious network or untrusted host relaying the traffic.
"""

from __future__ import annotations

__all__ = ["poly1305_mac", "poly1305_verify"]

_P = (1 << 130) - 5
_CLAMP = 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF


def poly1305_mac(key: bytes, message: bytes) -> bytes:
    """Compute the 16-byte Poly1305 tag of ``message`` under a 32-byte key.

    The first 16 key bytes form the (clamped) evaluation point ``r``, the
    second 16 the final pad ``s``; the message is processed in 16-byte
    blocks each with an appended 0x01 byte, as a polynomial over 2^130 - 5.
    """
    if len(key) != 32:
        raise ValueError("Poly1305 key must be 32 bytes")
    r = int.from_bytes(key[:16], "little") & _CLAMP
    s = int.from_bytes(key[16:], "little")

    accumulator = 0
    for offset in range(0, len(message), 16):
        block = message[offset : offset + 16]
        n = int.from_bytes(block + b"\x01", "little")
        accumulator = ((accumulator + n) * r) % _P
    accumulator = (accumulator + s) & ((1 << 128) - 1)
    return accumulator.to_bytes(16, "little")


def poly1305_verify(key: bytes, message: bytes, tag: bytes) -> bool:
    """Constant-length comparison of the expected tag against ``tag``."""
    expected = poly1305_mac(key, message)
    if len(tag) != 16:
        return False
    # XOR-accumulate so the comparison does not short-circuit.
    diff = 0
    for a, b in zip(expected, tag):
        diff |= a ^ b
    return diff == 0
