"""Opt-in process-pool lane dispatcher for the batched ChaCha20 kernel.

Python's GIL keeps the NumPy rounds loop on one core; on multi-core
hosts the lane matrix of a large batched seal can be sharded across
worker processes, each running :func:`~repro.tee.crypto.fastchacha.
_keystream_bytes_many` over a contiguous span of messages.  Workers only
ever see *keystream inputs* (key, nonce, block counts) -- plaintext
never crosses the process boundary, so the enclave data-flow story is
unchanged: the XOR against payload bytes and the Poly1305 tags stay in
the parent.

Disabled by default.  Set ``REPRO_AEAD_WORKERS=N`` (N >= 2) to shard
aggregate seals of at least :data:`MIN_AGGREGATE_BYTES`; anything
smaller, and any pool failure, falls back to the in-process kernel.
Output is byte-identical either way -- sharding only partitions lane
columns, it never reorders them.
"""

from __future__ import annotations

import atexit
import os
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["MIN_AGGREGATE_BYTES", "keystream_many_parallel", "worker_count"]

_ENV_VAR = "REPRO_AEAD_WORKERS"

#: Below this aggregate payload size the IPC + scheduling cost of the
#: pool exceeds any parallel win; the ISSUE contract is >= 1 MiB seals.
MIN_AGGREGATE_BYTES = 1 << 20

_pool = None
_pool_size = 0


def worker_count() -> int:
    """Configured worker processes (0 or 1 disables the pool)."""
    env = os.environ.get(_ENV_VAR, "")
    try:
        n = int(env)
    except ValueError:
        return 0
    return max(0, n)


def _shutdown_pool() -> None:
    """Tear the pool down eagerly (atexit) instead of leaving worker
    reaping to interpreter-shutdown garbage collection."""
    global _pool
    if _pool is not None:
        _pool.shutdown(wait=False, cancel_futures=True)
        _pool = None


def _get_pool(n: int):
    global _pool, _pool_size
    if _pool is not None and _pool_size != n:
        _shutdown_pool()
    if _pool is None:
        from concurrent.futures import ProcessPoolExecutor

        _pool = ProcessPoolExecutor(max_workers=n)
        _pool_size = n
        atexit.register(_shutdown_pool)
    return _pool


def _shard_keystream(keys, nonces, blocks: Sequence[int]) -> bytes:
    """Worker entry point: keystream for a contiguous message span."""
    from repro.tee.crypto.fastchacha import _keystream_bytes_many

    return _keystream_bytes_many(
        keys, nonces, np.asarray(blocks, dtype=np.int64)
    ).tobytes()


def _split_spans(blocks: np.ndarray, shards: int) -> List[slice]:
    """Contiguous message spans with roughly equal block totals."""
    total = int(blocks.sum())
    target = total / shards
    spans = []
    start = 0
    acc = 0
    for i, b in enumerate(blocks):
        acc += int(b)
        if acc >= target * (len(spans) + 1) and len(spans) < shards - 1:
            spans.append(slice(start, i + 1))
            start = i + 1
    spans.append(slice(start, len(blocks)))
    return [s for s in spans if s.stop > s.start]


def keystream_many_parallel(keys, nonces, blocks: np.ndarray) -> Optional[np.ndarray]:
    """Sharded multi-message keystream; ``None`` means "compute locally".

    Returns the same flat writable uint8 array as the in-process kernel
    (lane order is the concatenation order of ``keys``), or ``None`` when
    the pool is unavailable or sharding cannot help, in which case the
    caller falls back to the single-process path.
    """
    n = worker_count()
    if n < 2 or len(keys) < 2:
        return None
    spans = _split_spans(blocks, n)
    if len(spans) < 2:
        return None
    try:
        pool = _get_pool(n)
        futures = [
            pool.submit(
                _shard_keystream,
                [bytes(k) for k in keys[s]],
                [bytes(v) for v in nonces[s]],
                [int(b) for b in blocks[s]],
            )
            for s in spans
        ]
        parts = [f.result() for f in futures]
    except Exception:  # pragma: no cover - pool breakage is host-specific
        return None
    out = np.empty(int(blocks.sum()) * 64, dtype=np.uint8)
    offset = 0
    for part in parts:
        chunk = np.frombuffer(part, dtype=np.uint8)
        out[offset : offset + chunk.size] = chunk
        offset += chunk.size
    return out
