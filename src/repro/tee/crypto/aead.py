"""ChaCha20-Poly1305 AEAD construction (RFC 8439 section 2.8).

This is the secure-channel cipher for REX: once two enclaves have mutually
attested and derived a pairwise key (X25519 + HKDF), every subsequent
message -- raw rating triplets or serialized models -- crosses the
untrusted host and network only as AEAD ciphertext.  The associated data
binds each message to its (sender, receiver, sequence) header so the
untrusted relay cannot splice messages between channels undetected.
"""

from __future__ import annotations

import struct

from repro.tee.crypto.chacha20 import chacha20_block, chacha20_encrypt
from repro.tee.crypto.fastchacha import chacha20_xor
from repro.tee.crypto.poly1305 import poly1305_mac, poly1305_verify

#: Payloads at or above this size use the vectorized NumPy keystream.
_FAST_PATH_THRESHOLD = 256

__all__ = ["AeadError", "ChaCha20Poly1305", "TAG_LENGTH", "NONCE_LENGTH", "KEY_LENGTH"]

TAG_LENGTH = 16
NONCE_LENGTH = 12
KEY_LENGTH = 32


class AeadError(Exception):
    """Raised when AEAD decryption fails authentication.

    In the REX protocol this maps to "drop the message and distrust the
    channel": a failed tag means the ciphertext was forged, truncated, or
    replayed under the wrong nonce.
    """


def _pad16(data: bytes) -> bytes:
    """Zero-pad ``data`` to a 16-byte boundary for the MAC transcript."""
    remainder = len(data) % 16
    if remainder == 0:
        return b""
    return b"\x00" * (16 - remainder)


def _mac_data(aad: bytes, ciphertext: bytes) -> bytes:
    """Assemble the Poly1305 input: aad || pad || ct || pad || lengths."""
    return b"".join(
        (
            aad,
            _pad16(aad),
            ciphertext,
            _pad16(ciphertext),
            struct.pack("<Q", len(aad)),
            struct.pack("<Q", len(ciphertext)),
        )
    )


class ChaCha20Poly1305:
    """RFC 8439 AEAD cipher bound to a single 32-byte key.

    Examples
    --------
    >>> cipher = ChaCha20Poly1305(b"k" * 32)
    >>> ct = cipher.encrypt(b"\\x00" * 12, b"hello", b"header")
    >>> cipher.decrypt(b"\\x00" * 12, ct, b"header")
    b'hello'
    """

    def __init__(self, key: bytes):
        if len(key) != KEY_LENGTH:
            raise ValueError(f"key must be {KEY_LENGTH} bytes, got {len(key)}")
        self._key = key

    def _poly_key(self, nonce: bytes) -> bytes:
        """Derive the one-time Poly1305 key from block counter zero."""
        return chacha20_block(self._key, 0, nonce)[:32]

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt and authenticate; returns ciphertext || 16-byte tag."""
        if len(nonce) != NONCE_LENGTH:
            raise ValueError(f"nonce must be {NONCE_LENGTH} bytes")
        ciphertext = self._cipher(nonce, plaintext)
        tag = poly1305_mac(self._poly_key(nonce), _mac_data(aad, ciphertext))
        return ciphertext + tag

    def _cipher(self, nonce: bytes, data: bytes) -> bytes:
        """Keystream-XOR ``data``, picking the scalar or vectorized path."""
        if len(data) >= _FAST_PATH_THRESHOLD:
            return chacha20_xor(self._key, 1, nonce, data)
        return chacha20_encrypt(self._key, 1, nonce, data)

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes:
        """Verify the tag and decrypt; raises :class:`AeadError` on failure."""
        if len(nonce) != NONCE_LENGTH:
            raise ValueError(f"nonce must be {NONCE_LENGTH} bytes")
        if len(data) < TAG_LENGTH:
            raise AeadError("ciphertext shorter than the authentication tag")
        ciphertext, tag = data[:-TAG_LENGTH], data[-TAG_LENGTH:]
        if not poly1305_verify(self._poly_key(nonce), _mac_data(aad, ciphertext), tag):
            raise AeadError("authentication tag mismatch")
        return self._cipher(nonce, ciphertext)
