"""ChaCha20-Poly1305 AEAD construction (RFC 8439 section 2.8).

This is the secure-channel cipher for REX: once two enclaves have mutually
attested and derived a pairwise key (X25519 + HKDF), every subsequent
message -- raw rating triplets or serialized models -- crosses the
untrusted host and network only as AEAD ciphertext.  The associated data
binds each message to its (sender, receiver, sequence) header so the
untrusted relay cannot splice messages between channels undetected.

Fast-path structure (the seal/open pipeline is fused end to end):

- **One keystream generation per seal/open.**  The Poly1305 one-time key
  is keystream block 0 and the payload keystream starts at block 1, so
  both are requested as a single batch (:func:`~repro.tee.crypto.
  fastchacha.chacha20_seal_xor`) instead of one call for the key block
  and another for the payload.
- **Zero-copy MAC transcript.**  The Poly1305 input ``aad || pad || ct ||
  pad || lengths`` is never materialized: :func:`~repro.tee.crypto.
  poly1305.poly1305_aead_tag` walks the segments (memoryviews of the wire
  buffer) directly, eliminating the pad/join copies per message.
- **Measured dispatch.**  The scalar/vector crossover comes from
  :mod:`~repro.tee.crypto.tuning` (a measured threshold, overridable per
  deployment) instead of a hard-coded constant.

All wire bytes are bit-identical to the unfused construction; tests pin
both the RFC vectors and scalar/vector/fused equivalence.
"""

from __future__ import annotations

import hmac

from repro.tee.crypto.chacha20 import chacha20_blocks
from repro.tee.crypto.fastchacha import chacha20_seal_xor
from repro.tee.crypto.poly1305 import poly1305_aead_tag
from repro.tee.crypto.tuning import fast_path_threshold

__all__ = ["AeadError", "ChaCha20Poly1305", "TAG_LENGTH", "NONCE_LENGTH", "KEY_LENGTH"]

TAG_LENGTH = 16
NONCE_LENGTH = 12
KEY_LENGTH = 32


class AeadError(Exception):
    """Raised when AEAD decryption fails authentication.

    In the REX protocol this maps to "drop the message and distrust the
    channel": a failed tag means the ciphertext was forged, truncated, or
    replayed under the wrong nonce.
    """


def _xor_bytes(data, keystream: bytes) -> bytes:
    n = len(data)
    x = int.from_bytes(data, "little") ^ int.from_bytes(keystream[:n], "little")
    return x.to_bytes(n, "little")


class ChaCha20Poly1305:
    """RFC 8439 AEAD cipher bound to a single 32-byte key.

    Examples
    --------
    >>> cipher = ChaCha20Poly1305(b"k" * 32)
    >>> ct = cipher.encrypt(b"\\x00" * 12, b"hello", b"header")
    >>> cipher.decrypt(b"\\x00" * 12, ct, b"header")
    b'hello'
    """

    def __init__(self, key: bytes):
        if len(key) != KEY_LENGTH:
            raise ValueError(f"key must be {KEY_LENGTH} bytes, got {len(key)}")
        self._key = key

    def _seal_pipeline(self, nonce: bytes, data) -> tuple:
        """One fused keystream batch: returns ``(poly_key, data XOR ks)``.

        Block 0 keys Poly1305, blocks 1.. carry the payload (RFC 8439
        sections 2.6/2.8) -- generated together on either path.
        """
        if len(data) >= fast_path_threshold():
            return chacha20_seal_xor(self._key, nonce, data)
        stream = chacha20_blocks(self._key, 0, nonce, 1 + (len(data) + 63) // 64)
        return stream[:32], _xor_bytes(data, stream[64:])

    def encrypt(self, nonce: bytes, plaintext, aad=b"") -> bytes:
        """Encrypt and authenticate; returns ciphertext || 16-byte tag."""
        if len(nonce) != NONCE_LENGTH:
            raise ValueError(f"nonce must be {NONCE_LENGTH} bytes")
        poly_key, ciphertext = self._seal_pipeline(nonce, plaintext)
        return ciphertext + poly1305_aead_tag(poly_key, aad, ciphertext)

    def decrypt(self, nonce: bytes, data, aad=b"") -> bytes:
        """Verify the tag and decrypt; raises :class:`AeadError` on failure.

        ``data`` may be any bytes-like object (e.g. a memoryview of the
        framed wire buffer); the ciphertext and tag are consumed as
        zero-copy views.
        """
        if len(nonce) != NONCE_LENGTH:
            raise ValueError(f"nonce must be {NONCE_LENGTH} bytes")
        if len(data) < TAG_LENGTH:
            raise AeadError("ciphertext shorter than the authentication tag")
        view = memoryview(data)
        ciphertext, tag = view[:-TAG_LENGTH], view[-TAG_LENGTH:]
        # The open pipeline mirrors seal: the same single keystream batch
        # yields the Poly1305 key (block 0) and the payload keystream
        # (blocks 1..).  The candidate plaintext never leaves this frame
        # unless the tag verifies.
        poly_key, plaintext = self._seal_pipeline(nonce, ciphertext)
        expected = poly1305_aead_tag(poly_key, aad, ciphertext)
        if not hmac.compare_digest(expected, tag):
            raise AeadError("authentication tag mismatch")
        return plaintext
