"""ChaCha20-Poly1305 AEAD construction (RFC 8439 section 2.8).

This is the secure-channel cipher for REX: once two enclaves have mutually
attested and derived a pairwise key (X25519 + HKDF), every subsequent
message -- raw rating triplets or serialized models -- crosses the
untrusted host and network only as AEAD ciphertext.  The associated data
binds each message to its (sender, receiver, sequence) header so the
untrusted relay cannot splice messages between channels undetected.

Fast-path structure (the seal/open pipeline is fused end to end):

- **One keystream generation per seal/open.**  The Poly1305 one-time key
  is keystream block 0 and the payload keystream starts at block 1, so
  both are requested as a single batch (:func:`~repro.tee.crypto.
  fastchacha.chacha20_seal_xor`) instead of one call for the key block
  and another for the payload.
- **Zero-copy MAC transcript.**  The Poly1305 input ``aad || pad || ct ||
  pad || lengths`` is never materialized: :func:`~repro.tee.crypto.
  poly1305.poly1305_aead_tag` walks the segments (memoryviews of the wire
  buffer) directly, eliminating the pad/join copies per message.
- **Measured dispatch.**  The scalar/vector crossover comes from
  :mod:`~repro.tee.crypto.tuning` (a measured threshold, overridable per
  deployment) instead of a hard-coded constant.

All wire bytes are bit-identical to the unfused construction; tests pin
both the RFC vectors and scalar/vector/fused equivalence.
"""

from __future__ import annotations

import hmac

from repro.tee.crypto import backend as _backend
from repro.tee.crypto.chacha20 import chacha20_blocks
from repro.tee.crypto.fastchacha import chacha20_seal_xor, chacha20_seal_xor_many
from repro.tee.crypto.poly1305 import poly1305_aead_tag
from repro.tee.crypto.tuning import batch_path_threshold, fast_path_threshold

__all__ = [
    "AeadError",
    "ChaCha20Poly1305",
    "TAG_LENGTH",
    "NONCE_LENGTH",
    "KEY_LENGTH",
    "open_many",
    "seal_many",
    "seal_many_into",
]

TAG_LENGTH = 16
NONCE_LENGTH = 12
KEY_LENGTH = 32


class AeadError(Exception):
    """Raised when AEAD decryption fails authentication.

    In the REX protocol this maps to "drop the message and distrust the
    channel": a failed tag means the ciphertext was forged, truncated, or
    replayed under the wrong nonce.
    """


def _xor_bytes(data, keystream: bytes) -> bytes:
    n = len(data)
    x = int.from_bytes(data, "little") ^ int.from_bytes(keystream[:n], "little")
    return x.to_bytes(n, "little")


class ChaCha20Poly1305:
    """RFC 8439 AEAD cipher bound to a single 32-byte key.

    Examples
    --------
    >>> cipher = ChaCha20Poly1305(b"k" * 32)
    >>> ct = cipher.encrypt(b"\\x00" * 12, b"hello", b"header")
    >>> cipher.decrypt(b"\\x00" * 12, ct, b"header")
    b'hello'
    """

    def __init__(self, key: bytes):
        if len(key) != KEY_LENGTH:
            raise ValueError(f"key must be {KEY_LENGTH} bytes, got {len(key)}")
        self._key = key

    def _seal_pipeline(self, nonce: bytes, data) -> tuple:
        """One fused keystream batch: returns ``(poly_key, data XOR ks)``.

        Block 0 keys Poly1305, blocks 1.. carry the payload (RFC 8439
        sections 2.6/2.8) -- generated together on either path.
        """
        if len(data) >= fast_path_threshold():
            return chacha20_seal_xor(self._key, nonce, data)
        stream = chacha20_blocks(self._key, 0, nonce, 1 + (len(data) + 63) // 64)
        return stream[:32], _xor_bytes(data, stream[64:])

    def encrypt(self, nonce: bytes, plaintext, aad=b"") -> bytes:
        """Encrypt and authenticate; returns ciphertext || 16-byte tag."""
        if len(nonce) != NONCE_LENGTH:
            raise ValueError(f"nonce must be {NONCE_LENGTH} bytes")
        if _backend.aead_backend() == "native":
            return _backend.native_seal(self._key, nonce, plaintext, aad)
        poly_key, ciphertext = self._seal_pipeline(nonce, plaintext)
        return ciphertext + poly1305_aead_tag(poly_key, aad, ciphertext)

    def decrypt(self, nonce: bytes, data, aad=b"") -> bytes:
        """Verify the tag and decrypt; raises :class:`AeadError` on failure.

        ``data`` may be any bytes-like object (e.g. a memoryview of the
        framed wire buffer); the ciphertext and tag are consumed as
        zero-copy views.
        """
        if len(nonce) != NONCE_LENGTH:
            raise ValueError(f"nonce must be {NONCE_LENGTH} bytes")
        if len(data) < TAG_LENGTH:
            raise AeadError("ciphertext shorter than the authentication tag")
        if _backend.aead_backend() == "native":
            ok, plaintext = _backend.native_open(self._key, nonce, data, aad)
            if not ok:
                raise AeadError("authentication tag mismatch")
            return plaintext
        view = memoryview(data)
        ciphertext, tag = view[:-TAG_LENGTH], view[-TAG_LENGTH:]
        # The open pipeline mirrors seal: the same single keystream batch
        # yields the Poly1305 key (block 0) and the payload keystream
        # (blocks 1..).  The candidate plaintext never leaves this frame
        # unless the tag verifies.
        poly_key, plaintext = self._seal_pipeline(nonce, ciphertext)
        expected = poly1305_aead_tag(poly_key, aad, ciphertext)
        if not hmac.compare_digest(expected, tag):
            raise AeadError("authentication tag mismatch")
        return plaintext


def seal_many_into(requests, outs) -> None:
    """Seal a whole batch of messages into caller-provided frames.

    ``requests`` is a sequence of ``(cipher, nonce, plaintext, aad)``
    tuples -- one per message, each with its *own* cipher (channel key) --
    and ``outs[i]`` a writable buffer of exactly ``len(plaintext) +
    TAG_LENGTH`` bytes that receives ``ciphertext || tag`` in place
    (typically the sealed span of a preallocated wire frame, making the
    epoch's frames zero-copy end to end).

    Dispatch, in order:

    - **native** backend: one OpenSSL call per message (its fused AEAD is
      fast enough that cross-message batching cannot beat it);
    - **numpy** backend, aggregate >= :func:`batch_path_threshold` and
      more than one message: a single multi-message lane-kernel
      invocation generates every message's keystream at once, then
      Poly1305 runs per message over the in-frame ciphertext;
    - otherwise: the per-message scalar/vector pipeline.

    All three paths produce byte-identical wire output (RFC 8439 fixes
    it); tests pin the equivalence.
    """
    m = len(requests)
    if len(outs) != m:
        raise ValueError("outs must provide one frame per request")
    for (cipher, nonce, plaintext, _), out in zip(requests, outs):
        if len(nonce) != NONCE_LENGTH:
            raise ValueError(f"nonce must be {NONCE_LENGTH} bytes")
        if len(out) != len(plaintext) + TAG_LENGTH:
            raise ValueError("frame must hold ciphertext plus tag exactly")
    if m == 0:
        return

    if _backend.aead_backend() == "native":
        for (cipher, nonce, plaintext, aad), out in zip(requests, outs):
            sealed = _backend.native_seal(cipher._key, nonce, plaintext, aad)
            view = memoryview(out)
            view[:] = sealed
        return

    aggregate = sum(len(plaintext) for _, _, plaintext, _ in requests)
    if m > 1 and aggregate >= batch_path_threshold():
        ct_views = [memoryview(out)[: len(pt)] for (_, _, pt, _), out in zip(requests, outs)]
        lanes = [(cipher._key, nonce, pt) for cipher, nonce, pt, _ in requests]
        sealed = chacha20_seal_xor_many(lanes, outs=ct_views)
        for (poly_key, _), (_, _, _, aad), out, ct in zip(sealed, requests, outs, ct_views):
            memoryview(out)[len(ct) :] = poly1305_aead_tag(poly_key, aad, ct)
        return

    for (cipher, nonce, plaintext, aad), out in zip(requests, outs):
        view = memoryview(out)
        view[:] = cipher.encrypt(nonce, plaintext, aad)


def seal_many(requests) -> list:
    """Batch seal returning one ``ciphertext || tag`` bytes per request.

    Same dispatch as :func:`seal_many_into`; use the ``_into`` form when
    the sealed bytes belong inside a larger frame.
    """
    outs = [bytearray(len(pt) + TAG_LENGTH) for _, _, pt, _ in requests]
    seal_many_into(requests, outs)
    return [bytes(out) for out in outs]


def open_many(requests) -> list:
    """Batch verify-and-decrypt; returns one plaintext per request.

    ``requests`` is a sequence of ``(cipher, nonce, data, aad)`` tuples
    (``data`` = ``ciphertext || tag``, any bytes-like).  On the numpy
    backend a single lane-kernel invocation recovers every message's
    Poly1305 key and candidate plaintext; *all* tags are checked before
    any plaintext is released, and a single failure raises
    :class:`AeadError` naming the message index -- a batch is an epoch,
    and one forged frame poisons the epoch.
    """
    m = len(requests)
    if m == 0:
        return []
    for _, nonce, data, _ in requests:
        if len(nonce) != NONCE_LENGTH:
            raise ValueError(f"nonce must be {NONCE_LENGTH} bytes")
        if len(data) < TAG_LENGTH:
            raise AeadError("ciphertext shorter than the authentication tag")

    backend = _backend.aead_backend()
    aggregate = sum(len(data) - TAG_LENGTH for _, _, data, _ in requests)
    if backend == "numpy" and m > 1 and aggregate >= batch_path_threshold():
        views = [memoryview(data) for _, _, data, _ in requests]
        lanes = [
            (cipher._key, nonce, view[:-TAG_LENGTH])
            for (cipher, nonce, _, _), view in zip(requests, views)
        ]
        opened = chacha20_seal_xor_many(lanes)
        failures = []
        plaintexts = []
        for i, ((poly_key, plaintext), (_, _, _, aad), view) in enumerate(
            zip(opened, requests, views)
        ):
            expected = poly1305_aead_tag(poly_key, aad, view[:-TAG_LENGTH])
            if not hmac.compare_digest(expected, view[-TAG_LENGTH:]):
                failures.append(i)
            plaintexts.append(plaintext)
        if failures:
            raise AeadError(f"authentication tag mismatch at batch index {failures[0]}")
        return plaintexts

    plaintexts = []
    for i, (cipher, nonce, data, aad) in enumerate(requests):
        try:
            plaintexts.append(cipher.decrypt(nonce, data, aad))
        except AeadError:
            raise AeadError(f"authentication tag mismatch at batch index {i}") from None
    return plaintexts
