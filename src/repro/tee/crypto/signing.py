"""MAC-based signing keys modelling the SGX quoting/attestation key chain.

On real hardware, the quoting enclave signs quotes with a platform
attestation key whose authenticity is vouched for by Intel's DCAP
infrastructure.  We model that chain with HMAC-SHA-256 keys: a
:class:`SigningKey` is the platform's private attestation key, and the
corresponding :class:`VerifyKey` is what the DCAP-style verification
service (:class:`repro.tee.attestation.AttestationService`) distributes to
relying parties.

Using a MAC instead of real ECDSA changes nothing observable for the REX
protocol -- a verifier still cannot forge or validate quotes without the
right key material, and tampered quotes are still rejected -- while keeping
the substrate small.  (The Diffie-Hellman exchange, where actual asymmetry
matters for the protocol flow, *is* real: see
:mod:`repro.tee.crypto.x25519`.)
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass, field

__all__ = ["SigningKey", "VerifyKey", "SIGNATURE_LENGTH"]

SIGNATURE_LENGTH = 32


@dataclass(frozen=True)
class VerifyKey:
    """Verification half of a signing key pair."""

    data: bytes = field(repr=False)

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Return ``True`` iff ``signature`` is valid for ``message``."""
        expected = hmac.new(self.data, message, hashlib.sha256).digest()
        return hmac.compare_digest(expected, signature)

    def key_id(self) -> str:
        """Stable identifier for this key (hash of the key material)."""
        return hashlib.sha256(b"verify-key:" + self.data).hexdigest()[:16]


@dataclass(frozen=True)
class SigningKey:
    """Signing half of the pair; holds the same secret as its VerifyKey.

    The symmetric construction means possession of the VerifyKey would also
    allow signing; in the simulation the VerifyKey is only ever handed to
    the trusted attestation service, mirroring how DCAP keeps the
    provisioning certification key chain internal to Intel's service.
    """

    data: bytes = field(repr=False)

    @classmethod
    def generate(cls) -> "SigningKey":
        # Sanctioned entropy shim: real keygen for ad-hoc use outside
        # seeded experiments; every experiment path uses from_seed().
        return cls(os.urandom(32))  # repro-lint: disable=REX-D003

    @classmethod
    def from_seed(cls, seed: bytes) -> "SigningKey":
        """Deterministic key for reproducible simulations."""
        return cls(hashlib.sha256(b"signing-seed:" + seed).digest())

    def sign(self, message: bytes) -> bytes:
        """Produce a 32-byte signature over ``message``."""
        return hmac.new(self.data, message, hashlib.sha256).digest()

    def verify_key(self) -> VerifyKey:
        return VerifyKey(self.data)
