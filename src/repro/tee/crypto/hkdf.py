"""HKDF key derivation (RFC 5869) over HMAC-SHA-256.

After the X25519 exchange, the raw shared secret is never used directly as
a cipher key: both enclaves run it through HKDF with a transcript-bound
info string (the two measurements and node identities) so each attested
pair gets an independent channel key, and a compromise of one derived key
reveals nothing about the others.
"""

from __future__ import annotations

import hashlib
import hmac

__all__ = ["hkdf_extract", "hkdf_expand", "hkdf"]

_HASH_LENGTH = 32  # SHA-256


def hkdf_extract(salt: bytes, input_key_material: bytes) -> bytes:
    """Extract step: PRK = HMAC(salt, IKM)."""
    if not salt:
        salt = b"\x00" * _HASH_LENGTH
    return hmac.new(salt, input_key_material, hashlib.sha256).digest()


def hkdf_expand(pseudo_random_key: bytes, info: bytes, length: int) -> bytes:
    """Expand step: derive ``length`` bytes of output keying material."""
    if length > 255 * _HASH_LENGTH:
        raise ValueError("HKDF output length too large")
    if len(pseudo_random_key) < _HASH_LENGTH:
        raise ValueError("PRK must be at least one hash length")
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac.new(
            pseudo_random_key, previous + info + bytes([counter]), hashlib.sha256
        ).digest()
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def hkdf(input_key_material: bytes, *, salt: bytes = b"", info: bytes = b"", length: int = 32) -> bytes:
    """One-shot extract-then-expand convenience wrapper."""
    return hkdf_expand(hkdf_extract(salt, input_key_material), info, length)
