"""SGX attestation chain: reports, quotes, quoting enclave, DCAP verifier.

Implements the flow from paper Sections II-D and III-A:

1. The *target enclave* produces a :class:`Report` -- its measurement plus
   a 64-byte *user data* field -- authenticated with a key known only to
   the local platform (here: a platform-local MAC key).
2. The platform's :class:`QuotingEnclave` locally verifies the report and
   converts it to a :class:`Quote`, signed with the platform attestation
   key.
3. The remote verifier passes the quote to the DCAP-style
   :class:`AttestationService`, which confirms or refutes the signature.
4. The verifier compares the quote's measurement with its *own* (REX
   demands byte-identical trusted code on every node) and, on success,
   combines the X25519 public key carried in the user-data field with its
   private key to derive the pairwise channel secret.

Step 4 is packaged as :class:`MutualAttestation`, the per-peer state
machine each REX enclave runs.
"""

from __future__ import annotations

import hashlib
import hmac
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.tee.crypto.hkdf import hkdf
from repro.tee.crypto.signing import SigningKey, VerifyKey
from repro.tee.crypto.x25519 import X25519PrivateKey, X25519PublicKey
from repro.tee.errors import MeasurementMismatch, QuoteVerificationError
from repro.tee.measurement import Measurement

__all__ = [
    "USER_DATA_LENGTH",
    "Report",
    "Quote",
    "QuotingEnclave",
    "AttestationService",
    "MutualAttestation",
    "derive_channel_key",
]

#: Size of the quote's user-data field (SGX report_data is 64 bytes).
USER_DATA_LENGTH = 64

_REPORT_DOMAIN = b"sgx-report-v1:"
_QUOTE_DOMAIN = b"sgx-quote-v1:"


@dataclass(frozen=True)
class Report:
    """A locally-verifiable enclave report.

    ``local_mac`` binds the report to the platform that produced it: only
    enclaves on the same platform (here, the quoting enclave) hold the key
    needed to check it, mirroring SGX local attestation.
    """

    measurement: Measurement
    user_data: bytes
    platform_id: str
    local_mac: bytes = field(repr=False)

    def __post_init__(self) -> None:
        if len(self.user_data) != USER_DATA_LENGTH:
            raise ValueError(f"user_data must be {USER_DATA_LENGTH} bytes")

    def signing_payload(self) -> bytes:
        """The byte string covered by the local MAC / quote signature."""
        pid = self.platform_id.encode()
        return b"".join(
            (
                _REPORT_DOMAIN,
                self.measurement.digest,
                self.user_data,
                struct.pack("<H", len(pid)),
                pid,
            )
        )


@dataclass(frozen=True)
class Quote:
    """A remotely-verifiable quote: report body + attestation signature."""

    measurement: Measurement
    user_data: bytes
    platform_id: str
    signature: bytes = field(repr=False)

    def signing_payload(self) -> bytes:
        pid = self.platform_id.encode()
        return b"".join(
            (
                _QUOTE_DOMAIN,
                self.measurement.digest,
                self.user_data,
                struct.pack("<H", len(pid)),
                pid,
            )
        )

    def to_bytes(self) -> bytes:
        """Wire encoding (carried in clear text during attestation)."""
        payload = self.signing_payload()
        return struct.pack("<I", len(payload)) + payload + self.signature

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Quote":
        (plen,) = struct.unpack_from("<I", raw, 0)
        payload = raw[4 : 4 + plen]
        signature = raw[4 + plen :]
        if not payload.startswith(_QUOTE_DOMAIN):
            raise ValueError("not a quote payload")
        body = payload[len(_QUOTE_DOMAIN) :]
        measurement = Measurement(body[:32])
        user_data = body[32 : 32 + USER_DATA_LENGTH]
        (pid_len,) = struct.unpack_from("<H", body, 32 + USER_DATA_LENGTH)
        pid = body[32 + USER_DATA_LENGTH + 2 : 32 + USER_DATA_LENGTH + 2 + pid_len]
        return cls(measurement, user_data, pid.decode(), signature)


class QuotingEnclave:
    """The platform service converting local reports into signed quotes.

    One instance exists per :class:`~repro.tee.enclave.Platform`.  It holds
    both the platform-local report key (shared with enclaves on the same
    machine) and the attestation signing key whose verify half is
    registered with the :class:`AttestationService`.
    """

    def __init__(self, platform_id: str, *, seed: Optional[bytes] = None):
        self.platform_id = platform_id
        seed = seed if seed is not None else platform_id.encode()
        self._report_key = hashlib.sha256(b"platform-report-key:" + seed).digest()
        self._attestation_key = SigningKey.from_seed(b"platform-attestation:" + seed)

    def report_key(self) -> bytes:
        """Platform-local key handed to enclaves created on this platform."""
        return self._report_key

    def verify_key(self) -> VerifyKey:
        """The verification key to register with the attestation service."""
        return self._attestation_key.verify_key()

    def make_report_mac(self, payload: bytes) -> bytes:
        """Used by local enclaves to authenticate their reports."""
        return hmac.new(self._report_key, payload, hashlib.sha256).digest()

    def quote(self, report: Report) -> Quote:
        """Locally verify ``report`` and sign it into a quote.

        Raises
        ------
        QuoteVerificationError
            If the report was not produced on this platform.
        """
        if report.platform_id != self.platform_id:
            raise QuoteVerificationError(
                f"report from platform {report.platform_id!r} presented to "
                f"quoting enclave of {self.platform_id!r}"
            )
        expected = self.make_report_mac(report.signing_payload())
        if not hmac.compare_digest(expected, report.local_mac):
            raise QuoteVerificationError("report local MAC invalid")
        quote = Quote(
            measurement=report.measurement,
            user_data=report.user_data,
            platform_id=report.platform_id,
            signature=b"",
        )
        signature = self._attestation_key.sign(quote.signing_payload())
        return Quote(report.measurement, report.user_data, report.platform_id, signature)


class AttestationService:
    """DCAP-style verification service.

    Genuine platforms register their attestation verify keys at
    provisioning time; relying parties then ask the service to confirm or
    refute quote signatures (paper Section II-D).  A single service
    instance is shared by a whole simulated deployment.
    """

    def __init__(self) -> None:
        self._platforms: Dict[str, VerifyKey] = {}

    def register_platform(self, platform_id: str, verify_key: VerifyKey) -> None:
        if platform_id in self._platforms:
            raise ValueError(f"platform {platform_id!r} already registered")
        self._platforms[platform_id] = verify_key

    @property
    def registered_platforms(self) -> int:
        return len(self._platforms)

    def verify(self, quote: Quote) -> bool:
        """Return ``True`` iff the quote was signed by a genuine platform."""
        key = self._platforms.get(quote.platform_id)
        if key is None:
            return False
        return key.verify(quote.signing_payload(), quote.signature)

    def verify_or_raise(self, quote: Quote) -> None:
        if not self.verify(quote):
            raise QuoteVerificationError(
                f"quote from platform {quote.platform_id!r} failed verification"
            )


def derive_channel_key(
    shared_secret: bytes,
    local_id: str,
    peer_id: str,
    measurement: Measurement,
) -> bytes:
    """Derive the pairwise AEAD key from the raw X25519 secret.

    The info string is symmetric in the two node identities (sorted), so
    both ends derive the same key, and it binds the key to the attested
    measurement: a key derived with a different code identity would never
    match.
    """
    first, second = sorted((local_id, peer_id))
    info = b"rex-channel|" + first.encode() + b"|" + second.encode() + b"|" + measurement.digest
    return hkdf(shared_secret, salt=b"rex-attestation-v1", info=info, length=32)


class MutualAttestation:
    """Per-peer attestation state machine run *inside* each enclave.

    Usage from trusted code::

        ma = MutualAttestation(node_id, measurement, service)
        quote_bytes = ma.local_quote(make_report)   # send to the peer
        key = ma.process_peer_quote(peer_id, their_quote_bytes)

    ``make_report`` is the enclave's report factory (it embeds this
    attestor's X25519 public key in the user-data field).  After both sides
    have processed each other's quotes they hold the same channel key.
    """

    def __init__(
        self,
        node_id: str,
        measurement: Measurement,
        service: AttestationService,
        *,
        key_seed: Optional[bytes] = None,
    ):
        self.node_id = node_id
        self.measurement = measurement
        self._service = service
        if key_seed is not None:
            self._dh_key = X25519PrivateKey.from_seed(key_seed)
        else:
            self._dh_key = X25519PrivateKey.generate()
        self._channel_keys: Dict[str, bytes] = {}

    def user_data(self) -> bytes:
        """The 64-byte field for the quote: X25519 pubkey + zero padding."""
        pub = self._dh_key.public_key().data
        return pub + b"\x00" * (USER_DATA_LENGTH - len(pub))

    def process_peer_quote(self, peer_id: str, quote: Quote) -> bytes:
        """Verify the peer's quote and derive the pairwise channel key.

        Raises
        ------
        QuoteVerificationError
            If the DCAP service refutes the quote signature.
        MeasurementMismatch
            If the peer enclave runs different trusted code.
        """
        self._service.verify_or_raise(quote)
        if quote.measurement != self.measurement:
            raise MeasurementMismatch(
                f"peer {peer_id!r} measurement {quote.measurement.short()} != "
                f"expected {self.measurement.short()}"
            )
        peer_pub = X25519PublicKey(quote.user_data[:32])
        secret = self._dh_key.exchange(peer_pub)
        key = derive_channel_key(secret, self.node_id, peer_id, self.measurement)
        self._channel_keys[peer_id] = key
        return key

    def forge_identity_key(self, alias_id: str, peer_id: str, peer_pubkey: bytes) -> bytes:
        """Channel key a *compromised* participant derives for a fake alias.

        Attack-simulation helper (sybil persona).  A quote binds the DH
        public key to the enclave's *code* identity, not to which peer
        presents it, so a participant replaying its own valid quote under
        ``alias_id`` can equally derive the channel key the victim
        ``peer_id`` will compute for that alias: the same DH secret fed
        through the alias-sorted info string.  The defense lives at the
        receiver -- quote pinning rejects a public key already pinned to
        a different identity -- not in the key schedule.
        """
        secret = self._dh_key.exchange(X25519PublicKey(bytes(peer_pubkey)))
        return derive_channel_key(secret, alias_id, peer_id, self.measurement)

    def is_attested(self, peer_id: str) -> bool:
        return peer_id in self._channel_keys

    def channel_key(self, peer_id: str) -> bytes:
        return self._channel_keys[peer_id]

    @property
    def attested_peers(self) -> int:
        return len(self._channel_keys)
