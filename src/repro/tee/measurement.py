"""Enclave measurement (MRENCLAVE equivalent).

On SGX hardware, the measurement is a SHA-256 digest accumulated by the
processor over every page added to the enclave at build time -- initial
code, data and security attributes.  Any change to the trusted code yields
a different measurement, which is what lets REX nodes insist that peers run
*exactly* the same binary (Section III-A: "this expected value must be
equal to the checker's own measurement").

Here the trusted code is a Python class; we measure a stable identity for
it: the fully-qualified class name plus the source code of the class if it
can be retrieved, plus explicit attribute bytes.  Editing the trusted
class therefore changes the measurement, exactly like rebuilding an SGX
enclave binary would.
"""

from __future__ import annotations

import hashlib
import inspect
from dataclasses import dataclass

__all__ = ["Measurement", "measure_code", "measure_class"]

_DOMAIN = b"sgx-mrenclave-v1:"


@dataclass(frozen=True)
class Measurement:
    """A 32-byte enclave identity digest."""

    digest: bytes

    def __post_init__(self) -> None:
        if len(self.digest) != 32:
            raise ValueError("measurement must be a 32-byte digest")

    def hex(self) -> str:
        return self.digest.hex()

    def short(self) -> str:
        """Abbreviated form for logs and reprs."""
        return self.digest.hex()[:12]

    def __bytes__(self) -> bytes:  # pragma: no cover - trivial
        return self.digest


def measure_code(code: bytes, attributes: bytes = b"") -> Measurement:
    """Measure raw trusted code bytes plus security attributes."""
    h = hashlib.sha256()
    h.update(_DOMAIN)
    h.update(len(code).to_bytes(8, "little"))
    h.update(code)
    h.update(attributes)
    return Measurement(h.digest())


def measure_class(trusted_class: type, attributes: bytes = b"") -> Measurement:
    """Measure a trusted-application class.

    Uses the class source when available (so code edits change the
    measurement, like an SGX rebuild would) and falls back to the
    qualified name for classes defined interactively.
    """
    identity = f"{trusted_class.__module__}.{trusted_class.__qualname__}".encode()
    try:
        source = inspect.getsource(trusted_class).encode()
    except (OSError, TypeError):
        source = b""
    return measure_code(identity + b"\x00" + source, attributes)
