"""Enclave page cache (EPC) model.

SGX v1 machines of the paper's generation have a 128 MiB EPC of which only
93.5 MiB is available to enclaves (the rest holds metadata); this budget is
shared by *all* enclaves on a machine (the paper runs 2 REX processes per
SGX server).  When the resident trusted working set exceeds the enclave's
EPC share, the SGX driver evicts pages -- each eviction/reload involves
re-encryption and integrity checks and costs microseconds, which is why the
paper's model-sharing runs (working sets up to 204 MiB) see up to 135%
slowdown while REX's small data stores stay near-native (Table IV, Fig. 7).

This module models that behaviour: given a resident set and the bytes a
stage touches, it estimates page faults with a uniform-reuse approximation
(every touched page misses with probability ``1 - epc_share/resident``
once the resident set overflows the share).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PAGE_SIZE", "EpcModel"]

#: SGX pages are standard 4 KiB pages.
PAGE_SIZE = 4096

MIB = float(1024 * 1024)


@dataclass(frozen=True)
class EpcModel:
    """Per-machine EPC capacity model.

    Parameters
    ----------
    total_mib:
        Physical EPC size (128 MiB on the paper's Xeon E-2288G servers).
    usable_mib:
        EPC available to enclaves after metadata (93.5 MiB, following the
        SGX-aware orchestration measurements the paper cites).
    enclaves_per_machine:
        How many enclaves share the EPC; the paper runs 2 per server.
    """

    total_mib: float = 128.0
    usable_mib: float = 93.5
    enclaves_per_machine: int = 1

    def __post_init__(self) -> None:
        if self.usable_mib > self.total_mib:
            raise ValueError("usable EPC cannot exceed total EPC")
        if self.usable_mib <= 0:
            raise ValueError("usable EPC must be positive")
        if self.enclaves_per_machine < 1:
            raise ValueError("at least one enclave per machine")

    @property
    def usable_bytes(self) -> float:
        return self.usable_mib * MIB

    @property
    def share_bytes(self) -> float:
        """EPC bytes available to one enclave (equal split)."""
        return self.usable_bytes / self.enclaves_per_machine

    def overcommit_ratio(self, resident_bytes: float) -> float:
        """Resident set over EPC share; > 1 means paging is active."""
        return resident_bytes / self.share_bytes

    def miss_probability(self, resident_bytes: float) -> float:
        """Probability a touched page is not EPC-resident.

        Uniform-reuse approximation: with a resident set of R bytes and a
        share of E bytes, each touch hits a cached page with probability
        E/R once R > E, so the miss probability is ``max(0, 1 - E/R)``.
        """
        if resident_bytes <= self.share_bytes:
            return 0.0
        return 1.0 - self.share_bytes / resident_bytes

    def page_faults(self, touched_bytes: float, resident_bytes: float) -> float:
        """Expected EPC page faults for a stage touching ``touched_bytes``.

        Fractional fault counts are fine: the consumer multiplies by a
        per-fault cost, so this is an expected-value model.
        """
        if touched_bytes < 0:
            raise ValueError("touched_bytes must be non-negative")
        return (touched_bytes / PAGE_SIZE) * self.miss_probability(resident_bytes)
