"""SGX execution cost model.

The paper reports wall-clock on two generations of Xeon servers; we report
simulated time instead, produced by charging each counted unit of work a
calibrated cost.  This module owns the *SGX-specific* charges; the generic
compute/network charges live in :mod:`repro.sim.time_model`.

The observable SGX effects the paper identifies (Sections II-C and IV-D):

1. **Transitions** -- each ecall/ocall crosses the boundary with TLB
   flushes, cryptographic checks and memory copies: ~8 us per crossing on
   SGX v1 hardware, plus a per-byte marshalling cost.
2. **Memory encryption** -- enclave loads/stores go through the memory
   encryption engine; hot loops over large working sets run a few tens of
   percent slower than native.
3. **EPC paging** -- once the resident set exceeds the enclave's EPC
   share, evicted pages must be re-encrypted/integrity-checked on reload,
   ~14 us per fault; this dominates the paper's 91-135% MS overheads.
4. **The REX sharing anomaly** -- the paper found REX's *share* step to be
   slightly *faster* under SGX than native, because enclaves get all pages
   at initialization while native asks the OS on demand; we model this as
   a per-fresh-page allocation charge applied only to the native run.

All constants are expressed in seconds and are deliberately simple,
documented numbers: every reported ratio then emerges from counted work
(bytes, crossings, faults), not from baked-in answers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tee.epc import PAGE_SIZE, EpcModel

__all__ = ["SgxCostModel", "NATIVE_COST_MODEL", "SGX1_COST_MODEL"]


@dataclass(frozen=True)
class SgxCostModel:
    """Charges for SGX-specific work; a disabled model charges ~nothing.

    Parameters
    ----------
    enabled:
        ``False`` models a native (no-SGX) build of the same code base.
    transition_cost_s:
        Per ecall/ocall crossing (TLB flush + checks), SGX v1 ballpark.
    marshalling_cost_s_per_byte:
        Copy in/out of enclave memory for call arguments.
    aead_cost_s_per_byte:
        Encrypt/decrypt + MAC of every message payload. Charged on both the
        SGX run (enclave crypto) and -- at zero -- the native run, whose
        transmissions are plaintext (paper Section IV-D).
    mee_slowdown:
        Multiplier (>= 1) on memory-bound compute inside the enclave,
        modelling the memory encryption engine on cache misses.
    page_fault_cost_s:
        EWB eviction + reload of one 4 KiB EPC page.
    native_page_alloc_cost_s:
        On-demand page allocation syscall cost charged to *native* runs in
        allocation-heavy steps (the share-step anomaly above).
    """

    enabled: bool = True
    transition_cost_s: float = 8e-6
    marshalling_cost_s_per_byte: float = 4e-10
    aead_cost_s_per_byte: float = 8e-10
    mee_slowdown: float = 1.12
    page_fault_cost_s: float = 14e-6
    native_page_alloc_cost_s: float = 2.5e-6
    paging_compute_coefficient: float = 1.4

    def transition_time(self, crossings: int, marshalled_bytes: int = 0) -> float:
        """Time spent entering/leaving the enclave."""
        if not self.enabled:
            return 0.0
        return crossings * self.transition_cost_s + marshalled_bytes * self.marshalling_cost_s_per_byte

    def crypto_time(self, payload_bytes: float) -> float:
        """AEAD cost for a message payload (zero for native plaintext)."""
        if not self.enabled:
            return 0.0
        return payload_bytes * self.aead_cost_s_per_byte

    def compute_multiplier(self, resident_bytes: float, epc: EpcModel) -> float:
        """Slowdown factor for enclave compute over a resident set.

        The MEE multiplier always applies; past EPC overcommit the factor
        grows with the miss probability so that compute over a 2x
        overcommitted set pays roughly the paging-bound penalty the paper
        measures (Table IV: 91-135% for MS at 15k users).
        """
        if not self.enabled:
            return 1.0
        miss = epc.miss_probability(resident_bytes)
        # Compute interleaves arithmetic with touches of the resident set;
        # only the touch fraction stalls on reloads, so the penalty scales
        # with the miss probability times an empirical coefficient rather
        # than the raw fault-to-touch cost ratio.
        return self.mee_slowdown * (1.0 + self.paging_compute_coefficient * miss)

    def paging_time(self, touched_bytes: float, resident_bytes: float, epc: EpcModel) -> float:
        """Explicit paging charge for data-movement stages (merge/share)."""
        if not self.enabled:
            return 0.0
        return epc.page_faults(touched_bytes, resident_bytes) * self.page_fault_cost_s

    def native_alloc_time(self, fresh_bytes: float) -> float:
        """On-demand allocation charge; only the *native* build pays it."""
        if self.enabled:
            return 0.0
        return (fresh_bytes / PAGE_SIZE) * self.native_page_alloc_cost_s


#: Native build of the same code base (plaintext I/O, no enclave).
NATIVE_COST_MODEL = SgxCostModel(enabled=False)

#: SGX v1 defaults matching the paper's Xeon E-2288G testbed era.
SGX1_COST_MODEL = SgxCostModel(enabled=True)
