"""Software enclave model: trusted/untrusted boundary, ecalls and ocalls.

The REX implementation splits the application exactly as SGX requires
(paper Sections II-C and III-B): disk and network I/O stay in untrusted
mode, while the training data store, the model, the attestation secrets and
the protocol logic live inside the enclave.  The only crossings are

- **ecalls** -- ``ecall_init`` and ``ecall_input`` in the paper's
  Algorithm 2 -- entering the enclave from the host, and
- **ocalls** -- proxied I/O (sending a ciphertext to the network) leaving
  it.

This module enforces that split in Python.  A :class:`TrustedApp` subclass
is the enclave code; the host can only reach it through
:meth:`Enclave.ecall`, and trusted code can only reach the outside through
:meth:`EnclaveContext.ocall` against handlers the host registered.  Every
crossing is counted (with marshalled byte volume) so the SGX cost model can
charge realistic transition overheads, and all trusted allocations are
tracked in :class:`TrustedMemory` so the EPC model can detect overcommit.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Set

from repro.obs import MetricsRegistry
from repro.tee.attestation import (
    USER_DATA_LENGTH,
    AttestationService,
    QuotingEnclave,
    Quote,
    Report,
)
from repro.tee.epc import EpcModel
from repro.tee.errors import BoundaryViolation, EnclaveError, UnknownEcall, UnknownOcall
from repro.tee.measurement import Measurement, measure_class

__all__ = [
    "ecall",
    "TrustedMemory",
    "TransitionCounters",
    "EnclaveContext",
    "TrustedApp",
    "Enclave",
    "Platform",
]


def ecall(method: Callable) -> Callable:
    """Mark a :class:`TrustedApp` method as an enclave entry point."""
    method.__is_ecall__ = True
    return method


def _marshalled_size(value: Any, _seen: Optional[Set[int]] = None) -> int:
    """Approximate bytes crossing the boundary for one argument.

    Containers (list/tuple/set/dict) and dataclass payloads -- e.g. an
    ``EpochStats`` leaving through ``report_stats``, or a config riding
    in the ``ecall_init`` dict -- are measured recursively, so nested
    structures of arrays charge their full marshalled volume instead of
    a flat per-object default.  ``_seen`` guards against reference
    cycles; each shared object is charged once, as a copying marshaller
    would serialize it once per crossing.
    """
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode())
    if isinstance(value, (int, float, bool)) or value is None:
        return 8
    if _seen is None:
        _seen = set()
    if id(value) in _seen:
        return 0
    _seen.add(id(value))
    if isinstance(value, (list, tuple, set, frozenset)):
        return sum(_marshalled_size(v, _seen) for v in value)
    if isinstance(value, dict):
        return sum(
            _marshalled_size(k, _seen) + _marshalled_size(v, _seen)
            for k, v in value.items()
        )
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return sum(
            _marshalled_size(getattr(value, field.name), _seen)
            for field in dataclasses.fields(value)
        )
    return 64  # opaque object reference; negligible either way


class TrustedMemory:
    """Accounting of enclave-resident heap allocations.

    Trusted code registers its long-lived buffers (training-data store,
    model parameters, crypto state) under labels; the EPC model reads
    :attr:`resident_bytes` to decide whether paging is active.  This is an
    accounting structure, not an allocator -- the actual objects live on
    the ordinary Python heap.
    """

    def __init__(self) -> None:
        self._allocations: Dict[str, int] = {}
        self.peak_bytes: int = 0

    def set(self, label: str, nbytes: int) -> None:
        """Create or resize the allocation tracked under ``label``."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        self._allocations[label] = int(nbytes)
        self.peak_bytes = max(self.peak_bytes, self.resident_bytes)

    def add(self, label: str, nbytes: int) -> None:
        """Grow an allocation in place (e.g. the raw-data store)."""
        self.set(label, self._allocations.get(label, 0) + int(nbytes))

    def free(self, label: str) -> None:
        self._allocations.pop(label, None)

    def get(self, label: str) -> int:
        return self._allocations.get(label, 0)

    @property
    def resident_bytes(self) -> int:
        return sum(self._allocations.values())

    def breakdown(self) -> Dict[str, int]:
        """Copy of the per-label allocation map, for reports."""
        return dict(self._allocations)


@dataclass
class TransitionCounters:
    """Counts of boundary crossings and the bytes marshalled across them."""

    ecalls: int = 0
    ocalls: int = 0
    ecall_bytes: int = 0
    ocall_bytes: int = 0

    def snapshot(self) -> "TransitionCounters":
        return TransitionCounters(self.ecalls, self.ocalls, self.ecall_bytes, self.ocall_bytes)

    def delta(self, earlier: "TransitionCounters") -> "TransitionCounters":
        """Crossings since ``earlier`` (used for per-stage accounting)."""
        return TransitionCounters(
            self.ecalls - earlier.ecalls,
            self.ocalls - earlier.ocalls,
            self.ecall_bytes - earlier.ecall_bytes,
            self.ocall_bytes - earlier.ocall_bytes,
        )


class EnclaveContext:
    """The view of the world available to trusted code.

    Deliberately narrow: trusted code can allocate tracked memory, make
    ocalls, produce attestation reports and read its own measurement.
    There is no handle back to the host, the platform, or the network.
    """

    def __init__(self, enclave: "Enclave"):
        self._enclave = enclave
        self.memory = TrustedMemory()

    @property
    def metrics(self) -> Optional[MetricsRegistry]:
        """The shared observability registry, when the host wired one."""
        return self._enclave.metrics

    @property
    def measurement(self) -> Measurement:
        return self._enclave.measurement

    @property
    def enclave_id(self) -> str:
        return self._enclave.enclave_id

    def ocall(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Proxy an operation to the untrusted host (I/O leaves here)."""
        return self._enclave._dispatch_ocall(name, args, kwargs)

    def create_report(self, user_data: bytes) -> Report:
        """Produce a locally-verifiable report carrying ``user_data``."""
        if len(user_data) > USER_DATA_LENGTH:
            raise ValueError("user_data exceeds the report field size")
        user_data = user_data + b"\x00" * (USER_DATA_LENGTH - len(user_data))
        return self._enclave._platform_report(user_data)

    def attestation_service(self) -> AttestationService:
        """Verification collateral for checking peer quotes.

        On hardware this corresponds to the cached DCAP collateral the
        verifier uses; handing trusted code the service object models
        that read-only collateral, not a capability to the outside.
        """
        return self._enclave._attestation_service


class TrustedApp:
    """Base class for enclave-resident applications.

    Subclasses define entry points with the :func:`ecall` decorator and
    receive an :class:`EnclaveContext` as ``self.ctx``.  Anything else --
    sockets, files, the host object -- is out of reach by construction.
    """

    def __init__(self, ctx: EnclaveContext):
        self.ctx = ctx


class Enclave:
    """One enclave instance living on a :class:`Platform`.

    The host interacts exclusively via :meth:`ecall` and
    :meth:`register_ocall`; the enclave's internals (``_app``) are private.
    """

    def __init__(
        self,
        platform: "Platform",
        trusted_class: type,
        enclave_id: str,
        attestation_service: AttestationService,
        *,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if not issubclass(trusted_class, TrustedApp):
            raise EnclaveError("trusted code must subclass TrustedApp")
        self.platform = platform
        self.enclave_id = enclave_id
        self.measurement = measure_class(trusted_class)
        self.counters = TransitionCounters()
        self.metrics = metrics
        self._attestation_service = attestation_service
        self._ocall_handlers: Dict[str, Callable] = {}
        self._context = EnclaveContext(self)
        self._in_enclave = False
        self._app = trusted_class(self._context)
        self._ecalls = {
            name: getattr(self._app, name)
            for name in dir(trusted_class)
            if getattr(getattr(trusted_class, name), "__is_ecall__", False)
        }

    @property
    def memory(self) -> TrustedMemory:
        return self._context.memory

    @property
    def exported_ecalls(self) -> tuple:
        return tuple(sorted(self._ecalls))

    def register_ocall(self, name: str, handler: Callable) -> None:
        """Host-side registration of an ocall proxy (e.g. network send)."""
        self._ocall_handlers[name] = handler

    def _count_violation(self, kind: str) -> None:
        """Record a refused boundary crossing in the shared registry."""
        if self.metrics is not None:
            self.metrics.counter(
                "tee.enclave.violations", enclave=self.enclave_id, kind=kind
            ).inc()

    def ecall(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Enter the enclave through a named entry point."""
        handler = self._ecalls.get(name)
        if handler is None:
            self._count_violation("unknown_ecall")
            raise UnknownEcall(f"enclave {self.enclave_id!r} exports no ecall {name!r}")
        crossing_bytes = _marshalled_size(args) + _marshalled_size(kwargs)
        self.counters.ecalls += 1
        self.counters.ecall_bytes += crossing_bytes
        if self.metrics is not None:
            self.metrics.counter("tee.enclave.ecalls", enclave=self.enclave_id).inc()
            self.metrics.counter("tee.enclave.ecall.bytes", enclave=self.enclave_id).inc(
                crossing_bytes
            )
        self._in_enclave = True
        try:
            return handler(*args, **kwargs)
        finally:
            self._in_enclave = False
            if self.metrics is not None:
                self.metrics.gauge(
                    "tee.enclave.resident.bytes", enclave=self.enclave_id
                ).set(self.memory.resident_bytes)

    def _dispatch_ocall(self, name: str, args: tuple, kwargs: dict) -> Any:
        if not self._in_enclave:
            self._count_violation("ocall_outside_enclave")
            raise BoundaryViolation("ocall attempted from outside the enclave")
        handler = self._ocall_handlers.get(name)
        if handler is None:
            self._count_violation("unknown_ocall")
            raise UnknownOcall(f"host registered no ocall {name!r}")
        crossing_bytes = _marshalled_size(args) + _marshalled_size(kwargs)
        self.counters.ocalls += 1
        self.counters.ocall_bytes += crossing_bytes
        if self.metrics is not None:
            self.metrics.counter("tee.enclave.ocalls", enclave=self.enclave_id).inc()
            self.metrics.counter("tee.enclave.ocall.bytes", enclave=self.enclave_id).inc(
                crossing_bytes
            )
        # Untrusted code runs outside the enclave; re-entering through a
        # nested ecall is not modelled (REX does not need it).
        self._in_enclave = False
        try:
            return handler(*args, **kwargs)
        finally:
            self._in_enclave = True

    def _platform_report(self, user_data: bytes) -> Report:
        return self.platform.make_report(self.measurement, user_data)

    def get_quote(self, report: Report) -> Quote:
        """Ask the platform quoting enclave to convert a report to a quote."""
        return self.platform.quoting_enclave.quote(report)


class Platform:
    """One SGX-capable machine: EPC + quoting enclave + resident enclaves."""

    def __init__(
        self,
        platform_id: str,
        attestation_service: AttestationService,
        *,
        epc: Optional[EpcModel] = None,
        register: bool = True,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.platform_id = platform_id
        self.epc = epc if epc is not None else EpcModel()
        self.metrics = metrics
        self.quoting_enclave = QuotingEnclave(platform_id)
        self.attestation_service = attestation_service
        self.enclaves: Dict[str, Enclave] = {}
        if register:
            attestation_service.register_platform(
                platform_id, self.quoting_enclave.verify_key()
            )

    def create_enclave(self, trusted_class: type, enclave_id: str) -> Enclave:
        """Instantiate trusted code in a fresh enclave on this platform."""
        if enclave_id in self.enclaves:
            raise EnclaveError(f"enclave id {enclave_id!r} already exists")
        enclave = Enclave(
            self, trusted_class, enclave_id, self.attestation_service, metrics=self.metrics
        )
        self.enclaves[enclave_id] = enclave
        return enclave

    def make_report(self, measurement: Measurement, user_data: bytes) -> Report:
        """Hardware-report emulation: MAC the body with the platform key."""
        report = Report(measurement, user_data, self.platform_id, local_mac=b"\x00" * 32)
        mac = self.quoting_enclave.make_report_mac(report.signing_payload())
        return Report(measurement, user_data, self.platform_id, local_mac=mac)
