"""Exception hierarchy for the TEE substrate."""

from __future__ import annotations

__all__ = [
    "TeeError",
    "EnclaveError",
    "BoundaryViolation",
    "UnknownEcall",
    "UnknownOcall",
    "AttestationError",
    "QuoteVerificationError",
    "MeasurementMismatch",
    "ChannelNotEstablished",
    "SnapshotReplayError",
]


class TeeError(Exception):
    """Base class for every TEE-substrate error."""


class EnclaveError(TeeError):
    """A problem with enclave lifecycle or dispatch."""


class BoundaryViolation(EnclaveError):
    """Trusted code attempted an operation forbidden inside an enclave.

    Mirrors the SGX restriction that enclaves cannot execute I/O
    instructions directly: all such operations must be proxied through
    registered ocalls (paper Section II-C).
    """


class UnknownEcall(EnclaveError):
    """The untrusted host invoked an ecall the enclave does not export."""


class UnknownOcall(EnclaveError):
    """Trusted code invoked an ocall the host never registered."""


class AttestationError(TeeError):
    """Base class for attestation failures."""


class QuoteVerificationError(AttestationError):
    """The DCAP-style service could not authenticate a quote signature."""


class MeasurementMismatch(AttestationError):
    """The peer enclave runs different code than expected.

    REX requires every node to run byte-identical trusted code, so the
    expected measurement is always the verifier's own (Section III-A).
    """


class ChannelNotEstablished(AttestationError):
    """Encrypted traffic arrived from a peer that never completed attestation."""


class SnapshotReplayError(TeeError):
    """The host asked the serve path for a snapshot version below the
    enclave's published high-water mark (stale-replay defense)."""
