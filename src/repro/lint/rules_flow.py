"""Flow rules REX-F001..F005 plus the lattice-coverage check REX-S002.

The five flow rules are thin views over one shared taint analysis
(:func:`repro.lint.flow.analyze_modules`), memoized on the
:class:`~repro.lint.registry.Program` so a lint run pays for the
fixpoint once.  Each rule owns one sink family so findings stay
individually suppressible and baseline-able.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.lint.classify import lattice_prefix
from repro.lint.findings import Finding, FlowStep, Severity
from repro.lint.flow import SINK_RULES, FlowResult, analyze_modules
from repro.lint.registry import Program, ProgramRule, register

__all__ = [
    "EcallReturnFlowRule",
    "OcallArgumentFlowRule",
    "ObsLabelFlowRule",
    "SerializedFlowRule",
    "ExceptionMessageFlowRule",
    "LatticeCoverageRule",
]


def _flow_results(program: Program) -> List[FlowResult]:
    return program.analysis(
        "taint-flow", lambda p: analyze_modules(p.modules)
    )


class _FlowRuleBase(ProgramRule):
    """Findings for one sink family out of the shared analysis."""

    sink_key: str = ""
    severity = Severity.ERROR

    def check_program(self, program: Program) -> Iterator[Finding]:
        for result in _flow_results(program):
            if result.sink_key != self.sink_key:
                continue
            yield Finding(
                rule_id=self.rule_id,
                severity=self.severity,
                path=result.path,
                line=result.line,
                col=result.col,
                message=result.message,
                flow=tuple(
                    FlowStep(path=s.path, line=s.line, note=s.note)
                    for s in result.steps
                ),
            )


@register
class EcallReturnFlowRule(_FlowRuleBase):
    """Raw data flows into an ecall return value (host-visible)."""

    rule_id, name = SINK_RULES["ecall-return"]
    sink_key = "ecall-return"
    description = (
        "interprocedural taint: raw ratings / decrypted payload / model "
        "state reaches an @ecall return value unsealed"
    )


@register
class OcallArgumentFlowRule(_FlowRuleBase):
    """Raw data flows into an ocall argument (host upcall)."""

    rule_id, name = SINK_RULES["ocall"]
    sink_key = "ocall"
    description = (
        "interprocedural taint: enclave-resident data is passed to a host "
        "ocall without going through the AEAD seal path"
    )


@register
class ObsLabelFlowRule(_FlowRuleBase):
    """Raw data flows into a host-visible metric/trace label."""

    rule_id, name = SINK_RULES["obs-label"]
    sink_key = "obs-label"
    description = (
        "interprocedural taint: enclave-resident data is recorded in an "
        "obs metric/trace label readable by the host"
    )


@register
class SerializedFlowRule(_FlowRuleBase):
    """Raw data is serialized or logged outside the seal path."""

    rule_id, name = SINK_RULES["serialize-log"]
    sink_key = "serialize-log"
    description = (
        "interprocedural taint: enclave-resident data is printed, logged "
        "or json/pickle-serialized in trusted code outside the seal path"
    )


@register
class ExceptionMessageFlowRule(_FlowRuleBase):
    """Raw data is interpolated into a raised exception message."""

    rule_id, name = SINK_RULES["exception-message"]
    sink_key = "exception-message"
    description = (
        "interprocedural taint: enclave-resident data reaches a raised "
        "exception message, which is marshalled across the ecall boundary"
    )


@register
class LatticeCoverageRule(ProgramRule):
    """Every ``repro.*`` module must be explicitly placed in the lattice.

    ``classify_module`` defaults unknown modules to UNTRUSTED so the
    boundary rules fail safe -- but that default also hides omissions: a
    new enclave-resident module nobody added to ``TRUSTED_PREFIXES``
    would be silently linted as host code (this happened by hand-edit in
    PRs 5 and 6).  This rule turns the omission into an error.
    """

    rule_id = "REX-S002"
    name = "module-not-in-lattice"
    severity = Severity.ERROR
    description = (
        "module under repro.* is matched by no trust-lattice entry; add "
        "it to TRUSTED_/SHARED_/UNTRUSTED_PREFIXES or UNTRUSTED_MODULES "
        "in repro.lint.classify"
    )

    def check_program(self, program: Program) -> Iterator[Finding]:
        for mod in sorted(program.modules, key=lambda m: m.module):
            if mod.module != "repro" and not mod.module.startswith("repro."):
                continue  # fixture/test modules outside the tree
            if lattice_prefix(mod.module) is None:
                yield Finding(
                    rule_id=self.rule_id,
                    severity=self.severity,
                    path=mod.path,
                    line=1,
                    col=1,
                    message=(
                        f"module {mod.module!r} is not placed in the trust "
                        "lattice; classify it explicitly in "
                        "repro.lint.classify"
                    ),
                )
