"""Drive the rules over files or source strings; format the results.

The runner is filesystem-light on purpose: :func:`lint_source` takes raw
source text plus a module name, which is how the fixture self-tests
exercise every rule without importing (or even writing) the bad code.
:func:`lint_paths` walks real trees for the CLI and CI.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path, PurePath
from typing import Iterable, List, Optional, Sequence

from repro.lint.classify import classify_module
from repro.lint.findings import Finding, Severity
from repro.lint.registry import LintContext, Rule, all_rules
from repro.lint.suppressions import apply_suppressions

__all__ = ["LintReport", "lint_source", "lint_file", "lint_paths", "module_name_for"]

#: Rule id attached to files the parser rejects.
SYNTAX_RULE_ID = "REX-E999"


@dataclass
class LintReport:
    """All findings of one run plus enough context to format them."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity >= Severity.ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity == Severity.WARNING)

    def worst_at_least(self, threshold: Severity) -> bool:
        return any(f.severity >= threshold for f in self.findings)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def sorted(self) -> List[Finding]:
        return sorted(self.findings, key=Finding.sort_key)

    def format_text(self) -> str:
        lines = [f.format() for f in self.sorted()]
        lines.append(
            f"checked {self.files_checked} file(s): "
            f"{self.errors} error(s), {self.warnings} warning(s)"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "summary": {
                "files": self.files_checked,
                "errors": self.errors,
                "warnings": self.warnings,
            },
            "findings": [f.to_dict() for f in self.sorted()],
        }

    def format_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def module_name_for(path: str) -> str:
    """Infer the dotted module name from a file path.

    Anchors on the last ``repro`` path component so both installed and
    in-tree layouts resolve; anything else falls back to the file stem.
    """
    parts = list(PurePath(path).parts)
    if "repro" in parts:
        start = len(parts) - 1 - parts[::-1].index("repro")
        dotted = [p for p in parts[start:]]
        dotted[-1] = PurePath(dotted[-1]).stem
        if dotted[-1] == "__init__":
            dotted.pop()
        return ".".join(dotted)
    return PurePath(path).stem


def lint_source(
    source: str,
    *,
    module: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one source string as module ``module``; returns findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule_id=SYNTAX_RULE_ID,
                severity=Severity.ERROR,
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = LintContext(
        path=path,
        module=module,
        source=source,
        tree=tree,
        trust=classify_module(module),
    )
    raw: List[Finding] = []
    for rule in rules if rules is not None else all_rules():
        raw.extend(rule.check(ctx))
    return sorted(apply_suppressions(source, raw, path), key=Finding.sort_key)


def lint_file(path: str, *, rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(
        source, module=module_name_for(path), path=str(path), rules=rules
    )


def lint_paths(paths: Sequence[str]) -> LintReport:
    """Lint every ``.py`` file under the given files/directories."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    rules = all_rules()
    report = LintReport()
    for path in files:
        report.extend(lint_file(str(path), rules=rules))
        report.files_checked += 1
    return report
