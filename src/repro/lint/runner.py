"""Drive the rules over files or source strings; format the results.

The runner is filesystem-light on purpose: :func:`lint_source` takes raw
source text plus a module name, which is how the fixture self-tests
exercise every rule without importing (or even writing) the bad code;
:func:`lint_sources` does the same for a *set* of modules so the
interprocedural fixtures can span files.  :func:`lint_paths` walks real
trees for the CLI and CI.

A run has two rule granularities (see :mod:`repro.lint.registry`): the
per-file rules see one module each, the program rules (taint flow,
lattice coverage) see the whole parsed tree.  Suppressions are applied
exactly once per file, over the *combined* findings of both, so a
``# repro-lint: disable=REX-F001`` works on flow findings too and
REX-S001 cannot double-fire.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path, PurePath
from typing import Dict, Iterable, List, Optional, Sequence

from repro.lint.baseline import Baseline
from repro.lint.callgraph import ModuleInfo
from repro.lint.classify import classify_module
from repro.lint.findings import Finding, Severity
from repro.lint.registry import (
    LintContext,
    Program,
    Rule,
    all_program_rules,
    all_rules,
)
from repro.lint.suppressions import apply_suppressions

__all__ = [
    "LintReport",
    "lint_source",
    "lint_sources",
    "lint_file",
    "lint_paths",
    "module_name_for",
]

#: Rule id attached to files the parser rejects.
SYNTAX_RULE_ID = "REX-E999"


@dataclass
class LintReport:
    """All findings of one run plus enough context to format them."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    baselined: int = 0

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity >= Severity.ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity == Severity.WARNING)

    def worst_at_least(self, threshold: Severity) -> bool:
        return any(f.severity >= threshold for f in self.findings)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def sorted(self) -> List[Finding]:
        return sorted(self.findings, key=Finding.sort_key)

    def apply_baseline(self, baseline: Baseline) -> None:
        """Drop baselined findings, keeping the count for the summary."""
        new, known = baseline.split(self.findings)
        self.findings = new
        self.baselined += len(known)

    def format_text(self) -> str:
        lines = [f.format() for f in self.sorted()]
        summary = (
            f"checked {self.files_checked} file(s): "
            f"{self.errors} error(s), {self.warnings} warning(s)"
        )
        if self.baselined:
            summary += f", {self.baselined} baselined"
        lines.append(summary)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "summary": {
                "files": self.files_checked,
                "errors": self.errors,
                "warnings": self.warnings,
                "baselined": self.baselined,
            },
            "findings": [f.to_dict() for f in self.sorted()],
        }

    def format_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def module_name_for(path: str) -> str:
    """Infer the dotted module name from a file path.

    Anchors on the last ``repro`` path component so both installed and
    in-tree layouts resolve; anything else falls back to the file stem.
    """
    parts = list(PurePath(path).parts)
    if "repro" in parts:
        start = len(parts) - 1 - parts[::-1].index("repro")
        dotted = [p for p in parts[start:]]
        dotted[-1] = PurePath(dotted[-1]).stem
        if dotted[-1] == "__init__":
            dotted.pop()
        return ".".join(dotted)
    return PurePath(path).stem


def _parse_module(
    source: str, module: str, path: str
) -> "ModuleInfo | Finding":
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return Finding(
            rule_id=SYNTAX_RULE_ID,
            severity=Severity.ERROR,
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            message=f"syntax error: {exc.msg}",
        )
    return ModuleInfo(
        module=module,
        path=path,
        source=source,
        tree=tree,
        trust=classify_module(module),
    )


def _lint_program(
    modules: List[ModuleInfo], rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Run both rule granularities; suppressions once per file."""
    file_rules = list(rules) if rules is not None else all_rules()
    program_rules = all_program_rules() if rules is None else []

    by_path: Dict[str, List[Finding]] = {m.path: [] for m in modules}
    for mod in modules:
        ctx = LintContext(
            path=mod.path,
            module=mod.module,
            source=mod.source,
            tree=mod.tree,
            trust=mod.trust,
        )
        for rule in file_rules:
            by_path[mod.path].extend(rule.check(ctx))

    if program_rules:
        program = Program(modules=list(modules))
        for rule in program_rules:
            for finding in rule.check_program(program):
                by_path.setdefault(finding.path, []).append(finding)

    out: List[Finding] = []
    mod_by_path = {m.path: m for m in modules}
    for path, findings in by_path.items():
        mod = mod_by_path.get(path)
        if mod is not None:
            out.extend(
                apply_suppressions(mod.source, findings, path, tree=mod.tree)
            )
        else:
            out.extend(findings)
    return sorted(out, key=Finding.sort_key)


def lint_sources(
    sources: Dict[str, str],
    *,
    paths: Optional[Dict[str, str]] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint a set of in-memory modules (``{module: source}``) together.

    This is how the interprocedural fixtures run: taint seeded in one
    module, sink in another.  ``paths`` optionally maps module names to
    display paths (defaults to ``<module>``).
    """
    modules: List[ModuleInfo] = []
    findings: List[Finding] = []
    for module in sorted(sources):
        path = (paths or {}).get(module, f"<{module}>")
        parsed = _parse_module(sources[module], module, path)
        if isinstance(parsed, Finding):
            findings.append(parsed)
        else:
            modules.append(parsed)
    findings.extend(_lint_program(modules, rules=rules))
    return sorted(findings, key=Finding.sort_key)


def lint_source(
    source: str,
    *,
    module: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one source string as module ``module``; returns findings."""
    return lint_sources({module: source}, paths={module: path}, rules=rules)


def lint_file(path: str, *, rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(
        source, module=module_name_for(path), path=str(path), rules=rules
    )


def lint_paths(
    paths: Sequence[str], *, baseline: Optional[Baseline] = None
) -> LintReport:
    """Lint every ``.py`` file under the given files/directories."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)

    report = LintReport()
    modules: List[ModuleInfo] = []
    for path in files:
        source = path.read_text(encoding="utf-8")
        parsed = _parse_module(source, module_name_for(str(path)), str(path))
        if isinstance(parsed, Finding):
            report.findings.append(parsed)
        else:
            modules.append(parsed)
        report.files_checked += 1

    report.extend(_lint_program(modules))
    if baseline is not None:
        report.apply_baseline(baseline)
    return report
