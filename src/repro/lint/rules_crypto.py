"""Crypto-misuse rules: constant-time compares, nonces, key hygiene.

These encode the channel-establishment invariants of paper Section
III-A: tags and digests are compared in constant time, AEAD nonces are
derived from the per-direction channel counter (never constant, never
random), one HKDF output keys exactly one cipher instance, and no weak
hash ever enters the measurement/attestation chain.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.findings import Finding, Severity
from repro.lint.registry import LintContext, Rule, register
from repro.lint.astutil import call_func_name, is_constant_expr, walk_functions

__all__ = [
    "DigestCompareRule",
    "NonceDerivationRule",
    "HkdfReuseRule",
    "WeakHashRule",
]

_DIGEST_TOKENS = frozenset(
    {"digest", "tag", "tags", "mac", "macs", "hmac", "sig", "sigs", "signature", "signatures"}
)
_DIGEST_PRODUCERS = frozenset({"digest", "hexdigest", "poly1305_mac", "make_report_mac", "sign"})


def _identifier(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _looks_like_digest(node: ast.AST) -> bool:
    ident = _identifier(node)
    if ident is not None:
        tokens = [t for t in ident.lower().split("_") if t]
        if any(t in _DIGEST_TOKENS for t in tokens):
            return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        if name in _DIGEST_PRODUCERS:
            return True
    return False


@register
class DigestCompareRule(Rule):
    """``==``/``!=`` on digests, tags or signatures leaks timing."""

    rule_id = "REX-C001"
    name = "nonconstant-digest-compare"
    severity = Severity.ERROR
    description = (
        "digest/tag/MAC/signature compared with ==/!= instead of "
        "hmac.compare_digest (timing side channel)"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            for side in [node.left, *node.comparators]:
                if _looks_like_digest(side):
                    yield self.finding(
                        ctx,
                        node,
                        "digest/tag comparison must use hmac.compare_digest "
                        "(or an XOR-accumulate loop), not ==/!=",
                    )
                    break


_RANDOM_SOURCES = frozenset({"os.urandom", "secrets.token_bytes"})


@register
class NonceDerivationRule(Rule):
    """AEAD nonces must come from the channel counter, not const/random."""

    rule_id = "REX-C002"
    name = "nonce-not-counter-derived"
    severity = Severity.ERROR
    description = (
        "encrypt()/decrypt() called with a constant or random nonce; "
        "channel nonces must derive from the per-direction counter"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("encrypt", "decrypt")
                and node.args
            ):
                continue
            nonce = node.args[0]
            random_call = next(
                (
                    sub
                    for sub in ast.walk(nonce)
                    if isinstance(sub, ast.Call)
                    and call_func_name(sub) in _RANDOM_SOURCES
                ),
                None,
            )
            if random_call is not None:
                yield self.finding(
                    ctx,
                    node,
                    "random AEAD nonce; derive it from the channel sequence "
                    "counter so it is unique per direction",
                )
            elif is_constant_expr(nonce):
                yield self.finding(
                    ctx,
                    node,
                    "constant AEAD nonce; nonce reuse under one key breaks "
                    "ChaCha20-Poly1305 confidentiality and integrity",
                )


_DERIVE_FUNCS = frozenset({"hkdf", "hkdf_expand", "derive_channel_key"})
_KEY_CONSUMERS = frozenset({"SecureChannel", "AccountedChannel", "ChaCha20Poly1305"})


@register
class HkdfReuseRule(Rule):
    """One HKDF output must key exactly one cipher/channel instance."""

    rule_id = "REX-C003"
    name = "hkdf-output-reuse"
    severity = Severity.ERROR
    description = (
        "a single HKDF-derived key is passed to multiple cipher/channel "
        "constructors (e.g. both directions); derive one key per use"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        # The module scope's walk includes function bodies, so the same
        # reuse site can surface in two scopes; report each site once.
        reported = set()
        for scope in walk_functions(ctx.tree):
            derived = set()
            for node in ast.walk(scope):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)
                ):
                    func = node.value.func
                    name = (
                        func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
                    )
                    if name in _DERIVE_FUNCS:
                        derived.add(node.targets[0].id)
            if not derived:
                continue
            uses: dict = {}
            for node in ast.walk(scope):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
                if name not in _KEY_CONSUMERS:
                    continue
                for arg in node.args:
                    if isinstance(arg, ast.Name) and arg.id in derived:
                        uses.setdefault(arg.id, []).append(node)
            for var, sites in sorted(uses.items()):
                for site in sites[1:]:
                    key = (var, site.lineno, site.col_offset)
                    if key in reported:
                        continue
                    reported.add(key)
                    yield self.finding(
                        ctx,
                        site,
                        f"derived key {var!r} already keys another cipher/"
                        "channel; expand separate keys per direction/peer",
                    )


@register
class WeakHashRule(Rule):
    """MD5/SHA-1 have no place in a measurement/attestation chain."""

    rule_id = "REX-C004"
    name = "weak-hash"
    severity = Severity.ERROR
    description = "hashlib use of a broken algorithm (md5/sha1)"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_func_name(node)
            if name in ("hashlib.md5", "hashlib.sha1"):
                yield self.finding(
                    ctx, node, f"{name}() is collision-broken; use sha256 or better"
                )
            elif name == "hashlib.new" and node.args:
                first = node.args[0]
                if (
                    isinstance(first, ast.Constant)
                    and isinstance(first.value, str)
                    and first.value.lower() in ("md5", "sha1")
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"hashlib.new({first.value!r}) is collision-broken; "
                        "use sha256 or better",
                    )
