"""Rule base classes and the registry that makes new rules one-class cheap.

A rule is a class with a unique ``rule_id``, a default ``severity`` and a
``check(ctx)`` generator over :class:`~repro.lint.findings.Finding`.
Decorate it with :func:`register` and it participates in every lint run,
the ``--list-rules`` catalog and the README table -- no other wiring.

Two granularities exist:

- :class:`Rule` sees one module at a time (``check(ctx)``) -- the
  original per-file AST rules.
- :class:`ProgramRule` sees the whole parsed tree at once
  (``check_program(program)``) -- the interprocedural flow rules and
  the lattice-coverage check, which are meaningless file-by-file.

Whole-program analyses that several rules share (the taint fixpoint)
are memoized on the :class:`Program` so five REX-F rules cost one
analysis.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Type, Union

from repro.lint.callgraph import ModuleInfo
from repro.lint.classify import Trust
from repro.lint.findings import Finding, Severity

__all__ = [
    "LintContext",
    "Program",
    "Rule",
    "ProgramRule",
    "register",
    "all_rules",
    "all_program_rules",
    "rule_catalog",
]


@dataclass
class LintContext:
    """Everything a per-file rule sees: one parsed module + classification."""

    path: str
    module: str
    source: str
    tree: ast.Module
    trust: Trust


@dataclass
class Program:
    """Every parsed module of one lint run, plus shared analysis results."""

    modules: List[ModuleInfo] = field(default_factory=list)
    _analyses: Dict[str, object] = field(default_factory=dict)

    def analysis(self, key: str, builder: Callable[["Program"], object]) -> object:
        """Memoize an expensive whole-program analysis under ``key``."""
        if key not in self._analyses:
            self._analyses[key] = builder(self)
        return self._analyses[key]


class Rule:
    """Base class for one per-file lint rule (see module docstring)."""

    rule_id: str = ""
    name: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: LintContext, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``'s source location."""
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class ProgramRule:
    """Base class for a whole-program rule."""

    rule_id: str = ""
    name: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""

    def check_program(self, program: Program) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Union[Type[Rule], Type[ProgramRule]]] = {}


def register(cls):
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered per-file rule, ordered by id."""
    _load_rule_modules()
    return [
        _REGISTRY[rule_id]()
        for rule_id in sorted(_REGISTRY)
        if issubclass(_REGISTRY[rule_id], Rule)
    ]


def all_program_rules() -> List[ProgramRule]:
    """Fresh instances of every registered whole-program rule, by id."""
    _load_rule_modules()
    return [
        _REGISTRY[rule_id]()
        for rule_id in sorted(_REGISTRY)
        if issubclass(_REGISTRY[rule_id], ProgramRule)
    ]


def rule_catalog() -> List[dict]:
    """Catalog rows for ``--list-rules`` and docs (both granularities)."""
    _load_rule_modules()
    return [
        {
            "id": cls.rule_id,
            "name": cls.name,
            "severity": str(cls.severity),
            "description": cls.description,
        }
        for cls in (_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY))
    ]


def _load_rule_modules() -> None:
    """Import the rule modules so their ``@register`` decorators run."""
    from repro.lint import rules_boundary, rules_crypto, rules_determinism  # noqa: F401
    from repro.lint import rules_flow, rules_kernel  # noqa: F401
    from repro.lint import suppressions  # noqa: F401  (registers REX-S001)
