"""Rule base class and the registry that makes new rules one-class cheap.

A rule is a class with a unique ``rule_id``, a default ``severity`` and a
``check(ctx)`` generator over :class:`~repro.lint.findings.Finding`.
Decorate it with :func:`register` and it participates in every lint run,
the ``--list-rules`` catalog and the README table -- no other wiring.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Type

from repro.lint.classify import Trust
from repro.lint.findings import Finding, Severity

__all__ = ["LintContext", "Rule", "register", "all_rules", "rule_catalog"]


@dataclass
class LintContext:
    """Everything a rule sees: one parsed module plus its classification."""

    path: str
    module: str
    source: str
    tree: ast.Module
    trust: Trust


class Rule:
    """Base class for one lint rule (see module docstring)."""

    rule_id: str = ""
    name: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: LintContext, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``'s source location."""
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, ordered by id."""
    _load_rule_modules()
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def rule_catalog() -> List[dict]:
    """Catalog rows for ``--list-rules`` and docs."""
    return [
        {
            "id": rule.rule_id,
            "name": rule.name,
            "severity": str(rule.severity),
            "description": rule.description,
        }
        for rule in all_rules()
    ]


def _load_rule_modules() -> None:
    """Import the rule modules so their ``@register`` decorators run."""
    from repro.lint import rules_boundary, rules_crypto, rules_determinism  # noqa: F401
    from repro.lint import suppressions  # noqa: F401  (registers REX-S001)
