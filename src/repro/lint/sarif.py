"""SARIF 2.1.0 output so findings surface in GitHub code scanning.

One run, one tool (``repro-lint``), every registered rule in the
driver's rule table, every finding as a result with a physical
location; flow findings additionally carry their source->sink witness
path as a ``codeFlow``.  The document is deterministic: rules sorted by
id, results in the report's canonical order, keys sorted by the JSON
encoder, and the tool version pinned independently of the library
version so golden fixtures do not churn on release bumps.
"""

from __future__ import annotations

import json
from pathlib import PurePath
from typing import List

from repro.lint.findings import Finding, Severity

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA", "TOOL_VERSION", "to_sarif", "format_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
#: Pinned separately from repro.__version__ on purpose (see docstring).
TOOL_VERSION = "1.0.0"

_LEVELS = {Severity.WARNING: "warning", Severity.ERROR: "error"}


def _uri(path: str) -> str:
    return PurePath(path).as_posix()


def _location(path: str, line: int, col: int, message: str = "") -> dict:
    loc = {
        "physicalLocation": {
            "artifactLocation": {"uri": _uri(path)},
            "region": {"startColumn": col, "startLine": line},
        }
    }
    if message:
        loc["message"] = {"text": message}
    return loc


def _result(finding: Finding, rule_index: dict) -> dict:
    result = {
        "ruleId": finding.rule_id,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [_location(finding.path, finding.line, finding.col)],
    }
    if finding.rule_id in rule_index:
        result["ruleIndex"] = rule_index[finding.rule_id]
    if finding.flow:
        result["codeFlows"] = [
            {
                "threadFlows": [
                    {
                        "locations": [
                            {
                                "location": _location(
                                    step.path, step.line, 1, step.note
                                )
                            }
                            for step in finding.flow
                        ]
                    }
                ]
            }
        ]
    return result


def to_sarif(findings: List[Finding], catalog: List[dict]) -> dict:
    """Build the SARIF document from sorted findings + the rule catalog."""
    rules = [
        {
            "id": row["id"],
            "name": row["name"],
            "shortDescription": {"text": row["description"]},
            "defaultConfiguration": {
                "level": "error" if row["severity"] == "error" else "warning"
            },
        }
        for row in catalog
    ]
    rule_index = {row["id"]: i for i, row in enumerate(catalog)}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://github.com/repro/repro#static-analysis"
                        ),
                        "semanticVersion": TOOL_VERSION,
                        "rules": rules,
                    }
                },
                "results": [_result(f, rule_index) for f in findings],
            }
        ],
    }


def format_sarif(findings: List[Finding], catalog: List[dict]) -> str:
    return json.dumps(to_sarif(findings, catalog), indent=2, sort_keys=True)
