"""Interprocedural taint analysis: sources, sanitizers, sinks, fixpoint.

This is the REX-specific instantiation of the generic machinery in
:mod:`repro.lint.summaries`.  The security argument it checks is the
paper's core invariant (Dhasade et al., IPPS 2022, Sections II-C and
III-B): **raw rating data may leave an enclave only sealed**, and the
same goes for decrypted share payloads and enclave-resident model
state.

Sources (seeded only inside TRUSTED modules -- the simulators and the
serve runner play every role in one process by design and would drown
the analysis in sanctioned flows):

====================  =======================================  ========
what                  matched how                              kind
====================  =======================================  ========
raw rating triplets   ``.sample/.sample_arrays/.as_dataset``   ratings
                      on a ``DataStore``-typed or
                      ``*store*``-named receiver; reads of
                      ``.users/.items/.ratings`` on a typed
                      ``DataStore``; ``decode_triplets()``
decrypted payloads    ``.open()`` on a channel-typed or        plaintext
                      ``*channel*``-named receiver
model state           ``.state()/.snapshot()`` on a            model
                      ``*model*``-named receiver;
                      ``decode_snapshot()`` /
                      ``snapshot_from_arrays()``; factor
                      reads on a typed ``ModelSnapshot``
====================  =======================================  ========

Sanitizers (launder the value everywhere): the AEAD ``seal`` path,
digest/length-only projections (``len``, ``sha*``, ``.digest()``,
``.nbytes`` ...), aggregate metrics (``evaluate_rmse``), the RXS1
canonical codec (``encode_triplets`` / ``encode_snapshot`` -- their
output is the pinned-digest wire form whose release points are audited
separately), and ``batched_top_k`` -- the serving system's *declared*
declassifier: item ids and scores are the product the endpoint exists
to release.

Sinks (checked only inside TRUSTED modules -- each is a boundary
crossing into host-visible space): ecall returns, ocall arguments, obs
metric/trace labels, serialization/log strings, raised exception
messages.

Termination: the taint lattice is finite (three concrete kinds x a
fixed catalog of origin idents, plus per-function parameter
placeholders), all transfer functions only ever *add* taints, and the
driver iterates to a fingerprint fixpoint -- so chaotic iteration
terminates; the cap is a safety net, not a semantics.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.lint.callgraph import FunctionInfo, ModuleInfo, build_index
from repro.lint.classify import Trust
from repro.lint.summaries import (
    PARAM,
    AbstractVal,
    FlowHooks,
    FunctionAnalyzer,
    FunctionSummary,
    SinkHit,
    Step,
    Taint,
    merge,
)

__all__ = ["FlowResult", "analyze_modules", "SINK_RULES"]

#: sink key -> (rule id, rule name) -- the REX-F rule family.
SINK_RULES: Dict[str, Tuple[str, str]] = {
    "ecall-return": ("REX-F001", "taint-ecall-return"),
    "ocall": ("REX-F002", "taint-ocall-argument"),
    "obs-label": ("REX-F003", "taint-obs-label"),
    "serialize-log": ("REX-F004", "taint-serialized-or-logged"),
    "exception-message": ("REX-F005", "taint-exception-message"),
}

_MAX_ITERATIONS = 30

_TOKEN_SPLIT = re.compile(r"[_\W]+")


def _tokens(name: Optional[str]) -> frozenset:
    if not name:
        return frozenset()
    return frozenset(t for t in _TOKEN_SPLIT.split(name.lower()) if t)


def _base(name: Optional[str]) -> Optional[str]:
    return name.rsplit(".", 1)[-1] if name else None


# ---------------------------------------------------------------------------
# catalogs

_RATINGS_METHODS = frozenset({"sample", "sample_arrays", "as_dataset"})
_STORE_TYPE_BASES = frozenset({"DataStore"})
_STORE_TOKENS = frozenset({"store"})
_STORE_DATA_ATTRS = frozenset({"users", "items", "ratings"})

_CHANNEL_TYPE_BASES = frozenset(
    {"SecureChannel", "AccountedChannel", "PlaintextChannel"}
)
_CHANNEL_TOKENS = frozenset({"channel", "chan"})

_MODEL_METHODS = frozenset({"state", "snapshot"})
_MODEL_TOKENS = frozenset({"model"})
_SNAPSHOT_TYPE_BASES = frozenset({"ModelSnapshot"})
_SNAPSHOT_DATA_ATTRS = frozenset(
    {"user_factors", "item_factors", "user_bias", "item_bias"}
)
_MODEL_SOURCE_FUNCS = frozenset({"decode_snapshot", "snapshot_from_arrays"})
_RATINGS_SOURCE_FUNCS = frozenset({"decode_triplets"})

_SANITIZER_METHODS = frozenset(
    {
        "seal",
        "meta",
        "evaluate_rmse",
        "digest",
        "hexdigest",
        "hex",
        # aggregate projection: scalar reductions are sanctioned exports
        # (byte counts, seen-row counts), matching the paper's stats plane
        "sum",
    }
)
_SANITIZER_FUNCS = frozenset(
    {
        "len",
        "bool",
        "id",
        "range",
        # aggregate projection, same category as the ``sum`` method:
        # seen-row counts sizing a wire buffer are sanctioned exports
        "count_nonzero",
        "sha256",
        "sha384",
        "sha512",
        "blake2b",
        "hash",
        # RXS1 canonical codec: pinned-digest wire form (declassification
        # points for the encoded bytes are audited by the boundary rules)
        "encode_triplets",
        "encode_snapshot",
        # the batch AEAD seal: like the ``seal`` method, frames leaving
        # these entry points are ciphertext (or the declared-accounted/
        # plaintext channel modes, which share the call site and the
        # audit story of the single-message path)
        "seal_all",
        "seal_many",
        "seal_many_into",
        # the serving declassifier: released item ids + scores
        "batched_top_k",
    }
)
_SANITIZER_ATTRS = frozenset(
    {
        "nbytes",
        "itemsize",
        "shape",
        "dtype",
        "ndim",
        "size",
        "version",
        "n_users",
        "n_items",
        "n_ratings",
        "capacity",
        "seq",
        "name",
        # factor count: a shape scalar, not factor content
        "k",
    }
)

_OBS_METHODS = frozenset(
    {"counter", "gauge", "observe", "event", "record", "span", "instant"}
)
_OBS_TOKENS = frozenset({"metrics", "tracer", "obs"})
_LOG_TOKENS = frozenset({"log", "logger", "logging"})

_KIND_LABEL = {
    "ratings": "raw rating data",
    "plaintext": "decrypted payload",
    "model": "enclave model state",
}


class RexFlowHooks(FlowHooks):
    """REX catalogs, parameterized by the module's trust level."""

    sanitizer_attrs = _SANITIZER_ATTRS

    def __init__(self, trust: Trust):
        self.trust = trust

    def check_sinks(self) -> bool:
        return self.trust is Trust.TRUSTED

    # -- sources ---------------------------------------------------------

    def source_for_call(
        self,
        func_name: Optional[str],
        method: Optional[str],
        receiver: Optional[str],
        receiver_type: Optional[str],
    ) -> Optional[Taint]:
        if self.trust is not Trust.TRUSTED:
            return None
        type_base = _base(receiver_type)
        recv_tokens = _tokens(receiver)
        if method in _RATINGS_METHODS and (
            type_base in _STORE_TYPE_BASES or recv_tokens & _STORE_TOKENS
        ):
            return Taint("ratings", f"DataStore.{method}")
        if method == "open" and (
            type_base in _CHANNEL_TYPE_BASES or recv_tokens & _CHANNEL_TOKENS
        ):
            return Taint("plaintext", "SecureChannel.open")
        if method in _MODEL_METHODS and recv_tokens & _MODEL_TOKENS:
            return Taint("model", f"model.{method}")
        base = _base(func_name)
        if base in _RATINGS_SOURCE_FUNCS:
            return Taint("ratings", base)
        if base in _MODEL_SOURCE_FUNCS:
            return Taint("model", base)
        return None

    def source_for_attr(
        self, attr: str, receiver_type: Optional[str]
    ) -> Optional[Taint]:
        if self.trust is not Trust.TRUSTED:
            return None
        type_base = _base(receiver_type)
        if type_base in _STORE_TYPE_BASES and attr in _STORE_DATA_ATTRS:
            return Taint("ratings", f"DataStore.{attr}")
        if type_base in _SNAPSHOT_TYPE_BASES and attr in _SNAPSHOT_DATA_ATTRS:
            return Taint("model", f"ModelSnapshot.{attr}")
        return None

    # -- sanitizers ------------------------------------------------------

    def is_sanitizer(
        self, func_name: Optional[str], method: Optional[str]
    ) -> bool:
        if method in _SANITIZER_METHODS:
            return True
        return _base(func_name) in _SANITIZER_FUNCS

    # -- sinks -----------------------------------------------------------

    def sink_for_call(
        self,
        node: ast.Call,
        method: Optional[str],
        receiver: Optional[str],
        fn: FunctionInfo,
    ) -> Optional[Tuple[str, str, List[ast.AST]]]:
        recv_tokens = _tokens(receiver)
        kw_values = [kw.value for kw in node.keywords]
        if method == "ocall":
            target = "?"
            if node.args and isinstance(node.args[0], ast.Constant):
                target = str(node.args[0].value)
            return (
                "ocall",
                f"passed to host ocall {target!r}",
                list(node.args[1:]) + kw_values,
            )
        if method in _OBS_METHODS and recv_tokens & _OBS_TOKENS:
            return (
                "obs-label",
                f"recorded in host-visible obs {method}()",
                list(node.args) + kw_values,
            )
        func_name = None
        if isinstance(node.func, ast.Name):
            func_name = node.func.id
        if func_name == "print" or (
            method in ("warn", "warning", "info", "debug", "error", "critical")
            and recv_tokens & _LOG_TOKENS
        ):
            return (
                "serialize-log",
                "written to a host-visible log stream",
                list(node.args) + kw_values,
            )
        if method in ("dump", "dumps") and receiver in ("json", "pickle"):
            return (
                "serialize-log",
                f"serialized via {receiver}.{method}() outside the seal path",
                list(node.args) + kw_values,
            )
        return None


# ---------------------------------------------------------------------------
# fixpoint driver


@dataclass(frozen=True)
class FlowResult:
    """One confirmed source->sink flow, ready to become a Finding."""

    sink_key: str
    path: str
    line: int
    col: int
    message: str
    steps: Tuple[Step, ...]


def _state_fingerprint(
    summaries: Dict[str, FunctionSummary],
    class_env: Dict[str, Dict[str, AbstractVal]],
) -> frozenset:
    items = set()
    for qual, summary in summaries.items():
        items.add((qual, summary.fingerprint()))
    for cls, attrs in class_env.items():
        for attr, val in attrs.items():
            for taint in val:
                items.add((cls, attr, taint))
    return frozenset(items)


def analyze_modules(modules: List[ModuleInfo]) -> List[FlowResult]:
    """Run the taint analysis to fixpoint; return deterministic flows."""
    index = build_index(modules)
    hooks_by_module = {
        mod.module: RexFlowHooks(mod.trust) for mod in modules
    }
    class_env: Dict[str, Dict[str, AbstractVal]] = {}
    summaries: Dict[str, FunctionSummary] = {}
    order = sorted(index.functions)

    fingerprint = None
    for _ in range(_MAX_ITERATIONS):
        for qual in order:
            fn = index.functions[qual]
            mod = index.modules[fn.module]
            analyzer = FunctionAnalyzer(
                index, fn, hooks_by_module[fn.module], class_env, summaries,
                mod.path,
            )
            summary = analyzer.run()
            summaries[qual] = summary
            # concrete attribute writes feed the class environment; the
            # parameter-dependent ones are substituted at call sites
            if fn.cls and summary.attr_writes:
                cls_writes = class_env.setdefault(fn.cls, {})
                for attr, val in summary.attr_writes.items():
                    concrete = {
                        t: s for t, s in val.items() if t.kind != PARAM
                    }
                    if concrete:
                        cls_writes[attr] = merge(cls_writes.get(attr), concrete)
        new_fingerprint = _state_fingerprint(summaries, class_env)
        if new_fingerprint == fingerprint:
            break
        fingerprint = new_fingerprint

    # collect: every sink hit that carries *concrete* taint is a flow
    collected: Dict[Tuple, Tuple[SinkHit, Taint, Tuple[Step, ...]]] = {}
    for qual in order:
        for hit, val in summaries[qual].sink_hits.items():
            for taint, steps in sorted(
                val.items(), key=lambda kv: (kv[0].kind, kv[0].ident)
            ):
                if taint.kind == PARAM:
                    continue
                key = (hit.location_key(), taint)
                if key in collected:
                    _, _, prior = collected[key]
                    if (len(steps), _step_key(steps)) < (
                        len(prior),
                        _step_key(prior),
                    ):
                        collected[key] = (hit, taint, steps)
                else:
                    collected[key] = (hit, taint, steps)

    results = []
    for key in sorted(collected, key=_collect_key):
        hit, taint, steps = collected[key]
        label = _KIND_LABEL.get(taint.kind, taint.kind)
        message = (
            f"{label} (from {taint.ident}) {hit.desc} without passing "
            "through a sanctioned seal/sanitize path"
        )
        results.append(
            FlowResult(
                sink_key=hit.sink,
                path=hit.path,
                line=hit.line,
                col=hit.col,
                message=message,
                steps=steps,
            )
        )
    return results


def _step_key(steps: Tuple[Step, ...]) -> Tuple:
    return tuple((s.path, s.line, s.note) for s in steps)


def _collect_key(key: Tuple) -> Tuple:
    (sink, path, line, col), taint = key
    return (path, line, col, sink, taint.kind, taint.ident)
