"""Whole-program index for the flow analyzer: modules, classes, calls.

The taint engine (:mod:`repro.lint.flow`) needs three things the
per-file rules never did:

1. a table of every function/method with a stable *qualname*
   (``repro.core.app.RexEnclaveApp._share``) so summaries can be keyed
   and call edges resolved across modules,
2. per-module import tables so ``DataStore(...)`` in ``app.py`` resolves
   to ``repro.core.store.DataStore``, and
3. light type inference -- constructor assignments, ``self.x: T``
   annotations, class-body annotations -- so ``self.store.sample(...)``
   is known to hit the raw rating store.

Everything here is deliberately *static and partial*: when resolution
fails the engine falls back to name-based catalogs and conservative
taint propagation, never to imports or execution.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lint.astutil import dotted_name
from repro.lint.classify import Trust

__all__ = [
    "ModuleInfo",
    "FunctionInfo",
    "ClassInfo",
    "ProgramIndex",
    "build_index",
]


@dataclass
class ModuleInfo:
    """One parsed module: the unit the program rules iterate over."""

    module: str
    path: str
    source: str
    tree: ast.Module
    trust: Trust


@dataclass
class FunctionInfo:
    """A function or method with enough context to summarize it."""

    qualname: str
    module: str
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    cls: Optional[str] = None  # owning class qualname
    params: Tuple[str, ...] = ()
    decorators: Tuple[str, ...] = ()

    @property
    def is_method(self) -> bool:
        return self.cls is not None

    @property
    def is_ecall(self) -> bool:
        return any(d == "ecall" or d.endswith(".ecall") for d in self.decorators)


@dataclass
class ClassInfo:
    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    bases: Tuple[str, ...] = ()  # resolved base qualnames where possible
    methods: Dict[str, str] = field(default_factory=dict)  # name -> func qualname
    attr_types: Dict[str, str] = field(default_factory=dict)  # attr -> class qualname


def _param_names(node: ast.AST) -> Tuple[str, ...]:
    a = node.args
    names = [p.arg for p in a.posonlyargs + a.args + a.kwonlyargs]
    if a.vararg:
        names.append(a.vararg.arg)
    if a.kwarg:
        names.append(a.kwarg.arg)
    return tuple(names)


def _annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    """Best-effort class name out of an annotation expression.

    Unwraps ``Optional[T]`` and string annotations; gives up on unions
    and generics with multiple arguments (``Dict[int, object]`` yields
    nothing -- the engine then falls back to name-based catalogs).
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        base = dotted_name(node.value)
        if base and base.split(".")[-1] == "Optional":
            return _annotation_name(node.slice)
        return None
    return dotted_name(node)


class ProgramIndex:
    """Symbol tables + a resolver over one set of modules."""

    def __init__(self, modules: List[ModuleInfo]):
        self.modules: Dict[str, ModuleInfo] = {m.module: m for m in modules}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: module -> local name -> fully qualified target
        self.imports: Dict[str, Dict[str, str]] = {}
        for mod in modules:
            self._index_module(mod)
        self._infer_attr_types()

    # ------------------------------------------------------------------
    # indexing

    def _index_module(self, mod: ModuleInfo) -> None:
        table: Dict[str, str] = {}
        self.imports[mod.module] = table
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    table[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom):
                base = self._absolute_import_base(mod.module, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    table[alias.asname or alias.name] = f"{base}.{alias.name}"
        for stmt in mod.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod, stmt, cls=None)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(mod, stmt)

    @staticmethod
    def _absolute_import_base(module: str, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        parts = module.split(".")
        if node.level > len(parts):
            return None
        base_parts = parts[: len(parts) - node.level]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts) if base_parts else None

    def _add_function(
        self, mod: ModuleInfo, node: ast.AST, cls: Optional[str]
    ) -> None:
        qual = f"{cls}.{node.name}" if cls else f"{mod.module}.{node.name}"
        decorators = tuple(
            d for d in (dotted_name(dec) for dec in node.decorator_list) if d
        )
        info = FunctionInfo(
            qualname=qual,
            module=mod.module,
            name=node.name,
            node=node,
            cls=cls,
            params=_param_names(node),
            decorators=decorators,
        )
        self.functions[qual] = info
        if cls is not None:
            self.classes[cls].methods[node.name] = qual

    def _add_class(self, mod: ModuleInfo, node: ast.ClassDef) -> None:
        qual = f"{mod.module}.{node.name}"
        info = ClassInfo(qualname=qual, module=mod.module, name=node.name, node=node)
        self.classes[qual] = info
        bases = []
        for base in node.bases:
            name = dotted_name(base)
            if name:
                resolved = self.resolve_name(mod.module, name)
                bases.append(resolved or name)
        info.bases = tuple(bases)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod, stmt, cls=qual)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                type_name = _annotation_name(stmt.annotation)
                if type_name:
                    resolved = self.resolve_name(mod.module, type_name)
                    if resolved in self.classes:
                        info.attr_types[stmt.target.id] = resolved

    def _infer_attr_types(self) -> None:
        """Second pass: ``self.x = Ctor(...)`` and ``self.x: T = ...``."""
        for cls in self.classes.values():
            for method_qual in cls.methods.values():
                fn = self.functions[method_qual]
                self_name = fn.params[0] if fn.params else "self"
                for node in ast.walk(fn.node):
                    target = value = None
                    if isinstance(node, ast.Assign) and len(node.targets) == 1:
                        target, value = node.targets[0], node.value
                    elif isinstance(node, ast.AnnAssign):
                        target, value = node.target, node.value
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == self_name
                    ):
                        continue
                    attr = target.attr
                    if isinstance(node, ast.AnnAssign):
                        type_name = _annotation_name(node.annotation)
                        resolved = (
                            self.resolve_name(cls.module, type_name)
                            if type_name
                            else None
                        )
                        if resolved in self.classes:
                            cls.attr_types.setdefault(attr, resolved)
                            continue
                    ctor = self.resolve_constructor(cls.module, value)
                    if ctor is not None:
                        cls.attr_types.setdefault(attr, ctor)

    # ------------------------------------------------------------------
    # resolution

    def resolve_name(self, module: str, dotted: str) -> Optional[str]:
        """Resolve ``dotted`` as seen from ``module`` to a qualname."""
        head, _, rest = dotted.partition(".")
        table = self.imports.get(module, {})
        if head in table:
            base = table[head]
            return f"{base}.{rest}" if rest else base
        local = f"{module}.{dotted}"
        if local in self.functions or local in self.classes:
            return local
        if dotted in self.modules or dotted in self.classes:
            return dotted
        return None

    def resolve_constructor(
        self, module: str, value: Optional[ast.AST]
    ) -> Optional[str]:
        """Class qualname when ``value`` is a constructor call, else None."""
        if not isinstance(value, ast.Call):
            return None
        name = dotted_name(value.func)
        if not name:
            return None
        resolved = self.resolve_name(module, name)
        return resolved if resolved in self.classes else None

    def lookup_method(self, cls_qual: str, name: str) -> Optional[FunctionInfo]:
        """Method lookup honoring in-index base classes (MRO-lite)."""
        seen = set()
        stack = [cls_qual]
        while stack:
            qual = stack.pop(0)
            if qual in seen:
                continue
            seen.add(qual)
            cls = self.classes.get(qual)
            if cls is None:
                continue
            if name in cls.methods:
                return self.functions[cls.methods[name]]
            stack.extend(cls.bases)
        return None

    def class_of(self, func: FunctionInfo) -> Optional[ClassInfo]:
        return self.classes.get(func.cls) if func.cls else None


def build_index(modules: List[ModuleInfo]) -> ProgramIndex:
    return ProgramIndex(modules)
