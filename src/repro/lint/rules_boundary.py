"""Boundary rules: keep secrets and trusted state inside the enclave.

These rules encode the trusted/untrusted split of
:mod:`repro.lint.classify`: untrusted (host-world) code must reach
trusted state only through ecalls and registered ocalls, never by
importing enclave internals or poking private attributes, and data
leaving the enclave must be sealed bytes or sanitized scalars.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from repro.lint.classify import (
    TRUSTED_INTERNAL_NAMES,
    Trust,
    has_secret_token,
    is_trusted_module,
)
from repro.lint.findings import Finding, Severity
from repro.lint.registry import LintContext, Rule, register

__all__ = [
    "TrustedImportRule",
    "EnclavePrivateAccessRule",
    "EcallSecretReturnRule",
    "OcallHandlerPayloadRule",
]


@register
class TrustedImportRule(Rule):
    """Untrusted module imports an enclave-internal, secret-bearing name."""

    rule_id = "REX-B001"
    name = "trusted-import-in-untrusted"
    severity = Severity.ERROR
    description = (
        "untrusted (host-side) module imports a secret-bearing name from a "
        "trusted module, or a trusted module wholesale"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.trust is not Trust.UNTRUSTED:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                if node.level or not node.module:
                    continue  # relative import: same package, same trust
                if not is_trusted_module(node.module):
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        yield self.finding(
                            ctx,
                            node,
                            f"star-import from trusted module {node.module!r} "
                            "pulls enclave internals into untrusted code",
                        )
                    elif alias.name in TRUSTED_INTERNAL_NAMES:
                        yield self.finding(
                            ctx,
                            node,
                            f"untrusted module imports enclave-internal "
                            f"{alias.name!r} from {node.module!r}; reach "
                            "trusted state via ecalls instead",
                        )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if is_trusted_module(alias.name):
                        yield self.finding(
                            ctx,
                            node,
                            f"untrusted module imports trusted module "
                            f"{alias.name!r} wholesale",
                        )


#: Private state of Enclave / TrustedMemory / EnclaveContext that only
#: the substrate itself may touch.
_PRIVATE_ENCLAVE_ATTRS = frozenset(
    {
        "_app",
        "_ecalls",
        "_ocall_handlers",
        "_context",
        "_in_enclave",
        "_allocations",
        "_dispatch_ocall",
        "_platform_report",
    }
)


@register
class EnclavePrivateAccessRule(Rule):
    """Direct attribute access into Enclave/TrustedMemory private state."""

    rule_id = "REX-B002"
    name = "enclave-private-access"
    severity = Severity.ERROR
    description = (
        "code outside repro.tee.enclave touches private Enclave/"
        "TrustedMemory state (e.g. ._app, ._ecalls, ._allocations)"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.module == "repro.tee.enclave":
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and node.attr in _PRIVATE_ENCLAVE_ATTRS:
                yield self.finding(
                    ctx,
                    node,
                    f"access to enclave-private attribute {node.attr!r}; the "
                    "trusted/untrusted interface is ecall()/register_ocall()",
                )


#: Calls that turn a secret-tainted value into a safe-to-export one.
_SANITIZER_FUNCS = frozenset({"len", "int", "float", "bool", "sum", "str", "repr", "sorted"})
_SANITIZER_METHODS = frozenset({"seal", "encrypt"})


def _is_ecall_method(func: ast.AST) -> bool:
    if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    for deco in func.decorator_list:
        name = deco.id if isinstance(deco, ast.Name) else getattr(deco, "attr", None)
        if name == "ecall":
            return True
    return False


@register
class EcallSecretReturnRule(Rule):
    """An ``@ecall`` method returns a secret-tainted value to the host."""

    rule_id = "REX-B003"
    name = "ecall-returns-secret"
    severity = Severity.ERROR
    description = (
        "@ecall method returns key material / plaintext store state to the "
        "untrusted host without passing through the AEAD seal path"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for func in node.body:
                if not _is_ecall_method(func):
                    continue
                for ret in ast.walk(func):
                    if isinstance(ret, ast.Return) and ret.value is not None:
                        tainted = self._first_taint(ret.value, sanitized=False)
                        if tainted is not None:
                            yield self.finding(
                                ctx,
                                ret,
                                f"ecall {func.name!r} returns secret-tainted "
                                f"value {tainted!r}; seal it or export a "
                                "sanitized scalar",
                            )

    def _first_taint(self, node: ast.AST, sanitized: bool) -> Optional[str]:
        """Depth-first search for a tainted identifier outside sanitizers."""
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
            child_sanitized = sanitized or (
                name in _SANITIZER_FUNCS or name in _SANITIZER_METHODS
            )
            for child in ast.iter_child_nodes(node):
                hit = self._first_taint(child, child_sanitized)
                if hit is not None:
                    return hit
            return None
        if not sanitized:
            if isinstance(node, ast.Name) and has_secret_token(node.id):
                return node.id
            if isinstance(node, ast.Attribute) and has_secret_token(node.attr):
                return node.attr
        for child in ast.iter_child_nodes(node):
            hit = self._first_taint(child, sanitized)
            if hit is not None:
                return hit
        return None


#: Annotations an ocall handler parameter may carry: opaque bytes or
#: plain scalars.  Rich objects crossing outward must be serialized (and,
#: in the secure build, sealed) first.
_ALLOWED_OCALL_ANNOTATIONS = frozenset(
    {"bytes", "bytearray", "memoryview", "int", "str", "float", "bool", "None"}
)


@register
class OcallHandlerPayloadRule(Rule):
    """Ocall handlers must receive bytes/scalar payloads, explicitly typed."""

    rule_id = "REX-B004"
    name = "ocall-nonbytes-payload"
    severity = Severity.ERROR
    description = (
        "registered ocall handler takes an unannotated or rich-typed "
        "parameter; boundary payloads must be bytes or plain scalars"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            methods: Dict[str, ast.FunctionDef] = {
                item.name: item
                for item in cls.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for node in ast.walk(cls):
                handler = self._registered_self_handler(node)
                if handler is None or handler not in methods:
                    continue
                func = methods[handler]
                params = func.args.args[1:] if func.args.args else []
                for param in params:
                    if param.annotation is None:
                        yield self.finding(
                            ctx,
                            func,
                            f"ocall handler {handler!r} parameter "
                            f"{param.arg!r} is unannotated; boundary payloads "
                            "must declare a bytes/scalar type",
                        )
                        continue
                    annotation = ast.unparse(param.annotation)
                    if annotation not in _ALLOWED_OCALL_ANNOTATIONS:
                        yield self.finding(
                            ctx,
                            func,
                            f"ocall handler {handler!r} receives "
                            f"{param.arg!r}: {annotation}; only bytes or "
                            "plain scalars may cross the boundary",
                        )

    @staticmethod
    def _registered_self_handler(node: ast.AST) -> Optional[str]:
        """Method name when ``node`` is ``x.register_ocall("n", self.m)``."""
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "register_ocall"
            and len(node.args) >= 2
        ):
            return None
        handler = node.args[1]
        if (
            isinstance(handler, ast.Attribute)
            and isinstance(handler.value, ast.Name)
            and handler.value.id == "self"
        ):
            return handler.attr
        return None
