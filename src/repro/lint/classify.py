"""Trusted/untrusted module classification the boundary rules encode.

The REX security argument (paper Sections II-C and III-B) rests on a
static split of the codebase:

- **TRUSTED** modules are enclave-resident: the protocol logic
  (``repro.core.app``), the raw-data store and secure channels, the
  crypto primitives, the in-enclave attestation state machine and the
  model code that trains on plaintext ratings.  Their secret-bearing
  names must never be imported by host-side code.
- **UNTRUSTED** modules are the host world: bootstrap, network
  transport, dataset files, CLIs, analysis.  They may only talk to
  trusted code through :meth:`Enclave.ecall` / registered ocalls.
- **SHARED** modules are the substrate and the types that legitimately
  cross the boundary (the enclave mechanism itself, wire-format
  message/stat/config dataclasses, observability, the simulators that
  deliberately play every role in one process).

The classification is by module-name prefix so the linter needs no
imports: it works on source trees that do not import cleanly.
"""

from __future__ import annotations

import re
from enum import Enum
from typing import Iterable

__all__ = [
    "Trust",
    "classify_module",
    "is_trusted_module",
    "lattice_prefix",
    "TRUSTED_PREFIXES",
    "SHARED_PREFIXES",
    "UNTRUSTED_PREFIXES",
    "UNTRUSTED_MODULES",
    "TRUSTED_INTERNAL_NAMES",
    "ENTROPY_SHIM_MODULES",
    "has_secret_token",
]


class Trust(Enum):
    TRUSTED = "trusted"
    UNTRUSTED = "untrusted"
    SHARED = "shared"


#: Enclave-resident code (Algorithm 2 world, plus the serving engine:
#: snapshots hold plaintext model parameters and the exclusion index is
#: derived from the raw rating store).
TRUSTED_PREFIXES: tuple = (
    "repro.core.app",
    "repro.core.store",
    "repro.core.channel",
    "repro.core.admission",
    "repro.tee.crypto",
    "repro.tee.attestation",
    "repro.ml",
    "repro.serve.snapshot",
    "repro.serve.scoring",
    "repro.serve.cache",
    "repro.serve.endpoint",
    # Shard endpoints slice plaintext parameter arrays and own a
    # plaintext snapshot + raw-rating exclusion index per partition.
    "repro.serve.fleet.shard",
)

#: Substrate + boundary-crossing types + sanctioned whole-system models.
#: ``repro.sim`` fleet simulators are the fidelity-tier shortcut world:
#: they model every node's trusted role centrally, without enclaves, and
#: are therefore exempt from the boundary rules (but not from the crypto
#: or determinism rules).
SHARED_PREFIXES: tuple = (
    "repro.tee",
    "repro.core.stats",
    "repro.core.messages",
    "repro.core.config",
    "repro.obs",
    "repro.lint",
    "repro._rng",
    # The whole simulation engine, including the event kernel
    # (repro.sim.kernel): the kernel schedules trusted work (training
    # epochs, fault ticks) and untrusted work (transport ticks, serving
    # arrivals) on one queue, so it belongs to both worlds by design.
    "repro.sim",
    # The train->publish->serve pipeline plays every role in one process,
    # exactly like the repro.sim fleet simulators.
    "repro.serve.runner",
    # The fleet's routing fabric crosses the boundary by design: the
    # ring and balancer are host-side plumbing that talks to trusted
    # shard enclaves only via ecalls, and the fleet runner plays every
    # role in one process like repro.serve.runner.
    "repro.serve.fleet.router",
    "repro.serve.fleet.balancer",
    "repro.serve.fleet.runner",
)

#: Secret-bearing names defined in trusted modules.  Untrusted code
#: importing any of these is a boundary leak: these objects hold or can
#: mint key material, plaintext ratings, or protocol state.  Public
#: constants (sizes, overheads) and hyper-parameter dataclasses exported
#: by the same modules are deliberately *not* listed.
TRUSTED_INTERNAL_NAMES: frozenset = frozenset(
    {
        # repro.core.store / channel
        "DataStore",
        "SecureChannel",
        "AccountedChannel",
        "PlaintextChannel",
        # repro.tee.crypto
        "ChaCha20Poly1305",
        "chacha20_block",
        "chacha20_encrypt",
        "chacha20_xor",
        "poly1305_mac",
        "hkdf",
        "hkdf_extract",
        "hkdf_expand",
        "X25519PrivateKey",
        "SigningKey",
        # repro.tee.attestation
        "MutualAttestation",
        "derive_channel_key",
        # repro.serve: snapshots and the serving engine hold plaintext
        # model parameters; hosts deal in encoded payloads + SnapshotMeta.
        "ModelSnapshot",
        "ServingState",
    }
)

#: Host-side subtrees: every module under these prefixes is untrusted,
#: including ones added later (wholly-host packages stay wholly host).
UNTRUSTED_PREFIXES: tuple = (
    "repro.analysis",
    "repro.data",
    "repro.faults",
    "repro.net",
)

#: Host-side modules listed *exactly*, not by subtree.  These live in
#: mixed packages (``repro.core`` holds both the enclave app and the
#: host bootstrap) where a subtree prefix would silently classify any
#: future sibling module.  A new module in a mixed package must be added
#: to one of the lattice tables by hand -- REX-S002 fails the lint run
#: until it is.
UNTRUSTED_MODULES: frozenset = frozenset(
    {
        "repro",
        "repro.__main__",
        "repro.cli",
        "repro.core",
        "repro.core.cluster",
        "repro.core.host",
        "repro.serve",
        "repro.serve.costing",
        "repro.serve.fleet",
        "repro.serve.fleet.report",
        "repro.serve.report",
        "repro.serve.server",
        "repro.serve.workload",
    }
)

#: Modules allowed to touch real entropy / wall-clock sources.  Only the
#: seed-derivation helper lives here by default; crypto keygen paths use
#: per-line suppressions with justifications instead, so every exception
#: stays visible at the call site.
ENTROPY_SHIM_MODULES: frozenset = frozenset({"repro._rng"})

#: Identifier tokens that mark a value as secret-tainted for the
#: ecall-return rule: key material, shared secrets, plaintext, the raw
#: rating store.
_SECRET_TOKENS = frozenset(
    {
        "key",
        "keys",
        "secret",
        "secrets",
        "plaintext",
        "priv",
        "private",
        "sk",
        "ikm",
        "prk",
        "store",
    }
)

_TOKEN_SPLIT = re.compile(r"[_\W]+")


def _match(module: str, prefixes: Iterable[str]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


def classify_module(module: str) -> Trust:
    """Classify a dotted module name into the trust lattice."""
    if _match(module, TRUSTED_PREFIXES):
        return Trust.TRUSTED
    if _match(module, SHARED_PREFIXES):
        return Trust.SHARED
    return Trust.UNTRUSTED


def is_trusted_module(module: str) -> bool:
    return classify_module(module) is Trust.TRUSTED


def lattice_prefix(module: str) -> "str | None":
    """The lattice entry that claims ``module``, or ``None`` for orphans.

    ``classify_module`` is total (unknown modules default to UNTRUSTED so
    the boundary rules fail safe), but the default hides omissions: a new
    enclave module that nobody added to :data:`TRUSTED_PREFIXES` would be
    silently linted as host code.  This helper distinguishes *explicitly
    placed* from *defaulted* so REX-S002 can make the omission an error.
    """
    for table in (TRUSTED_PREFIXES, SHARED_PREFIXES, UNTRUSTED_PREFIXES):
        for prefix in table:
            if module == prefix or module.startswith(prefix + "."):
                return prefix
    if module in UNTRUSTED_MODULES:
        return module
    return None


def has_secret_token(identifier: str) -> bool:
    """True when a variable/attribute name looks secret-bearing."""
    tokens = [t for t in _TOKEN_SPLIT.split(identifier.lower()) if t]
    return any(t in _SECRET_TOKENS for t in tokens)
