"""``repro.lint`` -- enclave-boundary, crypto-misuse and determinism linter.

A dependency-free AST analyzer enforcing the invariants the runtime
substrate cannot: untrusted code never imports enclave internals, tags
are compared in constant time, nonces derive from channel counters, and
no wall-clock/entropy read sneaks into the deterministic simulation.

Run it as ``repro lint [paths ...]`` or programmatically::

    from repro.lint import lint_paths
    report = lint_paths(["src/repro"])
    assert report.errors == 0
"""

from repro.lint.classify import Trust, classify_module
from repro.lint.findings import Finding, Severity
from repro.lint.registry import LintContext, Rule, all_rules, register, rule_catalog
from repro.lint.runner import (
    LintReport,
    lint_file,
    lint_paths,
    lint_source,
    module_name_for,
)

__all__ = [
    "Trust",
    "classify_module",
    "Finding",
    "Severity",
    "LintContext",
    "Rule",
    "register",
    "all_rules",
    "rule_catalog",
    "LintReport",
    "lint_source",
    "lint_file",
    "lint_paths",
    "module_name_for",
]
