"""``repro.lint`` -- enclave-boundary, crypto-misuse and determinism linter.

A dependency-free AST analyzer enforcing the invariants the runtime
substrate cannot: untrusted code never imports enclave internals, tags
are compared in constant time, nonces derive from channel counters, no
wall-clock/entropy read sneaks into the deterministic simulation -- and,
via the interprocedural taint pass (:mod:`repro.lint.flow`), raw rating
data, decrypted payloads and enclave model state never reach a
host-visible sink unsealed.

Run it as ``repro lint [paths ...]`` or programmatically::

    from repro.lint import lint_paths
    report = lint_paths(["src/repro"])
    assert report.errors == 0
"""

from repro.lint.baseline import Baseline
from repro.lint.classify import Trust, classify_module, lattice_prefix
from repro.lint.findings import Finding, FlowStep, Severity
from repro.lint.registry import (
    LintContext,
    Program,
    ProgramRule,
    Rule,
    all_program_rules,
    all_rules,
    register,
    rule_catalog,
)
from repro.lint.runner import (
    LintReport,
    lint_file,
    lint_paths,
    lint_source,
    lint_sources,
    module_name_for,
)
from repro.lint.sarif import format_sarif, to_sarif

__all__ = [
    "Trust",
    "classify_module",
    "lattice_prefix",
    "Finding",
    "FlowStep",
    "Severity",
    "LintContext",
    "Program",
    "Rule",
    "ProgramRule",
    "register",
    "all_rules",
    "all_program_rules",
    "rule_catalog",
    "LintReport",
    "lint_source",
    "lint_sources",
    "lint_file",
    "lint_paths",
    "module_name_for",
    "Baseline",
    "format_sarif",
    "to_sarif",
]
