"""Small AST helpers shared by the rule modules."""

from __future__ import annotations

import ast
from typing import Iterator, Optional

__all__ = ["dotted_name", "call_func_name", "walk_functions", "is_constant_expr"]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_func_name(node: ast.Call) -> Optional[str]:
    """Dotted name of the called object, when statically resolvable."""
    return dotted_name(node.func)


def walk_functions(tree: ast.AST) -> Iterator[ast.AST]:
    """All function-like scopes (module, functions, lambdas) in ``tree``."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            yield node


def is_constant_expr(node: ast.AST) -> bool:
    """True when ``node`` contains no Name/Attribute/Call -- i.e. it
    evaluates to the same value on every execution (literals, literal
    arithmetic, f-string-free concatenation)."""
    return not any(
        isinstance(sub, (ast.Name, ast.Attribute, ast.Call))
        for sub in ast.walk(node)
    )
