"""Event-kernel purity rules REX-K001..K003.

The PR-6 event kernel (:mod:`repro.sim.kernel`) guarantees a
deterministic ``(time, key, seq)`` total order and a reproducible
SHA-256 trace digest -- but only if handlers hold up their side of the
contract:

- **K001** -- a handler must derive *everything* from kernel time and
  seeded RNG streams.  Touching ``time``/``datetime``/``random``/
  ``secrets`` inside a handler body smuggles wall-clock or entropy into
  the dispatch order or the handler's effects.
- **K002** -- a handler defined inside a loop must not capture the loop
  variable by reference (Python's late binding makes every dispatch see
  the *last* value; bind it via a default argument or an intrinsic key).
- **K003** -- scheduling from inside a loop without an explicit
  ``key=`` makes same-timestamp dispatch depend on insertion order,
  which the kernel's trace-digest contract explicitly rejects.

Scheduling calls are recognized as ``<recv>.at/.after/.every(...)``
where the receiver is kernel-named or the call carries the kernel's
``kind=``/``key=`` keywords -- this keeps ``np.add.at(...)`` and other
unrelated ``.at`` methods out.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.astutil import dotted_name
from repro.lint.findings import Finding, Severity
from repro.lint.registry import LintContext, Rule, register

__all__ = [
    "HandlerImpurityRule",
    "HandlerLoopCaptureRule",
    "UnkeyedLoopSchedulingRule",
]

_SCHED_METHODS = frozenset({"at", "after", "every"})
_SCHED_KWARGS = frozenset({"kind", "key"})
_KERNEL_TOKENS = frozenset({"kernel"})
_IMPURE_HEADS = frozenset({"time", "datetime", "random", "secrets"})

_TOKEN_SPLIT = re.compile(r"[_\W]+")


def _tokens(name: Optional[str]) -> frozenset:
    if not name:
        return frozenset()
    return frozenset(t for t in _TOKEN_SPLIT.split(name.lower()) if t)


def _sched_call(node: ast.AST) -> Optional[ast.Call]:
    """The node as a kernel scheduling call, else None."""
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
        return None
    if node.func.attr not in _SCHED_METHODS:
        return None
    has_kernel_kw = any(kw.arg in _SCHED_KWARGS for kw in node.keywords)
    receiver = dotted_name(node.func.value)
    if has_kernel_kw or _tokens(receiver) & _KERNEL_TOKENS:
        return node
    return None


def _handler_expr(call: ast.Call) -> Optional[ast.AST]:
    """The handler argument: ``at(time, fn)`` / ``after(delay, fn)`` /
    ``every(period, fn)`` all carry it in position 1."""
    if len(call.args) >= 2:
        return call.args[1]
    for kw in call.keywords:
        if kw.arg == "fn":
            return kw.value
    return None


def _function_index(tree: ast.Module) -> Dict[str, ast.AST]:
    """Every def in the file by bare name (methods included)."""
    index: Dict[str, ast.AST] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            index.setdefault(node.name, node)
    return index


def _handler_body(
    handler: Optional[ast.AST], index: Dict[str, ast.AST]
) -> Optional[Tuple[ast.AST, Tuple[str, ...]]]:
    """``(body_root, param_names)`` of the handler, when resolvable."""
    if isinstance(handler, ast.Lambda):
        params = tuple(
            p.arg
            for p in handler.args.posonlyargs
            + handler.args.args
            + handler.args.kwonlyargs
        )
        return handler.body, params
    name = None
    if isinstance(handler, ast.Name):
        name = handler.id
    elif isinstance(handler, ast.Attribute):
        name = handler.attr  # bound method: self._deliver
    if name and name in index:
        fn = index[name]
        params = tuple(
            p.arg
            for p in fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs
        )
        return fn, params
    return None


def _sched_calls_with_loops(
    tree: ast.Module,
) -> Iterator[Tuple[ast.Call, List[ast.AST]]]:
    """Scheduling calls paired with their enclosing loop statements."""

    def visit(node: ast.AST, loops: List[ast.AST]) -> Iterator:
        call = _sched_call(node)
        if call is not None:
            yield call, list(loops)
        entered = loops
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            entered = loops + [node]
        for child in ast.iter_child_nodes(node):
            yield from visit(child, entered)

    yield from visit(tree, [])


def _loop_targets(loops: List[ast.AST]) -> Set[str]:
    names: Set[str] = set()
    for loop in loops:
        if isinstance(loop, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(loop.target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    return names


@register
class HandlerImpurityRule(Rule):
    """Kernel handler touches wall-clock / entropy modules."""

    rule_id = "REX-K001"
    name = "kernel-handler-impure"
    severity = Severity.ERROR
    description = (
        "event-kernel handler body references time/datetime/random/"
        "secrets; handlers must derive everything from kernel time and "
        "seeded streams"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        index = _function_index(ctx.tree)
        seen: Set[int] = set()
        for call, _loops in _sched_calls_with_loops(ctx.tree):
            resolved = _handler_body(_handler_expr(call), index)
            if resolved is None:
                continue
            body, _params = resolved
            if id(body) in seen:
                continue
            seen.add(id(body))
            for node in ast.walk(body):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id in _IMPURE_HEADS
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"kernel handler references "
                        f"{node.value.id}.{node.attr}; handlers must be "
                        "pure in kernel time and seeded RNG streams",
                    )


@register
class HandlerLoopCaptureRule(Rule):
    """Handler defined in a loop captures the loop variable late-bound."""

    rule_id = "REX-K002"
    name = "kernel-handler-loop-capture"
    severity = Severity.ERROR
    description = (
        "handler scheduled inside a loop captures the loop variable by "
        "reference; every dispatch will see the final value -- bind it "
        "with a default argument (lambda x=x: ...) instead"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for call, loops in _sched_calls_with_loops(ctx.tree):
            if not loops:
                continue
            handler = _handler_expr(call)
            # only inline closures late-bind; bound methods take the
            # value through the key/arguments at dispatch
            if not isinstance(handler, ast.Lambda):
                continue
            params = {
                p.arg
                for p in handler.args.posonlyargs
                + handler.args.args
                + handler.args.kwonlyargs
            }
            captured = _loop_targets(loops) - params
            if not captured:
                continue
            used = sorted(
                node.id
                for node in ast.walk(handler.body)
                if isinstance(node, ast.Name) and node.id in captured
            )
            if used:
                yield self.finding(
                    ctx,
                    handler,
                    f"handler lambda captures loop variable(s) "
                    f"{', '.join(sorted(set(used)))} by reference; bind "
                    "via default argument so each dispatch sees its own "
                    "value",
                )


@register
class UnkeyedLoopSchedulingRule(Rule):
    """Scheduling from a loop without an intrinsic ``key=``."""

    rule_id = "REX-K003"
    name = "kernel-unkeyed-loop-scheduling"
    severity = Severity.ERROR
    description = (
        "kernel.at/after/every called inside a loop without an explicit "
        "key=; same-timestamp dispatch would depend on insertion order, "
        "breaking the trace-digest contract"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for call, loops in _sched_calls_with_loops(ctx.tree):
            if not loops:
                continue
            if any(kw.arg == "key" for kw in call.keywords):
                continue
            yield self.finding(
                ctx,
                call,
                f"{call.func.attr}() scheduled from a loop without key=; "
                "pass an intrinsic event key so same-timestamp order is "
                "insertion-independent",
            )
