"""Taint domain and per-function summaries for the flow analyzer.

The abstract domain is deliberately small so the fixpoint is finite:

- a :class:`Taint` is an *origin identity* ``(kind, ident)`` -- e.g.
  ``("ratings", "DataStore.sample")`` for data pulled out of the raw
  rating store, or the placeholder ``("param", "sample")`` inside a
  summary, standing for "whatever the caller passes as ``sample``".
- an abstract value maps each taint to one *witness path*: the shortest
  (then lexicographically first) chain of :class:`Step` s from the
  source to here.  Witness paths are bookkeeping only -- fixpoint
  equality compares taint *sets*, so the lattice height is bounded by
  the (finite) catalog and the iteration terminates.

:class:`FunctionAnalyzer` runs one abstract-interpretation pass over a
function body against the current whole-program state (callee summaries
plus per-class attribute environments) and produces a
:class:`FunctionSummary`: the taints of the return value, the taints
written to ``self.*`` attributes, and every sink reached -- each of
which may still depend on parameters, to be substituted at call sites
by the fixpoint driver in :mod:`repro.lint.flow`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lint.astutil import dotted_name
from repro.lint.callgraph import FunctionInfo, ProgramIndex

__all__ = [
    "Taint",
    "Step",
    "AbstractVal",
    "SinkHit",
    "FunctionSummary",
    "FlowHooks",
    "FunctionAnalyzer",
    "merge",
    "substitute",
    "PARAM",
]

#: Taint kind reserved for "depends on this parameter" placeholders.
PARAM = "param"

#: Witness paths longer than this are truncated from the middle; the
#: source and sink ends are what a reader needs.
_MAX_STEPS = 16

#: Unresolved methods that mutate their receiver with their arguments;
#: calling one with tainted args taints the container (aliasing).
_MUTATOR_METHODS = frozenset(
    {"append", "appendleft", "add", "insert", "extend", "update", "setdefault"}
)


@dataclass(frozen=True)
class Taint:
    kind: str  # "ratings" | "plaintext" | "model" | PARAM
    ident: str  # catalog entry or parameter name


@dataclass(frozen=True)
class Step:
    path: str
    line: int
    note: str


#: taint -> witness steps (source first).
AbstractVal = Dict[Taint, Tuple[Step, ...]]


def _better(a: Tuple[Step, ...], b: Tuple[Step, ...]) -> Tuple[Step, ...]:
    """Deterministic witness choice: shortest, then lexicographic."""
    ka = (len(a), tuple((s.path, s.line, s.note) for s in a))
    kb = (len(b), tuple((s.path, s.line, s.note) for s in b))
    return a if ka <= kb else b


def merge(*vals: Optional[AbstractVal]) -> AbstractVal:
    out: AbstractVal = {}
    for val in vals:
        if not val:
            continue
        for taint, steps in val.items():
            out[taint] = _better(out[taint], steps) if taint in out else steps
    return out


def _extend(steps: Tuple[Step, ...], step: Step) -> Tuple[Step, ...]:
    if len(steps) >= _MAX_STEPS:
        return steps[: _MAX_STEPS // 2] + steps[-(_MAX_STEPS // 2 - 1) :] + (step,)
    return steps + (step,)


def substitute(
    val: AbstractVal,
    argmap: Dict[str, AbstractVal],
    call_step: Optional[Step],
    extend_concrete: bool = False,
) -> AbstractVal:
    """Resolve ``param`` placeholders in ``val`` against call-site args.

    Concrete taints pass through (their witness already starts at a real
    source inside the callee); a ``param`` placeholder expands to the
    caller's taints for that argument, with the call edge spliced into
    the witness path.  ``extend_concrete`` appends the call edge to
    concrete taints too -- used for return values, where the hop back to
    the caller is part of the story the witness tells.
    """
    out: AbstractVal = {}
    for taint, steps in val.items():
        if taint.kind != PARAM:
            if extend_concrete and call_step is not None:
                steps = _extend(steps, call_step)
            out[taint] = _better(out.get(taint, steps), steps)
            continue
        arg_val = argmap.get(taint.ident)
        if not arg_val:
            continue
        for arg_taint, arg_steps in arg_val.items():
            composed = arg_steps
            if call_step is not None:
                composed = _extend(composed, call_step)
            for step in steps:
                composed = _extend(composed, step)
            out[arg_taint] = _better(out.get(arg_taint, composed), composed)
    return out


@dataclass(frozen=True)
class SinkHit:
    """One flow into a sink, possibly still parameter-dependent."""

    sink: str  # sink catalog key, e.g. "ecall-return"
    path: str
    line: int
    col: int
    desc: str  # human sink description for the finding message

    def location_key(self) -> Tuple[str, str, int, int]:
        return (self.sink, self.path, self.line, self.col)


@dataclass
class FunctionSummary:
    qualname: str
    returns: AbstractVal = field(default_factory=dict)
    attr_writes: Dict[str, AbstractVal] = field(default_factory=dict)
    #: sink hits keyed by location, each with the abstract value that
    #: reached the sink (may contain ``param`` placeholders).
    sink_hits: Dict[SinkHit, AbstractVal] = field(default_factory=dict)

    def fingerprint(self) -> frozenset:
        """Taint-set shape only -- witness paths excluded on purpose."""
        items = set()
        for taint in self.returns:
            items.add(("ret", taint))
        for attr, val in self.attr_writes.items():
            for taint in val:
                items.add(("attr", attr, taint))
        for hit, val in self.sink_hits.items():
            for taint in val:
                items.add(("sink", hit.location_key(), taint))
        return frozenset(items)


class FlowHooks:
    """Catalog interface the analyzer consults; overridden in flow.py.

    ``receiver`` arguments are the dotted receiver expression when
    statically printable (``self.store``, ``channel``) else ``None``;
    ``receiver_type`` is the resolved class qualname when the light
    type inference got one.
    """

    sanitizer_attrs: frozenset = frozenset()

    def source_for_call(
        self,
        func_name: Optional[str],
        method: Optional[str],
        receiver: Optional[str],
        receiver_type: Optional[str],
    ) -> Optional[Taint]:
        return None

    def source_for_attr(
        self, attr: str, receiver_type: Optional[str]
    ) -> Optional[Taint]:
        return None

    def is_sanitizer(
        self, func_name: Optional[str], method: Optional[str]
    ) -> bool:
        return False

    def sink_for_call(
        self,
        node: ast.Call,
        method: Optional[str],
        receiver: Optional[str],
        fn: FunctionInfo,
    ) -> Optional[Tuple[str, str, List[ast.AST]]]:
        """``(sink_key, description, checked_args)`` or None."""
        return None

    def check_sinks(self) -> bool:
        """Whether sinks apply in the module currently analyzed."""
        return True


class FunctionAnalyzer(ast.NodeVisitor):
    """One abstract-interpretation pass over one function body."""

    def __init__(
        self,
        index: ProgramIndex,
        fn: FunctionInfo,
        hooks: FlowHooks,
        class_env: Dict[str, Dict[str, AbstractVal]],
        summaries: Dict[str, FunctionSummary],
        path: str,
    ):
        self.index = index
        self.fn = fn
        self.hooks = hooks
        self.class_env = class_env
        self.summaries = summaries
        self.path = path
        self.summary = FunctionSummary(qualname=fn.qualname)
        self.env: Dict[str, AbstractVal] = {
            p: {Taint(PARAM, p): ()} for p in fn.params
        }
        #: local name -> class qualname, for typed receivers
        self.local_types: Dict[str, str] = {}
        self_name = fn.params[0] if fn.is_method and fn.params else None
        self._self_name = self_name

    # ------------------------------------------------------------------
    # driver

    def run(self) -> FunctionSummary:
        body = getattr(self.fn.node, "body", [])
        # Two passes pick up loop-carried taint (x defined late, used
        # early next iteration); the domain is monotone so this only
        # ever adds taints.
        for _ in range(2):
            for stmt in body:
                self._exec(stmt)
        return self.summary

    # ------------------------------------------------------------------
    # statements

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                val = self._eval(stmt.value)
                self.summary.returns = merge(self.summary.returns, val)
                if self.fn.is_ecall and self.hooks.check_sinks():
                    self._hit_sink(
                        "ecall-return",
                        f"returned to the host from ecall {self.fn.name!r}",
                        stmt,
                        val,
                    )
        elif isinstance(stmt, ast.Assign):
            val = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, val, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._eval(stmt.value), stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            val = self._eval(stmt.value)
            prior = self._eval(stmt.target) if not isinstance(
                stmt.target, ast.Starred
            ) else {}
            self._assign(stmt.target, merge(val, prior), stmt.value)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.If,)):
            self._eval(stmt.test)
            for s in stmt.body + stmt.orelse:
                self._exec(s)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._assign(stmt.target, self._eval(stmt.iter), stmt.iter)
            for s in stmt.body + stmt.orelse:
                self._exec(s)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            for s in stmt.body + stmt.orelse:
                self._exec(s)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                val = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, val, item.context_expr)
            for s in stmt.body:
                self._exec(s)
        elif isinstance(stmt, ast.Try):
            for s in stmt.body + stmt.orelse + stmt.finalbody:
                self._exec(s)
            for handler in stmt.handlers:
                for s in handler.body:
                    self._exec(s)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                val = self._eval(stmt.exc)
                if val and self.hooks.check_sinks():
                    self._hit_sink(
                        "exception-message",
                        "interpolated into a raised exception message "
                        "(marshalled across the ecall boundary)",
                        stmt,
                        val,
                    )
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            pass  # nested defs are indexed separately; closures are out of scope
        # remaining statement kinds (pass, import, global, ...) carry no taint

    def _assign(self, target: ast.AST, val: AbstractVal, rhs: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = merge(self.env.get(target.id), val)
            ctor = self.index.resolve_constructor(self.fn.module, rhs)
            if ctor:
                self.local_types[target.id] = ctor
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            root, first_attr = self._chain(target)
            if root == self._self_name and self.fn.cls and first_attr:
                # any store through self -- plain (self.x = v), keyed
                # (self.inbox[k] = v), even via a method on the container
                # (self.inbox.setdefault(...)[k] = v) -- taints that one
                # attribute, never the whole object
                self._write_self_attr(first_attr, val, target)
            elif root and root != self._self_name and val:
                # aliasing through a local container/attribute: taint
                # the base object conservatively
                self.env[root] = merge(self.env.get(root), val)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, val, rhs)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, val, rhs)

    def _write_self_attr(
        self, attr: str, val: AbstractVal, node: ast.AST
    ) -> None:
        if not val:
            return
        step = Step(
            self.path,
            getattr(node, "lineno", 1),
            f"stored to {self.fn.cls.split('.')[-1]}.{attr}",
        )
        stamped = {t: _extend(s, step) for t, s in val.items()}
        self.summary.attr_writes[attr] = merge(
            self.summary.attr_writes.get(attr), stamped
        )

    @staticmethod
    def _chain(node: ast.AST) -> Tuple[Optional[str], Optional[str]]:
        """``(root_name, attr_nearest_root)`` of an access chain.

        Walks through attributes, subscripts and call results so
        ``self.inbox.setdefault(e, {})[k]`` resolves to
        ``("self", "inbox")``.
        """
        first_attr = None
        while True:
            if isinstance(node, ast.Attribute):
                first_attr = node.attr
                node = node.value
            elif isinstance(node, ast.Subscript):
                node = node.value
            elif isinstance(node, ast.Call):
                node = node.func
            else:
                break
        if isinstance(node, ast.Name):
            return node.id, first_attr
        return None, None

    # ------------------------------------------------------------------
    # expressions

    def _eval(self, node: Optional[ast.AST]) -> AbstractVal:
        if node is None:
            return {}
        if isinstance(node, ast.Constant):
            return {}
        if isinstance(node, ast.Name):
            return dict(self.env.get(node.id, {}))
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Compare):
            # comparisons project to bool: a len/threshold-style
            # declassification, not a data flow
            self._eval(node.left)
            for comp in node.comparators:
                self._eval(comp)
            return {}
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            return merge(*(self._eval(e) for e in node.elts))
        if isinstance(node, ast.Dict):
            vals = [self._eval(k) for k in node.keys if k is not None]
            vals += [self._eval(v) for v in node.values]
            return merge(*vals)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._eval_comprehension(node, [node.elt])
        if isinstance(node, ast.DictComp):
            return self._eval_comprehension(node, [node.key, node.value])
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return merge(self._eval(node.body), self._eval(node.orelse))
        if isinstance(node, ast.BoolOp):
            return merge(*(self._eval(v) for v in node.values))
        if isinstance(node, ast.BinOp):
            return merge(self._eval(node.left), self._eval(node.right))
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.Subscript):
            self._eval(node.slice)
            return self._eval(node.value)
        if isinstance(node, ast.JoinedStr):
            return merge(*(self._eval(v) for v in node.values))
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.Slice):
            return {}
        if isinstance(node, ast.Lambda):
            return {}
        # fallback (walrus, await, yield, ...): union over child expressions
        return merge(
            *(
                self._eval(child)
                for child in ast.iter_child_nodes(node)
                if isinstance(child, ast.expr)
            )
        )

    def _eval_comprehension(self, node: ast.AST, results: List[ast.AST]) -> AbstractVal:
        for gen in node.generators:
            self._assign(gen.target, self._eval(gen.iter), gen.iter)
            for cond in gen.ifs:
                self._eval(cond)
        return merge(*(self._eval(r) for r in results))

    def _eval_attribute(self, node: ast.Attribute) -> AbstractVal:
        if node.attr in self.hooks.sanitizer_attrs:
            self._eval(node.value)
            return {}
        base_val = self._eval(node.value)
        receiver_type = self._type_of(node.value)
        seeded = self.hooks.source_for_attr(node.attr, receiver_type)
        out = dict(base_val)
        if seeded is not None:
            step = Step(
                self.path,
                node.lineno,
                f"source: {receiver_type.split('.')[-1] if receiver_type else '?'}"
                f".{node.attr} (enclave-resident data)",
            )
            out = merge(out, {seeded: (step,)})
        # reading self.attr pulls in the class attribute environment
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == self._self_name
            and self.fn.cls
        ):
            cls_val = self._class_attr_val(self.fn.cls, node.attr)
            out = merge(out, cls_val)
        return out

    def _class_attr_val(self, cls_qual: str, attr: str) -> AbstractVal:
        seen = set()
        stack = [cls_qual]
        out: AbstractVal = {}
        while stack:
            qual = stack.pop(0)
            if qual in seen:
                continue
            seen.add(qual)
            out = merge(out, self.class_env.get(qual, {}).get(attr))
            cls = self.index.classes.get(qual)
            if cls:
                stack.extend(cls.bases)
        return out

    def _type_of(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            if node.id in self.local_types:
                return self.local_types[node.id]
            return None
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == self._self_name
                and self.fn.cls
            ):
                cls = self.index.classes.get(self.fn.cls)
                while cls is not None:
                    if node.attr in cls.attr_types:
                        return cls.attr_types[node.attr]
                    cls = (
                        self.index.classes.get(cls.bases[0]) if cls.bases else None
                    )
        return None

    # ------------------------------------------------------------------
    # calls

    def _eval_call(self, node: ast.Call) -> AbstractVal:
        func = node.func
        method = func.attr if isinstance(func, ast.Attribute) else None
        receiver = (
            dotted_name(func.value) if isinstance(func, ast.Attribute) else None
        )
        func_name = dotted_name(func)

        arg_vals = [self._eval(a) for a in node.args]
        kw_vals = {
            kw.arg: self._eval(kw.value) for kw in node.keywords if kw.arg
        }
        star_kw = [self._eval(kw.value) for kw in node.keywords if kw.arg is None]
        all_args = merge(*arg_vals, *kw_vals.values(), *star_kw)

        # getattr(obj, "name"[, default]) is the attribute read obj.name:
        # sanitizer attributes (nbytes, shape, ...) launder here too
        if (
            isinstance(func, ast.Name)
            and func.id == "getattr"
            and len(node.args) >= 2
            and isinstance(node.args[1], ast.Constant)
            and isinstance(node.args[1].value, str)
        ):
            if node.args[1].value in self.hooks.sanitizer_attrs:
                return merge(*arg_vals[2:])
            return merge(arg_vals[0], *arg_vals[2:])

        # 1. sinks fire on what flows *into* the call
        if self.hooks.check_sinks():
            sink = self.hooks.sink_for_call(node, method, receiver, self.fn)
            if sink is not None:
                sink_key, desc, checked = sink
                checked_val = merge(*(self._eval(a) for a in checked))
                self._hit_sink(sink_key, desc, node, checked_val)

        # 2. sanitizers launder the return value
        if self.hooks.is_sanitizer(func_name, method):
            return {}

        # 3. sources seed fresh taint at the call site
        receiver_type = (
            self._type_of(func.value) if isinstance(func, ast.Attribute) else None
        )
        seeded = self.hooks.source_for_call(
            func_name, method, receiver, receiver_type
        )
        if seeded is not None:
            label = f"{receiver}.{method}" if receiver and method else (
                func_name or method or "?"
            )
            step = Step(self.path, node.lineno, f"source: {label}()")
            return {seeded: (step,)}

        # 4. resolved callee: substitute its summary
        callee = self._resolve_callee(node, receiver_type)
        if callee is not None:
            result = self._apply_summary(node, callee, arg_vals, kw_vals, all_args)
            if callee.name == "__init__":
                # a constructed object carries whatever its arguments
                # carried; __init__ itself returns None
                result = merge(result, all_args)
            return result

        # 5. unknown call: conservatively propagate argument taint; a
        # method result also carries its receiver's taint (dict.get,
        # list.pop, ... hand back part of the container), and mutators
        # (list.append, dict.update, ...) taint the container itself
        if isinstance(func, ast.Attribute):
            if method in _MUTATOR_METHODS and all_args:
                self._assign(func.value, all_args, node)
            return merge(all_args, self._eval(func.value))
        return all_args

    def _resolve_callee(
        self, node: ast.Call, receiver_type: Optional[str]
    ) -> Optional[FunctionInfo]:
        func = node.func
        if isinstance(func, ast.Name):
            resolved = self.index.resolve_name(self.fn.module, func.id)
            if resolved in self.index.functions:
                return self.index.functions[resolved]
            if resolved in self.index.classes:
                return self.index.lookup_method(resolved, "__init__")
            return None
        if isinstance(func, ast.Attribute):
            base = func.value
            if (
                isinstance(base, ast.Name)
                and base.id == self._self_name
                and self.fn.cls
            ):
                return self.index.lookup_method(self.fn.cls, func.attr)
            if receiver_type:
                return self.index.lookup_method(receiver_type, func.attr)
            dotted = dotted_name(func)
            if dotted:
                resolved = self.index.resolve_name(self.fn.module, dotted)
                if resolved in self.index.functions:
                    return self.index.functions[resolved]
                if resolved in self.index.classes:
                    return self.index.lookup_method(resolved, "__init__")
        return None

    def _apply_summary(
        self,
        node: ast.Call,
        callee: FunctionInfo,
        arg_vals: List[AbstractVal],
        kw_vals: Dict[str, AbstractVal],
        all_args: AbstractVal,
    ) -> AbstractVal:
        summary = self.summaries.get(callee.qualname)
        argmap: Dict[str, AbstractVal] = {}
        params = list(callee.params)
        receiver_val: AbstractVal = {}
        if callee.is_method:
            if isinstance(node.func, ast.Attribute):
                receiver_val = self._eval(node.func.value)
            if params:
                argmap[params[0]] = receiver_val
                params = params[1:]
        for i, val in enumerate(arg_vals):
            if i < len(params):
                argmap[params[i]] = val
        for name, val in kw_vals.items():
            if name in callee.params:
                argmap[name] = val
        if summary is None:
            return all_args  # first iteration; next pass sees the summary

        call_step = Step(
            self.path,
            node.lineno,
            f"passed to {callee.qualname.split('.', 2)[-1]}",
        )

        # Parameter-dependent sink hits inside the callee activate here.
        # The hit stays attributed to the callee's sink location; this
        # caller merely supplies the tainted argument, so hits propagate
        # upward regardless of the caller's own trust level.
        for hit, val in summary.sink_hits.items():
            sub = substitute(val, argmap, call_step)
            if sub:
                self.summary.sink_hits[hit] = merge(
                    self.summary.sink_hits.get(hit), sub
                )

        # attribute writes through the callee land on the receiver class
        if callee.cls and summary.attr_writes:
            cls_writes = self.class_env.setdefault(callee.cls, {})
            for attr, val in summary.attr_writes.items():
                sub = substitute(val, argmap, call_step)
                if sub:
                    cls_writes[attr] = merge(cls_writes.get(attr), sub)

        ret_step = Step(
            self.path,
            node.lineno,
            f"returned from {callee.qualname.split('.', 2)[-1]}",
        )
        return substitute(
            summary.returns, argmap, ret_step, extend_concrete=True
        )

    # ------------------------------------------------------------------

    def _hit_sink(
        self, sink: str, desc: str, node: ast.AST, val: AbstractVal
    ) -> None:
        if not val:
            return
        hit = SinkHit(
            sink=sink,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            desc=desc,
        )
        sink_step = Step(hit.path, hit.line, f"sink: {desc}")
        stamped = {t: _extend(s, sink_step) for t, s in val.items()}
        self.summary.sink_hits[hit] = merge(self.summary.sink_hits.get(hit), stamped)
