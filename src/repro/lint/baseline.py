"""Finding baseline with ratchet semantics.

The baseline file records known findings as ``(rule, path, message)``
triples -- line numbers are deliberately excluded so unrelated code
motion does not churn the file.  A lint run with ``--baseline``:

- suppresses findings present in the baseline (they are *known debt*,
  reported in the summary count, and burn down as code is fixed),
- still fails on anything new (the ratchet),
- never needs manual editing: ``--write-baseline`` regenerates the
  file from the current findings, which is how entries are removed
  after a fix.

The shipped tree is clean, so the committed ``lint-baseline.json`` has
zero entries; CI gates on "no finding outside the baseline".
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path, PurePath
from typing import Iterable, List, Set, Tuple

from repro.lint.findings import Finding

__all__ = ["Baseline", "BASELINE_VERSION"]

BASELINE_VERSION = 1


def _norm(path: str) -> str:
    return PurePath(path).as_posix()


def _key(finding: Finding) -> Tuple[str, str, str]:
    return (finding.rule_id, _norm(finding.path), finding.message)


@dataclass
class Baseline:
    """A loaded baseline: a set of known ``(rule, path, message)`` keys."""

    entries: Set[Tuple[str, str, str]]

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(entries=set())

    @classmethod
    def load(cls, path: str) -> "Baseline":
        file = Path(path)
        if not file.exists():
            return cls.empty()
        doc = json.loads(file.read_text(encoding="utf-8"))
        entries = {
            (e["rule"], e["path"], e["message"])
            for e in doc.get("entries", [])
        }
        return cls(entries=entries)

    @staticmethod
    def write(path: str, findings: Iterable[Finding]) -> int:
        """Regenerate the baseline file from current findings."""
        keys = sorted({_key(f) for f in findings})
        doc = {
            "version": BASELINE_VERSION,
            "entries": [
                {"rule": rule, "path": p, "message": message}
                for rule, p, message in keys
            ],
        }
        Path(path).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return len(keys)

    def split(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """``(new, baselined)`` partition of ``findings``."""
        new: List[Finding] = []
        known: List[Finding] = []
        for finding in findings:
            (known if _key(finding) in self.entries else new).append(finding)
        return new, known
