"""Structured findings emitted by the ``repro.lint`` static analyzer.

A finding is one rule violation at one source location.  Findings are
plain data so the CLI can render them as text or JSON and the fixture
tests can assert on exact rule ids and line numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Tuple

__all__ = ["Severity", "Finding", "FlowStep"]


class Severity(IntEnum):
    """Finding severity; ordering lets ``--fail-on`` threshold-compare."""

    WARNING = 1
    ERROR = 2

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {text!r}") from None

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name.lower()


@dataclass(frozen=True)
class FlowStep:
    """One hop of a taint witness path (source -> ... -> sink)."""

    path: str
    line: int
    note: str

    def to_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "note": self.note}


@dataclass(frozen=True)
class Finding:
    """One rule violation: id, location, message, severity.

    Flow-rule findings additionally carry the witness path -- the chain
    of source/call/store/sink steps the analyzer followed -- rendered as
    indented continuation lines in text output and as ``codeFlows`` in
    SARIF.
    """

    rule_id: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    flow: Tuple[FlowStep, ...] = field(default=())

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def format(self) -> str:
        head = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity} [{self.rule_id}] {self.message}"
        )
        if not self.flow:
            return head
        steps = "\n".join(
            f"    {i + 1}. {s.path}:{s.line}: {s.note}"
            for i, s in enumerate(self.flow)
        )
        return f"{head}\n{steps}"

    def to_dict(self) -> dict:
        doc = {
            "rule": self.rule_id,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.flow:
            doc["flow"] = [s.to_dict() for s in self.flow]
        return doc
