"""Per-line suppressions: ``# repro-lint: disable=RULE[,RULE...]``.

A suppression comment silences the named rules on its own line; the
``disable-next-line`` form targets the following line (useful when the
offending statement has no room for a trailing comment).  When the
targeted line belongs to a *multi-line simple statement* (a call
wrapped over several lines, a parenthesized return ...), the directive
covers every line of that statement -- rules anchor findings at
sub-expression lines, and which line that is should not decide whether
a suppression works.  Compound statements (``if``/``for``/``with``)
are deliberately not expanded: a directive on the header must not
silence the whole body.

Every suppression must actually silence something: entries that match
no finding are themselves reported as ``REX-S001`` warnings so dead
exceptions cannot accumulate.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.findings import Finding, Severity
from repro.lint.registry import LintContext, Rule, register

__all__ = ["parse_suppressions", "apply_suppressions", "UnusedSuppressionRule"]

_DIRECTIVE_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-next-line)\s*=\s*([A-Za-z0-9_\-, ]+)"
)


@register
class UnusedSuppressionRule(Rule):
    """Registry entry for the meta-rule; findings come from this module."""

    rule_id = "REX-S001"
    name = "unused-suppression"
    severity = Severity.WARNING
    description = "a repro-lint disable comment silences nothing; remove it"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        return iter(())  # emitted by apply_suppressions, not per-rule


@dataclass
class _Entry:
    comment_line: int
    target_lines: Tuple[int, ...]
    rule_ids: Tuple[str, ...]
    used: Set[str] = field(default_factory=set)


def _statement_spans(tree: Optional[ast.AST]) -> List[Tuple[int, int]]:
    """``(start, end)`` line spans of multi-line *simple* statements."""
    if tree is None:
        return []
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt) or hasattr(node, "body"):
            continue  # compound statements keep line-exact semantics
        end = getattr(node, "end_lineno", None)
        if end is not None and end > node.lineno:
            spans.append((node.lineno, end))
    return spans


def _expand_target(line: int, spans: List[Tuple[int, int]]) -> Tuple[int, ...]:
    for start, end in spans:
        if start <= line <= end:
            return tuple(range(start, end + 1))
    return (line,)


def parse_suppressions(
    source: str, tree: Optional[ast.AST] = None
) -> List[_Entry]:
    """Extract directives from actual ``#`` comments (tokenize-based, so
    directive syntax quoted inside docstrings is never misread)."""
    entries: List[_Entry] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return entries
    if tree is None:
        try:
            tree = ast.parse(source)
        except SyntaxError:
            tree = None
    spans = _statement_spans(tree)
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE_RE.search(token.string)
        if match is None:
            continue
        directive, raw_ids = match.groups()
        rule_ids = tuple(
            rule_id.strip() for rule_id in raw_ids.split(",") if rule_id.strip()
        )
        lineno = token.start[0]
        target = lineno + 1 if directive == "disable-next-line" else lineno
        entries.append(_Entry(lineno, _expand_target(target, spans), rule_ids))
    return entries


def apply_suppressions(
    source: str,
    findings: List[Finding],
    path: str,
    tree: Optional[ast.AST] = None,
) -> List[Finding]:
    """Filter suppressed findings; append REX-S001 for unused entries."""
    entries = parse_suppressions(source, tree)
    by_line: Dict[int, List[_Entry]] = {}
    for entry in entries:
        for line in entry.target_lines:
            by_line.setdefault(line, []).append(entry)

    kept: List[Finding] = []
    for finding in findings:
        suppressed = False
        for entry in by_line.get(finding.line, ()):
            if finding.rule_id in entry.rule_ids:
                entry.used.add(finding.rule_id)
                suppressed = True
        if not suppressed:
            kept.append(finding)

    for entry in entries:
        for rule_id in entry.rule_ids:
            if rule_id not in entry.used:
                kept.append(
                    Finding(
                        rule_id="REX-S001",
                        severity=Severity.WARNING,
                        path=path,
                        line=entry.comment_line,
                        col=1,
                        message=(
                            f"suppression for {rule_id} matches no finding "
                            "on its target line; remove it"
                        ),
                    )
                )
    return kept
