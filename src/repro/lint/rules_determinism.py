"""Determinism rules: keep every run bit-reproducible.

The reproduction's RMSE and byte-count results are only comparable
across machines because every stochastic draw goes through the named
child streams of :mod:`repro._rng` and all "time" is simulated.  These
rules flag the escape hatches: wall-clock reads, unseeded or legacy
global RNGs, real entropy, and iteration over unordered sets feeding
order-sensitive consumers.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.classify import ENTROPY_SHIM_MODULES
from repro.lint.findings import Finding, Severity
from repro.lint.registry import LintContext, Rule, register
from repro.lint.astutil import call_func_name

__all__ = ["WallClockRule", "UnseededRandomRule", "RealEntropyRule", "SetIterationRule"]

_TIME_FUNCS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
)
_DATETIME_BASES = frozenset({"datetime", "datetime.datetime", "date", "datetime.date"})


@register
class WallClockRule(Rule):
    """Wall-clock reads make simulated-time results machine-dependent."""

    rule_id = "REX-D001"
    name = "wall-clock-read"
    severity = Severity.ERROR
    description = (
        "time.time()/perf_counter()/datetime.now() style wall-clock read; "
        "simulation time must come from the time model"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            func = node.func
            base = call_func_name(node)
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "time"
                and func.attr in _TIME_FUNCS
            ):
                yield self.finding(
                    ctx, node, f"wall-clock read time.{func.attr}(); use simulated time"
                )
            elif func.attr in ("now", "utcnow", "today") and base is not None:
                if base.rsplit(".", 1)[0] in _DATETIME_BASES:
                    yield self.finding(
                        ctx, node, f"wall-clock read {base}(); use simulated time"
                    )


_NP_LEGACY = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "shuffle",
        "permutation",
        "choice",
        "standard_normal",
        "uniform",
        "normal",
        "binomial",
        "poisson",
    }
)


@register
class UnseededRandomRule(Rule):
    """Global/legacy RNGs bypass the named child streams of repro._rng."""

    rule_id = "REX-D002"
    name = "unseeded-or-legacy-random"
    severity = Severity.ERROR
    description = (
        "stdlib random.*, legacy np.random.* global state, or unseeded "
        "default_rng() outside repro._rng; use repro._rng.child_rng"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.module in ENTROPY_SHIM_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_func_name(node)
            if name is None:
                continue
            parts = name.split(".")
            if len(parts) == 2 and parts[0] == "random":
                yield self.finding(
                    ctx,
                    node,
                    f"stdlib {name}() draws from hidden global state; use a "
                    "named child_rng stream",
                )
            elif (
                len(parts) >= 3
                and parts[0] in ("np", "numpy")
                and parts[-2] == "random"
                and parts[-1] in _NP_LEGACY
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"legacy {name}() mutates numpy global state; use a named "
                    "child_rng stream",
                )
            elif parts[-1] == "default_rng" and not node.args and not node.keywords:
                yield self.finding(
                    ctx,
                    node,
                    "default_rng() without a seed is entropy-seeded; derive "
                    "the seed via repro._rng.stream_seed",
                )


_ENTROPY_CALLS = frozenset(
    {
        "os.urandom",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbits",
        "secrets.randbelow",
    }
)


@register
class RealEntropyRule(Rule):
    """Real entropy outside the designated shims breaks replayability."""

    rule_id = "REX-D003"
    name = "real-entropy"
    severity = Severity.ERROR
    description = (
        "os.urandom / secrets.* outside repro._rng and the designated "
        "entropy shims; experiments must be replayable from one seed"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.module in ENTROPY_SHIM_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and call_func_name(node) in _ENTROPY_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"{call_func_name(node)}() injects real entropy; "
                    "seed-derive instead, or suppress with a justification "
                    "if this is a sanctioned keygen path",
                )


_ORDER_SINKS = frozenset({"list", "tuple", "enumerate", "iter", "next"})


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


@register
class SetIterationRule(Rule):
    """Set iteration order is hash-seed dependent; sort before consuming."""

    rule_id = "REX-D004"
    name = "set-iteration-order"
    severity = Severity.ERROR
    description = (
        "iteration over a set feeds an order-sensitive consumer (loop, "
        "list/tuple/enumerate/join); wrap it in sorted()"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and _is_set_expr(node.iter):
                yield self.finding(
                    ctx, node, "for-loop over a set; iterate sorted(...) instead"
                )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                for gen in node.generators:
                    if _is_set_expr(gen.iter):
                        yield self.finding(
                            ctx,
                            gen.iter,
                            "comprehension over a set; iterate sorted(...) instead",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in _ORDER_SINKS
                    and node.args
                    and _is_set_expr(node.args[0])
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"{func.id}() over a set depends on hash order; "
                        "wrap the set in sorted()",
                    )
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "join"
                    and node.args
                    and _is_set_expr(node.args[0])
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "str.join() over a set depends on hash order; "
                        "wrap the set in sorted()",
                    )
