"""Deterministic fault injection + chaos runner (host-side, untrusted).

The paper assumes a healthy LAN and leaves fault tolerance as future
work (Section III-D); this package supplies the hostile network.  A
seeded :class:`FaultPlan` describes what goes wrong (loss, duplication,
reordering, corruption, crashes, attestation refusal, stragglers), the
:class:`FaultInjector` replays it deterministically against the
transport, and :func:`run_chaos` drives a whole cluster through it in
tolerance mode, producing a :class:`ChaosReport`.

Everything here runs in the untrusted world: the injector manipulates
only ciphertext and metadata on the wire, exactly like a real network
adversary -- which is why the recovery story lives in the enclaves and
the transport, not here.  Byzantine personas (poisoning, free-riding,
sybil cloning, snapshot replay) extend the same machinery: compromised
*hosts* scripted by the plan, countered by enclave-side defenses
(:class:`~repro.core.config.DefenseConfig`).
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    NAMED_PLANS,
    CrashEvent,
    FaultPlan,
    LinkFaults,
    PoisonAttack,
    ReplayAttack,
    SybilAttack,
)
from repro.faults.runner import ChaosController, ChaosReport, run_chaos

__all__ = [
    "ChaosController",
    "ChaosReport",
    "CrashEvent",
    "FaultInjector",
    "FaultPlan",
    "LinkFaults",
    "NAMED_PLANS",
    "PoisonAttack",
    "ReplayAttack",
    "SybilAttack",
    "run_chaos",
]
