"""Run a whole cluster experiment under a fault plan and report on it.

``run_chaos`` is the one-call entry point behind ``repro chaos`` and the
chaos test suite: it builds a synthetic-MovieLens deployment, arms the
:class:`~repro.faults.injector.FaultInjector` and the crash/restart
controller, runs the cluster in tolerance mode, and condenses what
happened -- injected faults, recoveries, losses, re-attestations, final
accuracy -- into a serializable :class:`ChaosReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.cluster import RexCluster
from repro.core.config import (
    CryptoMode,
    DefenseConfig,
    Dissemination,
    RexConfig,
    SharingScheme,
)
from repro.data.movielens import MovieLensSpec, generate_movielens
from repro.data.partition import partition_users_across_nodes
from repro.faults.injector import FaultInjector
from repro.faults.plan import CrashEvent, FaultPlan, NAMED_PLANS, PoisonAttack
from repro.ml.metrics import precision_at_k
from repro.ml.mf import MfHyperParams
from repro.net.topology import Topology
from repro.obs import Observability
from repro.tee.errors import SnapshotReplayError

__all__ = ["ChaosController", "ChaosReport", "run_chaos"]

#: Serve-probe defaults for attack runs: top-K size, relevance cut and
#: how many (lowest-id, hence honest) users are probed.
PROBE_K = 10
RELEVANCE_THRESHOLD = 4.0
PROBE_USERS = 20


class ChaosController:
    """Fires the plan's crash/restart events against a running cluster.

    Installed as :attr:`RexCluster.controller`; the tolerant pump loop
    calls :meth:`on_tick` once per iteration.  Crash timing is keyed to
    protocol progress (any live node completing ``at_epoch`` epochs) and
    restart timing to simulated network time, so the whole churn history
    is as deterministic as the run itself.
    """

    def __init__(self, plan: FaultPlan, injector: FaultInjector, train_shards, test_shards,
                 *, global_mean: float = 3.5):
        self.plan = plan
        self.injector = injector
        self._train = list(train_shards)
        self._test = list(test_shards)
        self._global_mean = global_mean
        self._pending: List[CrashEvent] = sorted(plan.crashes, key=lambda e: e.at_epoch)
        self._restarts: List[Tuple[int, int]] = []  # (due_tick, node)
        #: Replay persona: snapshot publication to capture mid-run (the
        #: stale version the host will roll back to at serve time).
        self._capture = plan.replay
        self._captured = False

    @staticmethod
    def _max_live_epoch(cluster: RexCluster) -> int:
        return max(
            (
                host.epoch_stats[-1].epoch + 1
                for host in cluster.hosts
                if host.epoch_stats and host.node_id not in cluster.crashed
            ),
            default=0,
        )

    def pending_work(self) -> bool:
        """Unfired crash/restart events the pump loop must wait for."""
        return bool(self._pending or self._restarts)

    def on_tick(self, cluster: RexCluster) -> None:
        now = cluster.network.now
        progress = self._max_live_epoch(cluster)
        if (
            self._capture is not None
            and not self._captured
            and progress >= self._capture.capture_epoch
            and self._capture.node < len(cluster.hosts)
            and self._capture.node not in cluster.crashed
        ):
            # Progress-keyed like crashes, so the captured (stale) model
            # is the same pure function of (seed, plan) as everything else.
            cluster.hosts[self._capture.node].publish_snapshot()
            self.injector.note("snapshot_capture", f"node={self._capture.node}")
            self._captured = True
        for event in list(self._pending):
            if event.node >= len(cluster.hosts) or event.at_epoch > cluster.config.epochs:
                self._pending.remove(event)  # plan written for a larger/longer run
                continue
            if progress >= event.at_epoch and event.node not in cluster.crashed:
                cluster.crash_node(event.node)
                self.injector.note("crash", f"node={event.node} epoch={progress}")
                if event.restart_after_ticks is not None:
                    self._restarts.append((now + event.restart_after_ticks, event.node))
                self._pending.remove(event)
        for due, node in list(self._restarts):
            if now >= due:
                cluster.restart_node(
                    node,
                    self._train[node],
                    self._test[node],
                    global_mean=self._global_mean,
                )
                self.injector.note("restart", f"node={node}")
                self._restarts.remove((due, node))


@dataclass
class ChaosReport:
    """Everything one chaos run produced, ready for JSON or a terminal."""

    plan: str
    seed: int
    nodes: int
    epochs: int
    scheme: str
    dissemination: str
    schedule_digest: str
    injected: Dict[str, int]
    recovered: float
    lost: float
    retries: float
    reattestations: float
    barrier_timeouts: float
    final_rmse: float
    node_rmse: Dict[int, float]
    node_epochs: Dict[int, int]
    baseline_rmse: Optional[float] = None
    events: List[str] = field(default_factory=list)
    # -- Byzantine extension (defaults keep crash-only runs unchanged) -- #
    #: Whether the enclave-side defenses were armed for this run.
    defended: bool = False
    #: Persona -> attacker node ids, from the plan.
    attackers: Dict[str, List[int]] = field(default_factory=dict)
    #: Per-kind breakdowns of the enclave defense counters (the obs
    #: registry keeps them per (node, kind); the report folds over nodes).
    rejected: Dict[str, float] = field(default_factory=dict)
    detected: Dict[str, float] = field(default_factory=dict)
    recovered_by_kind: Dict[str, float] = field(default_factory=dict)
    #: Attacker-side activity counters (``attack.injected`` by kind).
    attack_injected: Dict[str, float] = field(default_factory=dict)
    #: Serve-probe results (attack runs only; ``None`` otherwise).
    probe_k: Optional[int] = None
    precision: Optional[float] = None
    baseline_precision: Optional[float] = None

    @property
    def injected_total(self) -> int:
        return sum(self.injected.values())

    @property
    def rmse_delta(self) -> Optional[float]:
        if self.baseline_rmse is None:
            return None
        return self.final_rmse - self.baseline_rmse

    @property
    def rejected_total(self) -> float:
        return sum(self.rejected.values())

    @property
    def precision_drop(self) -> Optional[float]:
        """Precision@k lost vs the fault-free baseline (positive = worse)."""
        if self.precision is None or self.baseline_precision is None:
            return None
        return self.baseline_precision - self.precision

    def to_dict(self) -> dict:
        return {
            "schema": "repro.chaos/v1",
            "plan": self.plan,
            "seed": self.seed,
            "nodes": self.nodes,
            "epochs": self.epochs,
            "scheme": self.scheme,
            "dissemination": self.dissemination,
            "schedule_digest": self.schedule_digest,
            "injected": dict(sorted(self.injected.items())),
            "injected_total": self.injected_total,
            "recovered": self.recovered,
            "lost": self.lost,
            "retries": self.retries,
            "reattestations": self.reattestations,
            "barrier_timeouts": self.barrier_timeouts,
            "final_rmse": self.final_rmse,
            "baseline_rmse": self.baseline_rmse,
            "rmse_delta": self.rmse_delta,
            "node_rmse": {str(k): v for k, v in sorted(self.node_rmse.items())},
            "node_epochs": {str(k): v for k, v in sorted(self.node_epochs.items())},
            "events": list(self.events),
            "defended": self.defended,
            "attackers": {k: list(v) for k, v in sorted(self.attackers.items())},
            "rejected": dict(sorted(self.rejected.items())),
            "rejected_total": self.rejected_total,
            "detected": dict(sorted(self.detected.items())),
            "recovered_by_kind": dict(sorted(self.recovered_by_kind.items())),
            "attack_injected": dict(sorted(self.attack_injected.items())),
            "probe_k": self.probe_k,
            "precision": self.precision,
            "baseline_precision": self.baseline_precision,
            "precision_drop": self.precision_drop,
        }

    def format_lines(self) -> List[str]:
        lines = [
            f"chaos plan {self.plan!r} seed={self.seed} "
            f"({self.nodes} nodes, {self.epochs} epochs, "
            f"{self.dissemination.upper()}, {self.scheme.upper()})",
            f"  schedule digest  {self.schedule_digest[:16]}…",
            f"  faults injected  {self.injected_total} "
            + (
                "(" + ", ".join(f"{k}={v}" for k, v in sorted(self.injected.items())) + ")"
                if self.injected
                else ""
            ),
            f"  recovered/lost   {self.recovered:.0f} recovered, {self.lost:.0f} lost, "
            f"{self.retries:.0f} retries",
            f"  churn            {self.reattestations:.0f} re-attestations, "
            f"{self.barrier_timeouts:.0f} barrier timeouts",
            f"  final RMSE       {self.final_rmse:.4f}"
            + (
                f" (fault-free {self.baseline_rmse:.4f}, delta {self.rmse_delta:+.4f})"
                if self.baseline_rmse is not None
                else ""
            ),
        ]
        if self.attackers:
            lines.append(
                "  attackers        "
                + ", ".join(
                    f"{persona}={list(nodes)}"
                    for persona, nodes in sorted(self.attackers.items())
                )
                + (" [defended]" if self.defended else " [open]")
            )
            lines.append(
                f"  defense          {self.rejected_total:.0f} rejected "
                + (
                    "(" + ", ".join(f"{k}={v:.0f}" for k, v in sorted(self.rejected.items())) + "), "
                    if self.rejected
                    else ""
                )
                + f"{sum(self.detected.values()):.0f} detected"
            )
        if self.precision is not None:
            line = f"  precision@{self.probe_k}     {self.precision:.4f}"
            if self.baseline_precision is not None:
                line += (
                    f" (fault-free {self.baseline_precision:.4f}, "
                    f"drop {self.precision_drop:+.4f})"
                )
            lines.append(line)
        return lines


def _build_shards(users: int, items: int, ratings: int, nodes: int, data_seed: int):
    spec = MovieLensSpec(
        name=f"chaos-{users}u",
        n_ratings=ratings,
        n_items=items,
        n_users=users,
        last_updated=2020,
    )
    split = generate_movielens(spec, seed=data_seed).split(0.7, seed=1)
    train = partition_users_across_nodes(split.train, nodes, seed=2)
    test = partition_users_across_nodes(split.test, nodes, seed=2)
    return split, list(train), list(test)


def _poison_spec(attack: PoisonAttack) -> dict:
    """Boundary-safe persona parameters handed to attacker enclaves."""
    return {
        "target_item": attack.target_item,
        "rating": attack.rating,
        "filler_rating": attack.filler_rating,
        "fake_users": attack.fake_users,
        "filler_items": attack.filler_items,
        "model_boost": attack.model_boost,
    }


def _attack_roles(plan: FaultPlan, nodes: int) -> Dict[int, dict]:
    """Resolve the plan's personas onto a concrete cluster size.

    Attacker ids beyond the run's node count are dropped (plans are
    size-agnostic, like crash events); sybil clone ids are assigned
    above the real id range so they can never collide with honest nodes.
    """
    roles: Dict[int, dict] = {}
    if plan.poison is not None:
        for node in plan.poison.nodes:
            if node < nodes:
                roles[node] = {"persona": "poison", "spec": _poison_spec(plan.poison)}
    for node in plan.free_riders:
        if node < nodes:
            roles[node] = {"persona": "free_rider"}
    if plan.sybil is not None and plan.sybil.node < nodes:
        roles[plan.sybil.node] = {
            "persona": "sybil",
            "clones": [nodes + i for i in range(plan.sybil.clones)],
            "spec": _poison_spec(plan.sybil.payload),
        }
    return roles


def _relevance_sets(test_split) -> Dict[int, set]:
    """User -> relevant item ids (test ratings at/above the threshold)."""
    relevant: Dict[int, set] = {}
    mask = test_split.ratings >= RELEVANCE_THRESHOLD
    for user, item in zip(test_split.users[mask], test_split.items[mask]):
        relevant.setdefault(int(user), set()).add(int(item))
    return relevant


def _probe_precision(host, relevant: Dict[int, set], *, k: int, version=None) -> float:
    """Mean precision@k over the lowest-id users with relevant test items.

    Low ids are honest by construction -- poison personas fabricate
    profiles from the *top* of the user id space -- so the probe measures
    what the attack does to genuine users' recommendations.
    """
    probe_users = sorted(relevant)[:PROBE_USERS]
    result = host.serve(probe_users, k, version=version)
    precisions = [
        precision_at_k(np.asarray(row, dtype=np.int64), relevant[user], k)
        for user, row in zip(probe_users, result["items"])
    ]
    return float(np.nanmean(precisions))


def run_chaos(
    plan: Union[str, FaultPlan],
    *,
    seed: int = 0,
    nodes: int = 8,
    epochs: int = 5,
    scheme: SharingScheme = SharingScheme.DATA,
    dissemination: Dissemination = Dissemination.DPSGD,
    users: int = 40,
    items: int = 120,
    ratings: int = 1_600,
    share_points: int = 60,
    k: int = 8,
    baseline: bool = False,
    defenses: Optional[bool] = None,
    serve_probe: Optional[bool] = None,
    probe_k: int = PROBE_K,
    obs: Optional[Observability] = None,
) -> ChaosReport:
    """Run one seeded chaos experiment end to end; returns the report.

    ``baseline=True`` additionally runs the identical scenario fault-free
    (strict mode, no injector) and records its RMSE -- and, for attack
    plans, its precision@k -- for comparison; that pair is what the
    acceptance tests assert on.

    ``defenses`` overrides the plan's ``defended`` flag (``None`` arms
    the enclave defenses exactly when the plan both carries attackers
    and declares itself defended, so crash-only plans keep their pinned
    pre-attack schedules byte-identical).  ``serve_probe`` forces the
    post-run precision@k probe on or off; by default it runs whenever
    the plan carries attackers.
    """
    if isinstance(plan, str):
        try:
            plan = NAMED_PLANS[plan]
        except KeyError:
            raise ValueError(
                f"unknown fault plan {plan!r}; choose from {sorted(NAMED_PLANS)}"
            ) from None
    if obs is None:
        obs = Observability.create()

    armed = (plan.defended and plan.attacks_active) if defenses is None else bool(defenses)
    probing = plan.attacks_active if serve_probe is None else bool(serve_probe)

    split, train, test = _build_shards(users, items, ratings, nodes, data_seed=42)
    global_mean = split.train.global_mean()
    topology = Topology.fully_connected(nodes)

    config = RexConfig(
        scheme=scheme,
        dissemination=dissemination,
        epochs=epochs,
        share_points=share_points,
        seed=seed,
        crypto_mode=CryptoMode.REAL,  # corruption must fail *authentication*
        mf=MfHyperParams(k=k),
        faults=plan.tolerance(),
        defenses=DefenseConfig(enabled=True) if armed else DefenseConfig(),
    )
    cluster = RexCluster(topology, config, secure=True, obs=obs)
    injector = FaultInjector(plan, seed, metrics=obs.metrics).attach(cluster.network)
    roles = _attack_roles(plan, nodes)
    if roles:
        cluster.arm_attacks(roles)
        for node in sorted(roles):
            injector.note(
                "attack",
                f"node={node} persona={roles[node]['persona']} defended={armed}",
            )
    cluster.controller = ChaosController(
        plan, injector, train, test, global_mean=global_mean
    )
    cluster.run(train, test, global_mean=global_mean)

    node_rmse: Dict[int, float] = {}
    node_epochs: Dict[int, int] = {}
    for host in cluster.hosts:
        status = host.status()
        node_rmse[host.node_id] = float(status["test_rmse"])
        node_epochs[host.node_id] = (
            host.epoch_stats[-1].epoch + 1 if host.epoch_stats else 0
        )
    final_rmse = sum(node_rmse.values()) / max(1, len(node_rmse))

    # -- serve-path probe (precision@k as genuine users see it) -------- #
    precision: Optional[float] = None
    relevant: Dict[int, set] = {}
    probe_node: Optional[int] = None
    if probing:
        relevant = _relevance_sets(split.test)
        if plan.replay is not None:
            probe_node = plan.replay.node  # the node whose host rolls back
        else:
            probe_node = min(
                n for n in range(nodes) if n not in roles and n not in cluster.crashed
            )
        probe_host = cluster.hosts[probe_node]
        probe_host.publish_snapshot()
        if plan.replay is not None:
            injector.note("replay_serve", f"node={probe_node} defended={armed}")
            try:
                precision = _probe_precision(
                    probe_host, relevant, k=probe_k, version=plan.replay.stale_version
                )
            except SnapshotReplayError:
                # Defense held: the rollback was refused (and counted by
                # the enclave); the host must serve the fresh snapshot.
                precision = _probe_precision(probe_host, relevant, k=probe_k)
        else:
            precision = _probe_precision(probe_host, relevant, k=probe_k)

    baseline_rmse: Optional[float] = None
    baseline_precision: Optional[float] = None
    if baseline:
        plain_config = RexConfig(
            scheme=scheme,
            dissemination=dissemination,
            epochs=epochs,
            share_points=share_points,
            seed=seed,
            crypto_mode=CryptoMode.REAL,
            mf=MfHyperParams(k=k),
        )
        plain = RexCluster(topology, plain_config, secure=True)
        plain.run(train, test, global_mean=global_mean)
        baseline_rmse = sum(
            float(host.status()["test_rmse"]) for host in plain.hosts
        ) / len(plain.hosts)
        if probing and probe_node is not None:
            plain_host = plain.hosts[probe_node]
            plain_host.publish_snapshot()
            baseline_precision = _probe_precision(plain_host, relevant, k=probe_k)

    metrics = obs.metrics
    return ChaosReport(
        plan=plan.name,
        seed=seed,
        nodes=nodes,
        epochs=epochs,
        scheme=scheme.value,
        dissemination=dissemination.value,
        schedule_digest=injector.schedule_digest(),
        injected=dict(injector.counts),
        recovered=metrics.total("faults.recovered"),
        lost=metrics.total("faults.lost"),
        retries=metrics.total("net.retries"),
        reattestations=metrics.total("faults.reattestations"),
        barrier_timeouts=metrics.total("faults.barrier_timeouts"),
        final_rmse=final_rmse,
        node_rmse=node_rmse,
        node_epochs=node_epochs,
        baseline_rmse=baseline_rmse,
        events=list(injector.events),
        defended=armed,
        attackers={k_: list(v) for k_, v in plan.attack_personas().items()},
        rejected=_kind_breakdown(metrics, "faults.rejected"),
        detected=_kind_breakdown(metrics, "faults.detected"),
        recovered_by_kind=_kind_breakdown(metrics, "faults.recovered"),
        attack_injected=_kind_breakdown(metrics, "attack.injected"),
        probe_k=probe_k if probing else None,
        precision=precision,
        baseline_precision=baseline_precision,
    )


def _kind_breakdown(metrics, name: str) -> Dict[str, float]:
    """Fold one counter family over nodes, keyed by its ``kind`` label."""
    out: Dict[str, float] = {}
    for counter in metrics.collect(name):
        kind = dict(counter.labels).get("kind", "")
        out[kind] = out.get(kind, 0.0) + counter.value
    return dict(sorted(out.items()))
