"""Run a whole cluster experiment under a fault plan and report on it.

``run_chaos`` is the one-call entry point behind ``repro chaos`` and the
chaos test suite: it builds a synthetic-MovieLens deployment, arms the
:class:`~repro.faults.injector.FaultInjector` and the crash/restart
controller, runs the cluster in tolerance mode, and condenses what
happened -- injected faults, recoveries, losses, re-attestations, final
accuracy -- into a serializable :class:`ChaosReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.cluster import RexCluster
from repro.core.config import CryptoMode, Dissemination, RexConfig, SharingScheme
from repro.data.movielens import MovieLensSpec, generate_movielens
from repro.data.partition import partition_users_across_nodes
from repro.faults.injector import FaultInjector
from repro.faults.plan import CrashEvent, FaultPlan, NAMED_PLANS
from repro.ml.mf import MfHyperParams
from repro.net.topology import Topology
from repro.obs import Observability

__all__ = ["ChaosController", "ChaosReport", "run_chaos"]


class ChaosController:
    """Fires the plan's crash/restart events against a running cluster.

    Installed as :attr:`RexCluster.controller`; the tolerant pump loop
    calls :meth:`on_tick` once per iteration.  Crash timing is keyed to
    protocol progress (any live node completing ``at_epoch`` epochs) and
    restart timing to simulated network time, so the whole churn history
    is as deterministic as the run itself.
    """

    def __init__(self, plan: FaultPlan, injector: FaultInjector, train_shards, test_shards,
                 *, global_mean: float = 3.5):
        self.plan = plan
        self.injector = injector
        self._train = list(train_shards)
        self._test = list(test_shards)
        self._global_mean = global_mean
        self._pending: List[CrashEvent] = sorted(plan.crashes, key=lambda e: e.at_epoch)
        self._restarts: List[Tuple[int, int]] = []  # (due_tick, node)

    @staticmethod
    def _max_live_epoch(cluster: RexCluster) -> int:
        return max(
            (
                host.epoch_stats[-1].epoch + 1
                for host in cluster.hosts
                if host.epoch_stats and host.node_id not in cluster.crashed
            ),
            default=0,
        )

    def pending_work(self) -> bool:
        """Unfired crash/restart events the pump loop must wait for."""
        return bool(self._pending or self._restarts)

    def on_tick(self, cluster: RexCluster) -> None:
        now = cluster.network.now
        progress = self._max_live_epoch(cluster)
        for event in list(self._pending):
            if event.node >= len(cluster.hosts) or event.at_epoch > cluster.config.epochs:
                self._pending.remove(event)  # plan written for a larger/longer run
                continue
            if progress >= event.at_epoch and event.node not in cluster.crashed:
                cluster.crash_node(event.node)
                self.injector.note("crash", f"node={event.node} epoch={progress}")
                if event.restart_after_ticks is not None:
                    self._restarts.append((now + event.restart_after_ticks, event.node))
                self._pending.remove(event)
        for due, node in list(self._restarts):
            if now >= due:
                cluster.restart_node(
                    node,
                    self._train[node],
                    self._test[node],
                    global_mean=self._global_mean,
                )
                self.injector.note("restart", f"node={node}")
                self._restarts.remove((due, node))


@dataclass
class ChaosReport:
    """Everything one chaos run produced, ready for JSON or a terminal."""

    plan: str
    seed: int
    nodes: int
    epochs: int
    scheme: str
    dissemination: str
    schedule_digest: str
    injected: Dict[str, int]
    recovered: float
    lost: float
    retries: float
    reattestations: float
    barrier_timeouts: float
    final_rmse: float
    node_rmse: Dict[int, float]
    node_epochs: Dict[int, int]
    baseline_rmse: Optional[float] = None
    events: List[str] = field(default_factory=list)

    @property
    def injected_total(self) -> int:
        return sum(self.injected.values())

    @property
    def rmse_delta(self) -> Optional[float]:
        if self.baseline_rmse is None:
            return None
        return self.final_rmse - self.baseline_rmse

    def to_dict(self) -> dict:
        return {
            "schema": "repro.chaos/v1",
            "plan": self.plan,
            "seed": self.seed,
            "nodes": self.nodes,
            "epochs": self.epochs,
            "scheme": self.scheme,
            "dissemination": self.dissemination,
            "schedule_digest": self.schedule_digest,
            "injected": dict(sorted(self.injected.items())),
            "injected_total": self.injected_total,
            "recovered": self.recovered,
            "lost": self.lost,
            "retries": self.retries,
            "reattestations": self.reattestations,
            "barrier_timeouts": self.barrier_timeouts,
            "final_rmse": self.final_rmse,
            "baseline_rmse": self.baseline_rmse,
            "rmse_delta": self.rmse_delta,
            "node_rmse": {str(k): v for k, v in sorted(self.node_rmse.items())},
            "node_epochs": {str(k): v for k, v in sorted(self.node_epochs.items())},
            "events": list(self.events),
        }

    def format_lines(self) -> List[str]:
        lines = [
            f"chaos plan {self.plan!r} seed={self.seed} "
            f"({self.nodes} nodes, {self.epochs} epochs, "
            f"{self.dissemination.upper()}, {self.scheme.upper()})",
            f"  schedule digest  {self.schedule_digest[:16]}…",
            f"  faults injected  {self.injected_total} "
            + (
                "(" + ", ".join(f"{k}={v}" for k, v in sorted(self.injected.items())) + ")"
                if self.injected
                else ""
            ),
            f"  recovered/lost   {self.recovered:.0f} recovered, {self.lost:.0f} lost, "
            f"{self.retries:.0f} retries",
            f"  churn            {self.reattestations:.0f} re-attestations, "
            f"{self.barrier_timeouts:.0f} barrier timeouts",
            f"  final RMSE       {self.final_rmse:.4f}"
            + (
                f" (fault-free {self.baseline_rmse:.4f}, delta {self.rmse_delta:+.4f})"
                if self.baseline_rmse is not None
                else ""
            ),
        ]
        return lines


def _build_shards(users: int, items: int, ratings: int, nodes: int, data_seed: int):
    spec = MovieLensSpec(
        name=f"chaos-{users}u",
        n_ratings=ratings,
        n_items=items,
        n_users=users,
        last_updated=2020,
    )
    split = generate_movielens(spec, seed=data_seed).split(0.7, seed=1)
    train = partition_users_across_nodes(split.train, nodes, seed=2)
    test = partition_users_across_nodes(split.test, nodes, seed=2)
    return split, list(train), list(test)


def run_chaos(
    plan: Union[str, FaultPlan],
    *,
    seed: int = 0,
    nodes: int = 8,
    epochs: int = 5,
    scheme: SharingScheme = SharingScheme.DATA,
    dissemination: Dissemination = Dissemination.DPSGD,
    users: int = 40,
    items: int = 120,
    ratings: int = 1_600,
    share_points: int = 60,
    k: int = 8,
    baseline: bool = False,
    obs: Optional[Observability] = None,
) -> ChaosReport:
    """Run one seeded chaos experiment end to end; returns the report.

    ``baseline=True`` additionally runs the identical scenario fault-free
    (strict mode, no injector) and records its RMSE for comparison --
    that pair is what the churn-tolerance acceptance test asserts on.
    """
    if isinstance(plan, str):
        try:
            plan = NAMED_PLANS[plan]
        except KeyError:
            raise ValueError(
                f"unknown fault plan {plan!r}; choose from {sorted(NAMED_PLANS)}"
            ) from None
    if obs is None:
        obs = Observability.create()

    split, train, test = _build_shards(users, items, ratings, nodes, data_seed=42)
    global_mean = split.train.global_mean()
    topology = Topology.fully_connected(nodes)

    config = RexConfig(
        scheme=scheme,
        dissemination=dissemination,
        epochs=epochs,
        share_points=share_points,
        seed=seed,
        crypto_mode=CryptoMode.REAL,  # corruption must fail *authentication*
        mf=MfHyperParams(k=k),
        faults=plan.tolerance(),
    )
    cluster = RexCluster(topology, config, secure=True, obs=obs)
    injector = FaultInjector(plan, seed, metrics=obs.metrics).attach(cluster.network)
    cluster.controller = ChaosController(
        plan, injector, train, test, global_mean=global_mean
    )
    cluster.run(train, test, global_mean=global_mean)

    node_rmse: Dict[int, float] = {}
    node_epochs: Dict[int, int] = {}
    for host in cluster.hosts:
        status = host.status()
        node_rmse[host.node_id] = float(status["test_rmse"])
        node_epochs[host.node_id] = (
            host.epoch_stats[-1].epoch + 1 if host.epoch_stats else 0
        )
    final_rmse = sum(node_rmse.values()) / max(1, len(node_rmse))

    baseline_rmse: Optional[float] = None
    if baseline:
        plain_config = RexConfig(
            scheme=scheme,
            dissemination=dissemination,
            epochs=epochs,
            share_points=share_points,
            seed=seed,
            crypto_mode=CryptoMode.REAL,
            mf=MfHyperParams(k=k),
        )
        plain = RexCluster(topology, plain_config, secure=True)
        plain.run(train, test, global_mean=global_mean)
        baseline_rmse = sum(
            float(host.status()["test_rmse"]) for host in plain.hosts
        ) / len(plain.hosts)

    metrics = obs.metrics
    return ChaosReport(
        plan=plan.name,
        seed=seed,
        nodes=nodes,
        epochs=epochs,
        scheme=scheme.value,
        dissemination=dissemination.value,
        schedule_digest=injector.schedule_digest(),
        injected=dict(injector.counts),
        recovered=metrics.total("faults.recovered"),
        lost=metrics.total("faults.lost"),
        retries=metrics.total("net.retries"),
        reattestations=metrics.total("faults.reattestations"),
        barrier_timeouts=metrics.total("faults.barrier_timeouts"),
        final_rmse=final_rmse,
        node_rmse=node_rmse,
        node_epochs=node_epochs,
        baseline_rmse=baseline_rmse,
        events=list(injector.events),
    )
