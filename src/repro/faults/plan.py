"""Declarative, seedable fault plans.

A :class:`FaultPlan` is the complete description of one hostile-network
scenario: per-link loss/duplication/reordering/corruption rates, node
crash-and-restart events, attestation refusal, and straggler links.  It
carries no randomness itself -- the :class:`~repro.faults.injector.
FaultInjector` pairs a plan with an experiment seed, so every chaos run
is exactly replayable from ``(seed, plan)``.

Named plans (:data:`NAMED_PLANS`) cover the scenarios the chaos test
suite and ``repro chaos`` exercise; ``mixed-churn`` is the acceptance
scenario (10% loss + one crash/restart + one straggler).

Beyond crash-style faults, a plan can assign Byzantine *attacker
personas* to nodes: data poisoning (:class:`PoisonAttack`), free-riding,
sybil identity cloning (:class:`SybilAttack`) and stale-snapshot replay
at serve time (:class:`ReplayAttack`).  Attack behavior draws only from
its own seeded child stream (``child_rng(seed, "attack", node)``), so
attack runs stay ``(seed, plan)``-pure; ``defended`` selects whether the
enclave-side defenses (:class:`~repro.core.config.DefenseConfig`) are
armed, and every attack plan has an undefended ``-open`` twin that
proves the attack actually bites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.config import FaultToleranceConfig

__all__ = [
    "LinkFaults",
    "CrashEvent",
    "PoisonAttack",
    "SybilAttack",
    "ReplayAttack",
    "FaultPlan",
    "NAMED_PLANS",
]


@dataclass(frozen=True)
class LinkFaults:
    """Per-transmission fault probabilities (applied independently).

    Rates are evaluated with a single uniform draw per transmission
    attempt, in the fixed order drop, corrupt, duplicate, delay; their
    sum must therefore not exceed 1.
    """

    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    #: Upper bound (inclusive) on the random delay, in network ticks.
    max_delay_ticks: int = 3

    def __post_init__(self) -> None:
        rates = (self.drop_rate, self.corrupt_rate, self.duplicate_rate, self.delay_rate)
        if any(not 0.0 <= r <= 1.0 for r in rates):
            raise ValueError("fault rates must be probabilities in [0, 1]")
        if sum(rates) > 1.0:
            raise ValueError("fault rates must sum to at most 1")
        if self.max_delay_ticks < 1:
            raise ValueError("max delay must be at least one tick")

    @property
    def any_active(self) -> bool:
        return (self.drop_rate + self.corrupt_rate + self.duplicate_rate + self.delay_rate) > 0


@dataclass(frozen=True)
class CrashEvent:
    """Kill ``node`` once any live node completes ``at_epoch`` epochs.

    ``restart_after_ticks`` schedules the reborn incarnation that many
    network ticks after the kill; ``None`` means the node stays dead.
    """

    node: int
    at_epoch: int
    restart_after_ticks: Optional[int] = 8

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError("crash target must be a node id")
        if self.at_epoch < 1:
            raise ValueError("crash epoch must be at least 1 (epoch 0 is bootstrap)")
        if self.restart_after_ticks is not None and self.restart_after_ticks < 1:
            raise ValueError("restart delay must be at least one tick")


@dataclass(frozen=True)
class PoisonAttack:
    """Shilling / profile-injection by compromised participant hosts.

    Each attacker node's host feeds its (genuinely attested) enclave
    fabricated profiles instead of honest samples: ``fake_users``
    synthetic profiles, each rating ``target_item`` plus ``filler_items``
    seeded-random items: the target at the scale-maximum ``rating``,
    the fillers at the scale-bottom ``filler_rating`` -- the classic
    *love/hate* push attack (target climbs into every top-K while the
    low-rated fillers drag honest item biases down globally).  Profile user ids are taken from the top of
    the id space so distinct attacker identities use disjoint blocks.
    In model-sharing runs the attacker instead ships its model state
    scaled by ``model_boost``.
    """

    nodes: Tuple[int, ...] = ()
    target_item: int = 111
    rating: float = 5.0
    filler_rating: float = 1.0
    fake_users: int = 4
    filler_items: int = 59
    model_boost: float = 100.0

    def __post_init__(self) -> None:
        if any(n < 0 for n in self.nodes):
            raise ValueError("poison nodes must be node ids")
        if self.fake_users < 1 or self.filler_items < 0:
            raise ValueError("poison profile shape invalid")

    @property
    def points_per_share(self) -> int:
        return self.fake_users * (1 + self.filler_items)


@dataclass(frozen=True)
class SybilAttack:
    """One compromised node presents ``clones`` extra cloned identities.

    The attacker replays its own (valid) quote under fabricated peer ids
    -- the quote proves *code* identity, not *who is speaking* -- and
    pushes one poison share per clone per round through channels derived
    from the same enclave DH key, multiplying its vote without defenses.
    Clone ids are assigned at runtime above the real id range.
    """

    node: int = 1
    clones: int = 3
    payload: PoisonAttack = field(
        default_factory=lambda: PoisonAttack(nodes=(), fake_users=4, filler_items=59)
    )

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError("sybil attacker must be a node id")
        if self.clones < 1:
            raise ValueError("a sybil attack needs at least one clone")


@dataclass(frozen=True)
class ReplayAttack:
    """A host rolls its serving replica back to a stale snapshot.

    The host captures the enclave's snapshot publication at
    ``capture_epoch`` (version ``stale_version``) and, at serve time,
    answers queries from that stale version instead of the freshly
    published one -- silently degrading recommendation quality without
    touching training.  The monotonicity defense pins the version
    high-water mark inside the enclave.
    """

    node: int = 0
    capture_epoch: int = 1
    stale_version: int = 1

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError("replay host must be a node id")
        if self.capture_epoch < 1:
            raise ValueError("capture epoch must be at least 1")


@dataclass(frozen=True)
class FaultPlan:
    """One named, fully-declarative chaos scenario."""

    name: str
    description: str = ""
    link: LinkFaults = field(default_factory=LinkFaults)
    crashes: Tuple[CrashEvent, ...] = ()
    #: Nodes whose links (either direction) get fixed extra latency.
    stragglers: Tuple[int, ...] = ()
    straggler_delay_ticks: int = 3
    #: Nodes whose attestation quotes are swallowed in both directions:
    #: they can never establish channels and must be survived around.
    refuse_attestation: Tuple[int, ...] = ()
    #: Recovery knobs the runner installs alongside the plan.
    barrier_patience_ticks: int = 12
    suspect_after_timeouts: int = 2
    max_attempts: int = 4
    backoff_base_ticks: int = 1
    # -- Byzantine personas (empty/None: classic crash-fault plan) ------ #
    #: Nodes whose hosts inject shilling profiles into their shares.
    poison: Optional[PoisonAttack] = None
    #: Nodes that consume every share but send only empty barriers.
    free_riders: Tuple[int, ...] = ()
    #: One node presenting cloned quotes under fabricated identities.
    sybil: Optional[SybilAttack] = None
    #: One host replaying a stale snapshot on the serve path.
    replay: Optional[ReplayAttack] = None
    #: Arm the enclave-side defenses (quote pinning, admission quotas,
    #: rating sanity, snapshot monotonicity) for this plan's runs.
    defended: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a fault plan needs a name")
        if self.straggler_delay_ticks < 1:
            raise ValueError("straggler delay must be at least one tick")

    @property
    def attacks_active(self) -> bool:
        return bool(
            (self.poison and self.poison.nodes)
            or self.free_riders
            or self.sybil is not None
            or self.replay is not None
        )

    def attack_personas(self) -> Dict[str, Tuple[int, ...]]:
        """Persona -> attacker node ids (for reports and role wiring)."""
        personas: Dict[str, Tuple[int, ...]] = {}
        if self.poison and self.poison.nodes:
            personas["poison"] = tuple(self.poison.nodes)
        if self.free_riders:
            personas["free_rider"] = tuple(self.free_riders)
        if self.sybil is not None:
            personas["sybil"] = (self.sybil.node,)
        if self.replay is not None:
            personas["replay"] = (self.replay.node,)
        return personas

    def tolerance(self) -> FaultToleranceConfig:
        """The runtime tolerance config this plan expects to run under."""
        return FaultToleranceConfig(
            enabled=True,
            barrier_patience_ticks=self.barrier_patience_ticks,
            suspect_after_timeouts=self.suspect_after_timeouts,
            max_attempts=self.max_attempts,
            backoff_base_ticks=self.backoff_base_ticks,
        )


#: The canonical scenario catalog for tests and ``repro chaos``.
NAMED_PLANS: Dict[str, FaultPlan] = {
    plan.name: plan
    for plan in (
        FaultPlan(
            name="baseline",
            description="no faults injected (tolerance machinery engaged but idle)",
        ),
        FaultPlan(
            name="lossy",
            description="10% of transmissions dropped; ARQ retries recover",
            link=LinkFaults(drop_rate=0.10),
        ),
        FaultPlan(
            name="dup-reorder",
            description="duplicated and delayed frames; replay protection filters them",
            link=LinkFaults(duplicate_rate=0.08, delay_rate=0.12, max_delay_ticks=4),
        ),
        FaultPlan(
            name="corrupt",
            description="bit-flipped frames; AEAD rejects, retransmission recovers",
            link=LinkFaults(corrupt_rate=0.08),
        ),
        FaultPlan(
            name="crash",
            description="one node dies at epoch 2 and restarts (fresh key, re-attest)",
            crashes=(CrashEvent(node=1, at_epoch=2, restart_after_ticks=8),),
        ),
        FaultPlan(
            name="refuse-attest",
            description="one node never completes attestation; peers proceed without it",
            refuse_attestation=(2,),
        ),
        FaultPlan(
            name="mixed-churn",
            description="10% loss + one crash/restart + one straggler link",
            link=LinkFaults(drop_rate=0.10),
            crashes=(CrashEvent(node=1, at_epoch=2, restart_after_ticks=6),),
            stragglers=(2,),
            straggler_delay_ticks=3,
        ),
        # -- Byzantine personas (each with an undefended "-open" twin) -- #
        FaultPlan(
            name="poison",
            description="one node injects shilling profiles; rating-sanity "
            "checks and admission quotas reject them",
            poison=PoisonAttack(nodes=(1, 5), filler_rating=0.5, filler_items=99),
        ),
        FaultPlan(
            name="poison-open",
            description="shilling profiles with defenses disarmed "
            "(degradation baseline)",
            poison=PoisonAttack(nodes=(1, 5), filler_rating=0.5, filler_items=99),
            defended=False,
        ),
        FaultPlan(
            name="free-ride",
            description="two nodes consume shares but contribute only empty "
            "barriers; detection flags them",
            free_riders=(1, 3),
        ),
        FaultPlan(
            name="free-ride-open",
            description="free-riders with defenses disarmed",
            free_riders=(1, 3),
            defended=False,
        ),
        FaultPlan(
            name="sybil",
            description="one node replays its quote under cloned identities; "
            "quote pinning rejects the clones",
            sybil=SybilAttack(
                node=1,
                clones=4,
                payload=PoisonAttack(filler_rating=0.5, filler_items=118),
            ),
        ),
        FaultPlan(
            name="sybil-open",
            description="cloned identities with defenses disarmed "
            "(amplified poisoning lands)",
            sybil=SybilAttack(
                node=1,
                clones=4,
                payload=PoisonAttack(filler_rating=0.5, filler_items=118),
            ),
            defended=False,
        ),
        FaultPlan(
            name="replay-serve",
            description="one host serves a stale captured snapshot; version "
            "monotonicity refuses the rollback",
            replay=ReplayAttack(node=0, capture_epoch=1, stale_version=1),
        ),
        FaultPlan(
            name="replay-serve-open",
            description="stale-snapshot serving with defenses disarmed",
            replay=ReplayAttack(node=0, capture_epoch=1, stale_version=1),
            defended=False,
        ),
        FaultPlan(
            name="byzantine-mix",
            description="poisoning + free-rider + sybil clones on a 10%-loss "
            "network, all defenses armed",
            link=LinkFaults(drop_rate=0.10),
            poison=PoisonAttack(nodes=(4,)),
            free_riders=(3,),
            sybil=SybilAttack(node=1, clones=2),
        ),
    )
}
