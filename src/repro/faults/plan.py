"""Declarative, seedable fault plans.

A :class:`FaultPlan` is the complete description of one hostile-network
scenario: per-link loss/duplication/reordering/corruption rates, node
crash-and-restart events, attestation refusal, and straggler links.  It
carries no randomness itself -- the :class:`~repro.faults.injector.
FaultInjector` pairs a plan with an experiment seed, so every chaos run
is exactly replayable from ``(seed, plan)``.

Named plans (:data:`NAMED_PLANS`) cover the scenarios the chaos test
suite and ``repro chaos`` exercise; ``mixed-churn`` is the acceptance
scenario (10% loss + one crash/restart + one straggler).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.config import FaultToleranceConfig

__all__ = ["LinkFaults", "CrashEvent", "FaultPlan", "NAMED_PLANS"]


@dataclass(frozen=True)
class LinkFaults:
    """Per-transmission fault probabilities (applied independently).

    Rates are evaluated with a single uniform draw per transmission
    attempt, in the fixed order drop, corrupt, duplicate, delay; their
    sum must therefore not exceed 1.
    """

    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    #: Upper bound (inclusive) on the random delay, in network ticks.
    max_delay_ticks: int = 3

    def __post_init__(self) -> None:
        rates = (self.drop_rate, self.corrupt_rate, self.duplicate_rate, self.delay_rate)
        if any(not 0.0 <= r <= 1.0 for r in rates):
            raise ValueError("fault rates must be probabilities in [0, 1]")
        if sum(rates) > 1.0:
            raise ValueError("fault rates must sum to at most 1")
        if self.max_delay_ticks < 1:
            raise ValueError("max delay must be at least one tick")

    @property
    def any_active(self) -> bool:
        return (self.drop_rate + self.corrupt_rate + self.duplicate_rate + self.delay_rate) > 0


@dataclass(frozen=True)
class CrashEvent:
    """Kill ``node`` once any live node completes ``at_epoch`` epochs.

    ``restart_after_ticks`` schedules the reborn incarnation that many
    network ticks after the kill; ``None`` means the node stays dead.
    """

    node: int
    at_epoch: int
    restart_after_ticks: Optional[int] = 8

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError("crash target must be a node id")
        if self.at_epoch < 1:
            raise ValueError("crash epoch must be at least 1 (epoch 0 is bootstrap)")
        if self.restart_after_ticks is not None and self.restart_after_ticks < 1:
            raise ValueError("restart delay must be at least one tick")


@dataclass(frozen=True)
class FaultPlan:
    """One named, fully-declarative chaos scenario."""

    name: str
    description: str = ""
    link: LinkFaults = field(default_factory=LinkFaults)
    crashes: Tuple[CrashEvent, ...] = ()
    #: Nodes whose links (either direction) get fixed extra latency.
    stragglers: Tuple[int, ...] = ()
    straggler_delay_ticks: int = 3
    #: Nodes whose attestation quotes are swallowed in both directions:
    #: they can never establish channels and must be survived around.
    refuse_attestation: Tuple[int, ...] = ()
    #: Recovery knobs the runner installs alongside the plan.
    barrier_patience_ticks: int = 12
    suspect_after_timeouts: int = 2
    max_attempts: int = 4
    backoff_base_ticks: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a fault plan needs a name")
        if self.straggler_delay_ticks < 1:
            raise ValueError("straggler delay must be at least one tick")

    def tolerance(self) -> FaultToleranceConfig:
        """The runtime tolerance config this plan expects to run under."""
        return FaultToleranceConfig(
            enabled=True,
            barrier_patience_ticks=self.barrier_patience_ticks,
            suspect_after_timeouts=self.suspect_after_timeouts,
            max_attempts=self.max_attempts,
            backoff_base_ticks=self.backoff_base_ticks,
        )


#: The canonical scenario catalog for tests and ``repro chaos``.
NAMED_PLANS: Dict[str, FaultPlan] = {
    plan.name: plan
    for plan in (
        FaultPlan(
            name="baseline",
            description="no faults injected (tolerance machinery engaged but idle)",
        ),
        FaultPlan(
            name="lossy",
            description="10% of transmissions dropped; ARQ retries recover",
            link=LinkFaults(drop_rate=0.10),
        ),
        FaultPlan(
            name="dup-reorder",
            description="duplicated and delayed frames; replay protection filters them",
            link=LinkFaults(duplicate_rate=0.08, delay_rate=0.12, max_delay_ticks=4),
        ),
        FaultPlan(
            name="corrupt",
            description="bit-flipped frames; AEAD rejects, retransmission recovers",
            link=LinkFaults(corrupt_rate=0.08),
        ),
        FaultPlan(
            name="crash",
            description="one node dies at epoch 2 and restarts (fresh key, re-attest)",
            crashes=(CrashEvent(node=1, at_epoch=2, restart_after_ticks=8),),
        ),
        FaultPlan(
            name="refuse-attest",
            description="one node never completes attestation; peers proceed without it",
            refuse_attestation=(2,),
        ),
        FaultPlan(
            name="mixed-churn",
            description="10% loss + one crash/restart + one straggler link",
            link=LinkFaults(drop_rate=0.10),
            crashes=(CrashEvent(node=1, at_epoch=2, restart_after_ticks=6),),
            stragglers=(2,),
            straggler_delay_ticks=3,
        ),
    )
}
