"""Deterministic fault injection over the in-process transport.

The injector is the bridge between a declarative :class:`~repro.faults.
plan.FaultPlan` and the :class:`~repro.net.transport.Network` chaos
hooks.  All randomness comes from one named child stream of the
experiment seed (``child_rng(seed, "faults", plan.name)``) and is drawn
in a fixed order per transmission attempt, so the full fault schedule --
what was dropped, mangled, duplicated, delayed, and when -- is a pure
function of ``(seed, plan)`` over the deterministic message stream.

Every decision is appended to an event log; :meth:`FaultInjector.
schedule_digest` hashes that log, which is what the reproducibility
tests pin: identical ``(seed, plan)`` must give byte-identical
schedules, different seeds must not.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

from repro._rng import child_rng
from repro.core.messages import KIND_QUOTE
from repro.faults.plan import FaultPlan
from repro.net.transport import Fate, Message, Network, RetryPolicy
from repro.obs import MetricsRegistry

__all__ = ["FaultInjector"]


class FaultInjector:
    """Seeded fault oracle attached to one :class:`Network`."""

    def __init__(
        self,
        plan: FaultPlan,
        seed: int,
        *,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.plan = plan
        self.seed = int(seed)
        self._rng = child_rng(self.seed, "faults", plan.name)
        self._metrics = metrics
        self._network: Optional[Network] = None
        #: Chronological, human-readable fault schedule (digest input).
        self.events: List[str] = []
        #: Injected-fault tallies by kind (mirrors ``faults.injected``).
        self.counts: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #
    def attach(self, network: Network) -> "FaultInjector":
        """Install this injector as the network's fault oracle + ARQ."""
        self._network = network
        network.fault_hook = self.decide
        network.retry_policy = RetryPolicy(
            max_attempts=self.plan.max_attempts,
            backoff_base=self.plan.backoff_base_ticks,
        )
        return self

    # ------------------------------------------------------------------ #
    # The per-transmission oracle
    # ------------------------------------------------------------------ #
    def decide(self, message: Message, attempt: int) -> Optional[Fate]:
        """Pick a :class:`Fate` for one transmission attempt."""
        plan = self.plan
        src, dst = message.source, message.destination
        if message.kind == KIND_QUOTE and (
            src in plan.refuse_attestation or dst in plan.refuse_attestation
        ):
            return self._record(
                "refuse_attestation", message, attempt, Fate("drop", reason="refused")
            )

        link = plan.link
        if link.any_active:
            # One uniform draw per attempt, categories in fixed order, so
            # the stream consumption (and thus the schedule) is stable.
            u = float(self._rng.random())
            edge = link.drop_rate
            if u < edge:
                return self._record("drop", message, attempt, Fate("drop", reason="chaos"))
            edge += link.corrupt_rate
            if u < edge:
                fate = Fate("corrupt", payload=self._mangle(message.payload), reason="chaos")
                return self._record("corrupt", message, attempt, fate)
            edge += link.duplicate_rate
            if u < edge:
                delay = int(self._rng.integers(1, link.max_delay_ticks + 1))
                return self._record(
                    "duplicate", message, attempt, Fate("duplicate", delay=delay)
                )
            edge += link.delay_rate
            if u < edge:
                delay = int(self._rng.integers(1, link.max_delay_ticks + 1))
                return self._record("delay", message, attempt, Fate("delay", delay=delay))

        if src in plan.stragglers or dst in plan.stragglers:
            return self._record(
                "straggle",
                message,
                attempt,
                Fate("delay", delay=plan.straggler_delay_ticks),
            )
        return None  # healthy-LAN default

    def _mangle(self, payload: bytes) -> bytes:
        """Flip one random byte (never a no-op flip)."""
        if not payload:
            return b"\x00"
        index = int(self._rng.integers(0, len(payload)))
        flip = 1 + int(self._rng.integers(0, 255))
        mangled = bytearray(payload)
        mangled[index] ^= flip
        return bytes(mangled)

    # ------------------------------------------------------------------ #
    # Event log / schedule digest
    # ------------------------------------------------------------------ #
    def _record(self, kind: str, message: Message, attempt: int, fate: Fate) -> Fate:
        now = self._network.now if self._network is not None else 0
        detail = f" delay={fate.delay}" if fate.delay else ""
        self.events.append(
            f"t={now:06d} a={attempt} {message.source}->{message.destination} "
            f"{message.kind} {kind}{detail}"
        )
        self._count(kind)
        return fate

    def note(self, kind: str, detail: str) -> None:
        """Record a non-link fault (crash/restart) in the same schedule."""
        now = self._network.now if self._network is not None else 0
        self.events.append(f"t={now:06d} {kind} {detail}")
        self._count(kind)

    def _count(self, kind: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if self._metrics is not None:
            self._metrics.counter("faults.injected", kind=kind).inc()

    def schedule_digest(self) -> str:
        """SHA-256 over the chronological fault schedule."""
        return hashlib.sha256("\n".join(self.events).encode()).hexdigest()
