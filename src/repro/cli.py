"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``simulate``
    Run one decentralized training scenario (fleet simulator) and print
    its summary: final RMSE, simulated time, traffic.
``compare``
    Run REX and MS back to back on the same scenario and print the
    speed-up / traffic-ratio comparison.
``datasets``
    Print Table I for the synthetic MovieLens presets.
``metrics``
    Run one fully-observed distributed experiment (enclaves, EPC,
    per-edge traffic) and emit a machine-readable ``metrics.json``.
``chaos``
    Run a named fault plan against a tolerance-mode cluster and print
    the fault/recovery report (optionally as a JSON artifact).
``serve``
    Train a small fleet, publish one node's snapshot into a serving
    enclave, drive a seeded Zipf workload through the recommendation
    server, and print the throughput/latency/quality report
    (optionally as a ``repro.serve/v1`` JSON artifact).
``fleet-bench``
    Sweep the event-kernel gossip experiment across fleet sizes
    (256/1k/4k by default), print the scaling table, and write the
    ``repro.fleet_bench/v1`` artifact (``BENCH_fleet.json``); with a
    sim-steps/s floor it doubles as the CI scaling gate.
``lint``
    Run the enclave-boundary / crypto-misuse / determinism static
    analyzer over source trees (text or JSON findings).
``info``
    Show the library version and the experiment environment knobs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.analysis.report import format_table
from repro.analysis.tables import speedup_table
from repro.core.config import Dissemination, RexConfig, SharingScheme
from repro.data.movielens import (
    MOVIELENS_25M_CAPPED,
    MOVIELENS_LATEST,
    MovieLensSpec,
    generate_movielens,
)
from repro.data.partition import partition_users_across_nodes
from repro.ml.mf import MfHyperParams
from repro.net.topology import Topology
from repro.obs.export import (
    FULL_SCENARIOS,
    run_observed_experiment,
    write_metrics_json,
)
from repro.sim.fleet import MfFleetSim
from repro.sim.recorder import RunResult

__all__ = ["main", "build_parser"]

_TOPOLOGIES = ("sw", "er", "full", "ring")
_SCHEMES = {"rex": SharingScheme.DATA, "ms": SharingScheme.MODEL}
_DISSEMINATION = {"rmw": Dissemination.RMW, "d-psgd": Dissemination.DPSGD}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="REX decentralized recommender -- paper reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_scenario_args(p):
        p.add_argument("--nodes", type=int, default=20, help="node count")
        p.add_argument("--epochs", type=int, default=60)
        p.add_argument("--topology", choices=_TOPOLOGIES, default="sw")
        p.add_argument("--dissemination", choices=sorted(_DISSEMINATION), default="d-psgd")
        p.add_argument("--share-points", type=int, default=100)
        p.add_argument("--k", type=int, default=10, help="embedding dimension")
        p.add_argument("--ratings", type=int, default=30_000)
        p.add_argument("--users", type=int, default=200)
        p.add_argument("--items", type=int, default=1_000)
        p.add_argument("--seed", type=int, default=0)

    sim = sub.add_parser("simulate", help="run one scenario")
    add_scenario_args(sim)
    sim.add_argument("--scheme", choices=sorted(_SCHEMES), default="rex")

    cmp_ = sub.add_parser("compare", help="REX vs MS on the same scenario")
    add_scenario_args(cmp_)

    sub.add_parser("datasets", help="print Table I presets")

    met = sub.add_parser(
        "metrics", help="observed distributed run -> metrics.json"
    )
    met.add_argument(
        "--experiment",
        choices=sorted(FULL_SCENARIOS),
        default="fig1",
        help="which scenario preset to run",
    )
    met.add_argument(
        "--smoke",
        action="store_true",
        help="tiny CI-sized scenario (seconds instead of minutes)",
    )
    met.add_argument("--seed", type=int, default=0)
    met.add_argument(
        "--output", default="metrics.json", help="where to write the document"
    )
    met.add_argument(
        "--chrome-trace",
        default=None,
        metavar="PATH",
        help="also write a chrome://tracing / Perfetto JSON trace",
    )

    chaos = sub.add_parser(
        "chaos", help="seeded fault-injection run -> fault/recovery report"
    )
    chaos.add_argument(
        "--plan",
        default="mixed-churn",
        help="named fault plan to run (see --list-plans)",
    )
    chaos.add_argument(
        "--list-plans", action="store_true", help="print the plan catalog and exit"
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--nodes", type=int, default=8)
    chaos.add_argument("--epochs", type=int, default=5)
    chaos.add_argument("--scheme", choices=sorted(_SCHEMES), default="rex")
    chaos.add_argument(
        "--dissemination", choices=sorted(_DISSEMINATION), default="d-psgd"
    )
    chaos.add_argument(
        "--baseline",
        action="store_true",
        help="also run the identical scenario fault-free and report the RMSE delta",
    )
    chaos.add_argument(
        "--defenses",
        choices=("auto", "on", "off"),
        default="auto",
        help=(
            "override the plan's enclave-defense posture "
            "(auto = arm exactly when the plan is a defended attack plan)"
        ),
    )
    chaos.add_argument(
        "--attack-matrix",
        action="store_true",
        help=(
            "run the Byzantine persona matrix (defended, with fault-free "
            "baselines) instead of a single plan; honors --output"
        ),
    )
    chaos.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the chaos report document (JSON) here",
    )

    serve = sub.add_parser(
        "serve", help="train -> publish -> serve pipeline -> serving report"
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--nodes", type=int, default=8)
    serve.add_argument("--epochs", type=int, default=4)
    serve.add_argument("--users", type=int, default=60)
    serve.add_argument("--items", type=int, default=180)
    serve.add_argument("--ratings", type=int, default=3_000)
    serve.add_argument("--node", type=int, default=0, help="which node serves")
    serve.add_argument("--top-k", type=int, default=10)
    serve.add_argument("--requests-per-tick", type=float, default=4.0)
    serve.add_argument("--ticks", type=int, default=200)
    serve.add_argument("--zipf", type=float, default=1.1, help="popularity exponent")
    serve.add_argument(
        "--shed",
        choices=("shed-oldest", "reject-newest"),
        default="shed-oldest",
        help="load-shedding policy when the admission queue is full",
    )
    serve.add_argument("--queue-depth", type=int, default=64)
    serve.add_argument("--max-batch", type=int, default=32)
    serve.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the repro.serve/v1 report document (JSON) here",
    )
    serve.add_argument(
        "--fleet",
        action="store_true",
        help=(
            "serve through a sharded fleet (consistent-hash routing, "
            "replicated failover) under the production traffic model "
            "instead of one endpoint; emits repro.serve-fleet/v1"
        ),
    )
    serve.add_argument("--shards", type=int, default=4)
    serve.add_argument("--replicas", type=int, default=2)
    serve.add_argument(
        "--peak-rate",
        type=float,
        default=8.0,
        help="fleet mode: daytime-peak mean arrivals per tick",
    )
    serve.add_argument(
        "--day-night-ratio",
        type=float,
        default=4.0,
        help="fleet mode: peak-to-trough diurnal rate ratio",
    )
    serve.add_argument(
        "--flash-crowds",
        type=int,
        default=1,
        help="fleet mode: number of seeded flash-crowd bursts",
    )
    serve.add_argument(
        "--epc-cap-mib",
        type=float,
        default=None,
        help="fleet mode: per-shard EPC cap (default: sized from the shards)",
    )
    serve.add_argument(
        "--kill-one-replica-per-shard",
        action="store_true",
        help="fleet mode: crash one replica per shard at the traffic peak",
    )

    fleet = sub.add_parser(
        "fleet-bench",
        help="thousand-node event-kernel scaling curve -> BENCH_fleet.json",
    )
    fleet.add_argument(
        "--sizes",
        default="256,1024,4096",
        metavar="N,N,...",
        help="comma-separated fleet sizes to sweep",
    )
    fleet.add_argument("--cycles", type=int, default=40, help="gossip cycles per size")
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--degree", type=int, default=6, help="ring-lattice degree")
    fleet.add_argument("--fanout", type=int, default=1, help="push targets per cycle")
    fleet.add_argument(
        "--floor-steps-per-s",
        type=float,
        default=None,
        metavar="SPS",
        help="fail (exit 1) if any size falls below this sim-steps/s floor",
    )
    fleet.add_argument(
        "--output",
        default="BENCH_fleet.json",
        metavar="PATH",
        help="where to write the repro.fleet_bench/v1 artifact",
    )

    lint = sub.add_parser(
        "lint", help="boundary/crypto/determinism static analysis"
    )
    lint.add_argument(
        "paths", nargs="*", default=["src/repro"], help="files or directories"
    )
    lint.add_argument("--format", choices=("text", "json", "sarif"), default="text")
    lint.add_argument(
        "--fail-on",
        choices=("warning", "error"),
        default="error",
        help="lowest severity that makes the exit status non-zero",
    )
    lint.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="also write the findings document to a file",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="known-findings file; baselined findings are suppressed "
        "(ratchet: new findings still fail)",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the --baseline file from the current findings "
        "and exit 0",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )

    sub.add_parser("info", help="version and environment knobs")
    return parser


def _build_scenario(args):
    spec = MovieLensSpec(
        name=f"cli-{args.users}u",
        n_ratings=args.ratings,
        n_items=args.items,
        n_users=args.users,
        last_updated=2020,
    )
    split = generate_movielens(spec, seed=42).split(0.7, seed=1)
    train = partition_users_across_nodes(split.train, args.nodes, seed=2)
    test = partition_users_across_nodes(split.test, args.nodes, seed=2)
    if args.topology == "sw":
        topo = Topology.small_world(args.nodes, k=min(6, args.nodes - args.nodes % 2 - 2) or 2,
                                    rewire_probability=0.03, seed=7)
    elif args.topology == "er":
        topo = Topology.erdos_renyi(args.nodes, p=0.1, seed=7)
    elif args.topology == "ring":
        topo = Topology.ring(args.nodes)
    else:
        topo = Topology.fully_connected(args.nodes)
    return split, train, test, topo


def _run_scheme(args, scheme: SharingScheme, scenario) -> RunResult:
    split, train, test, topo = scenario
    config = RexConfig(
        scheme=scheme,
        dissemination=_DISSEMINATION[args.dissemination],
        epochs=args.epochs,
        share_points=args.share_points,
        seed=args.seed,
        mf=MfHyperParams(k=args.k),
    )
    sim = MfFleetSim(train, test, topo, config, global_mean=split.train.global_mean())
    return sim.run()


def _summary_row(result: RunResult) -> List[str]:
    return [
        result.label,
        f"{result.final_rmse:.4f}",
        f"{result.total_time_s:.1f}",
        f"{result.total_bytes / 2**20:.2f}",
    ]


def cmd_simulate(args) -> int:
    result = _run_scheme(args, _SCHEMES[args.scheme], _build_scenario(args))
    print(
        format_table(
            ["run", "final RMSE", "sim time [s]", "MiB moved"],
            [_summary_row(result)],
        )
    )
    return 0


def cmd_compare(args) -> int:
    scenario = _build_scenario(args)
    rex = _run_scheme(args, SharingScheme.DATA, scenario)
    ms = _run_scheme(args, SharingScheme.MODEL, scenario)
    print(
        format_table(
            ["run", "final RMSE", "sim time [s]", "MiB moved"],
            [_summary_row(rex), _summary_row(ms)],
        )
    )
    rows = speedup_table(
        [(f"{args.dissemination.upper()}, {args.topology.upper()}", rex, ms)],
        target_rule="joint",
        target_margin=0.002,
    )
    row = rows[0]
    if row.speedup is not None:
        print(f"\nREX reaches RMSE {row.error_target:.3f} "
              f"{row.speedup:.1f}x sooner than MS "
              f"({row.rex_time_s:.1f}s vs {row.ms_time_s:.1f}s)")
    print(f"traffic ratio MS/REX: {ms.total_bytes / max(1, rex.total_bytes):.0f}x")
    return 0


def cmd_datasets(_args) -> int:
    rows = []
    for spec in (MOVIELENS_LATEST, MOVIELENS_25M_CAPPED):
        rows.append(
            [spec.name, f"{spec.n_ratings:,}", f"{spec.n_items:,}",
             f"{spec.n_users:,}", str(spec.last_updated)]
        )
    print(format_table(["dataset", "ratings", "items", "users", "last updated"],
                       rows, title="Table I presets"))
    return 0


def cmd_metrics(args) -> int:
    run = run_observed_experiment(
        args.experiment, smoke=args.smoke, seed=args.seed
    )
    doc = write_metrics_json(run, args.output)
    if args.chrome_trace:
        run.obs.tracer.write_chrome_trace(args.chrome_trace)

    summary = doc["summary"]
    faults = run.obs.metrics.total("tee.epc.page_faults")
    print(
        format_table(
            ["run", "final RMSE", "sim time [s]", "MiB moved", "EPC faults"],
            [[
                summary["label"],
                f"{summary['final_rmse']:.4f}",
                f"{summary['total_time_s']:.1f}",
                f"{summary['total_bytes'] / 2**20:.2f}",
                f"{faults:.0f}",
            ]],
        )
    )
    metrics = run.obs.metrics
    print(
        f"faults: {metrics.total('faults.injected'):.0f} injected, "
        f"{metrics.total('faults.recovered'):.0f} recovered, "
        f"{metrics.total('faults.lost'):.0f} lost"
    )
    print(f"wrote {args.output} "
          f"({len(doc['spans'])} spans, {len(doc['counters'])} counters, "
          f"{len(doc['edges'])} edges)")
    if args.chrome_trace:
        print(f"wrote {args.chrome_trace}")
    return 0


def cmd_chaos(args) -> int:
    import json

    from repro.faults import NAMED_PLANS, run_chaos

    if args.list_plans:
        rows = [
            [plan.name, plan.description] for _, plan in sorted(NAMED_PLANS.items())
        ]
        print(format_table(["plan", "scenario"], rows, title="fault-plan catalog"))
        return 0
    defenses = {"auto": None, "on": True, "off": False}[args.defenses]

    if args.attack_matrix:
        matrix = ("poison", "free-ride", "sybil", "replay-serve")
        reports = []
        for name in matrix:
            report = run_chaos(
                name,
                seed=args.seed,
                nodes=args.nodes,
                epochs=args.epochs,
                scheme=_SCHEMES[args.scheme],
                dissemination=_DISSEMINATION[args.dissemination],
                baseline=True,
                defenses=defenses,
            )
            reports.append(report)
            for line in report.format_lines():
                print(line)
            print()
        if args.output:
            doc = {
                "schema": "repro.attack-matrix/v1",
                "seed": args.seed,
                "reports": [report.to_dict() for report in reports],
            }
            with open(args.output, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=2)
                fh.write("\n")
            print(f"wrote {args.output} ({len(reports)} persona reports)")
        return 0

    if args.plan not in NAMED_PLANS:
        print(f"unknown fault plan {args.plan!r}; choose from {sorted(NAMED_PLANS)}")
        return 2
    report = run_chaos(
        args.plan,
        seed=args.seed,
        nodes=args.nodes,
        epochs=args.epochs,
        scheme=_SCHEMES[args.scheme],
        dissemination=_DISSEMINATION[args.dissemination],
        baseline=args.baseline,
        defenses=defenses,
    )
    for line in report.format_lines():
        print(line)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.output} ({len(report.events)} fault events)")
    return 0


def cmd_serve(args) -> int:
    import json

    from repro.serve import ServePolicy, WorkloadSpec, run_serving_experiment

    if args.fleet:
        from repro.serve import TrafficSpec
        from repro.serve.fleet import FleetPolicy, run_fleet_experiment

        report = run_fleet_experiment(
            seed=args.seed,
            shards=args.shards,
            replicas=args.replicas,
            nodes=args.nodes,
            epochs=args.epochs,
            users=args.users,
            items=args.items,
            ratings=args.ratings,
            node_id=args.node,
            traffic=TrafficSpec(
                seed=args.seed,
                n_users=args.users,
                ticks=args.ticks,
                peak_rate=args.peak_rate,
                day_night_ratio=args.day_night_ratio,
                flash_crowds=args.flash_crowds,
            ),
            policy=FleetPolicy(
                shard=ServePolicy(
                    top_k=args.top_k,
                    queue_depth=args.queue_depth,
                    max_batch=args.max_batch,
                    shed="reject-newest",
                ),
            ),
            epc_cap_mib=args.epc_cap_mib,
            kill_one_replica_per_shard=args.kill_one_replica_per_shard,
        )
        for line in report.format_lines():
            print(line)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {args.output} ({report.completed} completions)")
        return 0

    report = run_serving_experiment(
        seed=args.seed,
        nodes=args.nodes,
        epochs=args.epochs,
        users=args.users,
        items=args.items,
        ratings=args.ratings,
        node_id=args.node,
        workload=WorkloadSpec(
            seed=args.seed,
            n_users=args.users,
            ticks=args.ticks,
            rate=args.requests_per_tick,
            zipf_s=args.zipf,
        ),
        policy=ServePolicy(
            top_k=args.top_k,
            queue_depth=args.queue_depth,
            max_batch=args.max_batch,
            shed=args.shed,
        ),
    )
    for line in report.format_lines():
        print(line)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output} ({report.completed} completions)")
    return 0


def cmd_fleet_bench(args) -> int:
    import time

    from repro.sim.fleet_scale import FleetScaleRunner, write_fleet_bench

    try:
        sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    except ValueError:
        print(f"error: --sizes must be comma-separated integers, got {args.sizes!r}")
        return 2

    runner = FleetScaleRunner(
        sizes,
        clock=time.perf_counter,
        cycles=args.cycles,
        seed=args.seed,
        degree=args.degree,
        fanout=args.fanout,
    )
    points = runner.run()
    write_fleet_bench(
        points,
        args.output,
        seed=args.seed,
        cycles=args.cycles,
        floor_steps_per_s=args.floor_steps_per_s,
    )

    rows = [
        [
            str(p.nodes),
            str(p.events),
            f"{p.steps_per_s:,.0f}",
            f"{p.peak_traced_bytes / 1e6:.2f}",
            f"{p.coverage:.3f}",
            p.trace_digest[:12],
        ]
        for p in points
    ]
    print(
        format_table(
            ["nodes", "events", "sim-steps/s", "peak MB", "coverage", "trace"],
            rows,
            title=f"Fleet scaling, {args.cycles} cycles/size (artifact: {args.output})",
        )
    )

    if args.floor_steps_per_s is not None:
        slowest = min(points, key=lambda p: p.steps_per_s)
        if slowest.steps_per_s < args.floor_steps_per_s:
            print(
                f"FAIL: {slowest.nodes}-node fleet ran {slowest.steps_per_s:,.0f} "
                f"sim-steps/s, below the {args.floor_steps_per_s:,.0f} floor"
            )
            return 1
    return 0


def cmd_lint(args) -> int:
    from repro.lint import (
        Baseline,
        Severity,
        format_sarif,
        lint_paths,
        rule_catalog,
    )

    if args.list_rules:
        rows = [
            [rule["id"], rule["severity"], rule["name"], rule["description"]]
            for rule in rule_catalog()
        ]
        print(format_table(["rule", "severity", "name", "checks for"], rows,
                           title="repro-lint rule catalog"))
        return 0

    if args.write_baseline and not args.baseline:
        print("error: --write-baseline requires --baseline PATH")
        return 2

    report = lint_paths(args.paths)
    if args.write_baseline:
        count = Baseline.write(args.baseline, report.sorted())
        print(f"wrote {args.baseline} ({count} baselined finding(s))")
        return 0
    if args.baseline:
        report.apply_baseline(Baseline.load(args.baseline))

    if args.format == "json":
        rendered = report.format_json()
    elif args.format == "sarif":
        rendered = format_sarif(report.sorted(), rule_catalog())
    else:
        rendered = report.format_text()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(rendered + "\n")
        print(f"wrote {args.output} ({report.errors} error(s), "
              f"{report.warnings} warning(s), {report.baselined} baselined)")
    else:
        print(rendered)
    return 1 if report.worst_at_least(Severity.parse(args.fail_on)) else 0


def cmd_info(_args) -> int:
    import os

    print(f"repro {__version__} -- REX (IPDPS 2022) reproduction")
    print(f"REPRO_EPOCH_SCALE = {os.environ.get('REPRO_EPOCH_SCALE', '0.4 (default)')}")
    print(f"REPRO_NO_CACHE    = {os.environ.get('REPRO_NO_CACHE', '0 (default)')}")
    print(f"REPRO_CACHE_DIR   = {os.environ.get('REPRO_CACHE_DIR', '.repro_cache (default)')}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "simulate": cmd_simulate,
        "compare": cmd_compare,
        "datasets": cmd_datasets,
        "metrics": cmd_metrics,
        "chaos": cmd_chaos,
        "serve": cmd_serve,
        "fleet-bench": cmd_fleet_bench,
        "lint": cmd_lint,
        "info": cmd_info,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
