"""The paper's tables, computed from run results.

Table II/III methodology (Section IV-B): "we compile the values for an
error target (chosen as the final value achieved by the MS scheme), the
times at which it was achieved and the ratio between timestamps."  The
same rule is applied here at whatever horizon the runs used, so reduced-
epoch reproductions stay methodologically faithful.

Table IV: "obtained by comparing average time per epoch of SGX over
native", reported next to the SGX build's RAM usage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.data.movielens import MovieLensSpec
from repro.sim.recorder import RunResult

__all__ = ["SpeedupRow", "speedup_table", "OverheadRow", "sgx_overhead_table", "dataset_table"]


@dataclass(frozen=True)
class SpeedupRow:
    """One row of Table II / Table III."""

    setup: str
    error_target: float
    rex_time_s: Optional[float]
    ms_time_s: Optional[float]

    @property
    def speedup(self) -> Optional[float]:
        if self.rex_time_s is None or self.ms_time_s is None or self.rex_time_s <= 0:
            return None
        return self.ms_time_s / self.rex_time_s

    def as_cells(self, *, unit: str = "min") -> List[str]:
        divisor = 60.0 if unit == "min" else 1.0
        def fmt(v):
            return "n/a" if v is None else f"{v / divisor:.1f}"

        speed = "n/a" if self.speedup is None else f"{self.speedup:.1f}x"
        return [self.setup, f"{self.error_target:.2f}", fmt(self.rex_time_s), fmt(self.ms_time_s), speed]


def speedup_table(
    pairs: Sequence[Tuple[str, RunResult, RunResult]],
    *,
    target_margin: float = 0.0,
    target_rule: str = "ms-final",
) -> List[SpeedupRow]:
    """Build Table II/III rows from (setup, rex_run, ms_run) triples.

    ``target_rule`` picks the error target per setup:

    - ``"ms-final"`` -- the MS run's final RMSE, the paper's exact rule
      (valid when both runs have plateaued);
    - ``"joint"`` -- the worse of the two final RMSEs, which both runs
      are guaranteed to reach; use this at reduced epoch horizons where
      the curves are still descending and may cross the paper rule's
      target in either order.

    ``target_margin`` is added on top to absorb evaluation noise.
    """
    if target_rule not in ("ms-final", "joint"):
        raise ValueError(f"unknown target rule {target_rule!r}")
    rows = []
    for setup, rex_run, ms_run in pairs:
        target = ms_run.final_rmse
        if math.isnan(target):
            raise ValueError(f"MS run for {setup!r} has no final RMSE")
        if target_rule == "joint":
            target = max(target, rex_run.final_rmse)
        target += target_margin
        rows.append(
            SpeedupRow(
                setup=setup,
                error_target=target,
                rex_time_s=rex_run.time_to_target(target),
                ms_time_s=ms_run.time_to_target(target),
            )
        )
    return rows


@dataclass(frozen=True)
class OverheadRow:
    """One row of Table IV."""

    setup: str
    ram_mib: float
    overhead_pct: float

    def as_cells(self) -> List[str]:
        return [self.setup, f"{self.ram_mib:.1f}", f"{self.overhead_pct:.0f}"]


def sgx_overhead_table(
    pairs: Sequence[Tuple[str, RunResult, RunResult]],
    *,
    skip: int = 1,
) -> List[OverheadRow]:
    """Build Table IV rows from (setup, sgx_run, native_run) triples."""
    rows = []
    for setup, sgx_run, native_run in pairs:
        sgx_epoch = sgx_run.mean_epoch_time(skip=skip)
        native_epoch = native_run.mean_epoch_time(skip=skip)
        if native_epoch <= 0:
            raise ValueError(f"native run for {setup!r} has zero epoch time")
        overhead = 100.0 * (sgx_epoch - native_epoch) / native_epoch
        rows.append(OverheadRow(setup=setup, ram_mib=sgx_run.memory_mib(), overhead_pct=overhead))
    return rows


def dataset_table(stats: Sequence[Tuple[MovieLensSpec, Dict[str, float]]]) -> List[List[str]]:
    """Table I rows: spec targets next to generated-dataset measurements."""
    rows = []
    for spec, measured in stats:
        rows.append(
            [
                spec.name,
                f"{spec.n_ratings}",
                f"{spec.n_items}",
                f"{spec.n_users}",
                f"{spec.last_updated}",
                f"{int(measured['ratings'])}",
                f"{int(measured['items_rated'])}",
                f"{int(measured['users_active'])}",
                f"{measured['sparsity']:.4f}",
            ]
        )
    return rows
