"""Figure series extraction.

Each helper returns the exact x/y series a paper figure plots, as plain
dictionaries ``{series_label: (xs, ys)}`` that the benchmark harness
prints (and that a notebook could plot).  Axis conventions follow the
paper: Figures 1/4/6(c,d) plot test RMSE against elapsed time; Figure 2
plots network volume and RMSE against epochs; Figure 3 sweeps the
feature-vector size; Figures 5-7(a,b) are per-epoch stage/volume bars.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.sim.recorder import RunResult

__all__ = [
    "error_vs_time",
    "error_vs_epochs",
    "bytes_vs_epochs",
    "stage_breakdown",
    "volume_per_epoch",
    "feature_sweep_summary",
]

Series = Tuple[List[float], List[float]]


def error_vs_time(runs: Sequence[RunResult]) -> Dict[str, Series]:
    """Figure 1/4/6(c,d): test RMSE against simulated elapsed time."""
    return {run.label: (run.times(), run.rmses()) for run in runs}


def error_vs_epochs(runs: Sequence[RunResult]) -> Dict[str, Series]:
    """Figure 2 row 2 / Figure 5(c): test RMSE against epochs."""
    return {run.label: ([float(e) for e in run.epochs()], run.rmses()) for run in runs}


def bytes_vs_epochs(runs: Sequence[RunResult]) -> Dict[str, Series]:
    """Figure 2 row 1: cumulative data exchanged against epochs."""
    return {
        run.label: ([float(e) for e in run.epochs()], [float(b) for b in run.cum_bytes()])
        for run in runs
    }


def stage_breakdown(runs: Sequence[RunResult]) -> Dict[str, Dict[str, float]]:
    """Figure 5(a)/6(a)/7(a): mean per-epoch stage durations."""
    return {run.label: run.stage_means() for run in runs}


def volume_per_epoch(runs: Sequence[RunResult]) -> Dict[str, float]:
    """Figure 5(b)/6(b)/7(b): mean payload bytes per node per epoch."""
    return {run.label: run.bytes_per_node_per_epoch() for run in runs}


def feature_sweep_summary(
    runs_by_k: Dict[int, RunResult]
) -> List[Tuple[int, float, float]]:
    """Figure 3 rows: (k, final RMSE, bytes per node per round).

    For model sharing the bytes column grows linearly with k; for REX it
    stays constant -- the figure's headline contrast.
    """
    rows = []
    for k in sorted(runs_by_k):
        run = runs_by_k[k]
        rows.append((k, run.final_rmse, run.bytes_per_node_per_epoch()))
    return rows
