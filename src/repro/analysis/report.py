"""Plain-text rendering for tables and figure series.

The benchmark harness prints the paper's tables and figure data as text
(the environment has no plotting stack); ``EXPERIMENTS.md`` embeds the
same renderings.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "render_series", "downsample"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[str]], *, title: str = "") -> str:
    """Fixed-width text table."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt_row(cells):
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rows)
    return "\n".join(lines)


def downsample(values: Sequence, max_points: int = 12) -> List:
    """Evenly thin a series for compact printing (keeps the endpoints)."""
    values = list(values)
    if len(values) <= max_points:
        return values
    step = (len(values) - 1) / (max_points - 1)
    indices = sorted({round(i * step) for i in range(max_points)})
    return [values[i] for i in indices]


def render_series(
    name: str,
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    x_label: str = "x",
    y_label: str = "y",
    max_points: int = 12,
) -> str:
    """One downsampled series as aligned ``x -> y`` lines."""
    pairs = downsample(list(zip(xs, ys)), max_points)
    lines = [f"{name}  ({x_label} -> {y_label})"]
    for x, y in pairs:
        lines.append(f"  {x:>12.3f} -> {y:.4f}")
    return "\n".join(lines)
