"""Analysis: turn run results into the paper's tables and figure series.

- :mod:`~repro.analysis.tables` -- Table I (datasets), Tables II/III
  (time-to-target speed-ups), Table IV (SGX overhead and RAM).
- :mod:`~repro.analysis.figures` -- the x/y series behind Figures 1-7.
- :mod:`~repro.analysis.report` -- plain-text rendering used by the
  benchmark harness and EXPERIMENTS.md.
"""

from repro.analysis.report import format_table, render_series
from repro.analysis.tables import (
    SpeedupRow,
    dataset_table,
    sgx_overhead_table,
    speedup_table,
)

__all__ = [
    "SpeedupRow",
    "dataset_table",
    "format_table",
    "render_series",
    "sgx_overhead_table",
    "speedup_table",
]
