"""Rating-triplet datasets.

Collaborative-filtering data in REX is a set of ``<user, item, rating>``
triplets (paper Section II-A); a raw data item on the wire is exactly one
such triplet, which is why data sharing is two orders of magnitude cheaper
than model sharing.  :class:`RatingsDataset` stores the triplets as three
parallel NumPy arrays -- the layout both the vectorized trainers and the
binary codec operate on directly, with no per-row Python objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

import numpy as np

from repro._rng import child_rng

__all__ = ["RatingsDataset", "TrainTestSplit"]

#: Canonical dtypes for the triplet arrays (also the wire precision).
USER_DTYPE = np.int32
ITEM_DTYPE = np.int32
RATING_DTYPE = np.float32

#: Bytes of one raw data item on the wire: two int32 ids + one float32.
TRIPLET_WIRE_BYTES = 12


@dataclass(frozen=True)
class TrainTestSplit:
    """A 70/30-style split; test ratings are never trained on."""

    train: "RatingsDataset"
    test: "RatingsDataset"


class RatingsDataset:
    """An immutable collection of (user, item, rating) triplets.

    Parameters
    ----------
    users, items, ratings:
        Parallel arrays; copied and cast to the canonical dtypes.
    n_users, n_items:
        Size of the global id spaces.  Must be passed explicitly so that
        per-node shards keep addressing the full embedding matrices.
    """

    def __init__(
        self,
        users: np.ndarray,
        items: np.ndarray,
        ratings: np.ndarray,
        *,
        n_users: int,
        n_items: int,
    ):
        users = np.ascontiguousarray(users, dtype=USER_DTYPE)
        items = np.ascontiguousarray(items, dtype=ITEM_DTYPE)
        ratings = np.ascontiguousarray(ratings, dtype=RATING_DTYPE)
        if not (len(users) == len(items) == len(ratings)):
            raise ValueError("triplet arrays must have equal length")
        if len(users) and (users.min() < 0 or users.max() >= n_users):
            raise ValueError("user id out of range")
        if len(items) and (items.min() < 0 or items.max() >= n_items):
            raise ValueError("item id out of range")
        self.users = users
        self.items = items
        self.ratings = ratings
        self.n_users = int(n_users)
        self.n_items = int(n_items)
        for arr in (self.users, self.items, self.ratings):
            arr.setflags(write=False)

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.ratings)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RatingsDataset({len(self)} ratings, {self.n_users} users, "
            f"{self.n_items} items)"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RatingsDataset):
            return NotImplemented
        return (
            self.n_users == other.n_users
            and self.n_items == other.n_items
            and np.array_equal(self.users, other.users)
            and np.array_equal(self.items, other.items)
            and np.array_equal(self.ratings, other.ratings)
        )

    def iter_triplets(self) -> Iterator[Tuple[int, int, float]]:
        """Python-level iteration; for tests and small data only."""
        for u, i, r in zip(self.users, self.items, self.ratings):
            yield int(u), int(i), float(r)

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def nbytes(self) -> int:
        """In-memory size of the triplet arrays."""
        return self.users.nbytes + self.items.nbytes + self.ratings.nbytes

    @property
    def wire_bytes(self) -> int:
        """Size of this dataset as raw data items on the wire."""
        return len(self) * TRIPLET_WIRE_BYTES

    @property
    def sparsity(self) -> float:
        """Fraction of the user-item matrix that is *unobserved*."""
        total = self.n_users * self.n_items
        return 1.0 - len(self) / total if total else 1.0

    def distinct_users(self) -> np.ndarray:
        return np.unique(self.users)

    def distinct_items(self) -> np.ndarray:
        return np.unique(self.items)

    def global_mean(self) -> float:
        return float(self.ratings.mean()) if len(self) else 0.0

    def pair_keys(self) -> np.ndarray:
        """Collision-free int64 key per (user, item) pair, for dedup."""
        return self.users.astype(np.int64) * self.n_items + self.items

    # ------------------------------------------------------------------ #
    # Construction / transformation
    # ------------------------------------------------------------------ #
    def take(self, indices: np.ndarray) -> "RatingsDataset":
        """Subset by index array (order preserved)."""
        return RatingsDataset(
            self.users[indices],
            self.items[indices],
            self.ratings[indices],
            n_users=self.n_users,
            n_items=self.n_items,
        )

    def concat(self, other: "RatingsDataset") -> "RatingsDataset":
        if (self.n_users, self.n_items) != (other.n_users, other.n_items):
            raise ValueError("datasets live in different id spaces")
        return RatingsDataset(
            np.concatenate([self.users, other.users]),
            np.concatenate([self.items, other.items]),
            np.concatenate([self.ratings, other.ratings]),
            n_users=self.n_users,
            n_items=self.n_items,
        )

    def sample(self, n: int, rng: np.random.Generator) -> "RatingsDataset":
        """Uniform random sample (with replacement beyond the store size).

        This is REX's stateless share-sampling (paper Section III-E): the
        sample is drawn without replacement when the store is large enough
        but the *procedure* keeps no memory across epochs, so the same
        data points may be re-sent in later epochs.
        """
        if len(self) == 0 or n <= 0:
            return self.take(np.array([], dtype=np.int64))
        replace = n > len(self)
        indices = rng.choice(len(self), size=min(n, len(self)) if not replace else n, replace=replace)
        return self.take(indices)

    def user_counts(self) -> np.ndarray:
        """Number of ratings per user id (length ``n_users``)."""
        return np.bincount(self.users, minlength=self.n_users)

    def by_user(self) -> Dict[int, np.ndarray]:
        """Index arrays grouped by user, computed with one argsort."""
        order = np.argsort(self.users, kind="stable")
        sorted_users = self.users[order]
        boundaries = np.flatnonzero(np.diff(sorted_users)) + 1
        groups = np.split(order, boundaries)
        return {int(sorted_users[g[0]]): g for g in groups if len(g)}

    def split(self, train_fraction: float, *, seed: int = 0) -> TrainTestSplit:
        """Per-user train/test split (the paper's 70/30 protocol).

        Splitting inside each user's profile (rather than globally) ensures
        every user appears in both sets, so per-node test data exists even
        in the one-node-per-user scenario.  Users with a single rating go
        entirely to train.
        """
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = child_rng(seed, "train-test-split")
        train_mask = np.zeros(len(self), dtype=bool)
        for _user, idx in self.by_user().items():
            permuted = idx[rng.permutation(len(idx))]
            n_train = max(1, int(round(train_fraction * len(idx))))
            train_mask[permuted[:n_train]] = True
        return TrainTestSplit(
            train=self.take(np.flatnonzero(train_mask)),
            test=self.take(np.flatnonzero(~train_mask)),
        )

    def restrict_users(self, user_ids: np.ndarray) -> "RatingsDataset":
        """Keep only the ratings of the given users (a node's shard)."""
        mask = np.isin(self.users, user_ids)
        return self.take(np.flatnonzero(mask))

    @classmethod
    def empty(cls, n_users: int, n_items: int) -> "RatingsDataset":
        return cls(
            np.array([], dtype=USER_DTYPE),
            np.array([], dtype=ITEM_DTYPE),
            np.array([], dtype=RATING_DTYPE),
            n_users=n_users,
            n_items=n_items,
        )
