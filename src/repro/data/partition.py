"""Partitioning a dataset across decentralized nodes.

The paper evaluates two placements (Section IV-A5):

- **One node per user** -- each node initially holds exactly the ratings
  its user produced (the smartphone scenario); 610 nodes for MovieLens
  Latest.
- **Multiple users per node** -- cohorts of users are served by shared
  SGX servers (the geo-distributed data-center scenario); 610 users over
  50 nodes means 12 or 13 users each.

Both partitioners keep the *global* user/item id spaces so every node
addresses the same embedding matrices, and both return per-node
:class:`~repro.data.dataset.RatingsDataset` shards.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro._rng import child_rng
from repro.data.dataset import RatingsDataset

__all__ = [
    "partition_one_user_per_node",
    "partition_users_across_nodes",
    "partition_users_by_taste",
]


def partition_one_user_per_node(dataset: RatingsDataset) -> List[RatingsDataset]:
    """Node ``i`` receives exactly user ``i``'s ratings.

    Returns one shard per user id, including empty shards for users with
    no ratings (so node indices always align with user ids).
    """
    by_user = dataset.by_user()
    shards = []
    for user in range(dataset.n_users):
        idx = by_user.get(user)
        if idx is None:
            shards.append(RatingsDataset.empty(dataset.n_users, dataset.n_items))
        else:
            shards.append(dataset.take(idx))
    return shards


def partition_users_across_nodes(
    dataset: RatingsDataset,
    n_nodes: int,
    *,
    seed: int = 0,
) -> List[RatingsDataset]:
    """Distribute users over ``n_nodes`` shards as evenly as possible.

    Users are shuffled then dealt round-robin, so each node gets
    ``floor(n_users / n_nodes)`` or one more user (12 or 13 for the
    paper's 610-user / 50-node setup) with a random cohort composition.
    """
    if n_nodes < 1:
        raise ValueError("need at least one node")
    if n_nodes > dataset.n_users:
        raise ValueError("more nodes than users; use one-user-per-node")
    rng = child_rng(seed, "partition", n_nodes)
    permuted_users = rng.permutation(dataset.n_users)
    cohorts = [permuted_users[start::n_nodes] for start in range(n_nodes)]

    by_user = dataset.by_user()
    shards = []
    for cohort in cohorts:
        idx = [by_user[int(u)] for u in cohort if int(u) in by_user]
        if idx:
            shards.append(dataset.take(np.sort(np.concatenate(idx))))
        else:  # pragma: no cover - only with degenerate inputs
            shards.append(RatingsDataset.empty(dataset.n_users, dataset.n_items))
    return shards


def partition_users_by_taste(
    dataset: RatingsDataset,
    n_nodes: int,
) -> List[RatingsDataset]:
    """Pathological non-IID partition: cluster users by taste.

    The paper's future-work list (Section IV-E) calls out "pathological
    non-iid datasets" as a known hard case for decentralized learning.
    This partitioner builds one: users are sorted by a crude taste
    signature -- their mean rating, tie-broken by their most-rated item --
    and assigned to nodes in contiguous blocks, so each node serves a
    homogeneous cohort whose local distribution is maximally unlike its
    neighbors'.  Compare against :func:`partition_users_across_nodes`
    (random cohorts) to measure the non-IID penalty.
    """
    if n_nodes < 1:
        raise ValueError("need at least one node")
    if n_nodes > dataset.n_users:
        raise ValueError("more nodes than users; use one-user-per-node")

    sums = np.zeros(dataset.n_users, dtype=np.float64)
    np.add.at(sums, dataset.users, dataset.ratings.astype(np.float64))
    counts = np.maximum(1, dataset.user_counts())
    mean_rating = sums / counts
    # Tie-break by the user's lowest-id rated item (a stable taste proxy).
    first_item = np.full(dataset.n_users, dataset.n_items, dtype=np.int64)
    np.minimum.at(first_item, dataset.users, dataset.items.astype(np.int64))
    order = np.lexsort((first_item, mean_rating))

    blocks = np.array_split(order, n_nodes)
    by_user = dataset.by_user()
    shards = []
    for block in blocks:
        idx = [by_user[int(u)] for u in block if int(u) in by_user]
        if idx:
            shards.append(dataset.take(np.sort(np.concatenate(idx))))
        else:  # pragma: no cover - only with degenerate inputs
            shards.append(RatingsDataset.empty(dataset.n_users, dataset.n_items))
    return shards
