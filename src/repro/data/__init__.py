"""Data substrate: rating datasets, synthetic MovieLens, partitioners.

The paper evaluates on MovieLens Latest (100k ratings / 9k items / 610
users) and MovieLens 25M capped at 15,000 users (Table I).  Real MovieLens
files are not redistributable nor downloadable here, so
:mod:`~repro.data.movielens` synthesizes statistically matched stand-ins
(see DESIGN.md for the substitution argument); everything downstream
consumes the neutral :class:`~repro.data.dataset.RatingsDataset` interface
and never knows the difference.
"""

from repro.data.dataset import RatingsDataset, TrainTestSplit
from repro.data.movielens import (
    MOVIELENS_25M_CAPPED,
    MOVIELENS_LATEST,
    MovieLensSpec,
    generate_movielens,
)
from repro.data.partition import (
    partition_one_user_per_node,
    partition_users_across_nodes,
)

__all__ = [
    "MOVIELENS_25M_CAPPED",
    "MOVIELENS_LATEST",
    "MovieLensSpec",
    "RatingsDataset",
    "TrainTestSplit",
    "generate_movielens",
    "partition_one_user_per_node",
    "partition_users_across_nodes",
]
