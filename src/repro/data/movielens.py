"""Synthetic MovieLens-compatible dataset generation.

The paper evaluates on two MovieLens snapshots (Table I):

===================  =========  ======  ======  ============
Dataset              Ratings    Items   Users   Last updated
===================  =========  ======  ======  ============
MovieLens Latest       100,000   9,000     610  2018
MovieLens 25M (cap)  2,249,739  28,830  15,000  2019
===================  =========  ======  ======  ============

Those files cannot be fetched in this offline environment, so this module
synthesizes datasets with the same *shape*: exact rating/item/user counts,
half-star ratings in [0.5, 5.0], a long-tailed (Zipf) item popularity, a
skewed per-user activity distribution with the MovieLens >= 20 ratings
floor, and a planted low-rank latent structure (user/item factors plus
biases plus noise) so that matrix-factorization and DNN recommenders train
and converge the way they do on the real data.  The generator is fully
vectorized and deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._rng import child_rng
from repro.data.dataset import RatingsDataset

__all__ = [
    "MovieLensSpec",
    "MOVIELENS_LATEST",
    "MOVIELENS_25M_CAPPED",
    "generate_movielens",
]


@dataclass(frozen=True)
class MovieLensSpec:
    """Target statistics for a synthetic MovieLens stand-in."""

    name: str
    n_ratings: int
    n_items: int
    n_users: int
    last_updated: int

    #: Rank of the planted latent structure (not the model's k).
    latent_rank: int = 8
    #: Zipf exponent of item popularity; ~0.9 fits MovieLens head/tail.
    popularity_exponent: float = 0.9
    #: Std-dev of log per-user activity around its mean.
    user_activity_sigma: float = 0.9
    #: MovieLens guarantees every user rated at least 20 movies.
    min_ratings_per_user: int = 20
    #: Observation-noise std-dev before half-star quantization.
    noise_sigma: float = 0.55

    def __post_init__(self) -> None:
        if self.n_ratings < self.n_users * self.min_ratings_per_user:
            raise ValueError("not enough ratings to give every user the floor")
        if self.n_ratings > self.n_users * self.n_items:
            raise ValueError("more ratings than user-item pairs")


#: MovieLens Latest ("ml-latest-small"), as used in most MF experiments.
MOVIELENS_LATEST = MovieLensSpec(
    name="movielens-latest",
    n_ratings=100_000,
    n_items=9_000,
    n_users=610,
    last_updated=2018,
)

#: MovieLens 25M capped at 15,000 users (the paper's EPC-overcommit run).
MOVIELENS_25M_CAPPED = MovieLensSpec(
    name="movielens-25m-capped",
    n_ratings=2_249_739,
    n_items=28_830,
    n_users=15_000,
    last_updated=2019,
)

_HALF_STARS = np.arange(0.5, 5.01, 0.5, dtype=np.float32)


def _user_rating_counts(spec: MovieLensSpec, rng: np.random.Generator) -> np.ndarray:
    """Per-user rating counts: log-normal activity with a floor, exact sum."""
    weights = rng.lognormal(mean=0.0, sigma=spec.user_activity_sigma, size=spec.n_users)
    spare = spec.n_ratings - spec.n_users * spec.min_ratings_per_user
    counts = spec.min_ratings_per_user + np.floor(spare * weights / weights.sum()).astype(np.int64)
    # Distribute the rounding remainder one rating at a time to the most
    # active users (deterministic given the weights).
    remainder = spec.n_ratings - int(counts.sum())
    if remainder > 0:
        top = np.argsort(weights)[::-1][:remainder]
        counts[top] += 1
    np.clip(counts, spec.min_ratings_per_user, spec.n_items, out=counts)
    # Clipping at n_items may have dropped ratings; give them to users with
    # head-room (rare in practice, but the invariant must hold exactly).
    deficit = spec.n_ratings - int(counts.sum())
    while deficit > 0:
        room = np.flatnonzero(counts < spec.n_items)
        take = room[: deficit]
        counts[take] += 1
        deficit = spec.n_ratings - int(counts.sum())
    return counts


def _assign_items(
    spec: MovieLensSpec, counts: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Draw a distinct item set per user from the Zipf popularity law.

    Works in rounds: draw all missing (user, item) pairs for every user in
    one vectorized ``choice`` call, drop within-user duplicates, repeat for
    the shortfall.  Converges in a handful of rounds because duplicates
    are rare under a heavy-tailed law at MovieLens densities.
    """
    popularity = 1.0 / np.arange(1, spec.n_items + 1) ** spec.popularity_exponent
    popularity /= popularity.sum()
    # Shuffle so popular item ids are spread over the id space, like the
    # real dataset (id order carries no popularity information).
    item_order = rng.permutation(spec.n_items)

    users_out = np.repeat(np.arange(spec.n_users, dtype=np.int64), counts)
    items_out = np.full(spec.n_ratings, -1, dtype=np.int64)
    missing = np.arange(spec.n_ratings)
    seen = np.array([], dtype=np.int64)  # sorted accepted (user, item) keys
    while len(missing):
        draws = rng.choice(spec.n_items, size=len(missing), p=popularity)
        keys = users_out[missing] * spec.n_items + draws
        # Accept draws whose (user, item) key is new both globally and
        # within this round.
        _, first_idx = np.unique(keys, return_index=True)
        fresh_mask = np.zeros(len(missing), dtype=bool)
        fresh_mask[first_idx] = True
        if len(seen):
            dup_idx = np.searchsorted(seen, keys[first_idx])
            dup_idx = np.clip(dup_idx, 0, len(seen) - 1)
            fresh_mask[first_idx] &= seen[dup_idx] != keys[first_idx]
        accepted = missing[fresh_mask]
        items_out[accepted] = draws[fresh_mask]
        seen = np.sort(np.concatenate([seen, keys[fresh_mask]]))
        missing = missing[~fresh_mask]
    return users_out, item_order[items_out]


def generate_movielens(spec: MovieLensSpec, *, seed: int = 0) -> RatingsDataset:
    """Generate a synthetic dataset matching ``spec`` exactly.

    The planted rating model is the classic biased low-rank one the MF
    recommender assumes (paper Section II-A):

    ``r_ui = clip(mu + b_u + b_i + <p_u, q_i> + eps, 0.5, 5.0)``

    quantized to half stars, with ``mu = 3.5`` (the MovieLens global mean).
    """
    rng = child_rng(seed, "movielens", spec.name)

    counts = _user_rating_counts(spec, rng)
    users, items = _assign_items(spec, counts, rng)

    scale = 1.0 / np.sqrt(spec.latent_rank)
    user_factors = rng.normal(0.0, np.sqrt(scale), size=(spec.n_users, spec.latent_rank))
    item_factors = rng.normal(0.0, np.sqrt(scale), size=(spec.n_items, spec.latent_rank))
    user_bias = rng.normal(0.0, 0.35, size=spec.n_users)
    item_bias = rng.normal(0.0, 0.45, size=spec.n_items)

    raw = (
        3.5
        + user_bias[users]
        + item_bias[items]
        + np.einsum("ij,ij->i", user_factors[users], item_factors[items])
        + rng.normal(0.0, spec.noise_sigma, size=spec.n_ratings)
    )
    quantized = np.clip(np.round(raw * 2.0) / 2.0, 0.5, 5.0).astype(np.float32)

    return RatingsDataset(
        users, items, quantized, n_users=spec.n_users, n_items=spec.n_items
    )
