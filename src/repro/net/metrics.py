"""Network traffic accounting, backed by the observability registry.

Network volume is one of the paper's three headline metrics: Figure 2
(row 1) shows REX exchanging two orders of magnitude less data than model
sharing, and Figures 5(b)/6(b)/7(b) report per-epoch volumes.  The meter
counts every payload byte and message, per sender, per receiver, per
message kind and per directed edge.

Since the observability refactor the meter is a thin facade: all state
lives in a :class:`~repro.obs.MetricsRegistry` (its own, or a shared one
passed by the cluster), under the ``net.*`` names below.  That makes the
transport's numbers snapshottable, mergeable across nodes and exportable
to ``metrics.json`` like every other subsystem -- and it is the *single*
place wire bytes are counted (the channel layer counts sealed plaintext
production, the transport counts delivery; nothing counts twice).

Registry names::

    net.sent.bytes{node}        net.received.bytes{node}
    net.sent.messages{node}     net.received.messages{node}
    net.kind.bytes{kind}        net.kind.messages{kind}
    net.edge.bytes{src,dst}     net.edge.messages{src,dst}
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.obs import MetricsRegistry

__all__ = ["TrafficMeter", "TrafficSnapshot"]


def _diff(now: Mapping, earlier: Mapping) -> Dict:
    """Per-key difference, dropping keys whose delta is zero."""
    out = {}
    for key, value in now.items():
        delta = value - earlier.get(key, 0)
        if delta:
            out[key] = delta
    return out


@dataclass(frozen=True)
class TrafficSnapshot:
    """Immutable traffic state at a point in time.

    Besides the historical totals (bytes/messages sent) the snapshot now
    carries the receive side and the per-node / per-kind breakdowns, so
    per-epoch deltas of *received* traffic -- previously tracked by the
    meter but dropped at snapshot time -- survive into the figures.
    """

    bytes_sent: int
    messages_sent: int
    bytes_received: int = 0
    messages_received: int = 0
    per_node_sent_bytes: Mapping[int, int] = field(default_factory=dict)
    per_node_received_bytes: Mapping[int, int] = field(default_factory=dict)
    kind_bytes: Mapping[str, int] = field(default_factory=dict)
    kind_messages: Mapping[str, int] = field(default_factory=dict)

    def delta(self, earlier: "TrafficSnapshot") -> "TrafficSnapshot":
        return TrafficSnapshot(
            self.bytes_sent - earlier.bytes_sent,
            self.messages_sent - earlier.messages_sent,
            self.bytes_received - earlier.bytes_received,
            self.messages_received - earlier.messages_received,
            _diff(self.per_node_sent_bytes, earlier.per_node_sent_bytes),
            _diff(self.per_node_received_bytes, earlier.per_node_received_bytes),
            _diff(self.kind_bytes, earlier.kind_bytes),
            _diff(self.kind_messages, earlier.kind_messages),
        )


class TrafficMeter:
    """Per-node byte/message counters for one simulated network."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def record(self, source: int, destination: int, n_bytes: int, *, kind: str = "data") -> None:
        if n_bytes < 0:
            raise ValueError("message size must be non-negative")
        m = self.metrics
        m.counter("net.sent.bytes", node=source).inc(n_bytes)
        m.counter("net.sent.messages", node=source).inc()
        m.counter("net.received.bytes", node=destination).inc(n_bytes)
        m.counter("net.received.messages", node=destination).inc()
        m.counter("net.kind.bytes", kind=kind).inc(n_bytes)
        m.counter("net.kind.messages", kind=kind).inc()
        m.counter("net.edge.bytes", src=source, dst=destination).inc(n_bytes)
        m.counter("net.edge.messages", src=source, dst=destination).inc()

    # ------------------------------------------------------------------ #
    # Registry views (the historical dict-shaped API)
    # ------------------------------------------------------------------ #
    def _by_node(self, name: str) -> Dict[int, int]:
        return {
            int(dict(metric.labels)["node"]): int(metric.value)
            for metric in self.metrics.collect(name)
        }

    def _by_kind(self, name: str) -> Dict[str, int]:
        return {
            dict(metric.labels)["kind"]: int(metric.value)
            for metric in self.metrics.collect(name)
        }

    @property
    def sent_bytes(self) -> Dict[int, int]:
        return self._by_node("net.sent.bytes")

    @property
    def received_bytes(self) -> Dict[int, int]:
        return self._by_node("net.received.bytes")

    @property
    def sent_messages(self) -> Dict[int, int]:
        return self._by_node("net.sent.messages")

    @property
    def received_messages(self) -> Dict[int, int]:
        return self._by_node("net.received.messages")

    @property
    def kind_messages(self) -> Dict[str, int]:
        return self._by_kind("net.kind.messages")

    @property
    def kind_bytes(self) -> Dict[str, int]:
        return self._by_kind("net.kind.bytes")

    def edge_bytes(self) -> Dict[Tuple[int, int], int]:
        """Bytes per directed (source, destination) edge."""
        return {
            (int(dict(m.labels)["src"]), int(dict(m.labels)["dst"])): int(m.value)
            for m in self.metrics.collect("net.edge.bytes")
        }

    def edge_messages(self) -> Dict[Tuple[int, int], int]:
        return {
            (int(dict(m.labels)["src"]), int(dict(m.labels)["dst"])): int(m.value)
            for m in self.metrics.collect("net.edge.messages")
        }

    @property
    def total_bytes(self) -> int:
        return int(self.metrics.total("net.sent.bytes"))

    @property
    def total_messages(self) -> int:
        return int(self.metrics.total("net.sent.messages"))

    def node_sent(self, node: int) -> int:
        return int(self.metrics.value("net.sent.bytes", node=node))

    def node_received(self, node: int) -> int:
        return int(self.metrics.value("net.received.bytes", node=node))

    def snapshot(self) -> TrafficSnapshot:
        return TrafficSnapshot(
            self.total_bytes,
            self.total_messages,
            int(self.metrics.total("net.received.bytes")),
            int(self.metrics.total("net.received.messages")),
            self.sent_bytes,
            self.received_bytes,
            self.kind_bytes,
            self.kind_messages,
        )
