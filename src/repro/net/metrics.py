"""Network traffic accounting.

Network volume is one of the paper's three headline metrics: Figure 2
(row 1) shows REX exchanging two orders of magnitude less data than model
sharing, and Figures 5(b)/6(b)/7(b) report per-epoch volumes.  The meter
counts every payload byte and message, per sender and per receiver, and
can be snapshotted per epoch for those charts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["TrafficMeter", "TrafficSnapshot"]


@dataclass(frozen=True)
class TrafficSnapshot:
    """Immutable totals at a point in time."""

    bytes_sent: int
    messages_sent: int

    def delta(self, earlier: "TrafficSnapshot") -> "TrafficSnapshot":
        return TrafficSnapshot(
            self.bytes_sent - earlier.bytes_sent,
            self.messages_sent - earlier.messages_sent,
        )


@dataclass
class TrafficMeter:
    """Per-node byte/message counters for one simulated network."""

    sent_bytes: Dict[int, int] = field(default_factory=dict)
    received_bytes: Dict[int, int] = field(default_factory=dict)
    sent_messages: Dict[int, int] = field(default_factory=dict)
    received_messages: Dict[int, int] = field(default_factory=dict)
    kind_messages: Dict[str, int] = field(default_factory=dict)
    kind_bytes: Dict[str, int] = field(default_factory=dict)

    def record(self, source: int, destination: int, n_bytes: int, *, kind: str = "data") -> None:
        if n_bytes < 0:
            raise ValueError("message size must be non-negative")
        self.sent_bytes[source] = self.sent_bytes.get(source, 0) + n_bytes
        self.received_bytes[destination] = self.received_bytes.get(destination, 0) + n_bytes
        self.sent_messages[source] = self.sent_messages.get(source, 0) + 1
        self.received_messages[destination] = self.received_messages.get(destination, 0) + 1
        self.kind_messages[kind] = self.kind_messages.get(kind, 0) + 1
        self.kind_bytes[kind] = self.kind_bytes.get(kind, 0) + n_bytes

    @property
    def total_bytes(self) -> int:
        return sum(self.sent_bytes.values())

    @property
    def total_messages(self) -> int:
        return sum(self.sent_messages.values())

    def node_sent(self, node: int) -> int:
        return self.sent_bytes.get(node, 0)

    def node_received(self, node: int) -> int:
        return self.received_bytes.get(node, 0)

    def snapshot(self) -> TrafficSnapshot:
        return TrafficSnapshot(self.total_bytes, self.total_messages)
