"""In-process message transport (the ZeroMQ stand-in).

The distributed REX runtime (paper Algorithm 1) does all networking in
untrusted mode: the host relays ciphertexts between the enclave and the
wire.  This transport provides that wire for a set of co-hosted nodes:
each node owns an :class:`Endpoint`, sends length-preserving byte payloads
to peers by id, and drains its inbox when the runtime polls.  Every send
is recorded in a :class:`~repro.net.metrics.TrafficMeter`.

Delivery is reliable and in-order per (source, destination) pair --
matching ZeroMQ PAIR/DEALER semantics on a healthy LAN, which is also the
paper's operating point (fault tolerance is explicitly future work,
Section III-D).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.net.metrics import TrafficMeter
from repro.obs import MetricsRegistry

__all__ = ["Message", "Endpoint", "Network"]


@dataclass(frozen=True)
class Message:
    """One delivered payload."""

    source: int
    destination: int
    kind: str
    payload: bytes


class Endpoint:
    """A node's handle on the network."""

    def __init__(self, network: "Network", node_id: int):
        self._network = network
        self.node_id = node_id
        self._inbox: Deque[Message] = deque()

    def send(self, destination: int, payload: bytes, *, kind: str = "data") -> None:
        """Queue ``payload`` for ``destination`` (counted, in-order)."""
        self._network._deliver(Message(self.node_id, destination, kind, bytes(payload)))

    def poll(self, max_messages: Optional[int] = None) -> List[Message]:
        """Drain up to ``max_messages`` pending messages (all by default)."""
        limit = len(self._inbox) if max_messages is None else min(max_messages, len(self._inbox))
        return [self._inbox.popleft() for _ in range(limit)]

    @property
    def pending(self) -> int:
        return len(self._inbox)


class Network:
    """The set of endpoints plus global traffic accounting."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self._endpoints: Dict[int, Endpoint] = {}
        self.meter = TrafficMeter(metrics)

    def endpoint(self, node_id: int) -> Endpoint:
        """Create (or fetch) the endpoint for ``node_id``."""
        if node_id not in self._endpoints:
            self._endpoints[node_id] = Endpoint(self, node_id)
        return self._endpoints[node_id]

    @property
    def node_ids(self) -> List[int]:
        return sorted(self._endpoints)

    def _deliver(self, message: Message) -> None:
        destination = self._endpoints.get(message.destination)
        if destination is None:
            raise KeyError(f"no endpoint registered for node {message.destination}")
        self.meter.record(
            message.source, message.destination, len(message.payload), kind=message.kind
        )
        destination._inbox.append(message)
