"""In-process message transport (the ZeroMQ stand-in).

The distributed REX runtime (paper Algorithm 1) does all networking in
untrusted mode: the host relays ciphertexts between the enclave and the
wire.  This transport provides that wire for a set of co-hosted nodes:
each node owns an :class:`Endpoint`, sends length-preserving byte payloads
to peers by id, and drains its inbox when the runtime polls.  Every
delivered message is recorded in a :class:`~repro.net.metrics.TrafficMeter`.

By default delivery is reliable and in-order per (source, destination)
pair -- matching ZeroMQ PAIR/DEALER semantics on a healthy LAN, which is
the paper's operating point (fault tolerance is explicitly future work,
Section III-D).  The chaos layer (:mod:`repro.faults`) turns the healthy
LAN into a hostile one through two orthogonal hooks:

- :attr:`Network.fault_hook` decides a :class:`Fate` for every send
  attempt (deliver / drop / delay / duplicate / corrupt), and
- :attr:`Network.retry_policy` adds the recovery side: an ARQ-style
  bounded retransmission schedule with exponential backoff.  A message
  whose every attempt is dropped (or corrupted past the last retry) has
  *timed out* and is counted as ``faults.lost``.

Time is an explicit tick counter: :meth:`Network.tick` advances it and
flushes deliveries that came due (delayed frames, scheduled retries), so
a whole chaos run is a deterministic function of its seed -- nothing here
reads a wall clock.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.net.metrics import TrafficMeter
from repro.obs import MetricsRegistry

__all__ = ["Message", "Fate", "RetryPolicy", "Endpoint", "Network"]


@dataclass(frozen=True)
class Message:
    """One delivered payload.

    ``payload`` is any read-only bytes-like object.  Sealed frames arrive
    as read-only memoryviews of the sender's frame buffer (the zero-copy
    contract of the batched seal path); consumers that need an owned copy
    -- e.g. the corruption fault hook -- take it explicitly.
    """

    source: int
    destination: int
    kind: str
    payload: bytes


@dataclass(frozen=True)
class Fate:
    """What the fault hook decided for one transmission attempt.

    ``action`` is one of ``"deliver"``, ``"drop"``, ``"delay"``,
    ``"duplicate"`` or ``"corrupt"``:

    - ``drop`` discards the attempt (the retry policy may reschedule it);
    - ``delay`` postpones delivery by ``delay`` ticks (straggler links,
      reordering);
    - ``duplicate`` delivers now *and* again ``delay`` ticks later;
    - ``corrupt`` delivers ``payload`` in place of the original bytes,
      then treats the original like a drop (the AEAD layer rejects the
      corrupted copy, so the receiver effectively NAKs the frame and the
      retransmission schedule recovers it).
    """

    action: str
    delay: int = 0
    payload: Optional[bytes] = None
    reason: str = ""


#: The default fate: deliver immediately, unharmed.
DELIVER = Fate("deliver")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retransmission with exponential backoff.

    Attempt ``n`` (1-based) that fails is retried ``backoff_base *
    2**(n-1)`` ticks later, up to ``max_attempts`` total attempts.  The
    product of the two is the per-message timeout: once the last attempt
    fails the message is declared lost and counted, never silently
    forgotten.
    """

    max_attempts: int = 4
    backoff_base: int = 1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.backoff_base < 1:
            raise ValueError("backoff must be at least one tick")

    def backoff(self, attempt: int) -> int:
        """Ticks to wait before attempt ``attempt + 1``."""
        return self.backoff_base * (2 ** (attempt - 1))


class Endpoint:
    """A node's handle on the network."""

    def __init__(self, network: "Network", node_id: int):
        self._network = network
        self.node_id = node_id
        self._inbox: Deque[Message] = deque()

    def send(self, destination: int, payload: bytes, *, kind: str = "data") -> None:
        """Queue ``payload`` for ``destination`` (counted, in-order).

        Immutable bytes-like payloads (``bytes``, read-only memoryviews
        from the batch-seal path) ride through untouched -- the frame a
        seal wrote is the frame the receiver opens.  Writable buffers are
        wrapped in a read-only view so no copy is made yet nobody
        downstream can mutate in-flight bytes.
        """
        if not isinstance(payload, bytes):
            view = payload if isinstance(payload, memoryview) else memoryview(payload)
            payload = view.toreadonly()
        self._network._submit(Message(self.node_id, destination, kind, payload))

    def poll(self, max_messages: Optional[int] = None) -> List[Message]:
        """Drain up to ``max_messages`` pending messages (all by default).

        ``max_messages=0`` means "none": it returns an empty list, it is
        not an alias for the unlimited default (regression-pinned).
        """
        if max_messages is None:
            limit = len(self._inbox)
        else:
            limit = min(max(int(max_messages), 0), len(self._inbox))
        return [self._inbox.popleft() for _ in range(limit)]

    @property
    def pending(self) -> int:
        return len(self._inbox)


class Network:
    """The set of endpoints plus global traffic accounting."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self._endpoints: Dict[int, Endpoint] = {}
        self.meter = TrafficMeter(metrics)
        self._metrics = metrics
        #: Simulated network time, advanced by :meth:`tick`.
        self.now = 0
        #: Chaos surface; ``None`` keeps the healthy-LAN fast path.
        self.fault_hook: Optional[Callable[[Message, int], Optional[Fate]]] = None
        self.retry_policy: Optional[RetryPolicy] = None
        self._down: Set[int] = set()
        self._schedule: List[Tuple[int, int, str, Message, int]] = []
        self._schedule_seq = 0

    def endpoint(self, node_id: int) -> Endpoint:
        """Create (or fetch) the endpoint for ``node_id``."""
        if node_id not in self._endpoints:
            self._endpoints[node_id] = Endpoint(self, node_id)
        return self._endpoints[node_id]

    @property
    def node_ids(self) -> List[int]:
        return sorted(self._endpoints)

    # ------------------------------------------------------------------ #
    # Churn surface (driven by the chaos runner)
    # ------------------------------------------------------------------ #
    def set_down(self, node_id: int) -> None:
        """Crash ``node_id``: future inbound traffic is dropped and its
        undrained inbox is lost, exactly like a process kill."""
        self._down.add(node_id)
        endpoint = self._endpoints.get(node_id)
        if endpoint is not None:
            endpoint._inbox.clear()

    def set_up(self, node_id: int) -> None:
        self._down.discard(node_id)

    def is_down(self, node_id: int) -> bool:
        return node_id in self._down

    @property
    def in_flight(self) -> int:
        """Scheduled future deliveries/retries (stall-detection input)."""
        return len(self._schedule)

    def tick(self) -> int:
        """Advance time one tick; run every delivery/retry that came due."""
        self.now += 1
        processed = 0
        while self._schedule and self._schedule[0][0] <= self.now:
            _, _, what, message, attempt = heapq.heappop(self._schedule)
            processed += 1
            if what == "deliver":
                self._finalize(message, attempt)
            else:  # "retry": the attempt runs the fault gauntlet again
                self._submit(message, attempt)
        return processed

    # ------------------------------------------------------------------ #
    # Transmission pipeline
    # ------------------------------------------------------------------ #
    def _submit(self, message: Message, attempt: int = 1) -> None:
        if message.destination not in self._endpoints:
            raise KeyError(f"no endpoint registered for node {message.destination}")
        fate = DELIVER
        if self.fault_hook is not None:
            decided = self.fault_hook(message, attempt)
            if decided is not None:
                fate = decided
        if fate.action == "deliver" and message.destination in self._down:
            fate = Fate("drop", reason="down")

        if fate.action == "deliver":
            self._finalize(message, attempt)
        elif fate.action == "delay":
            self._later(max(1, fate.delay), "deliver", message, attempt)
        elif fate.action == "duplicate":
            self._finalize(message, attempt)
            self._later(max(1, fate.delay), "deliver", message, attempt)
        elif fate.action == "corrupt":
            mangled = Message(
                message.source, message.destination, message.kind, bytes(fate.payload or b"")
            )
            self._finalize(mangled, attempt)
            self._retry_or_lose(message, attempt, fate.reason or "corrupt")
        elif fate.action == "drop":
            self._retry_or_lose(message, attempt, fate.reason or "drop")
        else:
            raise ValueError(f"unknown fate action {fate.action!r}")

    def _later(self, delay: int, what: str, message: Message, attempt: int) -> None:
        self._schedule_seq += 1
        heapq.heappush(
            self._schedule, (self.now + delay, self._schedule_seq, what, message, attempt)
        )

    def _retry_or_lose(self, message: Message, attempt: int, reason: str) -> None:
        policy = self.retry_policy
        if policy is not None and attempt < policy.max_attempts:
            self._later(policy.backoff(attempt), "retry", message, attempt + 1)
            if self._metrics is not None:
                self._metrics.counter("net.retries", kind=message.kind).inc()
        elif self._metrics is not None:
            self._metrics.counter("faults.lost", kind=message.kind, reason=reason).inc()

    def _finalize(self, message: Message, attempt: int) -> None:
        if message.destination in self._down:
            # A delayed/retried frame arriving at a crashed receiver.
            if self._metrics is not None:
                self._metrics.counter("faults.lost", kind=message.kind, reason="down").inc()
            return
        self._deliver(message)
        if attempt > 1 and self._metrics is not None:
            self._metrics.counter("faults.recovered", kind="retry").inc()

    def _deliver(self, message: Message) -> None:
        destination = self._endpoints.get(message.destination)
        if destination is None:
            raise KeyError(f"no endpoint registered for node {message.destination}")
        self.meter.record(
            message.source, message.destination, len(message.payload), kind=message.kind
        )
        destination._inbox.append(message)
