"""Network substrate: topologies, transport, codecs, traffic accounting.

The paper connects nodes with either a Watts-Strogatz small-world graph
(610/50 nodes, 6 close connections, 3% long-range probability) or an
Erdos-Renyi random graph (p=5%, repaired to be connected), plus a fully
connected 8-node layout for the SGX hardware runs; messages travel over
ZeroMQ.  Here the graphs are generated from scratch
(:mod:`~repro.net.topology`), messages travel over an in-process transport
with per-edge accounting (:mod:`~repro.net.transport`), and payloads are
packed by compact binary codecs (:mod:`~repro.net.serialization`) whose
sizes define the network-volume metrics in the evaluation.
"""

from repro.net.metrics import TrafficMeter
from repro.net.serialization import (
    decode_mf_state,
    decode_triplets,
    encode_mf_state,
    encode_triplets,
    measure_mf_state,
    measure_triplets,
)
from repro.net.topology import Topology
from repro.net.transport import Endpoint, Message, Network

__all__ = [
    "Endpoint",
    "Message",
    "Network",
    "Topology",
    "TrafficMeter",
    "decode_mf_state",
    "decode_triplets",
    "encode_mf_state",
    "encode_triplets",
    "measure_mf_state",
    "measure_triplets",
]
