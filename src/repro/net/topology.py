"""Communication topologies, generated from scratch.

Two families from the paper (Section IV-A2) plus the fully connected
layout of the SGX hardware experiments:

- **Small world** (Watts-Strogatz): a ring lattice where each node links to
  its ``k`` nearest neighbors, with each edge rewired to a random endpoint
  with probability ``p``.  Low diameter, high clustering.  The paper uses
  k=6, p=3%.
- **Erdos-Renyi**: every possible edge is present independently with
  probability ``p`` (5% in the paper).  The construction can leave the
  graph disconnected, so -- exactly as the paper does -- missing edges are
  added to join the components.
- **Fully connected**: the 8-node, 28-connection SGX testbed.

The class also computes the Metropolis-Hastings weight matrix used by
D-PSGD merging (Section III-C2): ``w_ij = 1 / (1 + max(d_i, d_j))`` for
each edge and ``w_ii = 1 - sum_j w_ij``, a doubly-stochastic matrix that
makes decentralized averaging converge to the true mean.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from repro._rng import child_rng

__all__ = ["Topology"]

Edge = Tuple[int, int]


class _UnionFind:
    """Disjoint sets for connectivity repair."""

    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:  # path compression
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[ra] = rb
        return True


class Topology:
    """An undirected communication graph over ``n_nodes`` nodes."""

    def __init__(self, n_nodes: int, edges: Sequence[Edge], *, name: str = "custom"):
        if n_nodes < 1:
            raise ValueError("topology needs at least one node")
        canonical: set = set()
        for a, b in edges:
            if a == b:
                raise ValueError(f"self-loop on node {a}")
            if not (0 <= a < n_nodes and 0 <= b < n_nodes):
                raise ValueError(f"edge ({a}, {b}) out of range")
            canonical.add((min(a, b), max(a, b)))
        self.n_nodes = n_nodes
        self.name = name
        self.edges: Tuple[Edge, ...] = tuple(sorted(canonical))

        adjacency: List[List[int]] = [[] for _ in range(n_nodes)]
        for a, b in self.edges:
            adjacency[a].append(b)
            adjacency[b].append(a)
        self._neighbors = tuple(np.array(sorted(adj), dtype=np.int64) for adj in adjacency)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    def neighbors(self, node: int) -> np.ndarray:
        """Sorted neighbor ids of ``node``."""
        return self._neighbors[node]

    def degree(self, node: int) -> int:
        return len(self._neighbors[node])

    @property
    def degrees(self) -> np.ndarray:
        return np.array([len(adj) for adj in self._neighbors], dtype=np.int64)

    @property
    def n_edges(self) -> int:
        return len(self.edges)

    def is_connected(self) -> bool:
        """Breadth-first reachability from node 0."""
        if self.n_nodes == 1:
            return True
        visited = np.zeros(self.n_nodes, dtype=bool)
        frontier = [0]
        visited[0] = True
        while frontier:
            nxt: List[int] = []
            for node in frontier:
                for nb in self._neighbors[node]:
                    if not visited[nb]:
                        visited[nb] = True
                        nxt.append(int(nb))
            frontier = nxt
        return bool(visited.all())

    def clustering_coefficient(self) -> float:
        """Average local clustering (small-world graphs score high)."""
        total = 0.0
        for node in range(self.n_nodes):
            nbrs = self._neighbors[node]
            d = len(nbrs)
            if d < 2:
                continue
            neighbor_set: FrozenSet[int] = frozenset(int(x) for x in nbrs)
            links = 0
            for nb in nbrs:
                links += sum(1 for x in self._neighbors[nb] if int(x) in neighbor_set)
            total += links / (d * (d - 1))
        return total / self.n_nodes

    def metropolis_hastings_weights(self) -> Dict[Tuple[int, int], float]:
        """Directed MH weight map including self-loops ``(i, i)``.

        ``w[i, j] = 1 / (1 + max(d_i, d_j))`` for each neighbor pair and
        ``w[i, i] = 1 - sum_j w[i, j]``; rows sum to one and the matrix is
        symmetric, hence doubly stochastic.
        """
        degrees = self.degrees
        weights: Dict[Tuple[int, int], float] = {}
        for i in range(self.n_nodes):
            row_sum = 0.0
            for j in self._neighbors[i]:
                w = 1.0 / (1.0 + max(degrees[i], degrees[int(j)]))
                weights[(i, int(j))] = w
                row_sum += w
            weights[(i, i)] = 1.0 - row_sum
        return weights

    # ------------------------------------------------------------------ #
    # Generators
    # ------------------------------------------------------------------ #
    @classmethod
    def small_world(
        cls, n_nodes: int, *, k: int = 6, rewire_probability: float = 0.03, seed: int = 0
    ) -> "Topology":
        """Watts-Strogatz graph (paper defaults: k=6, p=3%)."""
        if k % 2 != 0:
            raise ValueError("k must be even (k/2 neighbors on each side)")
        if k >= n_nodes:
            raise ValueError("k must be smaller than the node count")
        rng = child_rng(seed, "topology", "small-world", n_nodes, k)
        edge_set: set = set()
        for node in range(n_nodes):
            for step in range(1, k // 2 + 1):
                edge_set.add((min(node, (node + step) % n_nodes), max(node, (node + step) % n_nodes)))
        edges = sorted(edge_set)
        rewired: set = set()
        for a, b in edges:
            if rng.random() < rewire_probability:
                # Rewire the far endpoint to a uniform random node,
                # avoiding self-loops and duplicates (standard WS rule).
                for _ in range(n_nodes):
                    target = int(rng.integers(0, n_nodes))
                    candidate = (min(a, target), max(a, target))
                    if target != a and candidate not in rewired and candidate not in edge_set:
                        rewired.add(candidate)
                        break
                else:  # pragma: no cover - dense fallback
                    rewired.add((a, b))
            else:
                rewired.add((a, b))
        topology = cls(n_nodes, sorted(rewired), name=f"small-world({n_nodes},k={k})")
        return topology._ensure_connected(rng)

    @classmethod
    def erdos_renyi(cls, n_nodes: int, *, p: float = 0.05, seed: int = 0) -> "Topology":
        """Erdos-Renyi G(n, p) graph, repaired to be connected."""
        if not 0.0 < p <= 1.0:
            raise ValueError("edge probability must be in (0, 1]")
        rng = child_rng(seed, "topology", "erdos-renyi", n_nodes)
        # Vectorized upper-triangle Bernoulli draw.
        iu, ju = np.triu_indices(n_nodes, k=1)
        mask = rng.random(len(iu)) < p
        edges = list(zip(iu[mask].tolist(), ju[mask].tolist()))
        topology = cls(n_nodes, edges, name=f"erdos-renyi({n_nodes},p={p})")
        return topology._ensure_connected(rng)

    @classmethod
    def fully_connected(cls, n_nodes: int) -> "Topology":
        """Complete graph (the paper's 8-node / 28-edge SGX setup)."""
        iu, ju = np.triu_indices(n_nodes, k=1)
        edges = list(zip(iu.tolist(), ju.tolist()))
        return cls(n_nodes, edges, name=f"fully-connected({n_nodes})")

    @classmethod
    def ring(cls, n_nodes: int) -> "Topology":
        """Simple cycle; useful in tests and ablations."""
        edges = [(i, (i + 1) % n_nodes) for i in range(n_nodes)]
        return cls(n_nodes, edges, name=f"ring({n_nodes})")

    def _ensure_connected(self, rng: np.random.Generator) -> "Topology":
        """Join components by adding random cross-component edges.

        Mirrors the paper's repair: "we ensure to make it connected by
        adding the missing edges."
        """
        uf = _UnionFind(self.n_nodes)
        for a, b in self.edges:
            uf.union(a, b)
        roots = {uf.find(i) for i in range(self.n_nodes)}
        if len(roots) == 1:
            return self
        extra: List[Edge] = []
        components: Dict[int, List[int]] = {}
        for node in range(self.n_nodes):
            components.setdefault(uf.find(node), []).append(node)
        groups = list(components.values())
        for left, right in zip(groups, groups[1:]):
            a = int(left[rng.integers(0, len(left))])
            b = int(right[rng.integers(0, len(right))])
            extra.append((a, b))
        return Topology(self.n_nodes, list(self.edges) + extra, name=self.name)
