"""Compact binary codecs for everything REX puts on the wire.

The original implementation serializes with Eigen buffers and JSON (only
for attestation); here each payload kind has an explicit little-endian
binary layout built from NumPy buffers -- the mpi4py-style "send the raw
array, not pickles" idiom.  Byte sizes are the quantity the evaluation
measures, so every codec has a ``measure_*`` companion returning the exact
encoded size without materializing the buffer (the fleet simulator
accounts for hundreds of gigabytes of model traffic it never needs to
build).

Layouts (all little-endian):

- **Triplets** (a raw-data share): magic ``RXD1`` | u32 count |
  u32 n_users | u32 n_items | count * (i32 user, i32 item, f32 rating).
- **MF model**: magic ``RXM1`` | f32 global_mean | u32 k | u32 n_users |
  u32 n_items | u32 seen_users | u32 seen_items | seen user ids (i32) |
  user rows (k f32 + f32 bias) | seen item ids | item rows.
- **DNN model**: magic ``RXN1`` | u32 k | u32 n_users | u32 n_items |
  u32 seen_users | u32 seen_items | u32 mlp_len | ids | embedding rows |
  mlp vector (f32).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.data.dataset import RatingsDataset
from repro.ml.dnn.model import DnnState
from repro.ml.mf import MfState

__all__ = [
    "encode_triplets",
    "encode_triplets_into",
    "decode_triplets",
    "measure_triplets",
    "encode_mf_state",
    "encode_mf_state_into",
    "decode_mf_state",
    "measure_mf_state",
    "encode_dnn_state",
    "encode_dnn_state_into",
    "decode_dnn_state",
    "measure_dnn_state",
]

_TRIPLET_MAGIC = b"RXD1"
_MF_MAGIC = b"RXM1"
_DNN_MAGIC = b"RXN1"


class CodecError(ValueError):
    """Malformed or mislabelled wire payload."""


# --------------------------------------------------------------------- #
# Triplets
# --------------------------------------------------------------------- #
def measure_triplets(count: int) -> int:
    """Encoded size of a raw-data share with ``count`` triplets."""
    return 16 + 12 * count


def encode_triplets_into(data: RatingsDataset, buf, offset: int = 0) -> int:
    """Write a triplet payload into ``buf`` at ``offset``; returns the end.

    ``buf`` is any writable bytes-like (typically the content span of a
    preallocated plaintext frame, so the payload is serialized exactly
    once and never re-joined).  Sized by :func:`measure_triplets`.
    """
    view = memoryview(buf)
    count = len(data)
    view[offset : offset + 4] = _TRIPLET_MAGIC
    struct.pack_into("<III", view, offset + 4, count, data.n_users, data.n_items)
    # Ratings are bit-cast to i4 so one contiguous (count, 3) i4 buffer
    # holds the whole payload; decode reverses the cast.
    body = np.frombuffer(view, dtype="<i4", count=count * 3, offset=offset + 16)
    body = body.reshape(count, 3)
    body[:, 0] = data.users
    body[:, 1] = data.items
    body[:, 2] = np.ascontiguousarray(data.ratings, dtype="<f4").view("<i4")
    return offset + measure_triplets(count)


def encode_triplets(data: RatingsDataset) -> bytes:
    buf = bytearray(measure_triplets(len(data)))
    end = encode_triplets_into(data, buf)
    assert end == len(buf)
    return bytes(buf)


def decode_triplets(payload: bytes) -> RatingsDataset:
    if payload[:4] != _TRIPLET_MAGIC:
        raise CodecError("not a triplet payload")
    count, n_users, n_items = struct.unpack_from("<III", payload, 4)
    body = np.frombuffer(payload, dtype="<i4", offset=16).reshape(count, 3)
    return RatingsDataset(
        body[:, 0].astype(np.int32),
        body[:, 1].astype(np.int32),
        body[:, 2].copy().view("<f4"),
        n_users=n_users,
        n_items=n_items,
    )


# --------------------------------------------------------------------- #
# MF model
# --------------------------------------------------------------------- #
def measure_mf_state(seen_users: int, seen_items: int, k: int, *, float_bytes: int = 4) -> int:
    header = 4 + 4 + 5 * 4
    per_row = 4 + (k + 1) * float_bytes  # id + k factors + bias
    return header + (seen_users + seen_items) * per_row


def encode_mf_state_into(state: MfState, buf, offset: int = 0, *, wire_dtype: str = "<f4") -> int:
    """Write an MF model payload into ``buf`` at ``offset``; returns the end.

    Seen rows are gathered straight into views of the destination buffer,
    so the (potentially multi-hundred-kilobyte) row blocks are written
    exactly once -- no intermediate row arrays, no join.  Sized by
    :func:`measure_mf_state`.
    """
    if wire_dtype not in ("<f4", "<f8"):
        raise CodecError("wire_dtype must be <f4 or <f8")
    float_bytes = 4 if wire_dtype == "<f4" else 8
    user_ids = np.flatnonzero(state.user_seen).astype("<i4")
    item_ids = np.flatnonzero(state.item_seen).astype("<i4")
    k = state.k
    k_word = k | (0x80000000 if float_bytes == 8 else 0)
    view = memoryview(buf)
    view[offset : offset + 4] = _MF_MAGIC
    struct.pack_into(
        "<fIIIII",
        view,
        offset + 4,
        state.global_mean,
        k_word,
        state.user_factors.shape[0],
        state.item_factors.shape[0],
        len(user_ids),
        len(item_ids),
    )
    cursor = offset + 4 + 4 + 5 * 4

    def write_block(ids: np.ndarray, factors, bias, pos: int) -> int:
        id_dest = np.frombuffer(view, dtype="<i4", count=len(ids), offset=pos)
        id_dest[:] = ids
        pos += id_dest.nbytes
        rows = np.frombuffer(view, dtype=wire_dtype, count=len(ids) * (k + 1), offset=pos)
        rows = rows.reshape(len(ids), k + 1)
        rows[:, :k] = factors[ids]
        rows[:, k] = bias[ids]
        return pos + rows.nbytes

    cursor = write_block(user_ids, state.user_factors, state.user_bias, cursor)
    cursor = write_block(item_ids, state.item_factors, state.item_bias, cursor)
    expected = offset + measure_mf_state(len(user_ids), len(item_ids), k, float_bytes=float_bytes)
    assert cursor == expected
    return cursor


def encode_mf_state(state: MfState, *, wire_dtype: str = "<f4") -> bytes:
    """Encode seen rows only.  ``wire_dtype`` is ``"<f4"`` for the float32
    simulator wire or ``"<f8"`` for the distributed runtime's Eigen-style
    double wire; the header records which was used (1 bit of the k word).
    """
    seen_users = int(np.count_nonzero(state.user_seen))
    seen_items = int(np.count_nonzero(state.item_seen))
    float_bytes = 4 if wire_dtype == "<f4" else 8
    buf = bytearray(measure_mf_state(seen_users, seen_items, state.k, float_bytes=float_bytes))
    encode_mf_state_into(state, buf, wire_dtype=wire_dtype)
    return bytes(buf)


def decode_mf_state(payload: bytes) -> MfState:
    if payload[:4] != _MF_MAGIC:
        raise CodecError("not an MF model payload")
    global_mean, k_word, n_users, n_items, seen_users, seen_items = struct.unpack_from(
        "<fIIIII", payload, 4
    )
    k = k_word & 0x7FFFFFFF
    wire_dtype = "<f8" if (k_word & 0x80000000) else "<f4"
    np_dtype = np.float64 if wire_dtype == "<f8" else np.float32
    offset = 4 + 4 + 5 * 4
    user_ids = np.frombuffer(payload, dtype="<i4", count=seen_users, offset=offset)
    offset += user_ids.nbytes
    user_rows = np.frombuffer(
        payload, dtype=wire_dtype, count=seen_users * (k + 1), offset=offset
    ).reshape(seen_users, k + 1)
    offset += user_rows.nbytes
    item_ids = np.frombuffer(payload, dtype="<i4", count=seen_items, offset=offset)
    offset += item_ids.nbytes
    item_rows = np.frombuffer(
        payload, dtype=wire_dtype, count=seen_items * (k + 1), offset=offset
    ).reshape(seen_items, k + 1)

    user_factors = np.zeros((n_users, k), dtype=np_dtype)
    item_factors = np.zeros((n_items, k), dtype=np_dtype)
    user_bias = np.zeros(n_users, dtype=np_dtype)
    item_bias = np.zeros(n_items, dtype=np_dtype)
    user_seen = np.zeros(n_users, dtype=bool)
    item_seen = np.zeros(n_items, dtype=bool)
    user_factors[user_ids] = user_rows[:, :k]
    user_bias[user_ids] = user_rows[:, k]
    user_seen[user_ids] = True
    item_factors[item_ids] = item_rows[:, :k]
    item_bias[item_ids] = item_rows[:, k]
    item_seen[item_ids] = True
    return MfState(
        user_factors, item_factors, user_bias, item_bias, user_seen, item_seen, global_mean
    )


# --------------------------------------------------------------------- #
# DNN model
# --------------------------------------------------------------------- #
def measure_dnn_state(seen_users: int, seen_items: int, k: int, mlp_len: int) -> int:
    header = 4 + 6 * 4
    per_row = 4 + k * 4
    return header + (seen_users + seen_items) * per_row + mlp_len * 4


def encode_dnn_state_into(state: DnnState, buf, offset: int = 0) -> int:
    """Write a DNN model payload into ``buf`` at ``offset``; returns the end.

    Same single-write contract as :func:`encode_mf_state_into`; sized by
    :func:`measure_dnn_state`.
    """
    user_ids = np.flatnonzero(state.user_seen).astype("<i4")
    item_ids = np.flatnonzero(state.item_seen).astype("<i4")
    k = state.k
    view = memoryview(buf)
    view[offset : offset + 4] = _DNN_MAGIC
    struct.pack_into(
        "<IIIIII",
        view,
        offset + 4,
        k,
        state.user_embeddings.shape[0],
        state.item_embeddings.shape[0],
        len(user_ids),
        len(item_ids),
        state.mlp_params.size,
    )
    cursor = offset + 4 + 6 * 4

    def write_block(ids: np.ndarray, embeddings, pos: int) -> int:
        id_dest = np.frombuffer(view, dtype="<i4", count=len(ids), offset=pos)
        id_dest[:] = ids
        pos += id_dest.nbytes
        rows = np.frombuffer(view, dtype="<f4", count=len(ids) * k, offset=pos)
        rows.reshape(len(ids), k)[:] = embeddings[ids]
        return pos + rows.nbytes

    cursor = write_block(user_ids, state.user_embeddings, cursor)
    cursor = write_block(item_ids, state.item_embeddings, cursor)
    mlp_dest = np.frombuffer(view, dtype="<f4", count=state.mlp_params.size, offset=cursor)
    mlp_dest[:] = state.mlp_params
    cursor += mlp_dest.nbytes
    expected = offset + measure_dnn_state(len(user_ids), len(item_ids), k, state.mlp_params.size)
    assert cursor == expected
    return cursor


def encode_dnn_state(state: DnnState) -> bytes:
    seen_users = int(np.count_nonzero(state.user_seen))
    seen_items = int(np.count_nonzero(state.item_seen))
    buf = bytearray(measure_dnn_state(seen_users, seen_items, state.k, state.mlp_params.size))
    encode_dnn_state_into(state, buf)
    return bytes(buf)


def decode_dnn_state(payload: bytes) -> DnnState:
    if payload[:4] != _DNN_MAGIC:
        raise CodecError("not a DNN model payload")
    k, n_users, n_items, seen_users, seen_items, mlp_len = struct.unpack_from("<IIIIII", payload, 4)
    offset = 4 + 6 * 4
    user_ids = np.frombuffer(payload, dtype="<i4", count=seen_users, offset=offset)
    offset += user_ids.nbytes
    user_rows = np.frombuffer(payload, dtype="<f4", count=seen_users * k, offset=offset).reshape(
        seen_users, k
    )
    offset += user_rows.nbytes
    item_ids = np.frombuffer(payload, dtype="<i4", count=seen_items, offset=offset)
    offset += item_ids.nbytes
    item_rows = np.frombuffer(payload, dtype="<f4", count=seen_items * k, offset=offset).reshape(
        seen_items, k
    )
    offset += item_rows.nbytes
    mlp = np.frombuffer(payload, dtype="<f4", count=mlp_len, offset=offset).copy()

    user_embeddings = np.zeros((n_users, k), dtype=np.float32)
    item_embeddings = np.zeros((n_items, k), dtype=np.float32)
    user_seen = np.zeros(n_users, dtype=bool)
    item_seen = np.zeros(n_items, dtype=bool)
    user_embeddings[user_ids] = user_rows
    user_seen[user_ids] = True
    item_embeddings[item_ids] = item_rows
    item_seen[item_ids] = True
    return DnnState(user_embeddings, item_embeddings, user_seen, item_seen, mlp)
