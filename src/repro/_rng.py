"""Deterministic random-stream helpers.

Every stochastic component in the reproduction (dataset synthesis,
topology wiring, SGD shuffling, gossip peer selection, data sampling)
draws from an independent, named child stream of one experiment seed, so
whole experiments are bit-reproducible while components stay decoupled:
adding a draw in one module never perturbs another module's stream.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

__all__ = ["child_rng", "stream_seed"]


def stream_seed(seed: int, *names: Union[str, int]) -> int:
    """Derive a stable 63-bit child seed from ``seed`` and a name path."""
    h = hashlib.sha256()
    h.update(str(int(seed)).encode())
    for name in names:
        h.update(b"/")
        h.update(str(name).encode())
    return int.from_bytes(h.digest()[:8], "little") >> 1


def child_rng(seed: int, *names: Union[str, int]) -> np.random.Generator:
    """A NumPy generator on the named child stream of ``seed``."""
    return np.random.default_rng(stream_seed(seed, *names))
