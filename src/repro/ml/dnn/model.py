"""The DNN recommender: embeddings + MLP with manual backprop.

Architecture (paper Section IV-A3b): user and item embeddings of dimension
k=20 are concatenated into a 40-dim input; four hidden Linear+ReLU layers
follow, with dropout 0.02 after the embedding layer and 0.15 after the
first two hidden layers; a final Linear maps to one output passed through
a last ReLU.  With the default hidden sizes (128, 94, 46, 22) and the
MovieLens-Latest id space (610 users, 9,000 items) the model has exactly
215,001 trainable parameters, matching the paper's count.

Like the MF model, it supports presence masks and the RMW / D-PSGD merge
rules so it can be trained decentralized with either model or data
sharing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro._rng import child_rng
from repro.data.dataset import RatingsDataset
from repro.ml.metrics import rmse
from repro.ml.dnn.layers import Dropout, Linear, Parameter, ReLU, Sequential
from repro.ml.dnn.optim import Adam
from repro.ml.mf import MODEL_HEADER_BYTES, RATING_MAX, RATING_MIN

__all__ = ["DnnHyperParams", "DnnState", "DnnRecommender"]

_WIRE_FLOAT = 4


@dataclass(frozen=True)
class DnnHyperParams:
    """Hyper-parameters (paper Section IV-A3b defaults)."""

    k: int = 20
    hidden: Tuple[int, ...] = (128, 94, 46, 22)
    embedding_dropout: float = 0.02
    hidden_dropout: float = 0.15
    learning_rate: float = 1e-4
    weight_decay: float = 1e-5
    batch_size: int = 128
    batches_per_epoch: int = 4
    init_scale: float = 0.05

    def __post_init__(self) -> None:
        if self.k < 1 or len(self.hidden) < 1:
            raise ValueError("need a positive embedding dim and >=1 hidden layer")


@dataclass
class DnnState:
    """Shareable snapshot: embeddings (+ masks) and the flat MLP vector."""

    user_embeddings: np.ndarray
    item_embeddings: np.ndarray
    user_seen: np.ndarray
    item_seen: np.ndarray
    mlp_params: np.ndarray  # flat float32 vector

    @property
    def k(self) -> int:
        return self.user_embeddings.shape[1]

    def wire_bytes(self) -> int:
        """Seen embedding rows (+ ids) plus the always-shared dense MLP."""
        seen_users = int(self.user_seen.sum())
        seen_items = int(self.item_seen.sum())
        per_row = 4 + self.k * _WIRE_FLOAT
        return (
            MODEL_HEADER_BYTES
            + (seen_users + seen_items) * per_row
            + self.mlp_params.size * _WIRE_FLOAT
        )

    def copy(self) -> "DnnState":
        return DnnState(
            self.user_embeddings.copy(),
            self.item_embeddings.copy(),
            self.user_seen.copy(),
            self.item_seen.copy(),
            self.mlp_params.copy(),
        )


class DnnRecommender:
    """One node's deep recommender with Adam training."""

    def __init__(
        self,
        n_users: int,
        n_items: int,
        hp: DnnHyperParams = DnnHyperParams(),
        *,
        seed: int = 0,
    ):
        self.n_users = n_users
        self.n_items = n_items
        self.hp = hp

        init_rng = child_rng(seed, "dnn-init")
        self._dropout_rng = child_rng(seed, "dnn-dropout")
        self.user_embeddings = Parameter(
            init_rng.normal(0.0, hp.init_scale, size=(n_users, hp.k))
        )
        self.item_embeddings = Parameter(
            init_rng.normal(0.0, hp.init_scale, size=(n_items, hp.k))
        )
        self.user_seen = np.zeros(n_users, dtype=bool)
        self.item_seen = np.zeros(n_items, dtype=bool)

        layers: List = [Dropout(hp.embedding_dropout, self._dropout_rng)]
        in_dim = 2 * hp.k
        for depth, width in enumerate(hp.hidden):
            layers.append(Linear(in_dim, width, init_rng))
            layers.append(ReLU())
            if depth < 2:
                layers.append(Dropout(hp.hidden_dropout, self._dropout_rng))
            in_dim = width
        layers.append(Linear(in_dim, 1, init_rng))
        layers.append(ReLU())
        self.mlp = Sequential(layers)

        self._mlp_params = self.mlp.parameters()
        self._all_params = [self.user_embeddings, self.item_embeddings, *self._mlp_params]
        self.optimizer = Adam(
            self._all_params,
            learning_rate=hp.learning_rate,
            weight_decay=hp.weight_decay,
        )
        self._embedding_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------ #
    # Forward / backward / training
    # ------------------------------------------------------------------ #
    @property
    def param_count(self) -> int:
        """Total trainable parameters (embeddings + MLP)."""
        return sum(p.size for p in self._all_params)

    @property
    def mlp_param_count(self) -> int:
        return sum(p.size for p in self._mlp_params)

    @property
    def resident_bytes(self) -> int:
        """In-enclave footprint: parameters + Adam moments + masks."""
        params = sum(p.value.nbytes + p.grad.nbytes for p in self._all_params)
        moments = 2 * sum(p.value.nbytes for p in self._all_params)
        return params + moments + self.user_seen.nbytes + self.item_seen.nbytes

    def _forward(self, users: np.ndarray, items: np.ndarray, *, training: bool) -> np.ndarray:
        x = np.concatenate(
            [self.user_embeddings.value[users], self.item_embeddings.value[items]],
            axis=1,
        )
        if training:
            self._embedding_cache = (users, items)
        return self.mlp.forward(x, training=training)[:, 0]

    def _backward(self, grad_pred: np.ndarray) -> None:
        grad_in = self.mlp.backward(grad_pred[:, None])
        users, items = self._embedding_cache  # type: ignore[misc]
        k = self.hp.k
        np.add.at(self.user_embeddings.grad, users, grad_in[:, :k])
        np.add.at(self.item_embeddings.grad, items, grad_in[:, k:])

    def predict(self, users: np.ndarray, items: np.ndarray, *, clip: bool = True) -> np.ndarray:
        scores = self._forward(users, items, training=False)
        if clip:
            scores = np.clip(scores, RATING_MIN, RATING_MAX)
        return scores

    def evaluate_rmse(self, data: RatingsDataset) -> float:
        if len(data) == 0:
            return float("nan")
        return rmse(self.predict(data.users, data.items), data.ratings)

    def mark_seen(self, data: RatingsDataset) -> None:
        self.user_seen[data.users] = True
        self.item_seen[data.items] = True

    def train_epoch(
        self,
        data: RatingsDataset,
        rng: np.random.Generator,
        *,
        batches: Optional[int] = None,
    ) -> int:
        """Fixed-batch-count epoch (Section III-E), MSE loss, Adam step."""
        if len(data) == 0:
            return 0
        n_batches = self.hp.batches_per_epoch if batches is None else batches
        total = 0
        for _ in range(n_batches):
            idx = rng.integers(0, len(data), size=self.hp.batch_size)
            users = data.users[idx]
            items = data.items[idx]
            targets = data.ratings[idx]
            self.optimizer.zero_grad()
            pred = self._forward(users, items, training=True)
            grad = (2.0 / len(idx)) * (pred - targets).astype(np.float32)
            self._backward(grad)
            self.optimizer.step()
            total += len(idx)
        return total

    # ------------------------------------------------------------------ #
    # Sharing and merging
    # ------------------------------------------------------------------ #
    def mlp_vector(self) -> np.ndarray:
        """Flat copy of the MLP parameters (the dense part of the wire)."""
        return np.concatenate([p.value.ravel() for p in self._mlp_params])

    def _load_mlp_vector(self, vector: np.ndarray) -> None:
        offset = 0
        for p in self._mlp_params:
            p.value[:] = vector[offset : offset + p.size].reshape(p.value.shape)
            offset += p.size

    def state(self) -> DnnState:
        return DnnState(
            self.user_embeddings.value.copy(),
            self.item_embeddings.value.copy(),
            self.user_seen.copy(),
            self.item_seen.copy(),
            self.mlp_vector(),
        )

    def load_state(self, state: DnnState) -> None:
        self.user_embeddings.value[:] = state.user_embeddings
        self.item_embeddings.value[:] = state.item_embeddings
        self.user_seen[:] = state.user_seen
        self.item_seen[:] = state.item_seen
        self._load_mlp_vector(state.mlp_params)

    def merge_average(self, alien: DnnState) -> None:
        """RMW merge: masked average of embeddings, plain average of MLP."""
        _masked_embedding_average(
            self.user_embeddings.value, self.user_seen, alien.user_embeddings, alien.user_seen
        )
        _masked_embedding_average(
            self.item_embeddings.value, self.item_seen, alien.item_embeddings, alien.item_seen
        )
        self._load_mlp_vector(0.5 * (self.mlp_vector() + alien.mlp_params))

    def merge_weighted(
        self, contributions: Sequence[Tuple[DnnState, float]], self_weight: float
    ) -> None:
        """D-PSGD merge with Metropolis-Hastings weights."""
        _masked_embedding_weighted(
            self.user_embeddings.value,
            self.user_seen,
            [(s.user_embeddings, s.user_seen, w) for s, w in contributions],
            self_weight,
        )
        _masked_embedding_weighted(
            self.item_embeddings.value,
            self.item_seen,
            [(s.item_embeddings, s.item_seen, w) for s, w in contributions],
            self_weight,
        )
        acc = self_weight * self.mlp_vector()
        total = self_weight
        for state, weight in contributions:
            acc += weight * state.mlp_params
            total += weight
        self._load_mlp_vector(acc / np.float32(total))


def _masked_embedding_average(
    embeddings: np.ndarray, seen: np.ndarray, alien: np.ndarray, alien_seen: np.ndarray
) -> None:
    both = seen & alien_seen
    only_alien = alien_seen & ~seen
    embeddings[both] += alien[both]
    embeddings[both] *= 0.5
    embeddings[only_alien] = alien[only_alien]
    seen |= alien_seen


def _masked_embedding_weighted(
    embeddings: np.ndarray,
    seen: np.ndarray,
    contributions: Sequence[Tuple[np.ndarray, np.ndarray, float]],
    self_weight: float,
) -> None:
    weight_sum = np.where(seen, np.float32(self_weight), np.float32(0.0))
    acc = embeddings * weight_sum[:, None]
    union = seen.copy()
    for c_emb, c_seen, weight in contributions:
        w = np.where(c_seen, np.float32(weight), np.float32(0.0))
        acc += c_emb * w[:, None]
        weight_sum += w
        union |= c_seen
    present = weight_sum > 0
    embeddings[present] = acc[present] / weight_sum[present, None]
    seen[:] = union
