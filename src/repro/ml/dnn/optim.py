"""Optimizers for the from-scratch DNN.

The paper trains its DNN with Adam (eta=1e-4) and weight decay 1e-5
(Section IV-A3b); weight decay is applied as an L2 term added to the
gradient, matching the (non-decoupled) ``torch.optim.Adam`` semantics the
original implementation used.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.ml.dnn.layers import Parameter

__all__ = ["Adam", "Sgd"]


class Sgd:
    """Plain SGD; used in tests as the simplest possible reference."""

    def __init__(self, parameters: Sequence[Parameter], learning_rate: float):
        self.parameters = list(parameters)
        self.learning_rate = learning_rate

    def step(self) -> None:
        for p in self.parameters:
            p.value -= self.learning_rate * p.grad

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()


class Adam:
    """Adam with (coupled) weight decay, per Kingma & Ba and the paper."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        learning_rate: float = 1e-4,
        *,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 1e-5,
    ):
        self.parameters = list(parameters)
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m: List[np.ndarray] = [np.zeros_like(p.value) for p in self.parameters]
        self._v: List[np.ndarray] = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for p, m, v in zip(self.parameters, self._m, self._v):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.value
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * np.square(grad)
            p.value -= self.learning_rate * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()
