"""Neural-network layers with manual backpropagation.

Minimal but complete: each layer caches what its backward pass needs during
``forward`` and returns the gradient w.r.t. its input from ``backward``,
accumulating parameter gradients into :class:`Parameter.grad`.  Everything
is float32 and vectorized over the batch dimension, so a training step is
a handful of BLAS calls.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = ["Parameter", "Layer", "Linear", "ReLU", "Dropout", "Sequential"]


class Parameter:
    """A trainable tensor with its gradient accumulator."""

    def __init__(self, value: np.ndarray):
        self.value = np.ascontiguousarray(value, dtype=np.float32)
        self.grad = np.zeros_like(self.value)

    @property
    def size(self) -> int:
        return self.value.size

    def zero_grad(self) -> None:
        self.grad[:] = 0.0


class Layer:
    """Base layer interface."""

    def forward(self, x: np.ndarray, *, training: bool) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> List[Parameter]:
        return []


class Linear(Layer):
    """Affine layer ``y = x @ W + b`` with He-style initialization."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        scale = np.sqrt(2.0 / in_features)
        self.weight = Parameter(rng.normal(0.0, scale, size=(in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features))
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, *, training: bool) -> np.ndarray:
        if training:
            self._input = x
        return x @ self.weight.value + self.bias.value

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before a training forward")
        self.weight.grad += self._input.T @ grad_out
        self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.value.T

    def parameters(self) -> List[Parameter]:
        return [self.weight, self.bias]

    @property
    def param_count(self) -> int:
        return self.weight.size + self.bias.size


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, *, training: bool) -> np.ndarray:
        out = np.maximum(x, 0.0)
        if training:
            self._mask = x > 0.0
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before a training forward")
        return grad_out * self._mask


class Dropout(Layer):
    """Inverted dropout: active only in training mode."""

    def __init__(self, p: float, rng: np.random.Generator):
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, *, training: bool) -> np.ndarray:
        if not training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep).astype(np.float32) / np.float32(keep)
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class Sequential(Layer):
    """Layer composition with reverse-order backpropagation."""

    def __init__(self, layers: Sequence[Layer]):
        self.layers = list(layers)

    def forward(self, x: np.ndarray, *, training: bool) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params
