"""From-scratch DNN recommender (the paper's PyTorch model, in NumPy).

The paper's DNN (Section IV-A3b) embeds user and item ids (k=20),
concatenates the embeddings, and feeds them through four hidden
Linear+ReLU layers with dropout (0.02 on the embedding layer, 0.15 on the
first two hidden layers) and a final ReLU, totalling 215,001 parameters on
the 610-user / 9,000-item dataset.  Training uses Adam (eta=1e-4, weight
decay=1e-5).

This package re-implements all of it with manual backpropagation on NumPy
arrays -- layers, Adam, and the recommender itself -- so no deep-learning
framework is needed.
"""

from repro.ml.dnn.layers import Dropout, Linear, Parameter, ReLU, Sequential
from repro.ml.dnn.model import DnnHyperParams, DnnRecommender, DnnState
from repro.ml.dnn.optim import Adam

__all__ = [
    "Adam",
    "DnnHyperParams",
    "DnnRecommender",
    "DnnState",
    "Dropout",
    "Linear",
    "Parameter",
    "ReLU",
    "Sequential",
]
