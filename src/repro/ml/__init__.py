"""ML substrate: the two recommenders the paper evaluates.

- :mod:`~repro.ml.mf` -- biased, L2-regularized matrix factorization
  trained with vectorized minibatch SGD (paper Section II-A: k=10,
  eta=0.005, lambda=0.1), with presence masks and the RMW / D-PSGD merge
  rules of Section III-C.
- :mod:`~repro.ml.dnn` -- the from-scratch deep recommender (embedding
  layer k=20, four Linear+ReLU hidden layers with dropout, final ReLU,
  Adam with weight decay) sized to the paper's 215,001 parameters.
- :mod:`~repro.ml.metrics` -- RMSE, the paper's test-error metric.
"""

from repro.ml.metrics import rmse
from repro.ml.mf import MatrixFactorization, MfHyperParams, MfState
from repro.ml.dnn import DnnHyperParams, DnnRecommender

__all__ = [
    "DnnHyperParams",
    "DnnRecommender",
    "MatrixFactorization",
    "MfHyperParams",
    "MfState",
    "rmse",
]
