"""Biased matrix factorization with SGD, presence masks and merge rules.

The model is the paper's Section II-A formulation: ratings are approximated
by ``mu + b_u + c_i + <x_u, y_i>`` with L2 regularization on the factor
matrices, trained by SGD on the observed triplets only.  The paper's
hyper-parameters (k=10, eta=0.005, lambda=0.1) are the defaults.

Two aspects matter specifically for the decentralized setting:

- **Presence masks.**  A node only has meaningful embeddings for the users
  and items that appeared in its (possibly merged) training data.  The
  masks are what gets consulted during model merging -- "when a node has
  no embedding for a given user or item, we consider only those of its
  neighbors" (Section III-C2) -- and they determine the *wire size* of a
  shared model, since only seen rows are serialized.
- **Fixed work per epoch.**  REX fixes the number of SGD minibatches per
  epoch regardless of how much raw data has accumulated (Section III-E),
  keeping epoch duration constant as the store grows; ``train_epoch``
  implements exactly that.

Models can be constructed over caller-provided arrays so a fleet simulator
can stack every node's parameters in contiguous tensors and run merges as
single sparse matrix products (see :mod:`repro.sim.fleet`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro._rng import child_rng
from repro.data.dataset import RatingsDataset
from repro.ml.metrics import rmse

__all__ = ["MfHyperParams", "MfState", "MatrixFactorization", "sgd_step"]

#: Serialized bytes per factor-row entry (float32 on the wire).
_WIRE_FLOAT = 4
#: Fixed header of a serialized model message (magic + 6 header words).
MODEL_HEADER_BYTES = 28

RATING_MIN, RATING_MAX = 0.5, 5.0


def sgd_step(
    X: np.ndarray,
    Y: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    u: np.ndarray,
    i: np.ndarray,
    r: np.ndarray,
    mu,
    lr: float,
    lam: float,
) -> None:
    """One vectorized SGD step of the biased-MF objective, in place.

    ``u``/``i`` index rows of ``X``/``Y`` (and entries of ``b``/``c``);
    duplicate indices within the batch accumulate correctly via
    ``np.add.at``.  ``mu`` may be a scalar or a per-sample array.  The same
    kernel serves a single node (:meth:`MatrixFactorization.train_epoch`)
    and the fleet simulator, which flattens every node's parameters into
    one index space and updates all nodes in a single call.
    """
    xu = X[u]
    yi = Y[i]
    err = (r - mu - b[u] - c[i] - np.einsum("ij,ij->i", xu, yi)).astype(X.dtype)
    np.add.at(X, u, lr * (err[:, None] * yi - lam * xu))
    np.add.at(Y, i, lr * (err[:, None] * xu - lam * yi))
    np.add.at(b, u, lr * (err - lam * b[u]))
    np.add.at(c, i, lr * (err - lam * c[i]))


@dataclass(frozen=True)
class MfHyperParams:
    """Training hyper-parameters (paper Section IV-A3a defaults)."""

    k: int = 10
    learning_rate: float = 0.005
    regularization: float = 0.1
    batch_size: int = 64
    batches_per_epoch: int = 4
    init_scale: float = 0.1
    #: Parameter precision.  The fleet simulator uses float32 for memory
    #: economy; the distributed runtime uses float64, matching the
    #: original C++ implementation's Eigen doubles (this is what pushes
    #: model sharing past the EPC limit in the paper's Fig. 7 regime).
    dtype: str = "float32"

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("embedding dimension must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        if self.batch_size < 1 or self.batches_per_epoch < 1:
            raise ValueError("batch geometry must be positive")
        if np.dtype(self.dtype) not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError("dtype must be float32 or float64")

    @property
    def np_dtype(self) -> np.dtype:
        return np.dtype(self.dtype)


@dataclass
class MfState:
    """A shareable snapshot of one node's model (what MS puts on the wire).

    Arrays are owned copies; mutating a state never affects the model it
    was taken from.
    """

    user_factors: np.ndarray
    item_factors: np.ndarray
    user_bias: np.ndarray
    item_bias: np.ndarray
    user_seen: np.ndarray
    item_seen: np.ndarray
    global_mean: float

    @property
    def k(self) -> int:
        return self.user_factors.shape[1]

    def wire_bytes(self, *, float_bytes: int = _WIRE_FLOAT) -> int:
        """Serialized size: only *seen* rows travel, plus ids and masks.

        Each seen user row costs an int32 id + k factors + bias; likewise
        for items.  This is what makes model sharing expensive relative to
        12-byte triplets, and what makes its cost grow as knowledge of the
        item space spreads (paper Section IV-B, Fig. 2).  ``float_bytes``
        is 4 for the simulator's float32 wire and 8 for the distributed
        runtime's Eigen-style double wire.
        """
        seen_users = int(self.user_seen.sum())
        seen_items = int(self.item_seen.sum())
        per_row = 4 + (self.k + 1) * float_bytes
        return MODEL_HEADER_BYTES + (seen_users + seen_items) * per_row

    def copy(self) -> "MfState":
        return MfState(
            self.user_factors.copy(),
            self.item_factors.copy(),
            self.user_bias.copy(),
            self.item_bias.copy(),
            self.user_seen.copy(),
            self.item_seen.copy(),
            self.global_mean,
        )


class MatrixFactorization:
    """One node's MF recommender.

    Parameters
    ----------
    n_users, n_items:
        Global id-space sizes (every node addresses the full matrices).
    hp:
        Hyper-parameters.
    seed:
        Seeds the factor initialization; all nodes in the paper share the
        same initial code, and giving them the same seed models the common
        initialization that makes decentralized averaging meaningful.
    arrays:
        Optional ``(user_factors, item_factors, user_bias, item_bias,
        user_seen, item_seen)`` pre-allocated (possibly viewed) arrays for
        fleet-stacked storage; initialized in place when given.
    """

    def __init__(
        self,
        n_users: int,
        n_items: int,
        hp: MfHyperParams = MfHyperParams(),
        *,
        seed: int = 0,
        global_mean: float = 3.5,
        arrays: Optional[Tuple[np.ndarray, ...]] = None,
    ):
        self.n_users = n_users
        self.n_items = n_items
        self.hp = hp
        self.global_mean = float(global_mean)

        rng = child_rng(seed, "mf-init")
        dtype = hp.np_dtype
        if arrays is None:
            self.user_factors = np.empty((n_users, hp.k), dtype=dtype)
            self.item_factors = np.empty((n_items, hp.k), dtype=dtype)
            self.user_bias = np.zeros(n_users, dtype=dtype)
            self.item_bias = np.zeros(n_items, dtype=dtype)
            self.user_seen = np.zeros(n_users, dtype=bool)
            self.item_seen = np.zeros(n_items, dtype=bool)
        else:
            (
                self.user_factors,
                self.item_factors,
                self.user_bias,
                self.item_bias,
                self.user_seen,
                self.item_seen,
            ) = arrays
            self.user_bias[:] = 0.0
            self.item_bias[:] = 0.0
            self.user_seen[:] = False
            self.item_seen[:] = False
        self.user_factors[:] = rng.normal(0.0, hp.init_scale, size=(n_users, hp.k))
        self.item_factors[:] = rng.normal(0.0, hp.init_scale, size=(n_items, hp.k))

    # ------------------------------------------------------------------ #
    # Core model math
    # ------------------------------------------------------------------ #
    def mark_seen(self, data: RatingsDataset) -> None:
        """Record which users/items the node now has evidence for."""
        self.user_seen[data.users] = True
        self.item_seen[data.items] = True

    def predict(self, users: np.ndarray, items: np.ndarray, *, clip: bool = True) -> np.ndarray:
        """Predicted ratings ``mu + b_u + c_i + <x_u, y_i>``."""
        scores = (
            self.global_mean
            + self.user_bias[users]
            + self.item_bias[items]
            + np.einsum(
                "ij,ij->i", self.user_factors[users], self.item_factors[items]
            )
        )
        if clip:
            np.clip(scores, RATING_MIN, RATING_MAX, out=scores)
        return scores

    def evaluate_rmse(self, data: RatingsDataset) -> float:
        """Test-set RMSE (``nan`` on an empty set)."""
        if len(data) == 0:
            return float("nan")
        return rmse(self.predict(data.users, data.items), data.ratings)

    def train_epoch(
        self,
        data: RatingsDataset,
        rng: np.random.Generator,
        *,
        batches: Optional[int] = None,
    ) -> int:
        """One epoch of minibatch SGD over ``data``; returns samples used.

        The epoch takes exactly ``hp.batches_per_epoch`` batches of
        ``hp.batch_size`` uniformly sampled triplets, independent of the
        store size -- the constant-epoch-cost rule of Section III-E.
        """
        if len(data) == 0:
            return 0
        n_batches = self.hp.batches_per_epoch if batches is None else batches
        total = 0
        for _ in range(n_batches):
            idx = rng.integers(0, len(data), size=self.hp.batch_size)
            sgd_step(
                self.user_factors,
                self.item_factors,
                self.user_bias,
                self.item_bias,
                data.users[idx],
                data.items[idx],
                data.ratings[idx],
                self.global_mean,
                self.hp.learning_rate,
                self.hp.regularization,
            )
            total += len(idx)
        return total

    # ------------------------------------------------------------------ #
    # Sharing and merging (Section III-C)
    # ------------------------------------------------------------------ #
    def state(self) -> MfState:
        """Snapshot the shareable model (copies; safe to serialize/mutate)."""
        return MfState(
            self.user_factors.copy(),
            self.item_factors.copy(),
            self.user_bias.copy(),
            self.item_bias.copy(),
            self.user_seen.copy(),
            self.item_seen.copy(),
            self.global_mean,
        )

    def load_state(self, state: MfState) -> None:
        """Overwrite this model with ``state`` (used by tests/serializers)."""
        self.user_factors[:] = state.user_factors
        self.item_factors[:] = state.item_factors
        self.user_bias[:] = state.user_bias
        self.item_bias[:] = state.item_bias
        self.user_seen[:] = state.user_seen
        self.item_seen[:] = state.item_seen
        self.global_mean = state.global_mean

    def merge_average(self, alien: MfState) -> None:
        """RMW merge: plain average with an incoming model.

        Row-wise masking: rows both sides have seen are averaged; rows only
        the alien has seen are copied; rows only we have seen are kept
        (Sections III-C1 and III-C2's missing-embedding rule).
        """
        _masked_pair_average(
            self.user_factors, self.user_bias, self.user_seen,
            alien.user_factors, alien.user_bias, alien.user_seen,
        )
        _masked_pair_average(
            self.item_factors, self.item_bias, self.item_seen,
            alien.item_factors, alien.item_bias, alien.item_seen,
        )

    def merge_weighted(self, contributions: Sequence[Tuple[MfState, float]], self_weight: float) -> None:
        """D-PSGD merge: Metropolis-Hastings weighted average.

        ``contributions`` are (state, weight) pairs from neighbors;
        ``self_weight`` is this node's own MH weight.  Per row, weights of
        absent contributors (mask off) are dropped and the remainder is
        renormalized, implementing the missing-embedding rule.
        """
        _masked_weighted_average(
            self.user_factors, self.user_bias, self.user_seen,
            [(s.user_factors, s.user_bias, s.user_seen, w) for s, w in contributions],
            self_weight,
        )
        _masked_weighted_average(
            self.item_factors, self.item_bias, self.item_seen,
            [(s.item_factors, s.item_bias, s.item_seen, w) for s, w in contributions],
            self_weight,
        )

    # ------------------------------------------------------------------ #
    # Sizes
    # ------------------------------------------------------------------ #
    @property
    def param_count(self) -> int:
        return (self.n_users + self.n_items) * (self.hp.k + 1)

    @property
    def resident_bytes(self) -> int:
        """In-enclave footprint of the parameters and masks."""
        return (
            self.user_factors.nbytes
            + self.item_factors.nbytes
            + self.user_bias.nbytes
            + self.item_bias.nbytes
            + self.user_seen.nbytes
            + self.item_seen.nbytes
        )


def _masked_pair_average(
    factors: np.ndarray,
    bias: np.ndarray,
    seen: np.ndarray,
    alien_factors: np.ndarray,
    alien_bias: np.ndarray,
    alien_seen: np.ndarray,
) -> None:
    """In-place masked average of one (factors, bias, seen) group."""
    both = seen & alien_seen
    only_alien = alien_seen & ~seen
    factors[both] += alien_factors[both]
    factors[both] *= 0.5
    bias[both] += alien_bias[both]
    bias[both] *= 0.5
    factors[only_alien] = alien_factors[only_alien]
    bias[only_alien] = alien_bias[only_alien]
    seen |= alien_seen


def _masked_weighted_average(
    factors: np.ndarray,
    bias: np.ndarray,
    seen: np.ndarray,
    contributions: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray, float]],
    self_weight: float,
) -> None:
    """In-place mask-renormalized weighted average of one parameter group."""
    weight_sum = np.where(seen, np.float32(self_weight), np.float32(0.0))
    factor_acc = factors * weight_sum[:, None]
    bias_acc = bias * weight_sum
    union = seen.copy()
    for c_factors, c_bias, c_seen, weight in contributions:
        w = np.where(c_seen, np.float32(weight), np.float32(0.0))
        factor_acc += c_factors * w[:, None]
        bias_acc += c_bias * w
        weight_sum += w
        union |= c_seen
    present = weight_sum > 0
    factors[present] = factor_acc[present] / weight_sum[present, None]
    bias[present] = bias_acc[present] / weight_sum[present]
    seen[:] = union
