"""Model-quality metrics.

The paper reports test error exclusively as root mean square error (RMSE)
between predicted and held-out ratings (Section IV-A4).
"""

from __future__ import annotations

import numpy as np

__all__ = ["rmse"]


def rmse(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Root mean square error between two rating vectors.

    Returns ``nan`` for empty inputs (an empty local test set on a node
    with no data), which downstream averaging skips with ``nanmean``.
    """
    predicted = np.asarray(predicted, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64)
    if predicted.shape != actual.shape:
        raise ValueError(f"shape mismatch: {predicted.shape} vs {actual.shape}")
    if predicted.size == 0:
        return float("nan")
    return float(np.sqrt(np.mean((predicted - actual) ** 2)))
