"""Model-quality metrics.

The paper reports test error exclusively as root mean square error (RMSE)
between predicted and held-out ratings (Section IV-A4).  The serving
layer additionally needs *ranking* quality -- is the top-N list any good?
-- so this module also provides the standard top-K metrics
(precision@K, recall@K, NDCG@K) against a held-out relevant-item set.
"""

from __future__ import annotations

from typing import Sequence, Set

import numpy as np

__all__ = ["rmse", "precision_at_k", "recall_at_k", "ndcg_at_k"]


def rmse(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Root mean square error between two rating vectors.

    Returns ``nan`` for empty inputs (an empty local test set on a node
    with no data), which downstream averaging skips with ``nanmean``.
    """
    predicted = np.asarray(predicted, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64)
    if predicted.shape != actual.shape:
        raise ValueError(f"shape mismatch: {predicted.shape} vs {actual.shape}")
    if predicted.size == 0:
        return float("nan")
    return float(np.sqrt(np.mean((predicted - actual) ** 2)))


def _top_k(recommended: Sequence[int], k: int) -> list:
    if k < 1:
        raise ValueError("k must be positive")
    # Serving pads short lists with -1; padding is never a real item.
    return [int(item) for item in list(recommended)[:k] if int(item) >= 0]


def precision_at_k(recommended: Sequence[int], relevant: Set[int], k: int) -> float:
    """Fraction of the top-``k`` recommendations that are relevant.

    The denominator is ``k`` even when fewer items were recommended --
    an endpoint that cannot fill its list is penalized for it.  Returns
    ``nan`` when there are no relevant items to find.
    """
    if not relevant:
        return float("nan")
    hits = sum(1 for item in _top_k(recommended, k) if item in relevant)
    return hits / k


def recall_at_k(recommended: Sequence[int], relevant: Set[int], k: int) -> float:
    """Fraction of the relevant items that appear in the top-``k``."""
    if not relevant:
        return float("nan")
    hits = sum(1 for item in _top_k(recommended, k) if item in relevant)
    return hits / len(relevant)


def ndcg_at_k(recommended: Sequence[int], relevant: Set[int], k: int) -> float:
    """Binary-relevance NDCG@K: positionally-discounted hit quality.

    DCG uses the ``1 / log2(rank + 1)`` discount; the ideal DCG places
    one relevant item at every position up to ``min(k, |relevant|)``, so
    a perfect list scores exactly 1.0.  Returns ``nan`` when there are
    no relevant items.
    """
    if not relevant:
        return float("nan")
    dcg = sum(
        1.0 / np.log2(rank + 2.0)
        for rank, item in enumerate(_top_k(recommended, k))
        if item in relevant
    )
    ideal = sum(1.0 / np.log2(rank + 2.0) for rank in range(min(k, len(relevant))))
    return float(dcg / ideal)
