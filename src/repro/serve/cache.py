"""Serving caches: top-N result LRU and hot-embedding cache.

Recommendation traffic is heavily skewed -- a Zipf workload sends most
queries to a small head of users -- so a bounded per-user result cache
absorbs the bulk of the scoring work.  Two caches, both keyed by the
snapshot **version** so a newly published model invalidates everything
at once:

- :class:`TopNCache` -- (version, user, k) -> finished recommendation
  lists.  A hit skips scoring entirely.
- :class:`HotEmbeddingCache` -- (version, user) -> the user's factor row
  and bias, modelling the EPC-resident hot set the serving enclave keeps
  pinned; its byte footprint feeds the paging model.

Hits, misses and evictions are counted into the obs registry under
``serve.cache.*`` with a ``cache`` label, so reports and benchmarks can
assert the warm-vs-cold latency gap.  Trusted module: cached values are
plaintext recommendations / embeddings.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional, Tuple

import numpy as np

from repro.obs import MetricsRegistry

__all__ = ["LruCache", "TopNCache", "HotEmbeddingCache"]


class LruCache:
    """Bounded LRU mapping with obs counters; the base of both caches."""

    def __init__(
        self,
        capacity: int,
        *,
        name: str,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = int(capacity)
        self.name = name
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._metrics = metrics
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------ #
    def _count(self, event: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(f"serve.cache.{event}", cache=self.name).inc()

    def get(self, key: Hashable):
        """Value for ``key`` or ``None``; a hit refreshes recency."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self._count("misses")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self._count("hits")
        return entry

    def put(self, key: Hashable, value: object) -> None:
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            self._count("evictions")

    def invalidate(self) -> int:
        """Drop everything (new snapshot version); returns entries dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        if dropped:
            self.invalidations += 1
            self._count("invalidations")
        return dropped

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class TopNCache(LruCache):
    """(user, k) -> (items, scores) result cache, one snapshot at a time.

    The cache remembers which snapshot version filled it; offering a
    different version flushes every entry before any lookup, so a stale
    model can never answer a query.
    """

    def __init__(self, capacity: int, *, metrics: Optional[MetricsRegistry] = None):
        super().__init__(capacity, name="topn", metrics=metrics)
        self.version: Optional[int] = None

    def _sync_version(self, version: int) -> None:
        if self.version != version:
            self.invalidate()
            self.version = version

    def lookup(
        self, version: int, user: int, k: int
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        self._sync_version(version)
        return super().get((int(user), int(k)))

    def store(
        self, version: int, user: int, k: int, items: np.ndarray, scores: np.ndarray
    ) -> None:
        self._sync_version(version)
        super().put((int(user), int(k)), (items, scores))


class HotEmbeddingCache(LruCache):
    """(user) -> (factor row, bias) pinned hot set, version-invalidated.

    ``resident_bytes`` is the pinned footprint the serving enclave adds
    on top of the snapshot itself; it grows with the cached user count
    and feeds the EPC paging model.
    """

    def __init__(self, capacity: int, *, metrics: Optional[MetricsRegistry] = None):
        super().__init__(capacity, name="embedding", metrics=metrics)
        self.version: Optional[int] = None
        self._entry_bytes = 0

    def _sync_version(self, version: int) -> None:
        if self.version != version:
            self.invalidate()
            self.version = version

    def lookup(self, version: int, user: int) -> Optional[Tuple[np.ndarray, float]]:
        self._sync_version(version)
        return super().get(int(user))

    def store(self, version: int, user: int, factors: np.ndarray, bias: float) -> None:
        self._sync_version(version)
        self._entry_bytes = int(np.asarray(factors).nbytes) + 8
        super().put(int(user), (factors, float(bias)))

    @property
    def resident_bytes(self) -> int:
        return len(self) * self._entry_bytes
