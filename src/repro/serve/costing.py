"""Shared serving cost accounting: one price for a batch, everywhere.

Both front-ends that complete requests -- the single-endpoint
:class:`~repro.serve.server.RecServer` and the fleet balancer's
per-replica servers (:mod:`repro.serve.fleet.balancer`) -- must charge a
served batch identically: the same compute charges, the same SGX
transition cost for the marshalled request/result bytes, the same
expected-EPC-paging penalty.  Before this module existed the pricing
lived inside ``RecServer`` where a second front-end could only duplicate
it (and drift).  :func:`price_batch` is now the single source of truth;
a parity test asserts the server's observed latencies decompose exactly
into these prices.

Untrusted module: pricing consumes only sanitized batch statistics (work
counts the enclave deliberately exports) and public cost-model
constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.tee.cost_model import SgxCostModel
from repro.tee.epc import EpcModel

__all__ = ["ServeCostModel", "BatchCost", "price_batch"]


@dataclass(frozen=True)
class ServeCostModel:
    """Per-unit serving charges (seconds), calibrated like TimeModel.

    Scoring one (user, item) pair is a k-wide dot product plus the top-K
    bookkeeping; a result-cache hit is a dictionary lookup plus a copy.
    """

    score_pair_s: float = 6e-9
    cache_hit_s: float = 2e-6
    request_overhead_s: float = 1e-6
    batch_overhead_s: float = 3e-5
    #: Marshalled bytes per request in (user id + k) and per result row
    #: out (k items + k scores), charged via the SGX marshalling rate.
    request_in_bytes: int = 16
    result_out_bytes_per_item: int = 16


@dataclass(frozen=True)
class BatchCost:
    """The priced components of one served batch."""

    compute_s: float
    transition_s: float
    paging_s: float
    page_faults: float

    @property
    def service_s(self) -> float:
        return self.compute_s + self.transition_s + self.paging_s


def price_batch(
    stats: Mapping[str, float],
    batch_size: int,
    *,
    top_k: int,
    costs: ServeCostModel,
    sgx: SgxCostModel,
    epc: EpcModel,
    resident_bytes: float,
) -> BatchCost:
    """Assemble one batch's enclave service time from counted work.

    ``stats`` is the sanitized :class:`~repro.serve.endpoint.BatchStats`
    dict an ``ecall_serve`` reply carries (scored pairs, cache hits,
    touched bytes); ``resident_bytes`` is the serving enclave's tracked
    EPC working set at completion time.
    """
    multiplier = (
        sgx.compute_multiplier(resident_bytes, epc) if sgx.enabled else 1.0
    )
    compute = (
        stats["scored_pairs"] * costs.score_pair_s * multiplier
        + stats["cache_hits"] * costs.cache_hit_s
        + batch_size * costs.request_overhead_s
        + costs.batch_overhead_s
    )
    marshalled = batch_size * (
        costs.request_in_bytes + top_k * costs.result_out_bytes_per_item
    )
    transition = sgx.transition_time(1, marshalled)
    if sgx.enabled:
        faults = epc.page_faults(float(stats["touched_bytes"]), resident_bytes)
        paging = faults * sgx.page_fault_cost_s
    else:
        faults = 0.0
        paging = 0.0
    return BatchCost(
        compute_s=compute,
        transition_s=transition,
        paging_s=paging,
        page_faults=faults,
    )
