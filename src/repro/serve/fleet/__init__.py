"""Sharded serving fleet: consistent-hash routing + replicated failover.

One serving enclave cannot hold a population-scale catalog inside EPC
(the paper's Fig. 7 paging analysis is exactly about what happens when
it tries).  This package scales :mod:`repro.serve` from one endpoint to
a fleet:

- :mod:`repro.serve.fleet.router` -- a consistent-hash ring mapping user
  ids to shards with bounded key movement on membership change (shared).
- :mod:`repro.serve.fleet.shard` -- user-partitioned snapshot shards:
  each shard's enclave holds only its partition's user-embedding rows
  plus the (replicated) item side, so per-shard EPC accounting is honest
  (trusted).
- :mod:`repro.serve.fleet.balancer` -- the front-end load balancer: a
  bounded global queue ahead of per-replica admission queues, with
  snapshot-version-aware failover across replicas (shared).
- :mod:`repro.serve.fleet.runner` -- the kernel-driven train -> shard ->
  serve pipeline behind ``repro serve --fleet`` (plays every role, like
  :mod:`repro.serve.runner`).
- :mod:`repro.serve.fleet.report` -- the ``repro.serve-fleet/v1`` JSON
  document (per-shard EPC, routing/failover/shed accounting).
"""

from repro.serve.fleet.balancer import FleetBalancer, FleetPolicy, ShardReplica
from repro.serve.fleet.report import FleetServeReport
from repro.serve.fleet.router import HashRing
from repro.serve.fleet.runner import run_fleet_experiment

__all__ = [
    "FleetBalancer",
    "FleetPolicy",
    "FleetServeReport",
    "HashRing",
    "ShardReplica",
    "run_fleet_experiment",
]
