"""Consistent-hash routing: user ids -> shards, stable under churn.

The fleet partitions users across shards.  A modulo assignment would
remap nearly *every* user when a shard joins or leaves -- invalidating
every shard's exclusion index and result cache at once.  The classic fix
(Karger et al., and every production KV/serving fleet since) is a
**consistent-hash ring**: each shard owns ``vnodes`` pseudo-random
points on a 64-bit circle, a user hashes to a point of its own, and the
first shard point at or clockwise of the user's point owns it.  Two
properties follow, and the hypothesis suite pins both:

- **balance** -- with enough virtual nodes per shard, shard loads
  concentrate around the fair share (vnode hashes are i.i.d. uniform);
- **bounded movement** -- adding a shard moves *only* the keys that now
  land on the new shard's points (~K/(N+1) of K keys across N+1
  shards); removing one moves only the removed shard's keys.  Keys
  never shuffle between surviving shards.

Hashing is pure SHA-256 over domain-separated byte strings: no Python
``hash()`` (randomized per process), no RNG -- the ring for a given
shard set is one deterministic object, fingerprinted by
:meth:`HashRing.digest` so fleet reports pin their routing table.

Shared module: routing decisions are public metadata (which shard serves
a user is visible to the host fabric by construction); no model state or
raw ratings flow through here.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple

import numpy as np

__all__ = ["HashRing", "DEFAULT_VNODES"]

#: Virtual nodes per shard.  128 keeps the max/mean shard load within
#: ~1.35x for the fleet sizes this repo simulates (pinned by tests).
DEFAULT_VNODES = 128

_RING_DOMAIN = b"repro.fleet.ring/v1"


def _hash64(payload: bytes) -> int:
    """First 8 bytes (little-endian) of a domain-separated SHA-256."""
    digest = hashlib.sha256(_RING_DOMAIN + b"|" + payload).digest()
    return int.from_bytes(digest[:8], "little")


class HashRing:
    """An immutable consistent-hash ring over integer shard ids."""

    def __init__(self, shard_ids: Iterable[int], *, vnodes: int = DEFAULT_VNODES):
        shards = sorted({int(s) for s in shard_ids})
        if not shards:
            raise ValueError("a ring needs at least one shard")
        if vnodes < 1:
            raise ValueError("need at least one virtual node per shard")
        self.vnodes = int(vnodes)
        self.shard_ids: Tuple[int, ...] = tuple(shards)
        points: List[Tuple[int, int]] = []
        for shard in shards:
            for v in range(self.vnodes):
                points.append((_hash64(b"shard|%d|%d" % (shard, v)), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    @staticmethod
    def user_point(user: int) -> int:
        """A user's ring position -- independent of the shard set."""
        return _hash64(b"user|%d" % int(user))

    def route(self, user: int) -> int:
        """The shard owning ``user`` (first point clockwise, wrapping)."""
        idx = bisect.bisect_left(self._points, self.user_point(user))
        if idx == len(self._points):
            idx = 0
        return self._owners[idx]

    def assignments(self, n_users: int) -> np.ndarray:
        """Shard id per user for the dense id range ``[0, n_users)``."""
        return np.fromiter(
            (self.route(u) for u in range(int(n_users))),
            dtype=np.int64,
            count=int(n_users),
        )

    def partition(self, n_users: int) -> Dict[int, np.ndarray]:
        """Sorted global user ids per shard (every shard gets an entry)."""
        owners = self.assignments(n_users)
        return {
            shard: np.flatnonzero(owners == shard).astype(np.int64)
            for shard in self.shard_ids
        }

    # ------------------------------------------------------------------ #
    # Membership (copy-on-change: rings stay immutable)
    # ------------------------------------------------------------------ #
    def with_shard(self, shard_id: int) -> "HashRing":
        if int(shard_id) in self.shard_ids:
            raise ValueError(f"shard {shard_id} already on the ring")
        return HashRing((*self.shard_ids, int(shard_id)), vnodes=self.vnodes)

    def without_shard(self, shard_id: int) -> "HashRing":
        if int(shard_id) not in self.shard_ids:
            raise ValueError(f"shard {shard_id} not on the ring")
        remaining = tuple(s for s in self.shard_ids if s != int(shard_id))
        return HashRing(remaining, vnodes=self.vnodes)

    # ------------------------------------------------------------------ #
    def digest(self) -> str:
        """SHA-256 over the ordered (point, owner) table (pins routing)."""
        h = hashlib.sha256(_RING_DOMAIN)
        for point, owner in zip(self._points, self._owners):
            h.update(point.to_bytes(8, "little"))
            h.update(owner.to_bytes(8, "little", signed=True))
        return h.hexdigest()

    def __len__(self) -> int:
        return len(self.shard_ids)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HashRing(shards={len(self.shard_ids)}, vnodes={self.vnodes})"
