"""The ``repro.serve-fleet/v1`` report: routing, failover, per-shard EPC.

One fleet run condenses into a :class:`FleetServeReport`: the traffic
and routing identities (seed, traffic spec, trace digest, ring digest),
the fleet-wide admission outcome (offered / routed / failover / shed /
completed), latency percentiles over every completion, and a per-shard
section with EPC accounting (resident bytes vs. the shard's cap) and
per-replica fault history.  Latency percentiles reuse the nearest-rank
:func:`~repro.serve.report.percentile` of the single-endpoint report, so
byte-identical runs produce byte-identical documents.

Untrusted module: everything here is sanitized counters and metadata.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List

from repro.serve.report import ServeReport

__all__ = ["FleetServeReport"]


@dataclass
class FleetServeReport:
    """Everything one fleet run produced, ready for JSON or a terminal."""

    seed: int
    shards: int
    replicas_per_shard: int
    traffic: dict
    trace_digest: str
    ring_digest: str
    policy: dict
    # -- fleet admission ------------------------------------------------ #
    offered: int
    routed: int
    failover: int
    shed: int
    deferred: int
    stale_rejected: int
    routing_errors: int
    completed: int
    # -- time ----------------------------------------------------------- #
    duration_s: float
    throughput_rps: float
    busy_s: float
    latency_s: Dict[str, float]
    # -- faults --------------------------------------------------------- #
    crashes: int
    restarts: int
    # -- per-shard EPC + replica detail --------------------------------- #
    per_shard: List[dict] = field(default_factory=list)

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def p99_s(self) -> float:
        return self.latency_s["p99"]

    @property
    def max_shard_resident_bytes(self) -> int:
        return max((int(s["epc"]["resident_bytes"]) for s in self.per_shard), default=0)

    @property
    def aggregate_resident_bytes(self) -> int:
        return sum(int(s["epc"]["resident_bytes"]) for s in self.per_shard)

    @classmethod
    def latency_summary(cls, latencies) -> Dict[str, float]:
        return ServeReport.latency_summary(latencies)

    def to_dict(self) -> dict:
        doc = {"schema": "repro.serve-fleet/v1"}
        doc.update(asdict(self))
        return doc

    def format_lines(self) -> List[str]:
        lat = self.latency_s
        shed_pct = 100.0 * self.shed_rate
        lines = [
            f"fleet {self.shards} shards x {self.replicas_per_shard} replicas "
            f"seed={self.seed} ring {self.ring_digest[:16]}…",
            f"  trace digest     {self.trace_digest[:16]}…",
            f"  requests         {self.offered} offered, {self.routed} routed, "
            f"{self.failover} failover, {self.shed} shed ({shed_pct:.1f}%), "
            f"{self.completed} completed",
            f"  routing errors   {self.routing_errors} "
            f"(stale loads rejected: {self.stale_rejected})",
            f"  faults           {self.crashes} crashes, {self.restarts} restarts",
            f"  throughput       {self.throughput_rps:.1f} req/s over "
            f"{self.duration_s * 1e3:.1f} ms simulated "
            f"({self.busy_s * 1e3:.1f} ms busy)",
            f"  latency          p50 {lat['p50'] * 1e3:.3f} ms, "
            f"p95 {lat['p95'] * 1e3:.3f} ms, p99 {lat['p99'] * 1e3:.3f} ms",
        ]
        for shard in self.per_shard:
            epc = shard["epc"]
            cap = epc["cap_bytes"]
            lines.append(
                f"  shard {shard['shard']:>2}        {shard['users']} users, "
                f"{epc['resident_bytes'] / 1024:.0f} KiB resident / "
                f"{cap / 1024:.0f} KiB cap "
                f"({100.0 * epc['resident_bytes'] / cap:.0f}%)"
                if cap
                else f"  shard {shard['shard']:>2}        {shard['users']} users"
            )
        return lines
