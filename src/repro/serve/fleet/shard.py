"""User-partitioned snapshot shards: one enclave per partition.

A shard's serving enclave holds only *its* partition's user-embedding
rows (plus the item side, which every shard needs to score against and
therefore replicates).  That is what makes per-shard EPC accounting
honest: the aggregate catalog can exceed any single enclave's EPC share
while each shard's resident set stays under its own cap.

The host fabric speaks **global** user ids throughout -- routing,
queueing and reports never learn about the shard-local row layout.  The
global -> local translation happens *inside* the enclave, against the
owned-user table shipped alongside the shard snapshot at load time:

- :func:`build_shard_payload` slices the fleet's parameter arrays down
  to one partition and returns the encoded ``RXS1`` wire bytes (plus
  sanitized metadata), so shared callers handle only encoded payloads,
  never plaintext snapshots;
- :class:`ShardEnclaveApp` extends
  :class:`~repro.serve.endpoint.ServeEnclaveApp` with the owned-user
  table: loads remap exclusion ratings to local rows, and ``ecall_serve``
  translates each query's global id.  A query for a user the shard does
  not own is answered with the empty sentinel (-1 ids) and counted as a
  routing error (``serve.fleet.routing_errors``) -- a correct router
  never produces one, and the fleet acceptance test pins that at zero.

Trusted module: partitioning slices plaintext model parameters, and the
shard endpoint owns a plaintext snapshot and raw-rating exclusion index.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.net.serialization import decode_triplets
from repro.serve.endpoint import BatchStats, ServeEnclaveApp
from repro.serve.snapshot import ModelSnapshot, encode_snapshot, snapshot_from_arrays
from repro.tee.enclave import ecall

__all__ = ["ShardEnclaveApp", "build_shard_payload", "encode_shard_users"]


def encode_shard_users(shard_users: np.ndarray) -> bytes:
    """Canonical wire form of a shard's owned-user table (little-endian).

    The table is routing metadata (public by construction -- the host
    fabric computed it from the ring), shipped into the enclave so the
    global -> local translation lives behind the boundary.
    """
    return np.ascontiguousarray(shard_users, dtype="<i8").tobytes()


def build_shard_payload(
    user_factors: np.ndarray,
    item_factors: np.ndarray,
    user_bias: np.ndarray,
    item_bias: np.ndarray,
    user_seen: np.ndarray,
    item_seen: np.ndarray,
    global_mean: float,
    shard_users: np.ndarray,
    *,
    version: int,
    shard_id: int,
    epoch: int = 0,
) -> Tuple[bytes, dict]:
    """Slice one partition out of fleet arrays; return (wire, meta dict).

    User-side arrays are sliced to ``shard_users`` rows (local row ``r``
    is global user ``shard_users[r]``); the item side is replicated in
    full.  Only encoded bytes and sanitized metadata leave, so shared
    fleet plumbing can call this without ever holding a snapshot object.
    """
    rows = np.asarray(shard_users, dtype=np.int64)
    snapshot = snapshot_from_arrays(
        np.asarray(user_factors)[rows],
        np.asarray(item_factors),
        np.asarray(user_bias)[rows],
        np.asarray(item_bias),
        np.asarray(user_seen)[rows],
        np.asarray(item_seen),
        global_mean,
        version=version,
        node_id=shard_id,
        epoch=epoch,
    )
    return encode_snapshot(snapshot), snapshot.meta().to_dict()


class ShardEnclaveApp(ServeEnclaveApp):
    """A shard's serving enclave: global ids at the boundary, local rows inside."""

    #: Global user id -> local snapshot row (built at load).
    _owned: Dict[int, int]

    # ------------------------------------------------------------------ #
    # Load-time remapping
    # ------------------------------------------------------------------ #
    def _install_snapshot(self, snapshot: ModelSnapshot, args: dict) -> None:
        raw = args.get("shard_users")
        if raw is None:
            raise ValueError("shard load requires the owned-user table")
        owned = np.frombuffer(bytes(raw), dtype="<i8").astype(np.int64)
        if len(owned) != snapshot.n_users:
            raise ValueError("owned-user table does not match the shard snapshot")
        self._owned = {int(user): row for row, user in enumerate(owned)}
        if len(self._owned) != len(owned):
            raise ValueError("owned-user table contains duplicates")
        self.unowned_queries = getattr(self, "unowned_queries", 0)
        ratings = args.get("ratings")
        if ratings is not None:
            # Exclusion ratings arrive with global user ids; keep only
            # owned users' rows and remap them to local snapshot rows.
            data = decode_triplets(bytes(ratings))
            local = np.fromiter(
                (self._owned.get(int(u), -1) for u in data.users),
                dtype=np.int64,
                count=len(data.users),
            )
            mask = local >= 0
            self.serving.install(
                snapshot, local[mask], np.asarray(data.items)[mask]
            )
        else:
            self.serving.install(snapshot)

    # ------------------------------------------------------------------ #
    # Serving with translation
    # ------------------------------------------------------------------ #
    @ecall
    def ecall_serve(self, users: list, k: int) -> dict:
        """Serve one batch of *global* user ids; unowned ids get -1 lists."""
        k = int(k)
        local: list = []
        rows: list = []
        unowned = 0
        for row, user in enumerate(users):
            idx = self._owned.get(int(user))
            if idx is None:
                unowned += 1
            else:
                rows.append(row)
                local.append(idx)
        if unowned:
            self.unowned_queries += unowned
            metrics = self.ctx.metrics
            if metrics is not None:
                metrics.counter("serve.fleet.routing_errors").inc(unowned)
        if local:
            items, scores, stats = self.serving.query_batch(local, k)
        else:
            items = np.empty((0, k), dtype=np.int64)
            scores = np.empty((0, k), dtype=np.float64)
            stats = BatchStats(requests=0)
        out_items = np.full((len(users), k), -1, dtype=np.int64)
        out_scores = np.full((len(users), k), np.nan, dtype=np.float64)
        for out_row, row in enumerate(rows):
            out_items[row] = items[out_row]
            out_scores[row] = scores[out_row]
        stats_dict = stats.to_dict()
        # The empty sentinel rows are still answered requests: account
        # them so batch pricing charges per-request overhead uniformly.
        stats_dict["requests"] = len(users)
        stats_dict["unowned"] = unowned
        self._account()
        return {
            "items": out_items.tolist(),
            "scores": out_scores.tolist(),
            "stats": stats_dict,
        }

    @ecall
    def ecall_shard_status(self) -> dict:
        """Serve status plus shard-ownership counters (sanitized scalars)."""
        status = self.ecall_serve_status()
        status["owned_users"] = len(self._owned)
        status["unowned_queries"] = int(self.unowned_queries)
        return status

    def _account(self) -> None:
        super()._account()
        # The owned-user table lives in-enclave too: ~two 8-byte words
        # per entry (key + row) in the translation dict.
        self.ctx.memory.set("serve.shard_index", 16 * len(getattr(self, "_owned", ())))
