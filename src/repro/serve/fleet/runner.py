"""One-call train -> shard -> serve fleet pipeline (``repro serve --fleet``).

Like :mod:`repro.serve.runner`, this module deliberately plays every
role in one process: it trains the fleet (the *same* model the
single-endpoint pipeline serves for a given seed), partitions users
across shards with the consistent-hash ring, publishes each shard's
sliced snapshot into ``replicas`` serving enclaves on per-shard EPC
platforms, drives a production traffic trace through the
:class:`~repro.serve.fleet.balancer.FleetBalancer`, optionally kills and
restarts replicas mid-run (reusing
:class:`~repro.faults.plan.CrashEvent`, with ``at_epoch`` meaning the
*serve tick* of the kill), and condenses everything into a
:class:`~repro.serve.fleet.report.FleetServeReport`.

Every per-tick action runs as an event on the shared
:class:`~repro.sim.kernel.EventKernel`; within a tick, event keys order
faults (rank 0) before routing (rank 1) before shard serving (rank 2),
so a replica killed at tick ``t`` hands its queue back *before* that
tick's arrivals route -- which is what makes "zero admitted requests
lost to a crash" hold deterministically.

Shared module: it orchestrates trusted shard enclaves and untrusted
routing in one process, exactly like :mod:`repro.serve.runner`.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.faults.plan import CrashEvent
from repro.net.serialization import encode_triplets
from repro.obs import Observability
from repro.serve.costing import ServeCostModel
from repro.serve.fleet.balancer import FleetBalancer, FleetPolicy, ShardReplica
from repro.serve.fleet.report import FleetServeReport
from repro.serve.fleet.router import DEFAULT_VNODES, HashRing
from repro.serve.fleet.shard import (
    ShardEnclaveApp,
    build_shard_payload,
    encode_shard_users,
)
from repro.serve.runner import train_fleet_model
from repro.serve.workload import TrafficModel, TrafficSpec, trace_digest
from repro.sim.kernel import EventKernel
from repro.tee.attestation import AttestationService
from repro.tee.cost_model import SGX1_COST_MODEL, SgxCostModel
from repro.tee.enclave import Platform
from repro.tee.epc import EpcModel

__all__ = ["run_fleet_experiment", "kill_one_per_shard_plan"]

_MIB = float(1024 * 1024)

#: Default head-room factor when deriving the per-shard EPC cap from the
#: largest shard's snapshot footprint (leaves room for the exclusion
#: index and the pinned hot cache on top of the snapshot itself).
_EPC_CAP_FACTOR = 2.0

#: Drain safety valve: ticks past the trace horizon before giving up.
_MAX_DRAIN_TICKS = 100_000


def kill_one_per_shard_plan(
    shards: int,
    replicas: int,
    *,
    at_tick: int,
    restart_after_ticks: Optional[int] = 8,
) -> Tuple[CrashEvent, ...]:
    """One mid-run crash per shard (the fleet acceptance scenario).

    ``CrashEvent.node`` is reused as the *global replica index*
    ``shard * replicas + replica`` and ``at_epoch`` as the serve tick of
    the kill.  The victim replica rotates (``shard % replicas``) so the
    plan exercises more than replica 0.
    """
    return tuple(
        CrashEvent(
            node=shard * replicas + (shard % replicas),
            at_epoch=max(1, int(at_tick)),
            restart_after_ticks=restart_after_ticks,
        )
        for shard in range(int(shards))
    )


def run_fleet_experiment(
    *,
    seed: int = 0,
    shards: int = 4,
    replicas: int = 2,
    nodes: int = 4,
    epochs: int = 3,
    users: int = 240,
    items: int = 160,
    ratings: int = 6_000,
    mf_k: int = 16,
    node_id: int = 0,
    traffic: Optional[TrafficSpec] = None,
    policy: Optional[FleetPolicy] = None,
    costs: Optional[ServeCostModel] = None,
    sgx: SgxCostModel = SGX1_COST_MODEL,
    vnodes: int = DEFAULT_VNODES,
    epc_cap_mib: Optional[float] = None,
    crashes: Tuple[CrashEvent, ...] = (),
    kill_one_replica_per_shard: bool = False,
    restart_after_ticks: Optional[int] = 8,
    obs: Optional[Observability] = None,
) -> FleetServeReport:
    """Run one seeded sharded-serving experiment; returns the report.

    Everything derives from ``seed`` (training, partitioning, traffic,
    timing), so two identical invocations produce byte-identical
    reports.  ``kill_one_replica_per_shard`` injects the acceptance
    fault plan: one replica per shard dies at the traffic peak and
    re-joins ``restart_after_ticks`` later.
    """
    if shards < 1 or replicas < 1:
        raise ValueError("need at least one shard and one replica")
    if obs is None:
        obs = Observability.create()
    if policy is None:
        policy = FleetPolicy()
    if traffic is None:
        traffic = TrafficSpec(seed=seed, n_users=users)
    if traffic.n_users > users:
        raise ValueError("traffic cannot query more users than the dataset has")

    model = TrafficModel(traffic)
    peak = model.peak_tick()
    trace = model.trace()
    if kill_one_replica_per_shard:
        crashes = crashes + kill_one_per_shard_plan(
            shards, replicas, at_tick=peak, restart_after_ticks=restart_after_ticks
        )

    # ------------------------------------------------------------------ #
    # Train once, slice per shard.
    # ------------------------------------------------------------------ #
    sim, split = train_fleet_model(
        seed=seed,
        nodes=nodes,
        epochs=epochs,
        users=users,
        items=items,
        ratings=ratings,
        mf_k=mf_k,
    )
    ring = HashRing(range(shards), vnodes=vnodes)
    partition = ring.partition(users)

    version = 1
    load_args: Dict[int, dict] = {}
    shard_meta: Dict[int, dict] = {}
    for shard, owned in partition.items():
        wire, meta = build_shard_payload(
            sim.XU[node_id],
            sim.YI[node_id],
            sim.BU[node_id],
            sim.BI[node_id],
            sim.SU[node_id],
            sim.SI[node_id],
            sim.global_mean,
            owned,
            version=version,
            shard_id=shard,
            epoch=epochs,
        )
        load_args[shard] = {
            "snapshot": wire,
            # Only the shard's own users' global histories: exclusion is
            # per-user, and this shard serves exactly these users.
            "ratings": encode_triplets(split.train.restrict_users(owned)),
            "shard_users": encode_shard_users(owned),
            "require_newer": True,
        }
        shard_meta[shard] = meta

    # Per-shard EPC cap: every shard must fit, none gets the aggregate.
    if epc_cap_mib is None:
        largest = max(m["resident_bytes"] for m in shard_meta.values())
        epc_cap_mib = max(1.0 / 64.0, _EPC_CAP_FACTOR * largest / _MIB)
    epc_cap_mib = float(epc_cap_mib)

    # ------------------------------------------------------------------ #
    # Stand up the fleet.
    # ------------------------------------------------------------------ #
    def _boot(platform: Platform, shard: int, replica: int, incarnation: int):
        enclave = platform.create_enclave(
            ShardEnclaveApp, f"shard{shard}-r{replica}-i{incarnation}"
        )
        enclave.ecall("ecall_load", load_args[shard])
        return enclave

    replica_map: Dict[int, List[ShardReplica]] = {}
    for shard in ring.shard_ids:
        reps: List[ShardReplica] = []
        for r in range(replicas):
            platform = Platform(
                f"fleet-s{shard}-r{r}",
                AttestationService(),
                epc=EpcModel(total_mib=epc_cap_mib, usable_mib=epc_cap_mib),
                metrics=obs.metrics,
            )
            reps.append(
                ShardReplica(
                    shard,
                    r,
                    partial(_boot, platform, shard, r),
                    policy=policy.shard,
                    costs=costs,
                    sgx=sgx,
                    epc=platform.epc,
                    metrics=obs.metrics,
                )
            )
        replica_map[shard] = reps

    balancer = FleetBalancer(ring, replica_map, policy=policy, metrics=obs.metrics)
    for shard in ring.shard_ids:
        balancer.shard_version[shard] = version
        for replica in replica_map[shard]:
            replica.boot(0, version)

    # ------------------------------------------------------------------ #
    # Schedule the run on the event kernel.
    # ------------------------------------------------------------------ #
    kernel = EventKernel()
    arrivals = np.asarray(trace, dtype=np.int64)
    cursor = {"pos": 0}

    def _route_tick(tick: int) -> None:
        pos = cursor["pos"]
        while pos < len(arrivals) and int(arrivals[pos, 0]) == tick:
            balancer.offer(int(arrivals[pos, 1]))
            pos += 1
        cursor["pos"] = pos
        balancer.route_pending()

    def _kill(event: CrashEvent) -> None:
        balancer.kill_replica(event.node // replicas, event.node % replicas)

    def _restart(event: CrashEvent, tick: int) -> None:
        balancer.restart_replica(event.node // replicas, event.node % replicas, tick)

    for tick in range(traffic.ticks):
        # Key ranks order one tick's events: faults(0) < route(1) < serve(2).
        kernel.at(
            float(tick), partial(_route_tick, tick), kind="serve.fleet.route",
            key=(tick, 1),
        )
        for shard in ring.shard_ids:
            kernel.at(
                float(tick), partial(balancer.step_shard, shard),
                kind="serve.tick", key=(tick, 2, shard),
            )
    for event in crashes:
        if event.node >= shards * replicas:
            raise ValueError("crash plan names a replica outside the fleet")
        kernel.at(
            float(event.at_epoch), partial(_kill, event),
            kind="faults.crash", key=(event.at_epoch, 0, event.node),
        )
        if event.restart_after_ticks is not None:
            back = event.at_epoch + event.restart_after_ticks
            kernel.at(
                float(back), partial(_restart, event, back),
                kind="faults.restart", key=(back, 0, event.node),
            )
    kernel.run()

    # Drain: keep ticking past the horizon until nothing waits anywhere.
    tick = traffic.ticks
    stalled = 0
    while not balancer.idle():
        before = len(balancer.completions)
        balancer.route_pending()
        for shard in ring.shard_ids:
            balancer.step_shard(shard)
        stalled = stalled + 1 if len(balancer.completions) == before else 0
        # A shard with every replica permanently dead can never drain its
        # deferred queue; after a grace window its stragglers are shed.
        if stalled > 64:
            balancer.shed_pending()
            break
        tick += 1
        if tick > traffic.ticks + _MAX_DRAIN_TICKS:
            raise RuntimeError("fleet failed to drain")

    # ------------------------------------------------------------------ #
    # Report.
    # ------------------------------------------------------------------ #
    completions = balancer.completions
    latencies = [c.latency_s for c in completions]
    duration = max((c.finish_s for c in completions), default=0.0)
    all_replicas = [r for reps in replica_map.values() for r in reps]
    per_shard = []
    for shard in ring.shard_ids:
        reps = replica_map[shard]
        resident = max(r.resident_bytes for r in reps)
        cap = reps[0].epc_share_bytes
        per_shard.append(
            {
                "shard": shard,
                "users": int(len(partition[shard])),
                "snapshot_digest": shard_meta[shard]["digest"],
                "epc": {
                    "resident_bytes": int(resident),
                    "cap_bytes": cap,
                    "overcommit": resident / cap if cap else 0.0,
                    "page_faults": float(sum(r.page_faults for r in reps)),
                },
                "replicas": [
                    {
                        "replica": r.replica_id,
                        "alive": r.alive,
                        "version": r.version,
                        "incarnations": r.incarnation,
                        "crashes": r.crashes,
                        "restarts": r.restarts,
                        "completed": r.completed,
                    }
                    for r in reps
                ],
            }
        )
    return FleetServeReport(
        seed=seed,
        shards=shards,
        replicas_per_shard=replicas,
        traffic=traffic.to_dict(),
        trace_digest=trace_digest(trace),
        ring_digest=ring.digest(),
        policy=policy.to_dict(),
        offered=balancer.offered,
        routed=balancer.routed,
        failover=balancer.failover,
        shed=balancer.shed,
        deferred=balancer.deferred,
        stale_rejected=balancer.stale_rejected,
        routing_errors=int(obs.metrics.value("serve.fleet.routing_errors")),
        completed=len(completions),
        duration_s=duration,
        throughput_rps=len(completions) / duration if duration > 0 else 0.0,
        busy_s=float(sum(r.busy_s for r in all_replicas)),
        latency_s=FleetServeReport.latency_summary(latencies),
        crashes=sum(r.crashes for r in all_replicas),
        restarts=sum(r.restarts for r in all_replicas),
        per_shard=per_shard,
    )
