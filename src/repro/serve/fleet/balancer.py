"""Fleet front end: global admission queue, routing, replicated failover.

The balancer stands in front of every shard's replicas and owns the
fleet's traffic-facing invariants:

- a **bounded global queue** absorbs flash crowds before any replica
  queue sees them; arrivals past the bound are shed (counted, never
  silently dropped);
- each admitted query is **routed** by the consistent-hash ring to its
  owning shard and offered to a preferred replica (deterministic:
  ``user % replicas``), so repeat queries hit the same result cache;
- **failover is snapshot-version-aware**: a query only falls over to a
  replica that is alive *and* serving the shard's freshest live version,
  so a stale replica (one that refused a rollback via
  :class:`~repro.tee.errors.SnapshotReplayError`, or missed a publish
  while down) never answers with an old model;
- a **crashed replica loses no admitted work**: its queued requests are
  evicted back into the global queue (counted as failovers) and re-route
  at the same tick.

Per-replica admission, batching and cost accounting are exactly the
single-endpoint :class:`~repro.serve.server.RecServer` -- the fleet adds
routing around it, not a second pricing path (the costing parity test
pins this).

Shared module: the balancer sees only opaque enclave handles, global
user ids and sanitized counters -- never model state or raw ratings.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence

from repro.obs import MetricsRegistry
from repro.serve.costing import ServeCostModel
from repro.serve.fleet.router import HashRing
from repro.serve.server import (
    REJECT_NEWEST,
    Completion,
    RecServer,
    ServePolicy,
)
from repro.tee.cost_model import SGX1_COST_MODEL, SgxCostModel
from repro.tee.enclave import Enclave
from repro.tee.epc import EpcModel
from repro.tee.errors import SnapshotReplayError

__all__ = ["FleetPolicy", "ShardReplica", "FleetBalancer"]


def _default_shard_policy() -> ServePolicy:
    # Replicas reject at their own bound instead of shedding admitted
    # work: the global queue is the fleet's only place where requests
    # wait un-admitted, which keeps loss accounting single-sourced.
    return ServePolicy(shed=REJECT_NEWEST)


@dataclass(frozen=True)
class FleetPolicy:
    """Fleet-level knobs: the global queue plus the per-replica policy."""

    #: Bound of the global front-door queue (flash-crowd absorber).
    queue_depth: int = 1024
    shard: ServePolicy = field(default_factory=_default_shard_policy)

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValueError("global queue depth must be positive")

    def to_dict(self) -> dict:
        shard = self.shard
        return {
            "queue_depth": self.queue_depth,
            "shard": {
                "top_k": shard.top_k,
                "queue_depth": shard.queue_depth,
                "max_batch": shard.max_batch,
                "batch_window_ticks": shard.batch_window_ticks,
                "shed": shard.shed,
                "tick_s": shard.tick_s,
            },
        }


class ShardReplica:
    """One replica of one shard: enclave incarnations + its RecServer.

    The ``enclave_factory`` callable (provided by the runner, which owns
    the platform and the shard's current load payload) boots a fresh
    enclave incarnation already loaded with the shard's current
    snapshot; the replica itself only tracks liveness, the version it
    serves, and accumulated counters across incarnations.
    """

    def __init__(
        self,
        shard_id: int,
        replica_id: int,
        enclave_factory: Callable[[int], Enclave],
        *,
        policy: Optional[ServePolicy] = None,
        costs: Optional[ServeCostModel] = None,
        sgx: SgxCostModel = SGX1_COST_MODEL,
        epc: Optional[EpcModel] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.shard_id = int(shard_id)
        self.replica_id = int(replica_id)
        self._factory = enclave_factory
        self._policy = policy if policy is not None else _default_shard_policy()
        self._costs = costs
        self._sgx = sgx
        self._epc = epc
        self._metrics = metrics
        self.server: Optional[RecServer] = None
        self.alive = False
        self.stale = False
        self.version = 0
        self.incarnation = 0
        self.crashes = 0
        self.restarts = 0
        self._completed_accum = 0
        self._busy_accum = 0.0
        self._faults_accum = 0.0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def boot(self, tick: int, version: int) -> None:
        """Stand up a fresh enclave incarnation serving ``version``."""
        enclave = self._factory(self.incarnation)
        self.incarnation += 1
        self.server = RecServer(
            enclave,
            policy=self._policy,
            costs=self._costs,
            sgx=self._sgx,
            epc=self._epc,
            metrics=self._metrics,
        )
        self.server.tick = int(tick)
        self.alive = True
        self.stale = False
        self.version = int(version)

    def kill(self) -> List[int]:
        """Crash the replica; returns the queued users needing failover."""
        self.crashes += 1
        self.alive = False
        queued: List[int] = []
        if self.server is not None:
            queued = [r.user for r in self.server.evict_queue()]
            self._completed_accum += len(self.server.completions)
            self._busy_accum += self.server.busy_s
            self._faults_accum += self.server.page_faults
            self.server = None
        return queued

    def restart(self, tick: int, version: int) -> None:
        """Re-join the fleet with a fresh incarnation at ``version``."""
        self.restarts += 1
        self.boot(tick, version)

    def load(self, load_args: dict, version: int) -> dict:
        """Publish a new snapshot into the live incarnation.

        Loads always demand monotonic versions; a rollback raises
        :class:`~repro.tee.errors.SnapshotReplayError` (handled by the
        balancer, which marks the replica stale).
        """
        assert self.server is not None
        args = dict(load_args)
        args["require_newer"] = True
        reply = self.server.enclave.ecall("ecall_load", args)
        self.version = int(version)
        self.stale = False
        return reply

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    @property
    def completed(self) -> int:
        live = len(self.server.completions) if self.server is not None else 0
        return self._completed_accum + live

    @property
    def busy_s(self) -> float:
        live = self.server.busy_s if self.server is not None else 0.0
        return self._busy_accum + live

    @property
    def page_faults(self) -> float:
        live = self.server.page_faults if self.server is not None else 0.0
        return self._faults_accum + live

    @property
    def resident_bytes(self) -> int:
        if self.server is None:
            return 0
        return int(self.server.enclave.memory.resident_bytes)

    @property
    def epc_share_bytes(self) -> float:
        """This replica's EPC cap (its platform's per-enclave share)."""
        return float(self._epc.share_bytes) if self._epc is not None else 0.0


class FleetBalancer:
    """Routes a bounded global queue onto shard replicas with failover."""

    def __init__(
        self,
        ring: HashRing,
        replicas: Dict[int, Sequence[ShardReplica]],
        *,
        policy: Optional[FleetPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if set(ring.shard_ids) != set(replicas):
            raise ValueError("replica map must cover exactly the ring's shards")
        self.ring = ring
        self.replicas: Dict[int, List[ShardReplica]] = {
            shard: list(replicas[shard]) for shard in ring.shard_ids
        }
        self.policy = policy if policy is not None else FleetPolicy()
        self.metrics = metrics
        self.shard_version: Dict[int, int] = {s: 0 for s in ring.shard_ids}
        self._pending: Deque[int] = deque()
        self.completions: List[Completion] = []
        self.offered = 0
        self.routed = 0
        self.failover = 0
        self.shed = 0
        self.deferred = 0
        self.stale_rejected = 0

    # ------------------------------------------------------------------ #
    # Front door
    # ------------------------------------------------------------------ #
    def offer(self, user: int) -> bool:
        """Offer one query to the global queue; sheds past the bound."""
        self.offered += 1
        if len(self._pending) >= self.policy.queue_depth:
            self._count_shed()
            return False
        self._pending.append(int(user))
        return True

    def _count_shed(self, count: int = 1) -> None:
        self.shed += count
        if self.metrics is not None:
            self.metrics.counter("serve.fleet.shed").inc(count)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def _candidates(self, shard: int) -> List[ShardReplica]:
        """Live replicas of ``shard`` serving its freshest live version."""
        live = [r for r in self.replicas[shard] if r.alive and not r.stale]
        if not live:
            return []
        freshest = max(r.version for r in live)
        return [r for r in live if r.version == freshest]

    def route_pending(self) -> None:
        """Route every queued query to a replica (or defer/shed it).

        A query whose shard has no live fresh replica stays queued for
        the next tick (deferred, not lost).  Failover is counted when
        the preferred replica cannot take the query and a sibling does.
        """
        remaining: Deque[int] = deque()
        while self._pending:
            user = self._pending.popleft()
            shard = self.ring.route(user)
            candidates = self._candidates(shard)
            if not candidates:
                self.deferred += 1
                remaining.append(user)
                continue
            siblings = self.replicas[shard]
            preferred = siblings[user % len(siblings)]
            if preferred in candidates:
                target = preferred
            else:
                target = candidates[0]  # deterministic: replica-id order
                self.failover += 1
                if self.metrics is not None:
                    self.metrics.counter("serve.fleet.failover").inc()
            assert target.server is not None
            if target.server.offer(user) < 0:
                self._count_shed()
            else:
                self.routed += 1
                if self.metrics is not None:
                    self.metrics.counter("serve.fleet.routed").inc()
        self._pending = remaining

    # ------------------------------------------------------------------ #
    # Per-shard ticking (one kernel event per shard per tick)
    # ------------------------------------------------------------------ #
    def step_shard(self, shard: int) -> List[Completion]:
        """Advance every live replica of ``shard`` one tick."""
        out: List[Completion] = []
        for replica in self.replicas[shard]:
            if not replica.alive:
                continue
            assert replica.server is not None
            out.extend(replica.server.step())
            # Shed-oldest victims (non-default shard policy) were
            # admitted work: count them as fleet losses too.
            victims = replica.server.take_shed()
            if victims:
                self._count_shed(len(victims))
        self.completions.extend(out)
        return out

    # ------------------------------------------------------------------ #
    # Faults and publishes
    # ------------------------------------------------------------------ #
    def kill_replica(self, shard: int, replica_id: int) -> int:
        """Crash one replica; re-queue its admitted work for failover."""
        replica = self.replicas[shard][replica_id]
        if not replica.alive:
            return 0
        queued = replica.kill()
        # Evicted requests re-enter at the *front* of the global queue
        # (they were admitted first) and re-route this tick; each is a
        # failover by definition.
        self._pending.extendleft(reversed(queued))
        if queued:
            self.failover += len(queued)
            if self.metrics is not None:
                self.metrics.counter("serve.fleet.failover").inc(len(queued))
        return len(queued)

    def restart_replica(self, shard: int, replica_id: int, tick: int) -> None:
        """Restart a crashed replica at the shard's current version."""
        replica = self.replicas[shard][replica_id]
        if replica.alive:
            return
        replica.restart(tick, self.shard_version[shard])

    def publish(self, shard: int, load_args: dict, version: int) -> None:
        """Push a new snapshot to every live replica of ``shard``.

        A replica that refuses the load (replay defense tripped -- e.g.
        the "new" version is actually a rollback) is marked stale and
        drops out of the candidate set until a good publish lands.
        """
        version = int(version)
        for replica in self.replicas[shard]:
            if not replica.alive:
                continue
            try:
                replica.load(load_args, version)
            except SnapshotReplayError:
                self.stale_rejected += 1
                replica.stale = True
                if self.metrics is not None:
                    self.metrics.counter("serve.fleet.stale_rejected").inc()
        self.shard_version[shard] = max(self.shard_version[shard], version)

    # ------------------------------------------------------------------ #
    @property
    def pending_len(self) -> int:
        return len(self._pending)

    @property
    def queued_len(self) -> int:
        """Requests sitting in replica admission queues right now."""
        return sum(
            r.server.queue_len
            for reps in self.replicas.values()
            for r in reps
            if r.alive and r.server is not None
        )

    def idle(self) -> bool:
        """True when no request is waiting anywhere in the fleet."""
        return not self._pending and self.queued_len == 0

    def shed_pending(self) -> int:
        """Shed everything still in the global queue (undrainable fleet)."""
        count = len(self._pending)
        if count:
            self._count_shed(count)
            self._pending.clear()
        return count
