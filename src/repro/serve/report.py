"""The ``repro.serve/v1`` report: throughput, latency, caching, EPC.

One serving run condenses into a :class:`ServeReport`: the workload and
snapshot identities (seed, spec, trace digest, snapshot digest), the
admission outcome (offered / admitted / shed / completed), simulated
throughput and latency percentiles, cache effectiveness, EPC paging
pressure, and -- when held-out ratings were provided -- ranking quality.

Percentiles use the **nearest-rank** definition (the ceil(p*n)-th
smallest sample): it needs no interpolation, so two runs with identical
latency multisets produce byte-identical reports.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["percentile", "ServeReport"]


def percentile(samples: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (p in [0, 100]); nan for empty input."""
    if not 0.0 <= p <= 100.0:
        raise ValueError("percentile must be within [0, 100]")
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    if p == 0.0:
        return float(ordered[0])
    rank = math.ceil(p / 100.0 * len(ordered))
    return float(ordered[rank - 1])


@dataclass
class ServeReport:
    """Everything one serving run produced, ready for JSON or a terminal."""

    seed: int
    nodes: int
    node_id: int
    snapshot_digest: str
    snapshot_version: int
    workload: dict
    trace_digest: str
    policy: dict
    k: int
    # -- admission ----------------------------------------------------- #
    offered: int
    admitted: int
    shed: int
    completed: int
    # -- time ---------------------------------------------------------- #
    duration_s: float
    throughput_rps: float
    #: Simulated seconds the enclave spent serving dispatched batches
    #: (the *service window*).  ``completed / busy_s`` is the capacity
    #: throughput -- the only window comparable across scenarios whose
    #: arrival processes differ (an arrival-bound run's wall-clock
    #: throughput measures the workload, not the server).
    busy_s: float
    latency_s: Dict[str, float]
    # -- caching / EPC ------------------------------------------------- #
    cache: Dict[str, float]
    epc: Dict[str, float]
    # -- quality (optional) -------------------------------------------- #
    quality: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def latency_summary(cls, latencies: Sequence[float]) -> Dict[str, float]:
        """The fixed percentile set every serve report carries."""
        count = len(latencies)
        return {
            "count": float(count),
            "mean": float(sum(latencies) / count) if count else float("nan"),
            "p50": percentile(latencies, 50.0),
            "p95": percentile(latencies, 95.0),
            "p99": percentile(latencies, 99.0),
            "max": max(latencies) if count else float("nan"),
        }

    def to_dict(self) -> dict:
        doc = {"schema": "repro.serve/v1"}
        doc.update(asdict(self))
        return doc

    def format_lines(self) -> List[str]:
        lat = self.latency_s
        shed_pct = 100.0 * self.shed / self.offered if self.offered else 0.0
        hit_total = self.cache.get("hits", 0.0) + self.cache.get("misses", 0.0)
        hit_pct = 100.0 * self.cache.get("hits", 0.0) / hit_total if hit_total else 0.0
        lines = [
            f"serve node {self.node_id}/{self.nodes} seed={self.seed} "
            f"k={self.k} snapshot v{self.snapshot_version} "
            f"({self.snapshot_digest[:16]}…)",
            f"  trace digest     {self.trace_digest[:16]}…",
            f"  requests         {self.offered} offered, {self.admitted} admitted, "
            f"{self.shed} shed ({shed_pct:.1f}%), {self.completed} completed",
            f"  throughput       {self.throughput_rps:.1f} req/s over "
            f"{self.duration_s * 1e3:.1f} ms simulated",
            f"  latency          p50 {lat['p50'] * 1e3:.3f} ms, "
            f"p95 {lat['p95'] * 1e3:.3f} ms, p99 {lat['p99'] * 1e3:.3f} ms",
            f"  cache            {self.cache.get('hits', 0):.0f} hits / "
            f"{self.cache.get('misses', 0):.0f} misses ({hit_pct:.1f}% hit rate)",
            f"  epc              {self.epc.get('page_faults', 0):.0f} page faults, "
            f"overcommit x{self.epc.get('overcommit_ratio', 0):.2f}",
        ]
        if self.quality:
            parts = ", ".join(f"{k}={v:.4f}" for k, v in sorted(self.quality.items()))
            lines.append(f"  quality          {parts}")
        return lines

    # Convenience accessors the tests/benchmarks read.
    @property
    def capacity_rps(self) -> float:
        """Completions over the service window (scenario-comparable)."""
        return self.completed / self.busy_s if self.busy_s > 0 else 0.0

    @property
    def p99_s(self) -> float:
        return self.latency_s["p99"]

    @property
    def mean_latency_s(self) -> float:
        return self.latency_s["mean"]

    @property
    def cache_hit_rate(self) -> Optional[float]:
        total = self.cache.get("hits", 0.0) + self.cache.get("misses", 0.0)
        return self.cache.get("hits", 0.0) / total if total else None
