"""One-call train -> publish -> serve pipeline (behind ``repro serve``).

Like :mod:`repro.sim`, this module deliberately plays every role in one
process -- it trains a fleet, publishes a node's snapshot, stands up a
serving enclave on a fresh platform, drives a seeded workload through
the host-side :class:`~repro.serve.server.RecServer`, probes ranking
quality against the held-out split, and condenses everything into a
:class:`~repro.serve.report.ServeReport`.

Every step is seeded: the synthetic dataset, the fleet training run, the
workload trace and all simulated timing derive from the one ``seed``
argument, so two identical invocations produce byte-identical reports
(the determinism acceptance test pins this).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import Dissemination, RexConfig, SharingScheme
from repro.data.movielens import MovieLensSpec, generate_movielens
from repro.data.partition import partition_users_across_nodes
from repro.ml.metrics import ndcg_at_k, precision_at_k, recall_at_k
from repro.ml.mf import MfHyperParams
from repro.net.serialization import encode_triplets
from repro.net.topology import Topology
from repro.obs import Observability
from repro.serve.endpoint import ServeEnclaveApp
from repro.serve.report import ServeReport
from repro.serve.server import RecServer, ServeCostModel, ServePolicy
from repro.serve.snapshot import encode_snapshot, snapshot_from_arrays
from repro.serve.workload import WorkloadGenerator, WorkloadSpec, run_trace, trace_digest
from repro.sim.fleet import MfFleetSim
from repro.sim.kernel import EventKernel
from repro.tee.attestation import AttestationService
from repro.tee.cost_model import SGX1_COST_MODEL, SgxCostModel
from repro.tee.enclave import Enclave, Platform
from repro.tee.epc import EpcModel

__all__ = ["run_serving_experiment", "train_and_load", "train_fleet_model"]

#: Held-out ratings at or above this are "relevant" for ranking quality.
RELEVANCE_THRESHOLD = 4.0

#: How many users the post-load quality probe scores.
QUALITY_PROBE_USERS = 50


def _build_data(users: int, items: int, ratings: int, nodes: int, data_seed: int):
    spec = MovieLensSpec(
        name=f"serve-{users}u",
        n_ratings=ratings,
        n_items=items,
        n_users=users,
        last_updated=2020,
    )
    split = generate_movielens(spec, seed=data_seed).split(0.7, seed=1)
    train = partition_users_across_nodes(split.train, nodes, seed=2)
    test = partition_users_across_nodes(split.test, nodes, seed=2)
    return split, list(train), list(test)


def train_fleet_model(
    *,
    seed: int,
    nodes: int,
    epochs: int,
    users: int,
    items: int,
    ratings: int,
    mf_k: int,
    share_points: int = 100,
    data_seed: int = 42,
):
    """Train the fleet sim every serving path publishes snapshots from.

    Returns ``(sim, split)``: the finished fleet simulation (its per-node
    parameter arrays are what gets published) and the train/test split
    (exclusion ratings and quality probes).  Shared by the
    single-endpoint pipeline and the sharded fleet runner, so both serve
    the *same* model for a given seed.
    """
    split, train, test = _build_data(users, items, ratings, nodes, data_seed=data_seed)
    topology = Topology.fully_connected(nodes)
    config = RexConfig(
        scheme=SharingScheme.DATA,
        dissemination=Dissemination.DPSGD,
        epochs=epochs,
        share_points=share_points,
        seed=seed,
        mf=MfHyperParams(k=mf_k),
    )
    sim = MfFleetSim(
        train, test, topology, config, global_mean=split.train.global_mean()
    )
    sim.run()
    return sim, split


def train_and_load(
    *,
    seed: int = 0,
    nodes: int = 8,
    epochs: int = 4,
    users: int = 60,
    items: int = 180,
    ratings: int = 3_000,
    mf_k: int = 16,
    share_points: int = 100,
    node_id: int = 0,
    epc: Optional[EpcModel] = None,
    topn_capacity: Optional[int] = None,
    hot_capacity: Optional[int] = None,
    obs: Optional[Observability] = None,
):
    """Train a fleet, publish one node's snapshot into a serving enclave.

    Returns ``(enclave, meta, split, platform)``: the loaded serving
    enclave, the sanitized snapshot metadata dict it reported back, the
    train/test split (for exclusions already shipped and for quality
    probes), and the platform whose EPC model governs paging.
    """
    if obs is None:
        obs = Observability.create()
    sim, split = train_fleet_model(
        seed=seed,
        nodes=nodes,
        epochs=epochs,
        users=users,
        items=items,
        ratings=ratings,
        mf_k=mf_k,
        share_points=share_points,
    )

    snapshot = snapshot_from_arrays(
        sim.XU[node_id],
        sim.YI[node_id],
        sim.BU[node_id],
        sim.BI[node_id],
        sim.SU[node_id],
        sim.SI[node_id],
        sim.global_mean,
        version=1,
        node_id=node_id,
        epoch=epochs,
    )
    platform = Platform(
        "serve-platform",
        AttestationService(),
        epc=epc,
        metrics=obs.metrics,
    )
    enclave = platform.create_enclave(ServeEnclaveApp, f"serve-{node_id}")
    load_args = {
        "snapshot": encode_snapshot(snapshot),
        # The user's *global* training history drives exclusion: an item
        # rated anywhere must never be recommended back.
        "ratings": encode_triplets(split.train),
    }
    if topn_capacity is not None:
        load_args["topn_capacity"] = topn_capacity
    if hot_capacity is not None:
        load_args["hot_capacity"] = hot_capacity
    meta = enclave.ecall("ecall_load", load_args)
    return enclave, meta, split, platform


def _probe_quality(enclave: Enclave, split, top_k: int) -> dict:
    """Score served top-K lists against the held-out split."""
    test = split.test
    relevant: dict = {}
    for user, item, rating in zip(test.users, test.items, test.ratings):
        if rating >= RELEVANCE_THRESHOLD:
            relevant.setdefault(int(user), set()).add(int(item))
    probe_users = sorted(relevant)[:QUALITY_PROBE_USERS]
    if not probe_users:
        return {}
    reply = enclave.ecall("ecall_serve", probe_users, top_k)
    precisions, recalls, ndcgs = [], [], []
    for row, user in enumerate(probe_users):
        recommended = reply["items"][row]
        precisions.append(precision_at_k(recommended, relevant[user], top_k))
        recalls.append(recall_at_k(recommended, relevant[user], top_k))
        ndcgs.append(ndcg_at_k(recommended, relevant[user], top_k))
    return {
        f"precision_at_{top_k}": float(np.nanmean(precisions)),
        f"recall_at_{top_k}": float(np.nanmean(recalls)),
        f"ndcg_at_{top_k}": float(np.nanmean(ndcgs)),
        "probed_users": float(len(probe_users)),
    }


def run_serving_experiment(
    *,
    seed: int = 0,
    nodes: int = 8,
    epochs: int = 4,
    users: int = 60,
    items: int = 180,
    ratings: int = 3_000,
    mf_k: int = 16,
    node_id: int = 0,
    workload: Optional[WorkloadSpec] = None,
    policy: Optional[ServePolicy] = None,
    costs: Optional[ServeCostModel] = None,
    sgx: SgxCostModel = SGX1_COST_MODEL,
    epc: Optional[EpcModel] = None,
    topn_capacity: Optional[int] = None,
    hot_capacity: Optional[int] = None,
    quality_probe: bool = True,
    obs: Optional[Observability] = None,
) -> ServeReport:
    """Run one seeded end-to-end serving experiment; returns the report."""
    if obs is None:
        obs = Observability.create()
    if policy is None:
        policy = ServePolicy()
    if workload is None:
        workload = WorkloadSpec(seed=seed, n_users=users)
    enclave, meta, split, platform = train_and_load(
        seed=seed,
        nodes=nodes,
        epochs=epochs,
        users=users,
        items=items,
        ratings=ratings,
        mf_k=mf_k,
        node_id=node_id,
        epc=epc,
        topn_capacity=topn_capacity,
        hot_capacity=hot_capacity,
        obs=obs,
    )
    server = RecServer(
        enclave,
        policy=policy,
        costs=costs,
        sgx=sgx,
        epc=platform.epc,
        metrics=obs.metrics,
    )
    generator = WorkloadGenerator(workload)
    trace = generator.trace()
    # Serving ticks run as ``serve.tick`` events on the shared event
    # kernel (completion-identical to the legacy polling loop, which
    # tests/serve pin as the oracle).
    completions = run_trace(server, trace, kernel=EventKernel())

    # Cache effectiveness of the *load phase* only: the quality probe
    # below would otherwise pollute the counters it is reported next to.
    metrics = obs.metrics
    cache = {
        "hits": metrics.value("serve.cache.hits", cache="topn"),
        "misses": metrics.value("serve.cache.misses", cache="topn"),
        "evictions": metrics.value("serve.cache.evictions", cache="topn"),
        "embedding_hits": metrics.value("serve.cache.hits", cache="embedding"),
        "embedding_misses": metrics.value("serve.cache.misses", cache="embedding"),
    }
    resident = float(enclave.memory.resident_bytes)
    epc_stats = {
        "page_faults": server.page_faults,
        "resident_bytes": resident,
        "overcommit_ratio": platform.epc.overcommit_ratio(resident),
        "share_bytes": platform.epc.share_bytes,
    }

    quality = _probe_quality(enclave, split, policy.top_k) if quality_probe else {}

    latencies = [c.latency_s for c in completions]
    duration = max((c.finish_s for c in completions), default=0.0)
    return ServeReport(
        seed=seed,
        nodes=nodes,
        node_id=node_id,
        snapshot_digest=meta["digest"],
        snapshot_version=meta["version"],
        workload=workload.to_dict(),
        trace_digest=trace_digest(trace),
        policy={
            "top_k": policy.top_k,
            "queue_depth": policy.queue_depth,
            "max_batch": policy.max_batch,
            "batch_window_ticks": policy.batch_window_ticks,
            "shed": policy.shed,
            "tick_s": policy.tick_s,
        },
        k=policy.top_k,
        offered=server.offered,
        admitted=server.admitted,
        shed=server.shed_count,
        completed=len(server.completions),
        duration_s=duration,
        throughput_rps=len(completions) / duration if duration > 0 else 0.0,
        busy_s=server.busy_s,
        latency_s=ServeReport.latency_summary(latencies),
        cache=cache,
        epc=epc_stats,
        quality=quality,
    )
