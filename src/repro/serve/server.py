"""Per-node recommendation server: admission, batching, load shedding.

:class:`RecServer` is the *untrusted* host driver of a serving enclave.
It never sees model parameters -- queries go in through ``ecall_serve``
and only item-id/score lists come back.  The host side owns everything a
real deployment's front-end owns:

- a **bounded admission queue** -- requests past the bound are shed
  under a configurable policy (``shed-oldest`` keeps the queue fresh,
  ``reject-newest`` protects admitted work); every shed is counted;
- a **batching window** -- admitted requests accumulate for a few ticks
  so one ecall amortizes its transition cost over the batch;
- **simulated-latency accounting** -- service time is assembled from the
  batch's counted work (pairs scored, cache hits, bytes marshalled,
  expected EPC faults) against :class:`ServeCostModel` and the SGX cost
  model, on the same simulated tick clock the rest of the repo uses.
  No wall clock is read anywhere.

Paging pressure is *observable*: when the serving working set exceeds
the enclave's EPC share, the per-batch fault estimate lands in
``serve.epc.page_faults`` and ``tee.epc.page_faults{stage=serve}``,
mirroring the paper's beyond-EPC analysis (Fig. 7).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.obs import MetricsRegistry
from repro.serve.costing import ServeCostModel, price_batch
from repro.tee.cost_model import SGX1_COST_MODEL, SgxCostModel
from repro.tee.enclave import Enclave
from repro.tee.epc import EpcModel

__all__ = [
    "Request",
    "Completion",
    "ServePolicy",
    "ServeCostModel",
    "RecServer",
    "SHED_OLDEST",
    "REJECT_NEWEST",
]

SHED_OLDEST = "shed-oldest"
REJECT_NEWEST = "reject-newest"

#: Histogram edges for simulated request latency (seconds, geometric).
LATENCY_BUCKETS = tuple(1e-4 * 2**i for i in range(16))


@dataclass(frozen=True)
class Request:
    """One admitted top-K query."""

    request_id: int
    user: int
    arrival_tick: int


@dataclass(frozen=True)
class Completion:
    """A served request with its simulated timing."""

    request_id: int
    user: int
    arrival_s: float
    finish_s: float

    @property
    def latency_s(self) -> float:
        return self.finish_s - self.arrival_s


@dataclass(frozen=True)
class ServePolicy:
    """Admission / batching knobs of one server."""

    top_k: int = 10
    queue_depth: int = 64
    max_batch: int = 32
    #: Ticks a batch may accumulate before it must be dispatched.
    batch_window_ticks: int = 2
    #: ``shed-oldest`` or ``reject-newest`` when the queue is full.
    shed: str = SHED_OLDEST
    #: Simulated duration of one tick.
    tick_s: float = 1e-3

    def __post_init__(self) -> None:
        if self.shed not in (SHED_OLDEST, REJECT_NEWEST):
            raise ValueError(f"unknown shed policy {self.shed!r}")
        if self.queue_depth < 1 or self.max_batch < 1:
            raise ValueError("queue_depth and max_batch must be positive")


class RecServer:
    """Bounded-queue, batching front-end over one serving enclave."""

    def __init__(
        self,
        enclave: Enclave,
        *,
        policy: Optional[ServePolicy] = None,
        costs: Optional[ServeCostModel] = None,
        sgx: SgxCostModel = SGX1_COST_MODEL,
        epc: Optional[EpcModel] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.enclave = enclave
        self.policy = policy if policy is not None else ServePolicy()
        self.costs = costs if costs is not None else ServeCostModel()
        self.sgx = sgx
        self.epc = epc if epc is not None else EpcModel()
        self.metrics = metrics
        self.tick = 0
        self.completions: List[Completion] = []
        self.offered = 0
        self.admitted = 0
        self.shed_count = 0
        self.page_faults = 0.0
        #: Simulated seconds the enclave spent serving dispatched batches
        #: (the *service window* -- idle queue time excluded).  This is
        #: the denominator of the capacity-style throughput the serve
        #: benchmark computes consistently for every scenario.
        self.busy_s = 0.0
        self._queue: Deque[Request] = deque()
        self._shed_ids: List[int] = []
        self._next_id = 0
        self._oldest_wait_ticks = 0
        #: Simulated instant the enclave finishes its current batch.
        self._busy_until_s = 0.0

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #
    @property
    def now_s(self) -> float:
        return self.tick * self.policy.tick_s

    def offer(self, user: int) -> int:
        """Offer one query at the current tick.

        Returns the assigned request id, or -1 when the query was
        rejected outright (``reject-newest`` with a full queue).  Under
        ``shed-oldest`` the new query is always admitted and the dropped
        request's id is recorded for :meth:`take_shed`.
        """
        self.offered += 1
        if len(self._queue) >= self.policy.queue_depth:
            if self.policy.shed == REJECT_NEWEST:
                self._count_shed()
                return -1
            dropped = self._queue.popleft()  # shed-oldest: stale work makes room
            self._shed_ids.append(dropped.request_id)
            self._count_shed()
        request_id = self._next_id
        self._queue.append(Request(request_id, int(user), self.tick))
        self._next_id += 1
        self.admitted += 1
        return request_id

    def evict_queue(self) -> List[Request]:
        """Remove and return every queued request (crash/failover path).

        Used by the fleet balancer when this server's enclave crashes:
        admitted-but-unserved work is handed back for re-routing instead
        of being lost with the incarnation.
        """
        queued = list(self._queue)
        self._queue.clear()
        self._oldest_wait_ticks = 0
        return queued

    def take_shed(self) -> List[int]:
        """Ids of shed-oldest victims since the last call (then cleared)."""
        shed, self._shed_ids = self._shed_ids, []
        return shed

    def _count_shed(self) -> None:
        self.shed_count += 1
        if self.metrics is not None:
            self.metrics.counter("serve.shed", policy=self.policy.shed).inc()

    # ------------------------------------------------------------------ #
    # The tick loop
    # ------------------------------------------------------------------ #
    def step(self) -> List[Completion]:
        """Advance one tick; dispatch a batch when the window closes."""
        completed: List[Completion] = []
        if self._queue:
            self._oldest_wait_ticks += 1
            window_full = self._oldest_wait_ticks >= self.policy.batch_window_ticks
            batch_full = len(self._queue) >= self.policy.max_batch
            if window_full or batch_full:
                completed = self._dispatch()
                self._oldest_wait_ticks = 0
        self.tick += 1
        return completed

    def drain(self, *, max_ticks: int = 1_000_000) -> List[Completion]:
        """Tick until the queue empties; returns everything completed."""
        completed: List[Completion] = []
        ticks = 0
        while self._queue:
            completed.extend(self.step())
            ticks += 1
            if ticks > max_ticks:
                raise RuntimeError("serving queue failed to drain")
        return completed

    def _dispatch(self) -> List[Completion]:
        batch = [
            self._queue.popleft()
            for _ in range(min(self.policy.max_batch, len(self._queue)))
        ]
        users = [r.user for r in batch]
        k = self.policy.top_k
        reply = self.enclave.ecall("ecall_serve", users, k)
        stats = reply["stats"]
        service_s = self._service_time(stats, len(batch))
        self.busy_s += service_s

        # The enclave is a serial resource: a batch starts when the
        # previous one finishes (or now, if idle).
        start_s = max(self.now_s, self._busy_until_s)
        finish_s = start_s + service_s
        self._busy_until_s = finish_s

        tick_s = self.policy.tick_s
        completions = [
            Completion(r.request_id, r.user, r.arrival_tick * tick_s, finish_s)
            for r in batch
        ]
        self.completions.extend(completions)
        if self.metrics is not None:
            hist = self.metrics.histogram("serve.latency_s", buckets=LATENCY_BUCKETS)
            for c in completions:
                hist.observe(c.latency_s)
            self.metrics.counter("serve.completed").inc(len(completions))
        return completions

    # ------------------------------------------------------------------ #
    # Simulated service time
    # ------------------------------------------------------------------ #
    def _service_time(self, stats: dict, batch_size: int) -> float:
        """Price one batch via the shared helper (one source of truth)."""
        resident = float(self.enclave.memory.resident_bytes)
        cost = price_batch(
            stats,
            batch_size,
            top_k=self.policy.top_k,
            costs=self.costs,
            sgx=self.sgx,
            epc=self.epc,
            resident_bytes=resident,
        )
        if cost.page_faults:
            self.page_faults += cost.page_faults
            if self.metrics is not None:
                self.metrics.counter("serve.epc.page_faults").inc(cost.page_faults)
                self.metrics.counter("tee.epc.page_faults", stage="serve").inc(
                    cost.page_faults
                )
                self.metrics.gauge("tee.epc.overcommit_ratio").set(
                    self.epc.overcommit_ratio(resident)
                )
        return cost.service_s

    # ------------------------------------------------------------------ #
    @property
    def queue_len(self) -> int:
        return len(self._queue)

    def latencies(self) -> List[float]:
        """Per-request simulated latencies, in completion order."""
        return [c.latency_s for c in self.completions]
