"""Enclave-resident serving engine and the standalone serving enclave.

:class:`ServingState` is the in-enclave query engine: it owns the
installed :class:`~repro.serve.snapshot.ModelSnapshot`, the per-user
exclusion index derived from the node's raw ratings, and both serving
caches.  :class:`ServeEnclaveApp` wraps it as a
:class:`~repro.tee.enclave.TrustedApp` so a host can stand up a
dedicated serving enclave: encoded snapshot + rating payloads flow *in*
through ``ecall_load`` and only recommendation lists (item ids and
predicted scores -- the system's sanctioned output) and sanitized batch
statistics flow back out.

Trusted module: everything here handles plaintext model parameters and
the raw rating index.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.net.serialization import decode_triplets
from repro.obs import MetricsRegistry
from repro.serve.cache import HotEmbeddingCache, TopNCache
from repro.serve.scoring import batched_top_k, exclusion_index
from repro.serve.snapshot import ModelSnapshot, decode_snapshot
from repro.tee.enclave import TrustedApp, ecall
from repro.tee.errors import SnapshotReplayError

__all__ = ["BatchStats", "ServingState", "ServeEnclaveApp"]

#: Default cache sizes: enough to absorb a Zipf head without letting the
#: pinned hot set dominate the EPC working-set accounting.
DEFAULT_TOPN_CAPACITY = 4096
DEFAULT_HOT_CAPACITY = 512


@dataclass
class BatchStats:
    """Sanitized work counts for one served batch (safe to export)."""

    requests: int = 0
    cache_hits: int = 0
    scored_users: int = 0
    scored_pairs: int = 0
    touched_bytes: int = 0

    def to_dict(self) -> dict:
        return asdict(self)


class ServingState:
    """The in-enclave query engine: snapshot + exclusions + caches."""

    def __init__(
        self,
        *,
        metrics: Optional[MetricsRegistry] = None,
        topn_capacity: int = DEFAULT_TOPN_CAPACITY,
        hot_capacity: int = DEFAULT_HOT_CAPACITY,
    ):
        self.snapshot: Optional[ModelSnapshot] = None
        self.exclusions: Dict[int, np.ndarray] = {}
        self._exclusion_bytes = 0
        self.topn = TopNCache(topn_capacity, metrics=metrics)
        self.hot = HotEmbeddingCache(hot_capacity, metrics=metrics)
        self._metrics = metrics
        self.queries_served = 0
        self.batches_served = 0

    # ------------------------------------------------------------------ #
    def install(
        self,
        snapshot: ModelSnapshot,
        rated_users: Optional[np.ndarray] = None,
        rated_items: Optional[np.ndarray] = None,
    ) -> None:
        """Install a published snapshot and rebuild the exclusion index.

        Cache invalidation rides on the snapshot version: both caches
        flush themselves on the first lookup against the new version.
        """
        self.snapshot = snapshot
        if rated_users is not None and rated_items is not None:
            self.exclusions = exclusion_index(
                rated_users, rated_items, snapshot.n_users
            )
            self._exclusion_bytes = sum(a.nbytes for a in self.exclusions.values())
        else:
            self.exclusions = {}
            self._exclusion_bytes = 0

    @property
    def resident_bytes(self) -> int:
        """EPC working set serving adds: snapshot + index + pinned hot set."""
        if self.snapshot is None:
            return 0
        return (
            self.snapshot.resident_bytes
            + self._exclusion_bytes
            + self.hot.resident_bytes
        )

    # ------------------------------------------------------------------ #
    def query_batch(
        self, users: Sequence[int], k: int
    ) -> Tuple[np.ndarray, np.ndarray, BatchStats]:
        """Serve top-``k`` lists for a batch of users, cache-first.

        Returns (items, scores) of shape (B, k) in request order plus the
        batch's work counts.  A result-cache hit skips scoring entirely;
        the remaining *unique* users are scored in one matrix product.
        """
        if self.snapshot is None:
            raise RuntimeError("no snapshot installed")
        snap = self.snapshot
        k = int(k)
        stats = BatchStats(requests=len(users))
        out_items = np.full((len(users), k), -1, dtype=np.int64)
        out_scores = np.full((len(users), k), np.nan, dtype=np.float64)

        misses: list = []
        for row, user in enumerate(users):
            cached = self.topn.lookup(snap.version, int(user), k)
            if cached is not None:
                out_items[row], out_scores[row] = cached
                stats.cache_hits += 1
            else:
                misses.append((row, int(user)))

        if misses:
            unique_users = sorted({user for _row, user in misses})
            items, scores = batched_top_k(
                snap.user_factors,
                snap.user_bias,
                snap.item_factors,
                snap.item_bias,
                snap.global_mean,
                np.asarray(unique_users, dtype=np.int64),
                k,
                exclusions=self.exclusions,
            )
            by_user = {u: i for i, u in enumerate(unique_users)}
            for row, user in misses:
                idx = by_user[user]
                out_items[row] = items[idx]
                out_scores[row] = scores[idx]
            for user in unique_users:
                idx = by_user[user]
                self.topn.store(snap.version, user, k, items[idx], scores[idx])
                self.hot.store(
                    snap.version,
                    user,
                    snap.user_factors[user],
                    float(snap.user_bias[user]),
                )
            stats.scored_users = len(unique_users)
            stats.scored_pairs = len(unique_users) * snap.n_items
            # One scoring pass streams the whole item side once (shared by
            # every user in the batch) plus the touched user rows; this is
            # the byte count the EPC paging model charges.
            row_bytes = snap.user_factors.itemsize * snap.k + snap.user_bias.itemsize
            stats.touched_bytes = (
                snap.item_factors.nbytes
                + snap.item_bias.nbytes
                + len(unique_users) * row_bytes
            )

        self.queries_served += stats.requests
        self.batches_served += 1
        if self._metrics is not None:
            self._metrics.counter("serve.requests").inc(stats.requests)
            self._metrics.counter("serve.batches").inc()
            self._metrics.counter("serve.scored.pairs").inc(stats.scored_pairs)
        return out_items, out_scores, stats


class ServeEnclaveApp(TrustedApp):
    """A dedicated serving enclave: load a snapshot, answer queries."""

    @ecall
    def ecall_load(self, args: dict) -> dict:
        """Install an encoded snapshot (+ optional rating triplets).

        ``args`` carries only bytes/scalars: the ``RXS1`` snapshot
        payload, optionally the node's rating triplets (to rebuild the
        seen-item exclusion index), and cache capacities.  Returns the
        sanitized snapshot metadata.

        ``require_newer=True`` arms the stale-replay defense: once set,
        this enclave tracks the highest snapshot version it has served
        and refuses any load at or below it
        (:class:`~repro.tee.errors.SnapshotReplayError`).  In a real
        deployment the flag would be part of the measured enclave config
        -- a host that can toggle it can also roll back.
        """
        snapshot = decode_snapshot(bytes(args["snapshot"]))
        high_water = getattr(self, "_version_high_water", 0)
        if args.get("require_newer"):
            self._monotonic = True
        if getattr(self, "_monotonic", False) and snapshot.version <= high_water:
            metrics = self.ctx.metrics
            if metrics is not None:
                metrics.counter("faults.rejected", kind="replay_snapshot").inc()
            raise SnapshotReplayError(
                "snapshot load refused: version is at or below the served "
                "high-water mark"
            )
        self._version_high_water = max(high_water, snapshot.version)
        self.serving = ServingState(
            metrics=self.ctx.metrics,
            topn_capacity=int(args.get("topn_capacity", DEFAULT_TOPN_CAPACITY)),
            hot_capacity=int(args.get("hot_capacity", DEFAULT_HOT_CAPACITY)),
        )
        self._install_snapshot(snapshot, args)
        self._account()
        return snapshot.meta().to_dict()

    def _install_snapshot(self, snapshot: ModelSnapshot, args: dict) -> None:
        """Install hook: shard endpoints override to remap global ids."""
        ratings = args.get("ratings")
        if ratings is not None:
            data = decode_triplets(bytes(ratings))
            self.serving.install(snapshot, data.users, data.items)
        else:
            self.serving.install(snapshot)

    @ecall
    def ecall_serve(self, users: list, k: int) -> dict:
        """Serve one batch; only item ids, scores and counts leave."""
        items, scores, stats = self.serving.query_batch(users, k)
        self._account()
        return {
            "items": items.tolist(),
            "scores": scores.tolist(),
            "stats": stats.to_dict(),
        }

    @ecall
    def ecall_serve_status(self) -> dict:
        """Introspection for the host/tests (sanitized scalars only)."""
        serving = self.serving
        meta = serving.snapshot.meta() if serving.snapshot is not None else None
        return {
            "version": meta.version if meta else None,
            "digest": meta.digest if meta else None,
            "queries_served": serving.queries_served,
            "batches_served": serving.batches_served,
            "topn_hits": serving.topn.hits,
            "topn_misses": serving.topn.misses,
            "resident_bytes": serving.resident_bytes,
        }

    def _account(self) -> None:
        serving = self.serving
        snap = serving.snapshot
        self.ctx.memory.set("serve.snapshot", snap.resident_bytes if snap else 0)
        self.ctx.memory.set("serve.exclusions", serving._exclusion_bytes)
        self.ctx.memory.set("serve.hot_cache", serving.hot.resident_bytes)
