"""Vectorized batched top-K scoring kernels.

One serving batch scores B users against all N items in a single matrix
product -- ``mu + b_u + c_i + X_u @ Y.T`` -- then selects each user's
top-K *unseen* items.  Three properties matter:

- **Exclusion**: items the user already rated (present in the node's
  raw-data store) must never be recommended; they are masked to ``-inf``
  before selection.
- **Determinism**: equal scores are broken by ascending item id, and all
  arithmetic runs in float64, so a (snapshot digest, user batch) pair
  yields byte-identical recommendations on every run and machine.
- **argpartition, not argsort**: selection is O(N) per user via
  ``np.partition`` on the K-th order statistic, with an exact tie repair
  at the boundary -- the brute-force ``argsort`` oracle in the property
  tests agrees bit-for-bit, including K >= candidate count and ties.

Trusted module: kernels read plaintext model parameters and the per-user
rated-item index derived from the raw store.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "score_batch",
    "top_k_select",
    "batched_top_k",
    "exclusion_index",
    "apply_exclusions",
    "PAD_ITEM",
]

#: Item-id padding for users with fewer than K eligible candidates.
PAD_ITEM = -1


def score_batch(
    user_factors: np.ndarray,
    user_bias: np.ndarray,
    item_factors: np.ndarray,
    item_bias: np.ndarray,
    global_mean: float,
    users: np.ndarray,
) -> np.ndarray:
    """Dense (B, N) float64 score matrix for a batch of users.

    Scores are deliberately *not* clipped to the rating range: clipping
    collapses everything above 5.0 into one tie and destroys the
    ranking; the predicted-rating semantics only matter for display.
    """
    users = np.asarray(users, dtype=np.int64)
    xu = user_factors[users].astype(np.float64, copy=False)
    yi = item_factors.astype(np.float64, copy=False)
    scores = xu @ yi.T
    scores += user_bias[users].astype(np.float64, copy=False)[:, None]
    scores += item_bias.astype(np.float64, copy=False)[None, :]
    scores += float(global_mean)
    return scores


def exclusion_index(
    users: np.ndarray, items: np.ndarray, n_users: int
) -> Dict[int, np.ndarray]:
    """Per-user sorted arrays of already-rated item ids, in one argsort.

    Built once per snapshot load from the node's raw-data store; consulted
    per batch by :func:`apply_exclusions`.
    """
    users = np.asarray(users)
    items = np.asarray(items)
    if len(users) == 0:
        return {}
    order = np.lexsort((items, users))
    sorted_users = users[order]
    sorted_items = items[order]
    boundaries = np.flatnonzero(np.diff(sorted_users)) + 1
    groups = np.split(sorted_items, boundaries)
    starts = np.concatenate(([0], boundaries))
    return {
        int(sorted_users[start]): np.unique(group)
        for start, group in zip(starts, groups)
        if len(group)
    }


def apply_exclusions(
    scores: np.ndarray,
    users: np.ndarray,
    exclusions: Optional[Dict[int, np.ndarray]],
) -> np.ndarray:
    """Mask each user's already-rated items to ``-inf``, in place."""
    if exclusions:
        for row, user in enumerate(np.asarray(users)):
            rated = exclusions.get(int(user))
            if rated is not None and len(rated):
                scores[row, rated] = -np.inf
    return scores


def top_k_select(scores: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Exact deterministic top-K of each row of a (B, N) score matrix.

    Returns ``(items, top_scores)`` of shape (B, K): item ids ordered by
    descending score with ascending-id tie-breaking, padded with
    :data:`PAD_ITEM` / ``nan`` when a row has fewer than K eligible
    (non ``-inf``) candidates.

    The fast path partitions each row around its K-th largest value;
    rows are then repaired exactly at the tie boundary: every item
    strictly above the pivot is in, and pivot-valued items fill the
    remaining slots in ascending id order.
    """
    scores = np.asarray(scores, dtype=np.float64)
    n_rows, n_cols = scores.shape
    k = int(k)
    if k < 0:
        raise ValueError("k must be non-negative")
    k_eff = min(k, n_cols)
    items = np.full((n_rows, k), PAD_ITEM, dtype=np.int64)
    top_scores = np.full((n_rows, k), np.nan, dtype=np.float64)
    if k_eff == 0 or n_cols == 0:
        return items, top_scores
    if k_eff < n_cols:
        pivots = np.partition(scores, n_cols - k_eff, axis=1)[:, n_cols - k_eff]
    else:
        pivots = np.full(n_rows, -np.inf)
    for row in range(n_rows):
        row_scores = scores[row]
        pivot = pivots[row]
        if np.isneginf(pivot):
            # Fewer than K eligible candidates (or K >= N): take them all.
            candidates = np.flatnonzero(~np.isneginf(row_scores))
        else:
            above = np.flatnonzero(row_scores > pivot)
            need = k_eff - above.size
            at_pivot = np.flatnonzero(row_scores == pivot)[:need]
            candidates = np.concatenate((above, at_pivot))
        # lexsort's last key is primary: descending score, then item id.
        order = np.lexsort((candidates, -row_scores[candidates]))
        chosen = candidates[order][:k_eff]
        items[row, : chosen.size] = chosen
        top_scores[row, : chosen.size] = row_scores[chosen]
    return items, top_scores


def batched_top_k(
    user_factors: np.ndarray,
    user_bias: np.ndarray,
    item_factors: np.ndarray,
    item_bias: np.ndarray,
    global_mean: float,
    users: np.ndarray,
    k: int,
    *,
    exclusions: Optional[Dict[int, np.ndarray]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Score a user batch and select each user's top-K unseen items."""
    scores = score_batch(
        user_factors, user_bias, item_factors, item_bias, global_mean, users
    )
    apply_exclusions(scores, users, exclusions)
    return top_k_select(scores, k)
