"""Enclave-hosted serving layer: turn a trained node into an endpoint.

The paper trains a recommender inside SGX enclaves and stops at test
RMSE; this package builds the missing deployment half -- the query path
that actually *serves* top-N recommendations from a trained node, inside
the same software-enclave model the training protocol uses:

- :mod:`repro.serve.snapshot` -- immutable, versioned model snapshots
  published copy-on-write from a live model, with SHA-256 content
  digests and wire/EPC working-set accounting (trusted).
- :mod:`repro.serve.scoring` -- vectorized batched top-K kernels with
  per-user seen-item exclusion and deterministic tie-breaking (trusted).
- :mod:`repro.serve.cache` -- LRU top-N result cache and hot-embedding
  cache with snapshot-version invalidation, counted in obs (trusted).
- :mod:`repro.serve.endpoint` -- the enclave-resident serving engine and
  the standalone :class:`ServeEnclaveApp` trusted application (trusted).
- :mod:`repro.serve.server` -- the untrusted host driver: bounded
  admission queue, batching window, load shedding, simulated-latency
  accounting against the SGX cost model.
- :mod:`repro.serve.costing` -- the one shared batch-pricing helper the
  single endpoint and the fleet both charge against.
- :mod:`repro.serve.workload` -- seeded Zipf-popularity workload
  generator, the production :class:`TrafficModel` (diurnal + flash
  crowds + heavy-tailed users) and the open/closed-loop drivers.
- :mod:`repro.serve.report` -- throughput + latency percentiles + cache
  and EPC accounting as a ``repro.serve/v1`` JSON document.
- :mod:`repro.serve.runner` -- the one-call train -> publish -> serve
  pipeline behind ``repro serve`` (plays every role, like ``repro.sim``).
- :mod:`repro.serve.fleet` -- the sharded serving fleet: consistent-hash
  routing, user-partitioned shard enclaves, replicated failover and the
  ``repro.serve-fleet/v1`` report (behind ``repro serve --fleet``).

Trust split: snapshots hold plaintext model parameters and the exclusion
index is derived from the raw rating store, so everything that touches
them stays enclave-resident; the host sees only encoded payloads going
*in* through ecalls and recommendation lists (item ids + scores, the
system's sanctioned output) coming back.
"""

from repro.serve.report import ServeReport
from repro.serve.runner import run_serving_experiment, train_and_load
from repro.serve.server import RecServer, Request, ServeCostModel, ServePolicy
from repro.serve.workload import (
    TrafficModel,
    TrafficSpec,
    WorkloadGenerator,
    WorkloadSpec,
)

__all__ = [
    "RecServer",
    "Request",
    "ServeCostModel",
    "ServePolicy",
    "ServeReport",
    "TrafficModel",
    "TrafficSpec",
    "WorkloadGenerator",
    "WorkloadSpec",
    "run_serving_experiment",
    "train_and_load",
]
