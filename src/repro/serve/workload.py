"""Seeded query workloads: Zipf popularity, open- and closed-loop drive.

Recommendation traffic is head-heavy -- a few users generate most
queries -- which is exactly what makes the result cache earn its keep.
:class:`WorkloadGenerator` models that with a Zipf-over-rank popularity
law: a seeded permutation assigns each user a popularity rank, rank ``r``
gets weight ``1/(r+1)^s``, and every draw comes from a named
:func:`~repro._rng.child_rng` stream, so a (seed, spec) pair always
yields the *same* trace.  The SHA-256 trace digest pins that in reports.

Two drive modes:

- :func:`run_trace` -- **open loop**: a pre-generated ``(tick, user)``
  arrival trace is offered to the server on schedule, regardless of how
  the server keeps up.  This is the mode reports pin, because the
  offered load is identical across runs by construction.
- :func:`run_closed_loop` -- ``clients`` concurrent users each keep one
  request outstanding and think for a few ticks between requests; the
  offered load adapts to the server's speed, like a saturation
  benchmark.

Untrusted module: workloads are public traffic, not secrets.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro._rng import child_rng
from repro.serve.server import Completion, RecServer

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.sim.kernel import EventKernel

__all__ = [
    "WorkloadSpec",
    "WorkloadGenerator",
    "TrafficSpec",
    "TrafficModel",
    "run_trace",
    "run_closed_loop",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of one synthetic query workload."""

    seed: int = 7
    n_users: int = 100
    #: Open-loop trace length in ticks.
    ticks: int = 200
    #: Mean arrivals per tick (Poisson).
    rate: float = 4.0
    #: Zipf popularity exponent; 0 means uniform traffic.
    zipf_s: float = 1.1

    def to_dict(self) -> dict:
        return asdict(self)


class WorkloadGenerator:
    """Deterministic Zipf-popularity query source."""

    def __init__(self, spec: WorkloadSpec):
        self.spec = spec
        self._rng = child_rng(spec.seed, "serve", "workload")
        ranks = np.arange(spec.n_users, dtype=np.float64)
        weights = (ranks + 1.0) ** -float(spec.zipf_s)
        # A seeded permutation decides WHICH users are popular, so the
        # hot set is not just the lowest ids.
        perm = self._rng.permutation(spec.n_users)
        popularity = np.empty(spec.n_users, dtype=np.float64)
        popularity[perm] = weights
        self.popularity = popularity / popularity.sum()

    def users(self, count: int) -> np.ndarray:
        """Draw ``count`` user ids from the popularity law."""
        return self._rng.choice(
            self.spec.n_users, size=int(count), p=self.popularity
        ).astype(np.int64)

    def trace(self) -> np.ndarray:
        """Open-loop arrival trace: an (N, 2) array of (tick, user) rows."""
        counts = self._rng.poisson(self.spec.rate, size=self.spec.ticks)
        total = int(counts.sum())
        users = self.users(total)
        ticks = np.repeat(np.arange(self.spec.ticks, dtype=np.int64), counts)
        return np.column_stack([ticks, users])


@dataclass(frozen=True)
class TrafficSpec:
    """Shape of one *production* traffic model.

    Three effects stack on the plain Poisson/Zipf workload above, each
    one observed in real serving fleets:

    - **diurnal weighting** -- the arrival rate swings between a daytime
      peak (``peak_rate``) and a nighttime trough (``peak_rate /
      day_night_ratio``) on a raised-cosine over ``diurnal_period``
      ticks, so admission and shard capacity are exercised at peak while
      the trough proves the fleet does not shed idle traffic;
    - **flash crowds** -- ``flash_crowds`` seeded bursts multiply the
      instantaneous rate by ``flash_multiplier`` for ``flash_duration``
      ticks each (start ticks drawn from the spec's child stream), the
      events a bounded global queue exists for;
    - **heavy-tailed per-user rates** -- per-user request weights drawn
      from a Pareto(``pareto_alpha``) law, so a small cohort of power
      users dominates traffic (heavier than the Zipf head of
      :class:`WorkloadSpec` and uneven *across shards*, which is what
      makes consistent-hash balance worth testing).

    Everything derives from ``seed`` through fixed-order draws on one
    named child stream, so a ``(seed, spec)`` pair always yields the
    same trace and the same pinned digest.
    """

    seed: int = 7
    n_users: int = 400
    ticks: int = 400
    #: Daytime-peak mean arrivals per tick (Poisson).
    peak_rate: float = 8.0
    #: Ticks per simulated day (one full trough -> peak -> trough cycle).
    diurnal_period: int = 200
    #: Peak-to-trough rate ratio (1 disables the diurnal swing).
    day_night_ratio: float = 4.0
    flash_crowds: int = 1
    flash_multiplier: float = 6.0
    flash_duration: int = 12
    #: Pareto tail exponent of per-user request weights (smaller =
    #: heavier tail).
    pareto_alpha: float = 1.5

    def __post_init__(self) -> None:
        if self.day_night_ratio < 1.0:
            raise ValueError("day/night ratio must be >= 1 (peak over trough)")
        if self.diurnal_period < 2:
            raise ValueError("diurnal period must span at least two ticks")
        if self.flash_crowds < 0 or self.flash_duration < 1:
            raise ValueError("flash-crowd shape invalid")
        if self.flash_multiplier < 1.0:
            raise ValueError("a flash crowd cannot reduce traffic")
        if self.pareto_alpha <= 0:
            raise ValueError("pareto alpha must be positive")

    def to_dict(self) -> dict:
        return asdict(self)


class TrafficModel:
    """Deterministic diurnal + flash-crowd + heavy-tail query source."""

    def __init__(self, spec: TrafficSpec):
        self.spec = spec
        self._rng = child_rng(spec.seed, "serve", "traffic")
        # Draw order is part of the contract: user weights, then flash
        # starts, then (in trace()) per-tick counts, then user ids.
        weights = self._rng.pareto(spec.pareto_alpha, spec.n_users) + 1.0
        self.user_weights = weights / weights.sum()
        if spec.flash_crowds > 0:
            horizon = max(1, spec.ticks - spec.flash_duration)
            starts = self._rng.integers(0, horizon, size=spec.flash_crowds)
            self.flash_starts = np.sort(starts.astype(np.int64))
        else:
            self.flash_starts = np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------ #
    def rates(self) -> np.ndarray:
        """Per-tick mean arrival rates (diurnal swing x flash bursts)."""
        spec = self.spec
        ticks = np.arange(spec.ticks, dtype=np.float64)
        trough = 1.0 / spec.day_night_ratio
        # Raised cosine from trough (tick 0, "midnight") up to the peak
        # at half a period and back; mean sits halfway between the two.
        diurnal = trough + (1.0 - trough) * 0.5 * (
            1.0 - np.cos(2.0 * np.pi * ticks / spec.diurnal_period)
        )
        rates = spec.peak_rate * diurnal
        for start in self.flash_starts:
            stop = min(spec.ticks, int(start) + spec.flash_duration)
            rates[int(start) : stop] *= spec.flash_multiplier
        return rates

    def peak_tick(self) -> int:
        """The tick with the highest mean rate (for mid-peak fault plans)."""
        return int(np.argmax(self.rates()))

    def users(self, count: int) -> np.ndarray:
        """Draw ``count`` user ids from the heavy-tailed weight law."""
        return self._rng.choice(
            self.spec.n_users, size=int(count), p=self.user_weights
        ).astype(np.int64)

    def trace(self) -> np.ndarray:
        """Open-loop arrival trace: an (N, 2) array of (tick, user) rows."""
        counts = self._rng.poisson(self.rates())
        total = int(counts.sum())
        users = self.users(total)
        ticks = np.repeat(np.arange(self.spec.ticks, dtype=np.int64), counts)
        return np.column_stack([ticks, users])


def trace_digest(trace: np.ndarray) -> str:
    """SHA-256 over the canonical trace encoding (pins determinism)."""
    h = hashlib.sha256()
    h.update(b"repro.serve.trace/v1")
    h.update(np.ascontiguousarray(trace, dtype="<i8").tobytes())
    return h.hexdigest()


def run_trace(
    server: RecServer,
    trace: np.ndarray,
    *,
    kernel: Optional["EventKernel"] = None,
) -> List[Completion]:
    """Offer an open-loop trace on schedule, then drain the queue.

    With ``kernel``, the same schedule registers as ``serve.tick``
    events on the shared event kernel -- one event per server tick,
    arrivals applied at the top of the tick exactly as in the polling
    loop -- so serving composes with the other kernel-driven subsystems.
    Without it, the original polling loop runs.  The two paths are
    completion-for-completion identical.
    """
    completions: List[Completion] = []
    arrivals = np.asarray(trace, dtype=np.int64)
    last_tick = int(arrivals[-1, 0]) if len(arrivals) else -1
    state = {"pos": 0}

    def one_tick() -> bool:
        """One polling-loop iteration; ``False`` past the horizon."""
        if server.tick > last_tick:
            return False
        pos = state["pos"]
        while pos < len(arrivals) and int(arrivals[pos, 0]) == server.tick:
            server.offer(int(arrivals[pos, 1]))
            pos += 1
        state["pos"] = pos
        completions.extend(server.step())
        return True

    if kernel is None:
        while one_tick():
            pass
    else:

        def tick_event() -> None:
            if one_tick():
                kernel.after(1.0, tick_event, kind="serve.tick", key=(server.tick,))

        kernel.at(kernel.now, tick_event, kind="serve.tick", key=(server.tick,))
        kernel.run()
    completions.extend(server.drain())
    return completions


def run_closed_loop(
    server: RecServer,
    generator: WorkloadGenerator,
    *,
    clients: int,
    requests: int,
    think_ticks: int = 1,
    max_ticks: int = 1_000_000,
) -> List[Completion]:
    """``clients`` one-outstanding-request users issue ``requests`` total.

    A client is freed when its request completes *or* is shed, then
    thinks ``think_ticks`` before issuing its next query.  The user
    stream is drawn once up front, so the set of queried users is
    deterministic even though the issue schedule adapts to server speed.
    """
    if clients < 1:
        raise ValueError("need at least one client")
    users = generator.users(requests)
    next_free: List[int] = [0] * clients  # tick at which a client may issue
    outstanding: dict = {}  # request_id -> client
    completions: List[Completion] = []
    issued = 0
    finished = 0
    while finished < requests:
        if server.tick > max_ticks:
            raise RuntimeError("closed-loop drive failed to finish")
        for client in range(clients):
            if next_free[client] < 0 or next_free[client] > server.tick:
                continue
            if issued >= requests:
                continue
            request_id = server.offer(int(users[issued]))
            issued += 1
            if request_id < 0:
                finished += 1  # rejected outright; client retries later
                next_free[client] = server.tick + think_ticks
            else:
                outstanding[request_id] = client
                next_free[client] = -1  # blocked until completion/shed
        for completion in server.step():
            completions.append(completion)
            finished += 1
            client = outstanding.pop(completion.request_id, None)
            if client is not None:
                next_free[client] = server.tick + think_ticks
        for request_id in server.take_shed():
            finished += 1
            client = outstanding.pop(request_id, None)
            if client is not None:
                next_free[client] = server.tick + think_ticks
    return completions
