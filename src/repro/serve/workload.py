"""Seeded query workloads: Zipf popularity, open- and closed-loop drive.

Recommendation traffic is head-heavy -- a few users generate most
queries -- which is exactly what makes the result cache earn its keep.
:class:`WorkloadGenerator` models that with a Zipf-over-rank popularity
law: a seeded permutation assigns each user a popularity rank, rank ``r``
gets weight ``1/(r+1)^s``, and every draw comes from a named
:func:`~repro._rng.child_rng` stream, so a (seed, spec) pair always
yields the *same* trace.  The SHA-256 trace digest pins that in reports.

Two drive modes:

- :func:`run_trace` -- **open loop**: a pre-generated ``(tick, user)``
  arrival trace is offered to the server on schedule, regardless of how
  the server keeps up.  This is the mode reports pin, because the
  offered load is identical across runs by construction.
- :func:`run_closed_loop` -- ``clients`` concurrent users each keep one
  request outstanding and think for a few ticks between requests; the
  offered load adapts to the server's speed, like a saturation
  benchmark.

Untrusted module: workloads are public traffic, not secrets.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro._rng import child_rng
from repro.serve.server import Completion, RecServer

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.sim.kernel import EventKernel

__all__ = ["WorkloadSpec", "WorkloadGenerator", "run_trace", "run_closed_loop"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of one synthetic query workload."""

    seed: int = 7
    n_users: int = 100
    #: Open-loop trace length in ticks.
    ticks: int = 200
    #: Mean arrivals per tick (Poisson).
    rate: float = 4.0
    #: Zipf popularity exponent; 0 means uniform traffic.
    zipf_s: float = 1.1

    def to_dict(self) -> dict:
        return asdict(self)


class WorkloadGenerator:
    """Deterministic Zipf-popularity query source."""

    def __init__(self, spec: WorkloadSpec):
        self.spec = spec
        self._rng = child_rng(spec.seed, "serve", "workload")
        ranks = np.arange(spec.n_users, dtype=np.float64)
        weights = (ranks + 1.0) ** -float(spec.zipf_s)
        # A seeded permutation decides WHICH users are popular, so the
        # hot set is not just the lowest ids.
        perm = self._rng.permutation(spec.n_users)
        popularity = np.empty(spec.n_users, dtype=np.float64)
        popularity[perm] = weights
        self.popularity = popularity / popularity.sum()

    def users(self, count: int) -> np.ndarray:
        """Draw ``count`` user ids from the popularity law."""
        return self._rng.choice(
            self.spec.n_users, size=int(count), p=self.popularity
        ).astype(np.int64)

    def trace(self) -> np.ndarray:
        """Open-loop arrival trace: an (N, 2) array of (tick, user) rows."""
        counts = self._rng.poisson(self.spec.rate, size=self.spec.ticks)
        total = int(counts.sum())
        users = self.users(total)
        ticks = np.repeat(np.arange(self.spec.ticks, dtype=np.int64), counts)
        return np.column_stack([ticks, users])


def trace_digest(trace: np.ndarray) -> str:
    """SHA-256 over the canonical trace encoding (pins determinism)."""
    h = hashlib.sha256()
    h.update(b"repro.serve.trace/v1")
    h.update(np.ascontiguousarray(trace, dtype="<i8").tobytes())
    return h.hexdigest()


def run_trace(
    server: RecServer,
    trace: np.ndarray,
    *,
    kernel: Optional["EventKernel"] = None,
) -> List[Completion]:
    """Offer an open-loop trace on schedule, then drain the queue.

    With ``kernel``, the same schedule registers as ``serve.tick``
    events on the shared event kernel -- one event per server tick,
    arrivals applied at the top of the tick exactly as in the polling
    loop -- so serving composes with the other kernel-driven subsystems.
    Without it, the original polling loop runs.  The two paths are
    completion-for-completion identical.
    """
    completions: List[Completion] = []
    arrivals = np.asarray(trace, dtype=np.int64)
    last_tick = int(arrivals[-1, 0]) if len(arrivals) else -1
    state = {"pos": 0}

    def one_tick() -> bool:
        """One polling-loop iteration; ``False`` past the horizon."""
        if server.tick > last_tick:
            return False
        pos = state["pos"]
        while pos < len(arrivals) and int(arrivals[pos, 0]) == server.tick:
            server.offer(int(arrivals[pos, 1]))
            pos += 1
        state["pos"] = pos
        completions.extend(server.step())
        return True

    if kernel is None:
        while one_tick():
            pass
    else:

        def tick_event() -> None:
            if one_tick():
                kernel.after(1.0, tick_event, kind="serve.tick", key=(server.tick,))

        kernel.at(kernel.now, tick_event, kind="serve.tick", key=(server.tick,))
        kernel.run()
    completions.extend(server.drain())
    return completions


def run_closed_loop(
    server: RecServer,
    generator: WorkloadGenerator,
    *,
    clients: int,
    requests: int,
    think_ticks: int = 1,
    max_ticks: int = 1_000_000,
) -> List[Completion]:
    """``clients`` one-outstanding-request users issue ``requests`` total.

    A client is freed when its request completes *or* is shed, then
    thinks ``think_ticks`` before issuing its next query.  The user
    stream is drawn once up front, so the set of queried users is
    deterministic even though the issue schedule adapts to server speed.
    """
    if clients < 1:
        raise ValueError("need at least one client")
    users = generator.users(requests)
    next_free: List[int] = [0] * clients  # tick at which a client may issue
    outstanding: dict = {}  # request_id -> client
    completions: List[Completion] = []
    issued = 0
    finished = 0
    while finished < requests:
        if server.tick > max_ticks:
            raise RuntimeError("closed-loop drive failed to finish")
        for client in range(clients):
            if next_free[client] < 0 or next_free[client] > server.tick:
                continue
            if issued >= requests:
                continue
            request_id = server.offer(int(users[issued]))
            issued += 1
            if request_id < 0:
                finished += 1  # rejected outright; client retries later
                next_free[client] = server.tick + think_ticks
            else:
                outstanding[request_id] = client
                next_free[client] = -1  # blocked until completion/shed
        for completion in server.step():
            completions.append(completion)
            finished += 1
            client = outstanding.pop(completion.request_id, None)
            if client is not None:
                next_free[client] = server.tick + think_ticks
        for request_id in server.take_shed():
            finished += 1
            client = outstanding.pop(request_id, None)
            if client is not None:
                next_free[client] = server.tick + think_ticks
    return completions
