"""Immutable, versioned model snapshots for serving.

Training mutates the model every epoch; serving must not observe a
half-merged state.  A :class:`ModelSnapshot` is published copy-on-write
from a live :class:`~repro.ml.mf.MatrixFactorization` (or raw fleet
arrays): all parameter arrays are copied once at publication and frozen,
so the trainer can keep stepping while queries score against a stable
version.  Each snapshot carries

- a monotonically increasing **version** (cache invalidation key),
- a **SHA-256 content digest** over the canonical little-endian encoding
  of the parameters (two publications of identical parameters digest
  identically, regardless of version or node),
- **wire-size** accounting (what shipping the snapshot to a serving
  enclave costs, seen-rows-only like the training wire), and
- **resident-size** accounting (the EPC working set serving adds, which
  is what pushes large models into the paging regime of the paper's
  Fig. 7 once user traffic touches the whole item-factor matrix).

This module is enclave-resident (trusted): a snapshot holds plaintext
model parameters.  Only :class:`SnapshotMeta` -- sanitized scalars --
may cross the boundary to the host.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import asdict, dataclass

import numpy as np

from repro.ml.mf import MatrixFactorization, MfState
from repro.net.serialization import (
    CodecError,
    decode_mf_state,
    encode_mf_state_into,
    measure_mf_state,
)

__all__ = [
    "ModelSnapshot",
    "SnapshotMeta",
    "publish_snapshot",
    "snapshot_from_arrays",
    "encode_snapshot",
    "decode_snapshot",
]

#: Serve-snapshot wire magic + fixed header (version, node, epoch words).
_SNAPSHOT_MAGIC = b"RXS1"
_SNAPSHOT_HEADER = struct.Struct("<III")


@dataclass(frozen=True)
class SnapshotMeta:
    """Boundary-safe description of a snapshot (no parameters)."""

    version: int
    node_id: int
    epoch: int
    digest: str
    k: int
    n_users: int
    n_items: int
    seen_users: int
    seen_items: int
    wire_bytes: int
    resident_bytes: int

    def to_dict(self) -> dict:
        return asdict(self)


class ModelSnapshot:
    """A frozen, versioned copy of one node's model parameters."""

    __slots__ = (
        "version",
        "node_id",
        "epoch",
        "global_mean",
        "user_factors",
        "item_factors",
        "user_bias",
        "item_bias",
        "user_seen",
        "item_seen",
        "digest",
    )

    def __init__(
        self,
        version: int,
        node_id: int,
        epoch: int,
        global_mean: float,
        user_factors: np.ndarray,
        item_factors: np.ndarray,
        user_bias: np.ndarray,
        item_bias: np.ndarray,
        user_seen: np.ndarray,
        item_seen: np.ndarray,
    ):
        self.version = int(version)
        self.node_id = int(node_id)
        self.epoch = int(epoch)
        # Canonical form: only what the wire preserves is content.  The
        # MF wire ships seen rows and a float32 mean, so unseen rows are
        # zeroed and the mean is rounded here -- a snapshot therefore has
        # the same digest before and after an encode/decode hop.
        self.global_mean = float(np.float32(global_mean))
        # Copy-on-publish: the trainer keeps mutating its live arrays;
        # the snapshot owns frozen copies.
        self.user_factors = np.array(user_factors, copy=True)
        self.item_factors = np.array(item_factors, copy=True)
        self.user_bias = np.array(user_bias, copy=True)
        self.item_bias = np.array(item_bias, copy=True)
        self.user_seen = np.array(user_seen, dtype=bool, copy=True)
        self.item_seen = np.array(item_seen, dtype=bool, copy=True)
        self.user_factors[~self.user_seen] = 0
        self.user_bias[~self.user_seen] = 0
        self.item_factors[~self.item_seen] = 0
        self.item_bias[~self.item_seen] = 0
        for name in (
            "user_factors",
            "item_factors",
            "user_bias",
            "item_bias",
            "user_seen",
            "item_seen",
        ):
            getattr(self, name).setflags(write=False)
        self.digest = self._content_digest()

    # ------------------------------------------------------------------ #
    # Identity and accounting
    # ------------------------------------------------------------------ #
    def _content_digest(self) -> str:
        """SHA-256 over the canonical little-endian parameter encoding.

        Versions and node ids are deliberately excluded: the digest
        identifies *what model* is being served, so two publications of
        the same parameters -- or the same snapshot reloaded in a
        different serving enclave -- digest identically.
        """
        h = hashlib.sha256()
        h.update(b"repro.serve.snapshot/v1")
        h.update(
            struct.pack(
                "<IIId",
                self.user_factors.shape[0],
                self.item_factors.shape[0],
                self.k,
                self.global_mean,
            )
        )
        for arr, dtype in (
            (self.user_factors, "<f8"),
            (self.item_factors, "<f8"),
            (self.user_bias, "<f8"),
            (self.item_bias, "<f8"),
            (self.user_seen, "u1"),
            (self.item_seen, "u1"),
        ):
            h.update(np.ascontiguousarray(arr, dtype=dtype).tobytes())
        return h.hexdigest()

    @property
    def k(self) -> int:
        return int(self.user_factors.shape[1])

    @property
    def n_users(self) -> int:
        return int(self.user_factors.shape[0])

    @property
    def n_items(self) -> int:
        return int(self.item_factors.shape[0])

    @property
    def resident_bytes(self) -> int:
        """In-enclave footprint of the serving parameters and masks."""
        return (
            self.user_factors.nbytes
            + self.item_factors.nbytes
            + self.user_bias.nbytes
            + self.item_bias.nbytes
            + self.user_seen.nbytes
            + self.item_seen.nbytes
        )

    @property
    def wire_bytes(self) -> int:
        """Cost of shipping this snapshot (seen rows only, like training)."""
        float_bytes = 8 if self._wire_dtype() == "<f8" else 4
        return (
            len(_SNAPSHOT_MAGIC)
            + _SNAPSHOT_HEADER.size
            + measure_mf_state(
                int(self.user_seen.sum()),
                int(self.item_seen.sum()),
                self.k,
                float_bytes=float_bytes,
            )
        )

    def _wire_dtype(self) -> str:
        return "<f8" if self.user_factors.dtype == np.float64 else "<f4"

    def _as_state(self) -> MfState:
        return MfState(
            np.asarray(self.user_factors),
            np.asarray(self.item_factors),
            np.asarray(self.user_bias),
            np.asarray(self.item_bias),
            np.asarray(self.user_seen),
            np.asarray(self.item_seen),
            self.global_mean,
        )

    def meta(self) -> SnapshotMeta:
        return SnapshotMeta(
            version=self.version,
            node_id=self.node_id,
            epoch=self.epoch,
            digest=self.digest,
            k=self.k,
            n_users=self.n_users,
            n_items=self.n_items,
            seen_users=int(self.user_seen.sum()),
            seen_items=int(self.item_seen.sum()),
            wire_bytes=self.wire_bytes,
            resident_bytes=self.resident_bytes,
        )


def publish_snapshot(
    model: MatrixFactorization, *, version: int, node_id: int = 0, epoch: int = 0
) -> ModelSnapshot:
    """Publish an immutable snapshot of a live model (copy-on-publish)."""
    return ModelSnapshot(
        version,
        node_id,
        epoch,
        model.global_mean,
        model.user_factors,
        model.item_factors,
        model.user_bias,
        model.item_bias,
        model.user_seen,
        model.item_seen,
    )


def snapshot_from_arrays(
    user_factors: np.ndarray,
    item_factors: np.ndarray,
    user_bias: np.ndarray,
    item_bias: np.ndarray,
    user_seen: np.ndarray,
    item_seen: np.ndarray,
    global_mean: float,
    *,
    version: int,
    node_id: int = 0,
    epoch: int = 0,
) -> ModelSnapshot:
    """Publish a snapshot from raw parameter arrays (fleet-sim hand-off)."""
    return ModelSnapshot(
        version,
        node_id,
        epoch,
        global_mean,
        user_factors,
        item_factors,
        user_bias,
        item_bias,
        user_seen,
        item_seen,
    )


# --------------------------------------------------------------------- #
# Wire codec (hand-off into a serving enclave)
# --------------------------------------------------------------------- #
def encode_snapshot(snapshot: ModelSnapshot) -> bytes:
    """Serve header (version, node, epoch) + the training MF-state wire.

    Assembled in one preallocated buffer: the serve header is packed in
    place and the MF state serialized directly after it via
    :func:`~repro.net.serialization.encode_mf_state_into`, so the (large)
    row blocks of the publish path are written exactly once.
    """
    buf = bytearray(snapshot.wire_bytes)
    view = memoryview(buf)
    view[: len(_SNAPSHOT_MAGIC)] = _SNAPSHOT_MAGIC
    _SNAPSHOT_HEADER.pack_into(
        buf, len(_SNAPSHOT_MAGIC), snapshot.version, snapshot.node_id, snapshot.epoch
    )
    end = encode_mf_state_into(
        snapshot._as_state(),
        buf,
        len(_SNAPSHOT_MAGIC) + _SNAPSHOT_HEADER.size,
        wire_dtype=snapshot._wire_dtype(),
    )
    assert end == len(buf)
    return bytes(buf)


def decode_snapshot(payload: bytes) -> ModelSnapshot:
    if payload[: len(_SNAPSHOT_MAGIC)] != _SNAPSHOT_MAGIC:
        raise CodecError("not a serve-snapshot payload")
    offset = len(_SNAPSHOT_MAGIC)
    version, node_id, epoch = _SNAPSHOT_HEADER.unpack_from(payload, offset)
    # Zero-copy handoff: the MF decoder reads ids and rows as views of
    # the snapshot wire buffer instead of a sliced copy of its body.
    state = decode_mf_state(memoryview(payload)[offset + _SNAPSHOT_HEADER.size :])
    return ModelSnapshot(
        version,
        node_id,
        epoch,
        state.global_mean,
        state.user_factors,
        state.item_factors,
        state.user_bias,
        state.item_bias,
        state.user_seen,
        state.item_seen,
    )
