"""The REX trusted application -- the code that runs inside the enclave.

This is the paper's Algorithm 2.  Two entry points exist:

- :meth:`RexEnclaveApp.ecall_init` copies the node's local dataset shard
  into protected memory, initializes the model and data store, kicks off
  mutual attestation with every neighbor (secure build) and runs epoch 0
  -- the first training on the initial local data.
- :meth:`RexEnclaveApp.ecall_input` receives one network message from the
  untrusted host: a clear-text attestation quote, or a sealed protocol
  payload that is decrypted, buffered, and -- once a message (possibly
  empty) has arrived from *all* neighbors -- triggers the next
  merge / train / share / test round.

Everything the host sees leave the enclave is either an attestation quote
or AEAD ciphertext; raw triplets and model parameters exist in plaintext
only inside this class (and the peers' equally attested instances).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro._rng import child_rng, stream_seed
from repro.core.channel import AccountedChannel, PlaintextChannel, SecureChannel
from repro.core.config import CryptoMode, Dissemination, ModelKind, RexConfig, SharingScheme
from repro.core.messages import (
    CONTENT_DNN_MODEL,
    CONTENT_EMPTY,
    CONTENT_MF_MODEL,
    CONTENT_TRIPLETS,
    KIND_PAYLOAD,
    KIND_QUOTE,
    PayloadHeader,
    pack_payload,
    unpack_payload,
)
from repro.core.stats import EpochStats
from repro.core.store import DataStore
from repro.ml.dnn.model import DnnRecommender
from repro.ml.mf import MatrixFactorization
from repro.net.serialization import (
    decode_dnn_state,
    decode_mf_state,
    decode_triplets,
    encode_dnn_state,
    encode_mf_state,
    encode_triplets,
)
from repro.tee.attestation import MutualAttestation, Quote
from repro.tee.enclave import TrustedApp, ecall
from repro.tee.errors import ChannelNotEstablished

__all__ = ["RexEnclaveApp"]


class RexEnclaveApp(TrustedApp):
    """Enclave-resident REX node (Algorithm 2)."""

    # ------------------------------------------------------------------ #
    # Entry point: initialization (Algorithm 2 lines 1-4)
    # ------------------------------------------------------------------ #
    @ecall
    def ecall_init(self, args: dict) -> None:
        """Copy the local shard into protected memory and bootstrap.

        ``args`` carries only serializable values across the boundary:
        the node/neighbor ids, the :class:`RexConfig`, the train/test
        shards as encoded triplet payloads, the id-space sizes, the
        global rating mean and the ``secure`` build flag.
        """
        self.node_id: int = int(args["node_id"])
        self.neighbors: Tuple[int, ...] = tuple(int(n) for n in args["neighbors"])
        self.degree = len(self.neighbors)
        self.config: RexConfig = args["config"]
        self.secure: bool = bool(args["secure"])
        n_users = int(args["n_users"])
        n_items = int(args["n_items"])

        train = decode_triplets(args["train"])
        self.test_data = decode_triplets(args["test"])
        self.local_rng = child_rng(self.config.seed, "node", self.node_id)

        self.store = DataStore(n_users, n_items, capacity=max(1024, len(train)))
        self.store.append_unique(train)

        if self.config.model is ModelKind.MF:
            self.model = MatrixFactorization(
                n_users,
                n_items,
                self.config.mf,
                seed=self.config.seed,  # identical initial code AND weights
                global_mean=float(args.get("global_mean", 3.5)),
            )
        else:
            self.model = DnnRecommender(n_users, n_items, self.config.dnn, seed=self.config.seed)
        self.model.mark_seen(train)

        self.attestor = MutualAttestation(
            f"rex-{self.node_id}",
            self.ctx.measurement,
            self.ctx.attestation_service(),
            key_seed=stream_seed(self.config.seed, "dh", self.node_id).to_bytes(8, "little"),
        )
        self.channels: Dict[int, object] = {}
        self.epoch = 0
        self._epoch_zero_done = False
        self._inbox: Dict[int, Dict[int, Tuple[PayloadHeader, bytes]]] = {}
        self._current_stats: Optional[EpochStats] = None
        self._counter_mark = None

        self._account_memory(staging=0)

        if self.secure:
            quote_bytes = self._make_quote().to_bytes()
            for neighbor in self.neighbors:
                self.ctx.ocall("send_message", neighbor, KIND_QUOTE, quote_bytes)
        else:
            for neighbor in self.neighbors:
                self.channels[neighbor] = self._bind_channel(
                    PlaintextChannel(self.node_id, neighbor)
                )
            self._maybe_start()
        if not self.neighbors:
            self._maybe_start()

    # ------------------------------------------------------------------ #
    # Entry point: message reception (Algorithm 2 lines 5-11)
    # ------------------------------------------------------------------ #
    @ecall
    def ecall_input(self, src: int, kind: str, blob: bytes) -> None:
        """Dispatch one message: attestation or sealed protocol payload."""
        src = int(src)
        if kind == KIND_QUOTE:
            self._handle_quote(src, blob)
        elif kind == KIND_PAYLOAD:
            self._handle_payload(src, blob)
        else:
            raise ValueError(f"unknown message kind {kind!r}")

    @ecall
    def ecall_status(self) -> dict:
        """Introspection for the host/tests (no secrets leave)."""
        return {
            "node_id": self.node_id,
            "epoch": self.epoch,
            "attested_peers": len(self.channels),
            "store_items": len(self.store),
            "test_rmse": self.model.evaluate_rmse(self.test_data),
        }

    # ------------------------------------------------------------------ #
    # Attestation (Section III-A)
    # ------------------------------------------------------------------ #
    def _make_quote(self) -> Quote:
        report = self.ctx.create_report(self.attestor.user_data())
        return self.ctx.ocall("get_quote", report)

    def _handle_quote(self, src: int, blob: bytes) -> None:
        if not self.secure:
            raise ChannelNotEstablished("native build received an attestation quote")
        if src in self.channels:
            return  # duplicate quote; channel already established
        quote = Quote.from_bytes(bytes(blob))
        key = self.attestor.process_peer_quote(f"rex-{src}", quote)
        if self.config.crypto_mode is CryptoMode.REAL:
            channel = SecureChannel(key, self.node_id, src)
        else:
            channel = AccountedChannel(key, self.node_id, src)
        self.channels[src] = self._bind_channel(channel)
        self._maybe_start()

    def _bind_channel(self, channel):
        """Attach the run's registry so channel bytes land in obs."""
        metrics = self.ctx.metrics
        if metrics is not None:
            channel.bind_metrics(metrics, node=self.node_id)
        return channel

    def _maybe_start(self) -> None:
        """Run epoch 0 once every neighbor channel exists."""
        if self._epoch_zero_done:
            return
        if len(self.channels) == len(self.neighbors):
            self._epoch_zero_done = True
            self._run_round(received=None)

    # ------------------------------------------------------------------ #
    # Protocol payloads (Algorithm 2 lines 12-21)
    # ------------------------------------------------------------------ #
    def _handle_payload(self, src: int, blob: bytes) -> None:
        channel = self.channels.get(src)
        if channel is None:
            raise ChannelNotEstablished(f"payload from unattested peer {src}")
        plaintext = channel.open(bytes(blob))
        header, content = unpack_payload(plaintext)
        self._inbox.setdefault(header.epoch, {})[src] = (header, content)
        self._try_advance()

    def _try_advance(self) -> None:
        """ready_to_train check: one message from every neighbor."""
        if not self._epoch_zero_done:
            return
        while True:
            waiting_on = self._inbox.get(self.epoch - 1, {})
            if len(waiting_on) < len(self.neighbors):
                return
            received = self._inbox.pop(self.epoch - 1)
            self._run_round(received)

    def _run_round(self, received: Optional[Dict[int, Tuple[PayloadHeader, bytes]]]) -> None:
        """One merge / train / share / test round."""
        stats = EpochStats(node_id=self.node_id, epoch=self.epoch)
        staging_peak = 0

        # -- merge (lines 15-16) ---------------------------------------- #
        if received:
            if self.config.scheme is SharingScheme.DATA:
                staging_peak = self._merge_data(received, stats)
            else:
                staging_peak = self._merge_models(received, stats)

        # -- train (line 17) --------------------------------------------- #
        stats.train_samples = self.model.train_epoch(self.store.as_dataset(), self.local_rng)

        # -- share (lines 18-20) ------------------------------------------ #
        self._share(stats)

        # -- test (line 21) ----------------------------------------------- #
        stats.test_rmse = self.model.evaluate_rmse(self.test_data)
        stats.test_samples = len(self.test_data)

        stats.store_items = len(self.store)
        stats.store_bytes = self.store.nbytes
        stats.model_bytes = self.model.resident_bytes
        stats.staging_bytes = staging_peak
        self._account_memory(staging=staging_peak)

        self.epoch += 1
        self.ctx.ocall("report_stats", stats)

    # ------------------------------------------------------------------ #
    # Merge implementations (Section III-C)
    # ------------------------------------------------------------------ #
    def _merge_data(self, received: Dict[int, Tuple[PayloadHeader, bytes]], stats: EpochStats) -> int:
        staging = 0
        for _src, (header, content) in sorted(received.items()):
            if header.content == CONTENT_EMPTY:
                continue
            if header.content != CONTENT_TRIPLETS:
                raise ValueError("data-sharing run received a model payload")
            alien = decode_triplets(content)
            staging = max(staging, alien.nbytes + len(content))
            stats.dedup_checked_items += len(alien)
            if self.config.dedup:
                added = self.store.append_unique(alien)
            else:
                added = self.store.append(alien)
            stats.appended_items += added
            if added:
                self.model.mark_seen(alien)
        return staging

    def _merge_models(
        self, received: Dict[int, Tuple[PayloadHeader, bytes]], stats: EpochStats
    ) -> int:
        expected = (
            CONTENT_MF_MODEL if self.config.model is ModelKind.MF else CONTENT_DNN_MODEL
        )
        decode = decode_mf_state if self.config.model is ModelKind.MF else decode_dnn_state
        incoming = []
        staging = 0
        for src, (header, content) in sorted(received.items()):
            if header.content == CONTENT_EMPTY:
                continue
            if header.content != expected:
                raise ValueError("model-sharing run received a mismatched payload")
            state = decode(content)
            staging += len(content) + _state_nbytes(state)
            incoming.append((src, header, state))

        if not incoming:
            return staging
        if self.config.dissemination is Dissemination.RMW:
            for _src, _header, state in incoming:
                self.model.merge_average(state)
                stats.merged_models += 1
                stats.merged_rows += _state_rows(state)
        else:
            contributions = []
            weight_total = 0.0
            for _src, header, state in incoming:
                w = 1.0 / (1.0 + max(self.degree, header.degree))
                contributions.append((state, w))
                weight_total += w
                stats.merged_models += 1
                stats.merged_rows += _state_rows(state)
            self.model.merge_weighted(contributions, self_weight=1.0 - weight_total)
        return staging

    # ------------------------------------------------------------------ #
    # Share (Section III-C / III-E)
    # ------------------------------------------------------------------ #
    def _share(self, stats: EpochStats) -> None:
        if not self.neighbors:
            return
        if self.config.scheme is SharingScheme.DATA:
            sample = self.store.sample(self.config.share_points, self.local_rng)
            content = encode_triplets(sample)
            content_kind = CONTENT_TRIPLETS
            stats.share_sampled_items = len(sample)
        else:
            state = self.model.state()
            if self.config.model is ModelKind.MF:
                wire_dtype = "<f8" if self.config.mf.np_dtype == np.float64 else "<f4"
                content = encode_mf_state(state, wire_dtype=wire_dtype)
            else:
                content = encode_dnn_state(state)
            content_kind = CONTENT_MF_MODEL if self.config.model is ModelKind.MF else CONTENT_DNN_MODEL
        stats.serialized_bytes += len(content)

        if self.config.dissemination is Dissemination.RMW:
            chosen = int(self.neighbors[self.local_rng.integers(0, len(self.neighbors))])
        else:
            chosen = None  # broadcast

        header_full = PayloadHeader(self.node_id, self.epoch, self.degree, content_kind)
        header_empty = PayloadHeader(self.node_id, self.epoch, self.degree, CONTENT_EMPTY)
        # Both payload variants are loop-invariant: a DPSGD broadcast packs
        # the (potentially large) full payload once, not once per neighbor.
        packed_full = pack_payload(header_full, content)
        packed_empty = pack_payload(header_empty, b"")  # RMW barrier: header only
        for neighbor in self.neighbors:
            if chosen is None or neighbor == chosen:
                plaintext = packed_full
                stats.shared_messages += 1
            else:
                plaintext = packed_empty
                stats.shared_empty_messages += 1
            channel = self.channels[neighbor]
            sealed_before = channel.sealed_bytes
            wire = channel.seal(plaintext)
            # The channel layer is the accounting source of record for
            # wire bytes; read its counter instead of re-measuring.
            stats.shared_payload_bytes += channel.sealed_bytes - sealed_before
            self.ctx.ocall("send_message", neighbor, KIND_PAYLOAD, wire)

    # ------------------------------------------------------------------ #
    # Memory accounting
    # ------------------------------------------------------------------ #
    def _account_memory(self, *, staging: int) -> None:
        self.ctx.memory.set("store", self.store.nbytes)
        self.ctx.memory.set("model", self.model.resident_bytes)
        self.ctx.memory.set("test", self.test_data.nbytes)
        if staging:
            self.ctx.memory.set("staging", staging)
            self.ctx.memory.free("staging")


def _state_nbytes(state) -> int:
    total = 0
    for value in state.__dict__.values():
        nbytes = getattr(value, "nbytes", None)
        if nbytes is not None:
            total += int(nbytes)
    return total


def _state_rows(state) -> int:
    return int(state.user_seen.sum()) + int(state.item_seen.sum())
