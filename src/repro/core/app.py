"""The REX trusted application -- the code that runs inside the enclave.

This is the paper's Algorithm 2.  Two entry points exist:

- :meth:`RexEnclaveApp.ecall_init` copies the node's local dataset shard
  into protected memory, initializes the model and data store, kicks off
  mutual attestation with every neighbor (secure build) and runs epoch 0
  -- the first training on the initial local data.
- :meth:`RexEnclaveApp.ecall_input` receives one network message from the
  untrusted host: a clear-text attestation quote, or a sealed protocol
  payload that is decrypted, buffered, and -- once a message (possibly
  empty) has arrived from *all* neighbors -- triggers the next
  merge / train / share / test round.

Everything the host sees leave the enclave is either an attestation quote
or AEAD ciphertext; raw triplets and model parameters exist in plaintext
only inside this class (and the peers' equally attested instances).
"""

from __future__ import annotations

import struct
from typing import Dict, Optional, Tuple

import numpy as np

from repro._rng import child_rng, stream_seed
from repro.core.admission import ShareAdmission
from repro.core.channel import (
    AccountedChannel,
    PlaintextChannel,
    ReplayError,
    SecureChannel,
    seal_all,
)
from repro.core.config import CryptoMode, Dissemination, ModelKind, RexConfig, SharingScheme
from repro.core.messages import (
    CONTENT_DNN_MODEL,
    CONTENT_EMPTY,
    CONTENT_MF_MODEL,
    CONTENT_TRIPLETS,
    HEADER_BYTES,
    KIND_PAYLOAD,
    KIND_QUOTE,
    PayloadHeader,
    payload_buffer,
    unpack_payload,
)
from repro.core.stats import EpochStats
from repro.core.store import DataStore
from repro.data.dataset import RatingsDataset
from repro.ml.dnn.model import DnnRecommender
from repro.ml.mf import MatrixFactorization
from repro.net.serialization import (
    decode_dnn_state,
    decode_mf_state,
    decode_triplets,
    encode_dnn_state_into,
    encode_mf_state_into,
    encode_triplets_into,
    measure_dnn_state,
    measure_mf_state,
    measure_triplets,
)
from repro.net.serialization import CodecError
from repro.tee.attestation import MutualAttestation, Quote
from repro.tee.crypto.aead import AeadError
from repro.tee.enclave import TrustedApp, ecall
from repro.tee.errors import (
    ChannelNotEstablished,
    MeasurementMismatch,
    QuoteVerificationError,
    SnapshotReplayError,
)

__all__ = ["RexEnclaveApp"]


class RexEnclaveApp(TrustedApp):
    """Enclave-resident REX node (Algorithm 2)."""

    # ------------------------------------------------------------------ #
    # Entry point: initialization (Algorithm 2 lines 1-4)
    # ------------------------------------------------------------------ #
    @ecall
    def ecall_init(self, args: dict) -> None:
        """Copy the local shard into protected memory and bootstrap.

        ``args`` carries only serializable values across the boundary:
        the node/neighbor ids, the :class:`RexConfig`, the train/test
        shards as encoded triplet payloads, the id-space sizes, the
        global rating mean and the ``secure`` build flag.
        """
        self.node_id: int = int(args["node_id"])
        self.neighbors: Tuple[int, ...] = tuple(int(n) for n in args["neighbors"])
        self.degree = len(self.neighbors)
        self.config: RexConfig = args["config"]
        self.secure: bool = bool(args["secure"])
        #: Incarnation counter: 0 for the first boot, bumped per restart.
        self.boot: int = int(args.get("boot", 0))
        #: Epoch to rejoin the gossip at after a crash (0 on first boot).
        self.resume_epoch: int = int(args.get("resume_epoch", 0))
        n_users = int(args["n_users"])
        n_items = int(args["n_items"])

        train = decode_triplets(args["train"])
        self.test_data = decode_triplets(args["test"])
        self.local_rng = child_rng(self.config.seed, "node", self.node_id)

        self.store = DataStore(n_users, n_items, capacity=max(1024, len(train)))
        self.store.append_unique(train)

        if self.config.model is ModelKind.MF:
            self.model = MatrixFactorization(
                n_users,
                n_items,
                self.config.mf,
                seed=self.config.seed,  # identical initial code AND weights
                global_mean=float(args.get("global_mean", 3.5)),
            )
        else:
            self.model = DnnRecommender(n_users, n_items, self.config.dnn, seed=self.config.seed)
        self.model.mark_seen(train)

        # A restarted incarnation derives a *fresh* X25519 key (the old one
        # died with the enclave): neighbors detect the changed public key in
        # the new quote and re-attest instead of treating it as a duplicate.
        if self.boot:
            dh_seed = stream_seed(self.config.seed, "dh", self.node_id, "boot", self.boot)
        else:
            dh_seed = stream_seed(self.config.seed, "dh", self.node_id)
        self.attestor = MutualAttestation(
            f"rex-{self.node_id}",
            self.ctx.measurement,
            self.ctx.attestation_service(),
            key_seed=dh_seed.to_bytes(8, "little"),
        )
        self.channels: Dict[int, object] = {}
        self.epoch = self.resume_epoch
        self._epoch_zero_done = False
        self._inbox: Dict[int, Dict[int, Tuple[PayloadHeader, bytes]]] = {}
        self._current_stats: Optional[EpochStats] = None
        self._counter_mark = None
        # -- churn-tolerance state (inert while faults are disabled) ----- #
        #: X25519 public key seen in each neighbor's latest quote.
        self._peer_pubkeys: Dict[int, bytes] = {}
        #: Neighbors currently believed dead (host-notified or suspected).
        self._down_peers: set = set()
        #: Epoch from which each neighbor's shares are expected; ``None``
        #: means unknown (peer restarted / not yet heard from) and the
        #: barrier must not block on it.  A restarted node knows nothing
        #: about where its neighbors are, so it starts all-``None``.
        self._active_from: Dict[int, Optional[int]] = {
            n: (0 if self.boot == 0 else None) for n in self.neighbors
        }
        #: Consecutive barrier timeouts each neighbor has missed.
        self._miss_counts: Dict[int, int] = {}
        #: Ticks spent blocked at the current barrier.
        self._stall_ticks = 0
        # -- serving state (populated by ecall_publish_snapshot) -------- #
        self._serving: Optional[ServingState] = None
        self._snapshot_version = 0
        #: Published snapshot history, by version (serve-path rollback
        #: experiments address stale versions explicitly).
        self._published: Dict[int, object] = {}
        # -- Byzantine surface (inert unless plan/config engage it) ----- #
        #: Scripted attacker persona for this node's *host* (chaos plans
        #: only; ``None`` for every honest run).  All attack randomness
        #: comes from a dedicated child stream so honest streams are
        #: untouched.
        attack = args.get("attack")
        self._attack_role: Optional[dict] = dict(attack) if attack else None
        self._attack_rng = (
            child_rng(self.config.seed, "attack", self.node_id)
            if self._attack_role is not None
            else None
        )
        #: Admission checks (sanity bounds + quotas); ``None`` = disarmed.
        self._admission: Optional[ShareAdmission] = (
            ShareAdmission(self.config.defenses, self.config.share_points)
            if self.config.defenses.enabled
            else None
        )
        #: Quote-pinning table: DH public key -> first peer id seen using it.
        self._pinned_pubkeys: Dict[bytes, int] = {}
        #: Consecutive empty DPSGD data-shares per neighbor + flagged set.
        self._empty_rounds: Dict[int, int] = {}
        self._flagged_riders: set = set()
        #: Sybil-attacker state: cloned-identity channels and quote cache.
        self._sybil_channels: Dict[Tuple[int, int], object] = {}
        self._sybil_quoted = False
        self._my_quote_bytes: Optional[bytes] = None

        self._account_memory(staging=0)

        if self.secure:
            quote_bytes = self._make_quote().to_bytes()
            if self._attack_role is not None and self._attack_role.get("persona") == "sybil":
                self._my_quote_bytes = quote_bytes
            for neighbor in self.neighbors:
                self.ctx.ocall("send_message", neighbor, KIND_QUOTE, quote_bytes)
        else:
            for neighbor in self.neighbors:
                self.channels[neighbor] = self._bind_channel(
                    PlaintextChannel(self.node_id, neighbor)
                )
            self._maybe_start()
        if not self.neighbors:
            self._maybe_start()

    # ------------------------------------------------------------------ #
    # Entry point: message reception (Algorithm 2 lines 5-11)
    # ------------------------------------------------------------------ #
    @ecall
    def ecall_input(self, src: int, kind: str, blob: bytes) -> None:
        """Dispatch one message: attestation or sealed protocol payload."""
        src = int(src)
        if kind == KIND_QUOTE:
            self._handle_quote(src, blob)
        elif kind == KIND_PAYLOAD:
            self._handle_payload(src, blob)
        else:
            raise ValueError(f"unknown message kind {kind!r}")

    @ecall
    def ecall_status(self) -> dict:
        """Introspection for the host/tests (no secrets leave)."""
        return {
            "node_id": self.node_id,
            "epoch": self.epoch,
            "boot": self.boot,
            "attested_peers": len(self.channels),
            "down_peers": sorted(self._down_peers),
            "store_items": len(self.store),
            "test_rmse": self.model.evaluate_rmse(self.test_data),
        }

    @ecall
    def ecall_publish_snapshot(self) -> dict:
        """Publish the live model as an immutable serving snapshot.

        Copy-on-publish: training keeps mutating the live parameters
        while queries score against the frozen copy.  Only the sanitized
        snapshot metadata (sizes, digest) crosses back to the host.
        """
        # Deferred: repro.serve pulls in the sim/cluster world at package
        # import time, which would cycle back into this module.
        from repro.serve.endpoint import ServingState
        from repro.serve.snapshot import publish_snapshot

        if not isinstance(self.model, MatrixFactorization):
            raise ValueError("serving snapshots require the MF model")
        self._snapshot_version += 1
        snapshot = publish_snapshot(
            self.model,
            version=self._snapshot_version,
            node_id=self.node_id,
            epoch=self.epoch,
        )
        if self._serving is None:
            self._serving = ServingState(metrics=self.ctx.metrics)
        self._published[snapshot.version] = snapshot
        # Exclusion comes from the node's raw store: everything this
        # node knows a user already rated, local or gossiped.
        dataset = self.store.as_dataset()
        self._serving.install(snapshot, dataset.users, dataset.items)
        self.ctx.memory.set("serve", self._serving.resident_bytes)
        return snapshot.meta().to_dict()

    @ecall
    def ecall_serve(self, users: list, k: int, version: Optional[int] = None) -> dict:
        """Serve a top-``k`` batch; item ids, scores and counts leave.

        ``version`` lets the host address an older published snapshot --
        the stale-replay attack surface.  With defenses armed the enclave
        refuses any version below its published high-water mark
        (:class:`SnapshotReplayError`); undefended, it installs the stale
        snapshot and serves from it, exactly what a rolled-back replica
        would do.
        """
        if self._serving is None or self._serving.snapshot is None:
            raise ValueError("no snapshot published; call ecall_publish_snapshot")
        target = self._snapshot_version if version is None else int(version)
        if target != self._snapshot_version:
            defenses = self.config.defenses
            if (
                defenses.enabled
                and defenses.snapshot_monotonic
                and target < self._snapshot_version
            ):
                self._count_fault("faults.rejected", kind="replay_snapshot")
                raise SnapshotReplayError(
                    "serve-time rollback refused: requested version is below "
                    "the published high-water mark"
                )
        snapshot = self._published.get(target)
        if snapshot is None:
            raise ValueError("unknown snapshot version")
        if self._serving.snapshot is not snapshot:
            dataset = self.store.as_dataset()
            self._serving.install(snapshot, dataset.users, dataset.items)
        items, scores, stats = self._serving.query_batch(users, k)
        self.ctx.memory.set("serve", self._serving.resident_bytes)
        return {
            "items": items.tolist(),
            "scores": scores.tolist(),
            "stats": stats.to_dict(),
        }

    @ecall
    def ecall_peer_down(self, peer: int) -> None:
        """Host notification that ``peer``'s process died (crash fault)."""
        if not self.config.faults.enabled:
            return
        peer = int(peer)
        self._down_peers.add(peer)
        self._miss_counts.pop(peer, None)
        self._active_from[peer] = None
        if self._epoch_zero_done:
            self._try_advance()  # the barrier may now be satisfiable
        else:
            self._maybe_start()

    @ecall
    def ecall_tick(self) -> int:
        """Advance the patience clock; force partial progress on timeout.

        Called once per idle-capable pump iteration when fault tolerance is
        enabled.  After :attr:`FaultToleranceConfig.barrier_patience_ticks`
        ticks stuck at the same barrier the node advances with whatever
        subset of shares it holds (graceful degradation), and neighbors
        missing from ``suspect_after_timeouts`` consecutive forced rounds
        are treated as dead until heard from again.  Returns the number of
        rounds forced (0 or 1).
        """
        if not self.config.faults.enabled:
            return 0
        if self._epoch_zero_done and self.epoch >= self.config.epochs:
            return 0
        self._stall_ticks += 1
        if self._stall_ticks < self.config.faults.barrier_patience_ticks:
            return 0
        self._stall_ticks = 0
        self._count_fault("faults.barrier_timeouts")
        if not self._epoch_zero_done:
            # Stuck in attestation: a neighbor is refusing (or losing) the
            # handshake.  Suspect it so epoch 0 can start without it.
            for n in self.neighbors:
                if n not in self.channels and n not in self._down_peers:
                    self._note_miss(n)
            self._maybe_start()
            return 1 if self._epoch_zero_done else 0
        for n in self._required_peers(self.epoch - 1):
            if n not in self._inbox.get(self.epoch - 1, {}):
                self._note_miss(n)
        received = self._inbox.pop(self.epoch - 1, {})
        self._run_round(received or None)
        self._try_advance()
        return 1

    def _note_miss(self, peer: int) -> None:
        self._miss_counts[peer] = self._miss_counts.get(peer, 0) + 1
        if self._miss_counts[peer] >= self.config.faults.suspect_after_timeouts:
            self._down_peers.add(peer)
            self._active_from[peer] = None
            self._count_fault("faults.suspected", peer=peer)

    def _count_fault(self, name: str, **labels: object) -> None:
        metrics = self.ctx.metrics
        if metrics is not None:
            metrics.counter(name, node=self.node_id, **labels).inc()

    # ------------------------------------------------------------------ #
    # Attestation (Section III-A)
    # ------------------------------------------------------------------ #
    def _make_quote(self) -> Quote:
        report = self.ctx.create_report(self.attestor.user_data())
        return self.ctx.ocall("get_quote", report)

    def _handle_quote(self, src: int, blob: bytes) -> None:
        if not self.secure:
            raise ChannelNotEstablished("native build received an attestation quote")
        tolerant = self.config.faults.enabled
        if src in self.channels and not tolerant:
            return  # duplicate quote; channel already established
        try:
            quote = Quote.from_bytes(bytes(blob))
            pubkey = bytes(quote.user_data[:32])
            if src in self.channels and pubkey == self._peer_pubkeys.get(src):
                return  # duplicate (possibly replayed) quote; same incarnation
            # A *different* public key from an established peer means it
            # restarted: its enclave died with the old DH key, so re-attest
            # and replace the channel below.
            reattest = src in self.channels
            key = self.attestor.process_peer_quote(f"rex-{src}", quote)
        except (
            ValueError,
            struct.error,
            UnicodeDecodeError,
            QuoteVerificationError,
            MeasurementMismatch,
        ):
            if tolerant:
                # A mangled (or forged) quote is survivable: reject it and
                # let the ARQ schedule redeliver the genuine original.
                self._count_fault("faults.recovered", kind="quote")
                return
            raise
        defenses = self.config.defenses
        if defenses.enabled and defenses.quote_pinning:
            # Quote pinning: a DH public key stays bound to the first peer
            # identity seen presenting it.  A signature-valid quote replayed
            # under a different identity is the sybil signature -- the quote
            # proves code identity, never who is speaking.
            owner = self._pinned_pubkeys.get(pubkey)
            if owner is not None and owner != src:
                self._count_fault("faults.rejected", kind="sybil", peer=src)
                return
            self._pinned_pubkeys[pubkey] = src
        self.channels[src] = self._bind_channel(self._make_channel(key, src))
        self._peer_pubkeys[src] = pubkey
        if tolerant:
            self._down_peers.discard(src)
            self._miss_counts.pop(src, None)
        if reattest:
            # Fresh pairwise key, sequence numbers reset on both sides.
            # Answer with our own quote: the one we sent at bootstrap
            # predates the peer's reboot and is lost to it.
            self._active_from[src] = None
            self._count_fault("faults.reattestations", peer=src)
            self.ctx.ocall("send_message", src, KIND_QUOTE, self._make_quote().to_bytes())
            return
        self._maybe_start()

    def _make_channel(self, key: bytes, src: int):
        if self.config.crypto_mode is CryptoMode.REAL:
            return SecureChannel(key, self.node_id, src)
        return AccountedChannel(key, self.node_id, src)

    def _bind_channel(self, channel):
        """Attach the run's registry so channel bytes land in obs."""
        metrics = self.ctx.metrics
        if metrics is not None:
            channel.bind_metrics(metrics, node=self.node_id)
        return channel

    def _maybe_start(self) -> None:
        """Run epoch 0 once every (live) neighbor channel exists."""
        if self._epoch_zero_done:
            return
        if self.config.faults.enabled:
            ready = all(
                n in self.channels for n in self.neighbors if n not in self._down_peers
            )
        else:
            ready = len(self.channels) == len(self.neighbors)
        if ready:
            self._epoch_zero_done = True
            self._run_round(received=None)
            if self.config.faults.enabled:
                self._try_advance()  # a restarted node may have buffered shares

    # ------------------------------------------------------------------ #
    # Protocol payloads (Algorithm 2 lines 12-21)
    # ------------------------------------------------------------------ #
    def _handle_payload(self, src: int, blob: bytes) -> None:
        tolerant = self.config.faults.enabled
        channel = self.channels.get(src)
        if channel is None:
            if tolerant:
                # A frame raced past re-attestation (or from a refused peer):
                # survivable -- the retransmission schedule or the next epoch
                # covers the gap.
                self._count_fault("faults.recovered", kind="unattested")
                return
            raise ChannelNotEstablished(f"payload from unattested peer {src}")
        try:
            # ``blob`` may be the sender's own frame buffer (a read-only
            # memoryview riding the in-process transport); ``open`` takes
            # any bytes-like zero-copy, so no defensive copy is made here.
            plaintext = channel.open(blob)
        except ReplayError:
            if tolerant:
                self._count_fault("faults.recovered", kind="replay")
                return
            raise
        except (AeadError, ChannelNotEstablished):
            if tolerant:
                self._count_fault("faults.recovered", kind="corrupt")
                return
            raise
        try:
            header, content = unpack_payload(plaintext)
        except (ValueError, CodecError):
            if tolerant:
                self._count_fault("faults.recovered", kind="codec")
                return
            raise
        if tolerant:
            # Hearing from a peer clears any suspicion of its death.
            self._down_peers.discard(src)
            self._miss_counts.pop(src, None)
            if self._active_from.get(src) is None:
                self._active_from[src] = header.epoch
            if header.epoch < self.epoch - 1:
                self._count_fault("faults.recovered", kind="stale")
                return
        self._inbox.setdefault(header.epoch, {})[src] = (header, content)
        self._try_advance()

    def _required_peers(self, epoch_idx: int) -> list:
        """Neighbors the barrier for ``epoch_idx`` must wait for."""
        required = []
        for n in self.neighbors:
            if n in self._down_peers:
                continue
            active = self._active_from.get(n, 0)
            if active is None or active > epoch_idx:
                continue
            required.append(n)
        return required

    def _try_advance(self) -> None:
        """ready_to_train check: one message from every (live) neighbor."""
        if not self._epoch_zero_done:
            return
        if not self.config.faults.enabled:
            while True:
                waiting_on = self._inbox.get(self.epoch - 1, {})
                if len(waiting_on) < len(self.neighbors):
                    return
                received = self._inbox.pop(self.epoch - 1)
                self._run_round(received)
        while True:
            if self.epoch >= self.config.epochs:
                return
            waiting_on = self._inbox.get(self.epoch - 1, {})
            required = self._required_peers(self.epoch - 1)
            if required:
                if not all(n in waiting_on for n in required):
                    return
            elif not waiting_on:
                # Nothing to merge and nobody to wait for: let the patience
                # clock (ecall_tick) pace solo progress instead of racing
                # through the remaining epochs in one call.
                return
            received = self._inbox.pop(self.epoch - 1, {})
            self._run_round(received or None)

    def _run_round(self, received: Optional[Dict[int, Tuple[PayloadHeader, bytes]]]) -> None:
        """One merge / train / share / test round."""
        self._stall_ticks = 0
        stats = EpochStats(node_id=self.node_id, epoch=self.epoch)
        staging_peak = 0

        # -- merge (lines 15-16) ---------------------------------------- #
        if received:
            if self.config.scheme is SharingScheme.DATA:
                staging_peak = self._merge_data(received, stats)
            else:
                staging_peak = self._merge_models(received, stats)

        # -- train (line 17) --------------------------------------------- #
        stats.train_samples = self.model.train_epoch(self.store.as_dataset(), self.local_rng)

        # -- share (lines 18-20) ------------------------------------------ #
        self._share(stats)

        # -- test (line 21) ----------------------------------------------- #
        stats.test_rmse = self.model.evaluate_rmse(self.test_data)
        stats.test_samples = len(self.test_data)

        stats.store_items = len(self.store)
        stats.store_bytes = self.store.nbytes
        stats.model_bytes = self.model.resident_bytes
        stats.staging_bytes = staging_peak
        self._account_memory(staging=staging_peak)

        self.epoch += 1
        self.ctx.ocall("report_stats", stats)

    # ------------------------------------------------------------------ #
    # Merge implementations (Section III-C)
    # ------------------------------------------------------------------ #
    def _merge_data(self, received: Dict[int, Tuple[PayloadHeader, bytes]], stats: EpochStats) -> int:
        staging = 0
        for _src, (header, content) in sorted(received.items()):
            if header.content == CONTENT_EMPTY:
                self._note_empty_share(_src)
                continue
            try:
                if header.content != CONTENT_TRIPLETS:
                    raise ValueError("data-sharing run received a model payload")
                alien = decode_triplets(content)
            except (ValueError, CodecError):
                if self.config.faults.enabled:
                    # One undecodable share must not abort the whole merge.
                    self._count_fault("faults.recovered", kind="merge")
                    continue
                raise
            self._empty_rounds.pop(_src, None)
            if self._admission is not None:
                reason = self._admission.check_triplets(alien)
                if reason is not None:
                    # The whole share is discarded: a distribution this far
                    # outside honest marginals is fabricated, and salvaging
                    # pieces of it would just teach attackers to dilute.
                    self._count_fault("faults.rejected", kind=reason, peer=_src)
                    continue
                admitted = self._admission.admit(_src, self.epoch, len(alien))
                if admitted < len(alien):
                    self._count_fault("faults.rejected", kind="quota", peer=_src)
                    if admitted == 0:
                        continue
                    alien = RatingsDataset(
                        alien.users[:admitted],
                        alien.items[:admitted],
                        alien.ratings[:admitted],
                        n_users=alien.n_users,
                        n_items=alien.n_items,
                    )
            staging = max(staging, alien.nbytes + len(content))
            stats.dedup_checked_items += len(alien)
            if self.config.dedup:
                added = self.store.append_unique(alien)
            else:
                added = self.store.append(alien)
            stats.appended_items += added
            if added:
                self.model.mark_seen(alien)
        return staging

    def _note_empty_share(self, src: int) -> None:
        """Free-rider detection: consecutive empty DPSGD data-shares.

        Empty barriers are legitimate under RMW (all but one neighbor get
        one every epoch), so detection only runs for DPSGD raw-data runs,
        where an honest node always samples a non-empty share.  Detection
        flags, it never ejects: a starved gossip still completes, and the
        report surfaces who contributed nothing.
        """
        if (
            self._admission is None
            or self.config.dissemination is not Dissemination.DPSGD
            or self.config.scheme is not SharingScheme.DATA
        ):
            return
        count = self._empty_rounds.get(src, 0) + 1
        self._empty_rounds[src] = count
        if (
            count >= self.config.defenses.free_rider_patience
            and src not in self._flagged_riders
        ):
            self._flagged_riders.add(src)
            self._count_fault("faults.detected", kind="free_rider", peer=src)

    def _merge_models(
        self, received: Dict[int, Tuple[PayloadHeader, bytes]], stats: EpochStats
    ) -> int:
        expected = (
            CONTENT_MF_MODEL if self.config.model is ModelKind.MF else CONTENT_DNN_MODEL
        )
        decode = decode_mf_state if self.config.model is ModelKind.MF else decode_dnn_state
        incoming = []
        staging = 0
        for src, (header, content) in sorted(received.items()):
            if header.content == CONTENT_EMPTY:
                continue
            try:
                if header.content != expected:
                    raise ValueError("model-sharing run received a mismatched payload")
                state = decode(content)
            except (ValueError, CodecError):
                if self.config.faults.enabled:
                    self._count_fault("faults.recovered", kind="merge")
                    continue
                raise
            if self._admission is not None:
                reason = self._admission.check_model_state(state)
                if reason is not None:
                    # A parameter blow-up this large never comes out of
                    # honest SGD; merging it would overwrite the model.
                    self._count_fault("faults.rejected", kind=reason, peer=src)
                    continue
            staging += len(content) + _state_nbytes(state)
            incoming.append((src, header, state))

        if not incoming:
            return staging
        if self.config.dissemination is Dissemination.RMW:
            for _src, _header, state in incoming:
                self.model.merge_average(state)
                stats.merged_models += 1
                stats.merged_rows += _state_rows(state)
        else:
            contributions = []
            weight_total = 0.0
            for _src, header, state in incoming:
                w = 1.0 / (1.0 + max(self.degree, header.degree))
                contributions.append((state, w))
                weight_total += w
                stats.merged_models += 1
                stats.merged_rows += _state_rows(state)
            self.model.merge_weighted(contributions, self_weight=1.0 - weight_total)
        return staging

    # ------------------------------------------------------------------ #
    # Share (Section III-C / III-E)
    # ------------------------------------------------------------------ #
    def _share(self, stats: EpochStats) -> None:
        if self.config.faults.enabled:
            # Dead neighbors get nothing: sealing to a lost incarnation
            # would desynchronize sequence numbers for no delivery.
            targets = [
                n for n in self.neighbors if n not in self._down_peers and n in self.channels
            ]
        else:
            targets = list(self.neighbors)
        if not targets:
            return
        # The full payload is assembled in one preallocated buffer: the
        # header is packed in place and the content serialized directly
        # after it (``encode_*_into``), so the plaintext a channel seals
        # was written exactly once -- no header+content join, no
        # intermediate row arrays.
        role = self._attack_role or {}
        persona = role.get("persona")
        if self.config.scheme is SharingScheme.DATA:
            if persona in ("poison", "sybil"):
                # Compromised host: the share is fabricated shilling
                # profiles, not an honest sample (block 0 = own identity).
                sample = self._poison_triplets(role.get("spec") or {}, block=0)
                self._count_attack("poison_points", len(sample))
            else:
                sample = self.store.sample(self.config.share_points, self.local_rng)
            content_kind = CONTENT_TRIPLETS
            stats.share_sampled_items = len(sample)
            header_full = PayloadHeader(self.node_id, self.epoch, self.degree, content_kind)
            packed_full, content_offset = payload_buffer(
                header_full, measure_triplets(len(sample))
            )
            encode_triplets_into(sample, packed_full, content_offset)
        else:
            state = self.model.state()
            if persona in ("poison", "sybil"):
                state = self._poison_state(state, role.get("spec") or {})
                self._count_attack("poison_states")
            header_full = PayloadHeader(
                self.node_id,
                self.epoch,
                self.degree,
                CONTENT_MF_MODEL if self.config.model is ModelKind.MF else CONTENT_DNN_MODEL,
            )
            seen_users = int(np.count_nonzero(state.user_seen))
            seen_items = int(np.count_nonzero(state.item_seen))
            if self.config.model is ModelKind.MF:
                wire_dtype = "<f8" if self.config.mf.np_dtype == np.float64 else "<f4"
                float_bytes = 8 if wire_dtype == "<f8" else 4
                packed_full, content_offset = payload_buffer(
                    header_full,
                    measure_mf_state(seen_users, seen_items, state.k, float_bytes=float_bytes),
                )
                encode_mf_state_into(state, packed_full, content_offset, wire_dtype=wire_dtype)
            else:
                packed_full, content_offset = payload_buffer(
                    header_full,
                    measure_dnn_state(seen_users, seen_items, state.k, state.mlp_params.size),
                )
                encode_dnn_state_into(state, packed_full, content_offset)
        stats.serialized_bytes += len(packed_full) - HEADER_BYTES

        if self.config.dissemination is Dissemination.RMW:
            chosen = int(targets[self.local_rng.integers(0, len(targets))])
        else:
            chosen = None  # broadcast
        if persona == "free_rider":
            # Free-rider: consume every inbound share, contribute nothing.
            # Barrier frames still flow (an absent sender would just look
            # crashed); the *content* is what is withheld.
            chosen = -1  # matches no neighbor -> empty frames all around
            self._count_attack("freeride_rounds")

        header_empty = PayloadHeader(self.node_id, self.epoch, self.degree, CONTENT_EMPTY)
        # RMW barrier message: header only.
        packed_empty, _ = payload_buffer(header_empty, 0)
        entries = []
        for neighbor in targets:
            if chosen is None or neighbor == chosen:
                plaintext = packed_full
                stats.shared_messages += 1
            else:
                plaintext = packed_empty
                stats.shared_empty_messages += 1
            entries.append((self.channels[neighbor], plaintext, b""))
        sealed_before = [channel.sealed_bytes for channel, _, _ in entries]
        # One batch seals the whole epoch's fan-out: every neighbor's
        # payload runs through a single lane-kernel (or native AEAD)
        # invocation, and each frame leaves here as the same buffer the
        # ciphertext was written into -- no per-neighbor re-join.
        wires = seal_all(entries)
        for (channel, _, _), before, neighbor, wire in zip(
            entries, sealed_before, targets, wires
        ):
            # The channel layer is the accounting source of record for
            # wire bytes; read its counter instead of re-measuring.
            stats.shared_payload_bytes += channel.sealed_bytes - before
            self.ctx.ocall("send_message", neighbor, KIND_PAYLOAD, wire)

        if persona == "sybil":
            self._sybil_fanout(role, targets)

    # ------------------------------------------------------------------ #
    # Byzantine personas (scripted by chaos plans; honest runs never
    # reach this code)
    # ------------------------------------------------------------------ #
    def _poison_triplets(self, spec: dict, *, block: int) -> RatingsDataset:
        """Fabricate one shilling share (classic *push* attack).

        ``fake_users`` synthetic profiles each rate the target item at
        the scale maximum and ``filler_items`` seeded-random items at the
        scale bottom (the *love/hate* variant, maximizing damage).  Fake
        user ids are drawn from the top of the id space in disjoint
        per-identity blocks (block 0 = the attacker's own identity,
        1.. = its sybil clones) so amplified shares carry *distinct*
        (user, item) pairs and survive the receivers' dedup.
        """
        n_users = self.store.n_users
        n_items = self.store.n_items
        fake = max(1, int(spec.get("fake_users", 4)))
        filler = max(0, min(int(spec.get("filler_items", 59)), n_items - 2))
        target = min(int(spec.get("target_item", 111)), n_items - 1)
        rating = float(spec.get("rating", 5.0))
        filler_rating = float(spec.get("filler_rating", 1.0))
        base = max(0, n_users - fake * (block + 1))
        users = np.repeat(np.arange(base, base + fake, dtype=np.int64), filler + 1)
        items = np.empty((fake, filler + 1), dtype=np.int64)
        for row in range(fake):
            picks = self._attack_rng.choice(n_items - 1, size=filler, replace=False)
            items[row, 0] = target
            items[row, 1:] = np.where(picks >= target, picks + 1, picks)
        ratings = np.full((fake, filler + 1), filler_rating, dtype=np.float32)
        ratings[:, 0] = rating
        ratings = ratings.reshape(-1)
        return RatingsDataset(
            users, items.reshape(-1), ratings, n_users=n_users, n_items=n_items
        )

    def _poison_state(self, state, spec: dict):
        """Model-sharing poisoning: ship the live state blown up by
        ``model_boost`` so weighted merges drag every peer's parameters
        off the data manifold."""
        boost = float(spec.get("model_boost", 100.0))
        state.user_factors = state.user_factors * boost
        state.item_factors = state.item_factors * boost
        state.user_bias = state.user_bias * boost
        state.item_bias = state.item_bias * boost
        return state

    def _sybil_fanout(self, role: dict, targets: list) -> None:
        """Send this round's cloned-identity traffic (sybil persona).

        The attacker replays its own valid quote under each clone id,
        then pushes one distinct-block poison share per clone through
        channels derived from the same enclave DH key
        (:meth:`~repro.tee.attestation.MutualAttestation.forge_identity_key`).
        Quote-pinning receivers reject the cloned quotes, so the sealed
        clone frames die as unattested traffic; undefended receivers
        merge every clone's share as an independent neighbor's.
        """
        if not self.secure or self.config.scheme is not SharingScheme.DATA:
            return
        clones = [int(c) for c in role.get("clones", ())]
        if not clones or self._my_quote_bytes is None:
            return
        if not self._sybil_quoted:
            for clone in clones:
                for neighbor in targets:
                    self.ctx.ocall("send_as", clone, neighbor, KIND_QUOTE, self._my_quote_bytes)
            self._sybil_quoted = True
        spec = role.get("spec") or {}
        for block, clone in enumerate(clones, start=1):
            sample = self._poison_triplets(spec, block=block)
            self._count_attack("poison_points", len(sample))
            header = PayloadHeader(clone, self.epoch, self.degree, CONTENT_TRIPLETS)
            packed, offset = payload_buffer(header, measure_triplets(len(sample)))
            encode_triplets_into(sample, packed, offset)
            for neighbor in targets:
                channel = self._sybil_channels.get((clone, neighbor))
                if channel is None:
                    pubkey = self._peer_pubkeys.get(neighbor)
                    if pubkey is None:
                        continue
                    key = self.attestor.forge_identity_key(
                        f"rex-{clone}", f"rex-{neighbor}", pubkey
                    )
                    if self.config.crypto_mode is CryptoMode.REAL:
                        channel = SecureChannel(key, clone, neighbor)
                    else:
                        channel = AccountedChannel(key, clone, neighbor)
                    self._sybil_channels[(clone, neighbor)] = channel
                wire = channel.seal(bytes(packed))
                self._count_attack("sybil_frames")
                self.ctx.ocall("send_as", clone, neighbor, KIND_PAYLOAD, wire)

    def _count_attack(self, kind: str, amount: int = 1) -> None:
        metrics = self.ctx.metrics
        if metrics is not None:
            metrics.counter("attack.injected", node=self.node_id, kind=kind).inc(amount)

    # ------------------------------------------------------------------ #
    # Memory accounting
    # ------------------------------------------------------------------ #
    def _account_memory(self, *, staging: int) -> None:
        self.ctx.memory.set("store", self.store.nbytes)
        self.ctx.memory.set("model", self.model.resident_bytes)
        self.ctx.memory.set("test", self.test_data.nbytes)
        if staging:
            self.ctx.memory.set("staging", staging)
            self.ctx.memory.free("staging")


def _state_nbytes(state) -> int:
    total = 0
    for value in state.__dict__.values():
        nbytes = getattr(value, "nbytes", None)
        if nbytes is not None:
            total += int(nbytes)
    return total


def _state_rows(state) -> int:
    return int(state.user_seen.sum()) + int(state.item_seen.sum())
