"""REX protocol message framing.

Two message kinds cross the untrusted network (paper Algorithm 1):

- ``KIND_QUOTE`` -- attestation quotes, sent in clear text.  "No privacy
  threat happens here as only attestation messages, which are not
  privacy-sensitive, are exchanged in clear text"; forging them fails at
  verification.
- ``KIND_PAYLOAD`` -- sealed protocol payloads.  The plaintext inside the
  channel is a small header (epoch, sender degree for the
  Metropolis-Hastings weights, content tag) followed by the encoded
  content: raw triplets (DS), a serialized model (MS), or nothing (the
  "possibly empty" barrier message of Algorithm 2 line 13).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = [
    "KIND_QUOTE",
    "KIND_PAYLOAD",
    "CONTENT_EMPTY",
    "CONTENT_TRIPLETS",
    "CONTENT_MF_MODEL",
    "CONTENT_DNN_MODEL",
    "PayloadHeader",
    "pack_payload",
    "payload_buffer",
    "unpack_payload",
]

KIND_QUOTE = "quote"
KIND_PAYLOAD = "payload"

CONTENT_EMPTY = 0
CONTENT_TRIPLETS = 1
CONTENT_MF_MODEL = 2
CONTENT_DNN_MODEL = 3

_HEADER = struct.Struct("<IIIB3x")  # sender, epoch, degree, content kind
HEADER_BYTES = _HEADER.size


@dataclass(frozen=True)
class PayloadHeader:
    """Metadata travelling (sealed) with every protocol payload."""

    sender: int
    epoch: int
    degree: int
    content: int

    def pack(self) -> bytes:
        return _HEADER.pack(self.sender, self.epoch, self.degree, self.content)

    def pack_into(self, buf, offset: int = 0) -> int:
        """Write the header into ``buf`` at ``offset``; returns the end.

        The join-free counterpart of :meth:`pack`, used when the whole
        plaintext (header + encoded content) is assembled in one
        preallocated buffer that the seal path then consumes zero-copy.
        """
        _HEADER.pack_into(buf, offset, self.sender, self.epoch, self.degree, self.content)
        return offset + HEADER_BYTES

    @classmethod
    def unpack(cls, raw: bytes) -> "PayloadHeader":
        sender, epoch, degree, content = _HEADER.unpack_from(raw, 0)
        return cls(sender, epoch, degree, content)


def pack_payload(header: PayloadHeader, content: bytes) -> bytes:
    """Header + content, the plaintext a channel seals."""
    return header.pack() + content


def payload_buffer(header: PayloadHeader, content_size: int) -> tuple:
    """Preallocate one plaintext frame: header written, content span open.

    Returns ``(buf, content_offset)`` where ``buf`` is a bytearray of
    ``HEADER_BYTES + content_size`` with the header already packed; the
    caller serializes content directly into ``buf`` from
    ``content_offset`` (e.g. via the ``encode_*_into`` codec writers), so
    header and content are never joined after the fact.
    """
    buf = bytearray(HEADER_BYTES + content_size)
    header.pack_into(buf, 0)
    return buf, HEADER_BYTES


def unpack_payload(plaintext: bytes) -> tuple:
    """Split a channel-opened plaintext back into header and content."""
    if len(plaintext) < HEADER_BYTES:
        raise ValueError("payload shorter than its header")
    return PayloadHeader.unpack(plaintext), plaintext[HEADER_BYTES:]
