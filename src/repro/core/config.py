"""Configuration vocabulary shared by the simulator and the real runtime.

Names follow the paper: the *sharing scheme* is either REX's raw-data
sharing (DS) or the model-sharing baseline (MS); the *dissemination
algorithm* is either random model walk (RMW, one random neighbor per
epoch) or D-PSGD (all neighbors, Metropolis-Hastings merge); the *model*
is MF or DNN (Section III-C, IV-A3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.ml.dnn.model import DnnHyperParams
from repro.ml.mf import MfHyperParams

__all__ = [
    "SharingScheme",
    "Dissemination",
    "ModelKind",
    "CryptoMode",
    "FaultToleranceConfig",
    "DefenseConfig",
    "RexConfig",
]


class SharingScheme(enum.Enum):
    """What travels between nodes each epoch."""

    #: REX: raw rating triplets sampled from the local store.
    DATA = "rex"
    #: Baseline: the serialized model parameters.
    MODEL = "ms"

    @property
    def label(self) -> str:
        return "REX" if self is SharingScheme.DATA else "MS"


class Dissemination(enum.Enum):
    """Who receives each epoch's share (Section III-C)."""

    #: Random model walk / gossip learning: one random neighbor.
    RMW = "rmw"
    #: Decentralized parallel SGD: every neighbor, MH-weighted merge.
    DPSGD = "d-psgd"

    @property
    def label(self) -> str:
        return "RMW" if self is Dissemination.RMW else "D-PSGD"


class ModelKind(enum.Enum):
    MF = "mf"
    DNN = "dnn"


class CryptoMode(enum.Enum):
    """Fidelity knob for the secure channels in the distributed runtime.

    ``REAL`` runs the actual ChaCha20-Poly1305 AEAD on every payload.
    ``ACCOUNTED`` keeps byte counts and simulated-cost charges identical
    but skips the cipher work, so large experiments (hundreds of MiB of
    model traffic per epoch) stay tractable; attestation is always real.
    """

    REAL = "real"
    ACCOUNTED = "accounted"


@dataclass(frozen=True)
class FaultToleranceConfig:
    """Churn-tolerance knobs for the distributed runtime.

    Disabled by default: the paper's protocol assumes a healthy LAN and
    treats any loss as a fatal stall, and all seed experiments must stay
    byte-identical.  Chaos runs (:mod:`repro.faults`) enable tolerance,
    which changes the failure semantics in four ways:

    - corrupt / replayed / stale frames are *rejected but survivable*:
      the enclave counts them (``faults.recovered``) instead of letting
      the error abort the epoch;
    - the transport retries dropped frames (``max_attempts`` total sends,
      exponential backoff of ``backoff_base_ticks``);
    - a node blocked at the epoch barrier for ``barrier_patience_ticks``
      network ticks advances with the messages it has (graceful
      degradation, counted as ``faults.barrier_timeouts``);
    - a neighbor missing from ``suspect_after_timeouts`` consecutive
      barrier timeouts is treated as dead until it is heard from again.
    """

    enabled: bool = False
    barrier_patience_ticks: int = 48
    suspect_after_timeouts: int = 2
    max_attempts: int = 4
    backoff_base_ticks: int = 1

    def __post_init__(self) -> None:
        if self.barrier_patience_ticks < 1:
            raise ValueError("barrier patience must be at least one tick")
        if self.suspect_after_timeouts < 1:
            raise ValueError("suspicion threshold must be at least one timeout")


@dataclass(frozen=True)
class DefenseConfig:
    """Byzantine-defense knobs for the enclave-side admission checks.

    Disabled by default: the paper's protocol trusts every attested
    participant, and all seed experiments must stay byte-identical.
    Attack-bearing chaos plans (:mod:`repro.faults`) arm the defenses,
    which adds four *rejection* behaviors (never new randomness):

    - **quote pinning**: a DH public key already pinned to one peer
      identity is rejected when presented under another -- cloned quotes
      from sybil identities bounce (``faults.rejected`` kind ``sybil``);
    - **share-admission quotas**: one raw-data share per neighbor per
      round is truncated to ``quota_factor * share_points`` triplets,
      bounding how much store growth any single peer can force;
    - **rating sanity**: decoded triplet shares with out-of-range
      ratings, implausibly skewed rating distributions, or a single item
      dominating the share are rejected wholesale;
    - **snapshot monotonicity**: the serve path refuses to load or serve
      a snapshot version below the newest one published (stale-replay
      defense).

    The bounds are calibrated against honest shares of the synthetic
    MovieLens marginals (rating means sit well inside [2.0, 4.6] and
    per-share std above 0.35 for any share of ``min_sanity_points`` or
    more); property tests pin that honest traffic is never rejected.
    """

    enabled: bool = False
    quote_pinning: bool = True
    #: Per-neighbor per-round admission cap, in multiples of the run's
    #: configured ``share_points``.
    quota_factor: float = 2.0
    #: Plausible per-share mean rating band (5-star scale).
    min_share_mean: float = 2.0
    max_share_mean: float = 4.6
    #: Minimum per-share rating spread; an all-identical-rating share is
    #: the signature of profile injection.
    min_share_std: float = 0.35
    #: No single item may account for more than this fraction of a share.
    max_item_fraction: float = 0.30
    #: Individual rating value bounds (5-star scale).
    min_rating: float = 0.5
    max_rating: float = 5.0
    #: Distribution checks only engage at this share size; tiny tail
    #: samples are too noisy to judge.
    min_sanity_points: int = 24
    #: Model-sharing runs: reject a peer state whose largest parameter
    #: magnitude exceeds this (honest MF factors/biases stay in single
    #: digits; a boosted poison state is orders of magnitude out).
    model_param_bound: float = 25.0
    #: Consecutive empty DPSGD data-shares from one neighbor before it is
    #: flagged as a free-rider (detection only; epochs still complete).
    free_rider_patience: int = 3
    #: Refuse to serve or load snapshot versions below the high-water mark.
    snapshot_monotonic: bool = True

    def __post_init__(self) -> None:
        if self.quota_factor <= 0:
            raise ValueError("quota factor must be positive")
        if not self.min_share_mean < self.max_share_mean:
            raise ValueError("share-mean band must be non-empty")
        if self.min_sanity_points < 1:
            raise ValueError("sanity threshold must be at least one point")
        if self.free_rider_patience < 1:
            raise ValueError("free-rider patience must be at least one round")


@dataclass(frozen=True)
class RexConfig:
    """Full configuration of one decentralized training run."""

    scheme: SharingScheme = SharingScheme.DATA
    dissemination: Dissemination = Dissemination.DPSGD
    model: ModelKind = ModelKind.MF

    #: Data points shared per epoch (paper: 300 for MF, 40 for DNN).
    share_points: int = 300
    #: Training epochs to run (epoch 0 is the initial local training).
    epochs: int = 100
    #: Base seed; child streams are derived per node / per purpose.
    seed: int = 0

    mf: MfHyperParams = field(default_factory=MfHyperParams)
    dnn: DnnHyperParams = field(default_factory=DnnHyperParams)

    #: Distributed runtime only: real or accounted AEAD.
    crypto_mode: CryptoMode = CryptoMode.REAL

    #: Distributed runtime only: churn-tolerance knobs (off by default).
    faults: FaultToleranceConfig = field(default_factory=FaultToleranceConfig)

    #: Distributed runtime only: Byzantine-defense knobs (off by default).
    defenses: DefenseConfig = field(default_factory=DefenseConfig)

    #: Ablation: suppress duplicate raw data items on merge (Section
    #: III-E / IV-C).  Disabling lets resent points accumulate.
    dedup: bool = True
    #: Ablation: take one SGD pass over the whole (growing) store per
    #: epoch instead of the paper's fixed batch count, re-creating the
    #: "training time per epoch grows with the data" problem the fixed
    #: batch rule solves (Section III-E).
    adaptive_batches: bool = False
    #: Extension (paper Section III-D): run the share step in parallel
    #: with training -- legal for raw-data sharing because the sampled
    #: share does not depend on this epoch's training result.  The paper
    #: leaves this unimplemented ("it could only further increase the
    #: advantages of leveraging REX"); we model it as overlapping the
    #: share stage with train in the epoch-duration accounting.  Only
    #: meaningful for the DATA scheme.
    parallel_share: bool = False

    def __post_init__(self) -> None:
        if self.share_points < 0:
            raise ValueError("share_points must be non-negative")
        if self.epochs < 1:
            raise ValueError("need at least one epoch")
        if self.parallel_share and self.scheme is not SharingScheme.DATA:
            raise ValueError(
                "parallel share requires raw-data sharing: model sharing "
                "must serialize the just-trained model (Section III-D)"
            )

    @property
    def label(self) -> str:
        """Paper-style setup name, e.g. ``"D-PSGD, REX"``."""
        return f"{self.dissemination.label}, {self.scheme.label}"

    def hyper(self) -> Optional[object]:
        return self.mf if self.model is ModelKind.MF else self.dnn
