"""The enclave-resident raw-data store with duplicate suppression.

REX nodes keep every raw data item they have produced or received inside
protected memory, appending only *non-duplicate* items on merge
(Algorithm 2 line 16).  Because share-sampling is stateless
(Section III-E), the same triplet can arrive many times; the store
deduplicates in O(log n) per item against a sorted key array -- "new data
items are simply dumped into the local store with no further processing"
beyond this check (Section IV-C).

Capacity grows geometrically so appends are amortized O(1), and the store
exposes its byte footprint for the EPC/memory accounting.
"""

from __future__ import annotations


import numpy as np

from repro.data.dataset import RatingsDataset

__all__ = ["DataStore"]


class DataStore:
    """Append-only deduplicated triplet store over a global id space."""

    def __init__(self, n_users: int, n_items: int, *, capacity: int = 1024):
        self.n_users = n_users
        self.n_items = n_items
        self._size = 0
        self._users = np.empty(capacity, dtype=np.int32)
        self._items = np.empty(capacity, dtype=np.int32)
        self._ratings = np.empty(capacity, dtype=np.float32)
        # Sorted (user * n_items + item) keys of the current contents.
        self._sorted_keys = np.empty(0, dtype=np.int64)
        self.duplicates_rejected = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def _grow_to(self, needed: int) -> None:
        if needed <= len(self._users):
            return
        capacity = max(needed, 2 * len(self._users))
        for name in ("_users", "_items", "_ratings"):
            old = getattr(self, name)
            fresh = np.empty(capacity, dtype=old.dtype)
            fresh[: self._size] = old[: self._size]
            setattr(self, name, fresh)

    def append_unique(self, data: RatingsDataset) -> int:
        """Append items not already present; returns how many were new.

        Within the incoming batch, later duplicates of the same pair are
        dropped too (first occurrence wins).
        """
        if (data.n_users, data.n_items) != (self.n_users, self.n_items):
            raise ValueError("dataset id space does not match the store")
        return self.append_unique_arrays(data.users, data.items, data.ratings)

    def append_unique_arrays(
        self, users: np.ndarray, items: np.ndarray, ratings: np.ndarray
    ) -> int:
        """Array fast path of :meth:`append_unique` (no dataset objects)."""
        if len(users) == 0:
            return 0
        keys = users.astype(np.int64) * self.n_items + items
        _, first_idx = np.unique(keys, return_index=True)
        batch_mask = np.zeros(len(users), dtype=bool)
        batch_mask[first_idx] = True
        if len(self._sorted_keys):
            pos = np.searchsorted(self._sorted_keys, keys)
            pos = np.clip(pos, 0, len(self._sorted_keys) - 1)
            batch_mask &= self._sorted_keys[pos] != keys
        fresh_idx = np.flatnonzero(batch_mask)
        self.duplicates_rejected += len(users) - len(fresh_idx)
        if len(fresh_idx) == 0:
            return 0
        n_new = len(fresh_idx)
        self._grow_to(self._size + n_new)
        sl = slice(self._size, self._size + n_new)
        self._users[sl] = users[fresh_idx]
        self._items[sl] = items[fresh_idx]
        self._ratings[sl] = ratings[fresh_idx]
        self._size += n_new
        # Merge the (sorted) fresh keys into the sorted index in O(n)
        # instead of re-sorting the whole index.
        fresh_keys = np.sort(keys[fresh_idx])
        positions = np.searchsorted(self._sorted_keys, fresh_keys)
        self._sorted_keys = np.insert(self._sorted_keys, positions, fresh_keys)
        return n_new

    def append(self, data: RatingsDataset) -> int:
        """Ablation path: append everything, duplicates included.

        The dedup index still records the pairs (so ``contains_pair``
        stays correct), but repeated items occupy store slots -- this is
        what REX's duplicate check prevents (Algorithm 2 line 16).
        """
        if (data.n_users, data.n_items) != (self.n_users, self.n_items):
            raise ValueError("dataset id space does not match the store")
        if len(data) == 0:
            return 0
        n_new = len(data)
        self._grow_to(self._size + n_new)
        sl = slice(self._size, self._size + n_new)
        self._users[sl] = data.users
        self._items[sl] = data.items
        self._ratings[sl] = data.ratings
        self._size += n_new
        fresh_keys = np.sort(data.pair_keys())
        positions = np.searchsorted(self._sorted_keys, fresh_keys)
        self._sorted_keys = np.insert(self._sorted_keys, positions, fresh_keys)
        return n_new

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def as_dataset(self) -> RatingsDataset:
        """A zero-copy-ish view of the current contents as a dataset."""
        return RatingsDataset(
            self._users[: self._size],
            self._items[: self._size],
            self._ratings[: self._size],
            n_users=self.n_users,
            n_items=self.n_items,
        )

    @property
    def users(self) -> np.ndarray:
        """Raw view of the stored user ids (hot-path accessor)."""
        return self._users[: self._size]

    @property
    def items(self) -> np.ndarray:
        return self._items[: self._size]

    @property
    def ratings(self) -> np.ndarray:
        return self._ratings[: self._size]

    def sample(self, n: int, rng: np.random.Generator) -> RatingsDataset:
        """Stateless random sample for sharing (Section III-E)."""
        return self.as_dataset().sample(n, rng)

    def sample_arrays(self, n: int, rng: np.random.Generator):
        """Array fast path of :meth:`sample`: ``(users, items, ratings)``."""
        if self._size == 0 or n <= 0:
            empty = np.array([], dtype=np.int64)
            return empty.astype(np.int32), empty.astype(np.int32), empty.astype(np.float32)
        replace = n > self._size
        idx = rng.choice(self._size, size=n if replace else min(n, self._size), replace=replace)
        return self._users[idx], self._items[idx], self._ratings[idx]

    def contains_pair(self, user: int, item: int) -> bool:
        key = np.int64(user) * self.n_items + item
        pos = int(np.searchsorted(self._sorted_keys, key))
        return pos < len(self._sorted_keys) and self._sorted_keys[pos] == key

    @property
    def nbytes(self) -> int:
        """Allocated footprint (triplet arrays + dedup index)."""
        return (
            self._users.nbytes
            + self._items.nbytes
            + self._ratings.nbytes
            + self._sorted_keys.nbytes
        )
