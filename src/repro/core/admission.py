"""Enclave-side admission checks for peer contributions (Byzantine defense).

The attestation layer proves a peer runs the *right code*; it cannot
prove the peer's host feeds that code *honest data*.  A compromised
participant can inject shilling profiles, replay-amplify its vote
through sybil identities, or starve the gossip as a free-rider -- all
while presenting a perfectly valid quote.  This module is the data-plane
complement to attestation: pure, deterministic sanity checks the enclave
runs on every decoded peer share before it may touch the store or the
model.

Everything here is a pure function of the share and the
:class:`~repro.core.config.DefenseConfig` bounds -- no randomness, no
I/O -- so arming the defenses never perturbs a run's RNG streams, and a
defended fault-free run is bit-identical to an undefended one.
Rejection reasons are fixed literal strings (they become obs counter
labels and must never embed rated values).

Trusted module: operates on plaintext rating triplets and model states.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import DefenseConfig
from repro.data.dataset import RatingsDataset

__all__ = [
    "REASON_RATING_BOUNDS",
    "REASON_RATING_SKEW",
    "REASON_ITEM_CONCENTRATION",
    "ShareAdmission",
]

#: Literal rejection reasons (obs label values; never data-derived).
REASON_RATING_BOUNDS = "rating_bounds"
REASON_RATING_SKEW = "rating_skew"
REASON_ITEM_CONCENTRATION = "item_concentration"


class ShareAdmission:
    """Per-node admission state: sanity bounds + per-neighbor quotas.

    One instance lives inside each enclave app when defenses are armed.
    ``check_triplets`` / ``check_model_state`` judge a single decoded
    share; ``admit`` applies the per-neighbor volume quota for the
    current round (quotas reset when the round advances).
    """

    def __init__(self, defenses: DefenseConfig, share_points: int):
        self.defenses = defenses
        #: Per-round triplet budget each neighbor may land in the store.
        self.share_quota = max(1, int(round(defenses.quota_factor * share_points)))
        self._round_admitted: dict = {}
        self._round_epoch: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Distribution sanity (raw-data shares)
    # ------------------------------------------------------------------ #
    def check_triplets(self, share: RatingsDataset) -> Optional[str]:
        """Return a literal rejection reason, or ``None`` to admit.

        The layered bounds target the classic shilling signatures: push
        profiles rate everything at the scale maximum (mean out of band,
        near-zero spread) and nuke profiles at the minimum; target
        stuffing concentrates one item across the share.  Honest samples
        of real rating marginals sit far inside all three bounds (pinned
        by property tests), so false rejections cost nothing.
        """
        if len(share) == 0:
            return None
        d = self.defenses
        ratings = share.ratings
        lo = float(ratings.min())
        hi = float(ratings.max())
        if lo < d.min_rating or hi > d.max_rating:
            return REASON_RATING_BOUNDS
        if len(share) < d.min_sanity_points:
            return None  # too small to judge distributionally
        mean = float(ratings.mean())
        if mean < d.min_share_mean or mean > d.max_share_mean:
            return REASON_RATING_SKEW
        if float(ratings.std()) < d.min_share_std:
            return REASON_RATING_SKEW
        counts = np.bincount(share.items, minlength=1)
        if float(counts.max()) > d.max_item_fraction * len(share):
            return REASON_ITEM_CONCENTRATION
        return None

    def check_model_state(self, state) -> Optional[str]:
        """Magnitude bound for model-sharing runs (``None`` to admit)."""
        bound = self.defenses.model_param_bound
        for arr in (state.user_factors, state.item_factors, state.user_bias, state.item_bias):
            values = np.asarray(arr)
            if values.size and float(np.abs(values).max()) > bound:
                return REASON_RATING_SKEW
        return None

    # ------------------------------------------------------------------ #
    # Per-neighbor volume quota
    # ------------------------------------------------------------------ #
    def admit(self, peer: int, epoch: int, points: int) -> int:
        """Points of a ``peer`` share admitted this round (rest truncated).

        The quota bounds how much store growth any one peer identity can
        force per round: duplicate-share floods and oversized injected
        payloads are cut to ``quota_factor * share_points`` triplets.
        """
        if epoch != self._round_epoch:
            self._round_epoch = epoch
            self._round_admitted = {}
        used = self._round_admitted.get(peer, 0)
        allowed = max(0, self.share_quota - used)
        admitted = min(int(points), allowed)
        self._round_admitted[peer] = used + admitted
        return admitted
