"""Per-epoch work statistics reported by each node.

The trusted application cannot time itself against a wall clock (and the
paper's metrics need *modelled* hardware time anyway), so after every
epoch it reports exact work counts through the ``report_stats`` ocall.
The time model turns these counts into per-stage durations, and the
recorder aggregates them into the evaluation's tables and figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["EpochStats"]


@dataclass
class EpochStats:
    """Exact work performed by one node in one epoch."""

    node_id: int
    epoch: int

    # merge stage
    merged_models: int = 0
    merged_rows: int = 0          # embedding rows averaged (MS)
    appended_items: int = 0       # new triplets accepted (DS)
    dedup_checked_items: int = 0  # triplets examined for duplicates (DS)

    # train stage
    train_samples: int = 0

    # share stage
    shared_messages: int = 0         # payload-carrying messages
    shared_empty_messages: int = 0   # 16-byte barrier pings (RMW)
    shared_payload_bytes: int = 0    # wire bytes leaving this node
    serialized_bytes: int = 0        # plaintext content bytes produced
    share_sampled_items: int = 0

    # test stage
    test_rmse: float = float("nan")
    test_samples: int = 0

    # state sizes after the epoch (for memory/EPC accounting)
    store_items: int = 0
    store_bytes: int = 0
    model_bytes: int = 0
    staging_bytes: int = 0    # peak transient merge/share buffers

    # boundary crossings during the epoch (SGX cost model inputs)
    ecalls: int = 0
    ocalls: int = 0
    transition_bytes: int = 0

    def resident_bytes(self) -> int:
        """Peak enclave-resident bytes this epoch."""
        return self.store_bytes + self.model_bytes + self.staging_bytes

    def to_dict(self) -> Dict[str, float]:
        return dict(self.__dict__)
