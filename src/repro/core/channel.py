"""Pairwise secure channels between attested enclaves.

After mutual attestation, each pair of REX nodes shares a 32-byte key
(paper Section III-A).  A :class:`SecureChannel` wraps that key with
ChaCha20-Poly1305, sequence-numbered nonces and replay rejection: the
untrusted host relaying the bytes can neither read, modify, reorder
undetectably, nor replay them.

Wire format of one sealed message: ``u64 seq | ciphertext+tag`` where the
nonce is ``le64(seq) || le32(sender_id)`` -- unique per direction because
each direction has its own monotonically increasing counter.

Replay rejection is strictly monotonic: a frame whose sequence number does
not exceed the highest frame accepted so far raises :class:`ReplayError`,
so duplicated *and* reordered frames are both refused -- the transport
below guarantees per-pair ordering on a healthy LAN, and under injected
faults the enclave treats the error as a recoverable per-neighbor event
(the retransmission schedule or the next epoch covers the gap).  The
high-water mark only advances after the AEAD authenticates the frame, so a
forged sequence number cannot poison the channel state.

:class:`AccountedChannel` is the fidelity knob for huge experiments: the
same 28-byte framing overhead and the same interface, but the payload is
passed through unencrypted so the simulator does not burn hours of real
cipher time.  Its use is confined to experiment configs that declare
``CryptoMode.ACCOUNTED``.
"""

from __future__ import annotations

import struct
from typing import List, Optional

from repro.obs import MetricsRegistry
from repro.tee.crypto.aead import ChaCha20Poly1305, TAG_LENGTH, seal_many_into
from repro.tee.errors import ChannelNotEstablished

__all__ = [
    "ChannelAccounting",
    "SecureChannel",
    "AccountedChannel",
    "PlaintextChannel",
    "CHANNEL_OVERHEAD_BYTES",
    "ReplayError",
    "seal_all",
]

#: Framing bytes added to every sealed payload: 8 (seq) + 16 (tag) + 4 pad.
CHANNEL_OVERHEAD_BYTES = 8 + TAG_LENGTH


class ReplayError(ChannelNotEstablished):
    """A sealed message arrived with a non-monotonic sequence number."""


class ChannelAccounting:
    """Wire-byte accounting shared by every channel flavour.

    The channel is where wire bytes are *produced*, so it is the layer of
    record for the protocol's send-side accounting: the enclave app reads
    :attr:`sealed_bytes` deltas into its :class:`~repro.core.stats.
    EpochStats` instead of re-measuring buffers, and the transport meter
    independently counts *delivery* -- the two views must agree, which a
    regression test pins (no double counting within either layer).
    """

    def _init_accounting(self) -> None:
        self.sealed_messages = 0
        self.sealed_bytes = 0
        self.opened_messages = 0
        self.opened_bytes = 0
        self._metrics: Optional[MetricsRegistry] = None
        self._metric_labels: dict = {}

    def bind_metrics(self, metrics: MetricsRegistry, **labels: object) -> None:
        """Mirror this channel's counters into a shared registry."""
        self._metrics = metrics
        self._metric_labels = dict(labels)

    def _record_seal(self, wire_len: int) -> None:
        self.sealed_messages += 1
        self.sealed_bytes += wire_len
        if self._metrics is not None:
            self._metrics.counter("chan.sealed.bytes", **self._metric_labels).inc(wire_len)
            self._metrics.counter("chan.sealed.messages", **self._metric_labels).inc()

    def _record_open(self, wire_len: int) -> None:
        self.opened_messages += 1
        self.opened_bytes += wire_len
        if self._metrics is not None:
            self._metrics.counter("chan.opened.bytes", **self._metric_labels).inc(wire_len)
            self._metrics.counter("chan.opened.messages", **self._metric_labels).inc()


class SecureChannel(ChannelAccounting):
    """One direction-aware AEAD channel bound to a pairwise key."""

    def __init__(self, key: bytes, local_id: int, peer_id: int):
        self._cipher = ChaCha20Poly1305(key)
        self.local_id = int(local_id)
        self.peer_id = int(peer_id)
        self._send_seq = 0
        self._highest_received = -1
        self._init_accounting()

    @staticmethod
    def _nonce(seq: int, sender_id: int) -> bytes:
        return struct.pack("<QI", seq, sender_id)

    # -- monotonic anti-replay check ----------------------------------- #
    def _replay_check(self, seq: int) -> None:
        """Reject a duplicated or reordered sequence number (pre-decrypt)."""
        if seq <= self._highest_received:
            raise ReplayError(
                f"sequence {seq} does not advance past {self._highest_received} "
                f"(replayed or reordered frame)"
            )

    def _replay_accept(self, seq: int) -> None:
        """Advance the high-water mark; call only after authentication."""
        self._highest_received = seq

    def seal(self, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt ``plaintext``; returns the framed wire bytes."""
        seq = self._send_seq
        self._send_seq += 1
        sealed = self._cipher.encrypt(self._nonce(seq, self.local_id), plaintext, aad)
        wire = struct.pack("<Q", seq) + sealed
        self._record_seal(len(wire))
        return wire

    def open(self, wire: bytes, aad: bytes = b"") -> bytes:
        """Authenticate, replay-check and decrypt a framed message."""
        if len(wire) < 8 + TAG_LENGTH:
            raise ChannelNotEstablished("sealed message too short")
        (seq,) = struct.unpack_from("<Q", wire, 0)
        self._replay_check(seq)
        # Zero-copy handoff: the AEAD consumes ciphertext and tag as views
        # of the framed buffer, so opening never duplicates the payload.
        sealed = memoryview(wire)[8:]
        plaintext = self._cipher.decrypt(self._nonce(seq, self.peer_id), sealed, aad)
        self._replay_accept(seq)
        self._record_open(len(wire))
        return plaintext

    def overhead(self) -> int:
        return CHANNEL_OVERHEAD_BYTES


def seal_all(entries) -> List:
    """Seal one epoch's outgoing messages across many channels at once.

    ``entries`` is a sequence of ``(channel, plaintext, aad)`` tuples in
    send order.  Plain :class:`SecureChannel` instances are gathered into
    one :func:`~repro.tee.crypto.aead.seal_many_into` batch -- a single
    lane-kernel (or native) invocation seals every neighbor's payload --
    while channels that override ``seal`` (:class:`AccountedChannel`,
    :class:`PlaintextChannel`, test doubles) keep their own path, so the
    crypto-fidelity knob is untouched.

    Each frame is assembled exactly once: the sequence number is packed
    into a preallocated buffer and ``ciphertext || tag`` is written
    directly after it, so the returned wire frames (read-only memoryviews
    for batched channels, whatever ``seal`` returned otherwise) are never
    re-joined or recopied on their way to the transport.

    Wire bytes, per-channel sequence numbers, and per-channel accounting
    are identical to calling ``channel.seal`` once per entry in the same
    order -- the pinned wire-digest test is the contract.
    """
    wires: List = [None] * len(entries)
    batch_requests = []
    batch_frames = []
    batch_slots = []
    for i, (channel, plaintext, aad) in enumerate(entries):
        if type(channel) is SecureChannel:
            seq = channel._send_seq
            channel._send_seq += 1
            frame = bytearray(8 + len(plaintext) + TAG_LENGTH)
            struct.pack_into("<Q", frame, 0, seq)
            nonce = SecureChannel._nonce(seq, channel.local_id)
            batch_requests.append((channel._cipher, nonce, plaintext, aad))
            batch_frames.append(frame)
            batch_slots.append(i)
        else:
            wires[i] = channel.seal(plaintext, aad)
    if batch_requests:
        seal_many_into(batch_requests, [memoryview(f)[8:] for f in batch_frames])
        for i, frame in zip(batch_slots, batch_frames):
            channel = entries[i][0]
            channel._record_seal(len(frame))
            wires[i] = memoryview(frame).toreadonly()
    return wires


class AccountedChannel(SecureChannel):
    """Size-faithful channel that skips the cipher work (see module doc)."""

    def __init__(self, key: bytes, local_id: int, peer_id: int):
        super().__init__(key, local_id, peer_id)

    def seal(self, plaintext: bytes, aad: bytes = b"") -> bytes:
        seq = self._send_seq
        self._send_seq += 1
        wire = struct.pack("<Q", seq) + plaintext + b"\x00" * TAG_LENGTH
        self._record_seal(len(wire))
        return wire

    def open(self, wire: bytes, aad: bytes = b"") -> bytes:
        if len(wire) < 8 + TAG_LENGTH:
            raise ChannelNotEstablished("sealed message too short")
        (seq,) = struct.unpack_from("<Q", wire, 0)
        self._replay_check(seq)
        self._replay_accept(seq)
        self._record_open(len(wire))
        return wire[8:-TAG_LENGTH]


class PlaintextChannel(ChannelAccounting):
    """The native (no-SGX) build's channel: plaintext, zero overhead.

    The paper's native baseline transmits in clear -- "both raw data and
    models are therefore vulnerable in this case" (Section IV-D); this
    class exists so the same protocol code runs in both builds.
    """

    def __init__(self, local_id: int, peer_id: int):
        self.local_id = int(local_id)
        self.peer_id = int(peer_id)
        self._init_accounting()

    def seal(self, plaintext: bytes, aad: bytes = b"") -> bytes:
        self._record_seal(len(plaintext))
        return plaintext

    def open(self, wire: bytes, aad: bytes = b"") -> bytes:
        self._record_open(len(wire))
        return wire

    def overhead(self) -> int:
        return 0
