"""A full distributed REX deployment in one process.

Builds the paper's hardware setup as objects: SGX platforms (the paper
uses 4 machines running 2 REX processes each), one enclave + untrusted
host per node, an in-process network, and a topology.  ``run`` pumps
messages until every node has completed the requested number of epochs --
event-driven, exactly like the real system, with the epoch barrier
("a message from all neighbors") enforced inside the enclaves.

Scheduling is owned by the shared :class:`~repro.sim.kernel.EventKernel`
(the default ``driver="kernel"``): each pump cycle registers host relays,
transport ticks and chaos-controller ticks as ordered kernel events, so
the cluster composes with every other event source (fleet epochs, serve
ticks).  The seed's hand-rolled ``while`` loops survive verbatim behind
``driver="legacy"`` as the behavior oracle; a parity regression test pins
byte-identical per-epoch wire traffic and equal RMSE between the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set

from repro.core.config import RexConfig
from repro.core.host import RexHost
from repro.core.stats import EpochStats
from repro.data.dataset import RatingsDataset
from repro.net.topology import Topology
from repro.net.transport import Network
from repro.obs import Observability

if TYPE_CHECKING:  # pragma: no cover - annotation-only (cycle: sim -> core)
    from repro.sim.kernel import EventKernel
from repro.tee.attestation import AttestationService
from repro.tee.enclave import Platform
from repro.tee.epc import EpcModel

__all__ = ["RexCluster", "ClusterRun"]


@dataclass
class ClusterRun:
    """Everything a run produced, ready for the time/cost models."""

    config: RexConfig
    secure: bool
    topology: Topology
    #: per-node list of per-epoch stats
    node_stats: Dict[int, List[EpochStats]]
    total_network_bytes: int
    total_network_messages: int
    attestation_messages: int
    epc: EpcModel

    def stats_for_epoch(self, epoch: int) -> List[EpochStats]:
        return [
            stats[epoch]
            for stats in self.node_stats.values()
            if epoch < len(stats)
        ]

    @property
    def epochs_completed(self) -> int:
        return min(len(stats) for stats in self.node_stats.values())


class RexCluster:
    """Build and run a distributed REX deployment."""

    def __init__(
        self,
        topology: Topology,
        config: RexConfig,
        *,
        secure: bool = True,
        nodes_per_machine: int = 2,
        epc: Optional[EpcModel] = None,
        obs: Optional[Observability] = None,
    ):
        self.topology = topology
        self.config = config
        self.secure = secure
        self.obs = obs
        metrics = obs.metrics if obs is not None else None
        n_nodes = topology.n_nodes
        n_machines = (n_nodes + nodes_per_machine - 1) // nodes_per_machine
        self.epc = epc if epc is not None else EpcModel(enclaves_per_machine=nodes_per_machine)

        self.attestation_service = AttestationService()
        self.platforms = [
            Platform(
                f"sgx-machine-{m}", self.attestation_service, epc=self.epc, metrics=metrics
            )
            for m in range(n_machines)
        ]
        self.network = Network(metrics)
        self.hosts: List[RexHost] = []
        for node in range(n_nodes):
            platform = self.platforms[node // nodes_per_machine]
            endpoint = self.network.endpoint(node)
            self.hosts.append(RexHost(node, platform, endpoint))
        #: Nodes whose process is currently dead (see :meth:`crash_node`).
        self.crashed: Set[int] = set()
        #: Optional chaos hook called once per tolerant pump iteration with
        #: this cluster; :mod:`repro.faults` installs its controller here.
        self.controller: Optional[object] = None
        #: The event kernel that drove the most recent ``run`` (``None``
        #: before the first run or after a legacy-driver run).
        self.kernel: Optional["EventKernel"] = None

    def bootstrap(
        self,
        train_shards: Sequence[RatingsDataset],
        test_shards: Sequence[RatingsDataset],
        *,
        global_mean: float = 3.5,
    ) -> None:
        if len(train_shards) != self.topology.n_nodes:
            raise ValueError("one train shard per node required")
        for host in self.hosts:
            host.bootstrap(
                self.config,
                train_shards[host.node_id],
                test_shards[host.node_id],
                self.topology.neighbors(host.node_id),
                secure=self.secure,
                global_mean=global_mean,
            )

    # ------------------------------------------------------------------ #
    # Byzantine surface (driven by the chaos runner)
    # ------------------------------------------------------------------ #
    def arm_attacks(self, roles: Dict[int, dict]) -> None:
        """Assign scripted attacker personas to hosts before bootstrap.

        ``roles`` maps node id -> role dict (``persona`` plus persona
        parameters).  Sybil roles additionally get their clone network
        identities registered here -- the compromised host owns real
        transport endpoints for them, exactly like a machine running
        extra fake processes.
        """
        for node, role in roles.items():
            host = self.hosts[int(node)]
            host.attack_role = dict(role)
            if role.get("persona") == "sybil":
                for clone in role.get("clones", ()):
                    clone = int(clone)
                    host.sybil_endpoints[clone] = self.network.endpoint(clone)

    # ------------------------------------------------------------------ #
    # Serving (after training)
    # ------------------------------------------------------------------ #
    def serving_endpoint(self, node_id: int, *, policy=None, costs=None):
        """Publish ``node_id``'s trained model and wrap its enclave in a
        :class:`repro.serve.server.RecServer` admission front-end.

        The snapshot never leaves the enclave: publication is an ecall
        that freezes the live model in place, and the returned server
        talks to the same enclave through ``ecall_serve``.
        """
        from repro.serve.server import RecServer

        node_id = int(node_id)
        if node_id in self.crashed:
            raise RuntimeError(f"node {node_id} is crashed; restart it before serving")
        host = self.hosts[node_id]
        host.publish_snapshot()
        metrics = self.obs.metrics if self.obs is not None else None
        return RecServer(
            host.enclave,
            policy=policy,
            costs=costs,
            epc=self.epc,
            metrics=metrics,
        )

    # ------------------------------------------------------------------ #
    # Churn surface (driven by the chaos controller)
    # ------------------------------------------------------------------ #
    def crash_node(self, node_id: int) -> None:
        """Kill ``node_id``: its traffic drops, its enclave state is lost,
        and live neighbors are notified so they stop waiting for it."""
        node_id = int(node_id)
        self.crashed.add(node_id)
        self.network.set_down(node_id)
        if self.config.faults.enabled:
            for host in self.hosts:
                if host.node_id != node_id and host.node_id not in self.crashed:
                    host.notify_peer_down(node_id)

    def restart_node(
        self,
        node_id: int,
        train: RatingsDataset,
        test: RatingsDataset,
        *,
        global_mean: float = 3.5,
        resume_epoch: Optional[int] = None,
    ) -> None:
        """Bring a crashed node back with a fresh enclave incarnation.

        ``resume_epoch`` defaults to the most advanced live node's epoch,
        so the reborn node rejoins the current round instead of replaying
        history its neighbors would reject as stale.
        """
        node_id = int(node_id)
        if resume_epoch is None:
            live_epochs = [
                host.epoch_stats[-1].epoch + 1
                for host in self.hosts
                if host.node_id != node_id and host.epoch_stats
            ]
            resume_epoch = max(live_epochs, default=0)
        resume_epoch = min(int(resume_epoch), self.config.epochs - 1)
        self.network.set_up(node_id)
        self.crashed.discard(node_id)
        host = self.hosts[node_id]
        host.restart(
            self.config,
            train,
            test,
            self.topology.neighbors(node_id),
            secure=self.secure,
            global_mean=global_mean,
            resume_epoch=resume_epoch,
        )

    def run(
        self,
        train_shards: Sequence[RatingsDataset],
        test_shards: Sequence[RatingsDataset],
        *,
        global_mean: float = 3.5,
        driver: str = "kernel",
    ) -> ClusterRun:
        """Bootstrap and pump until every node completed ``config.epochs``.

        ``driver="kernel"`` (default) schedules pump cycles, transport
        ticks and chaos ticks as :class:`~repro.sim.kernel.EventKernel`
        events; ``driver="legacy"`` runs the seed's hand-rolled loops.
        Both execute the identical work in the identical order -- the
        kernel parity regression test pins byte-identical wire traffic
        and equal RMSE between them.
        """
        if driver not in ("kernel", "legacy"):
            raise ValueError(f"unknown driver {driver!r}; use 'kernel' or 'legacy'")
        self.bootstrap(train_shards, test_shards, global_mean=global_mean)

        target = self.config.epochs
        if driver == "legacy":
            self.kernel = None
            if self.config.faults.enabled:
                self._pump_tolerant(target)
            else:
                self._pump_strict(target)
        elif self.config.faults.enabled:
            self._pump_tolerant_kernel(target)
        else:
            self._pump_strict_kernel(target)
        return ClusterRun(
            config=self.config,
            secure=self.secure,
            topology=self.topology,
            node_stats={host.node_id: host.epoch_stats for host in self.hosts},
            total_network_bytes=self.network.meter.total_bytes,
            total_network_messages=self.network.meter.total_messages,
            attestation_messages=self.network.meter.kind_messages.get("quote", 0),
            epc=self.epc,
        )

    def _pump_strict(self, target: int) -> None:
        """The seed's healthy-LAN loop: any quiescent gap is a fatal stall."""
        while True:
            moved = 0
            done = True
            for host in self.hosts:
                moved += host.pump()
                if len(host.epoch_stats) < target:
                    done = False
            if done:
                break
            if moved == 0:
                laggards = [
                    host.node_id for host in self.hosts if len(host.epoch_stats) < target
                ]
                raise RuntimeError(
                    f"protocol stalled: no messages in flight but nodes {laggards} "
                    f"have not reached epoch {target}"
                )

    def _node_done(self, host: RexHost, target: int) -> bool:
        # A restarted node skips the epochs it was dead for, so count by the
        # last *reported* epoch, not by how many reports accumulated.
        return bool(host.epoch_stats) and host.epoch_stats[-1].epoch + 1 >= target

    def _pump_tolerant(self, target: int) -> None:
        """Pump + tick loop that survives faults and diagnoses real stalls.

        Each iteration relays inbound messages, advances simulated network
        time (releasing delayed frames and scheduled retries) and the
        enclaves' barrier-patience clocks, and lets the chaos controller
        inject crashes/restarts.  Permanently crashed nodes are exempt from
        the completion condition; a window with no activity of any kind for
        longer than the patience budget is a genuine stall and raises with
        a diagnosis instead of spinning.
        """
        patience = self.config.faults.barrier_patience_ticks
        idle = 0
        while True:
            if self.controller is not None:
                self.controller.on_tick(self)
            moved = 0
            done = True
            for host in self.hosts:
                if host.node_id in self.crashed:
                    continue
                moved += host.pump()
                if not self._node_done(host, target):
                    done = False
            if done and self.controller is not None:
                # A scheduled restart is known future work: keep pumping so
                # the reborn node gets to rejoin and finish, instead of
                # declaring victory while a churn event is still pending.
                done = not getattr(self.controller, "pending_work", lambda: False)()
            if done:
                break
            flushed = self.network.tick()
            forced = 0
            for host in self.hosts:
                if host.node_id not in self.crashed and not self._node_done(host, target):
                    forced += host.tick()
            if moved or flushed or forced or self.network.in_flight:
                idle = 0
                continue
            idle += 1
            if idle > patience + 8:
                raise self._stall_error(idle, target)

    def _stall_error(self, idle: int, target: int) -> RuntimeError:
        laggards = {
            host.node_id: (host.epoch_stats[-1].epoch + 1 if host.epoch_stats else 0)
            for host in self.hosts
            if host.node_id not in self.crashed and not self._node_done(host, target)
        }
        return RuntimeError(
            f"chaos run stalled: no deliveries, retries or forced rounds for "
            f"{idle} ticks; laggards (node: epoch) {laggards}, crashed nodes "
            f"{sorted(self.crashed)}, target epoch {target}, "
            f"{self.network.in_flight} frames in flight"
        )

    # ------------------------------------------------------------------ #
    # Kernel-driven scheduling (the default driver)
    # ------------------------------------------------------------------ #
    def _pump_strict_kernel(self, target: int) -> None:
        """The strict loop re-expressed as recurring ``cluster.pump``
        events: one kernel event per healthy-LAN pump cycle, identical
        work in identical order (parity-pinned against the legacy loop)."""
        from repro.sim.kernel import EventKernel

        kernel = self.kernel = EventKernel()

        def cycle() -> None:
            moved = 0
            done = True
            for host in self.hosts:
                moved += host.pump()
                if len(host.epoch_stats) < target:
                    done = False
            if done:
                return
            if moved == 0:
                laggards = [
                    host.node_id for host in self.hosts if len(host.epoch_stats) < target
                ]
                raise RuntimeError(
                    f"protocol stalled: no messages in flight but nodes {laggards} "
                    f"have not reached epoch {target}"
                )
            kernel.after(1.0, cycle, kind="cluster.pump", key=())

        kernel.at(0.0, cycle, kind="cluster.pump", key=())
        kernel.run()

    def _pump_tolerant_kernel(self, target: int) -> None:
        """The tolerant loop decomposed into per-tick kernel events.

        Each simulated tick registers four same-timestamp events whose
        keys pin the legacy iteration order: the chaos controller fires
        first (``faults.tick``), then host relays (``cluster.pump``),
        then the transport clock (``net.tick`` -- delayed frames and
        scheduled retries), then the enclaves' barrier-patience clocks
        (``cluster.node_tick``), which also does the idle/stall
        accounting and schedules the next tick's events.
        """
        from repro.sim.kernel import EventKernel

        patience = self.config.faults.barrier_patience_ticks
        kernel = self.kernel = EventKernel()
        state = {"idle": 0, "stop": False, "moved": 0, "flushed": 0}

        def fault_tick() -> None:
            if self.controller is not None:
                self.controller.on_tick(self)

        def pump() -> None:
            moved = 0
            done = True
            for host in self.hosts:
                if host.node_id in self.crashed:
                    continue
                moved += host.pump()
                if not self._node_done(host, target):
                    done = False
            if done and self.controller is not None:
                # A scheduled restart is known future work: keep pumping so
                # the reborn node gets to rejoin and finish, instead of
                # declaring victory while a churn event is still pending.
                done = not getattr(self.controller, "pending_work", lambda: False)()
            state["moved"] = moved
            state["stop"] = done

        def net_tick() -> None:
            if state["stop"]:
                return
            state["flushed"] = self.network.tick()

        def node_tick() -> None:
            if state["stop"]:
                return
            forced = 0
            for host in self.hosts:
                if host.node_id not in self.crashed and not self._node_done(host, target):
                    forced += host.tick()
            if state["moved"] or state["flushed"] or forced or self.network.in_flight:
                state["idle"] = 0
            else:
                state["idle"] += 1
                if state["idle"] > patience + 8:
                    raise self._stall_error(state["idle"], target)
            schedule_tick(kernel.now + 1.0)

        def schedule_tick(at: float) -> None:
            state["moved"] = 0
            state["flushed"] = 0
            kernel.at(at, fault_tick, kind="faults.tick", key=(0,))
            kernel.at(at, pump, kind="cluster.pump", key=(1,))
            kernel.at(at, net_tick, kind="net.tick", key=(2,))
            kernel.at(at, node_tick, kind="cluster.node_tick", key=(3,))

        schedule_tick(0.0)
        kernel.run()
