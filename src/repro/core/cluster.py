"""A full distributed REX deployment in one process.

Builds the paper's hardware setup as objects: SGX platforms (the paper
uses 4 machines running 2 REX processes each), one enclave + untrusted
host per node, an in-process network, and a topology.  ``run`` pumps
messages until every node has completed the requested number of epochs --
event-driven, exactly like the real system, with the epoch barrier
("a message from all neighbors") enforced inside the enclaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.config import RexConfig
from repro.core.host import RexHost
from repro.core.stats import EpochStats
from repro.data.dataset import RatingsDataset
from repro.net.topology import Topology
from repro.net.transport import Network
from repro.obs import Observability
from repro.tee.attestation import AttestationService
from repro.tee.enclave import Platform
from repro.tee.epc import EpcModel

__all__ = ["RexCluster", "ClusterRun"]


@dataclass
class ClusterRun:
    """Everything a run produced, ready for the time/cost models."""

    config: RexConfig
    secure: bool
    topology: Topology
    #: per-node list of per-epoch stats
    node_stats: Dict[int, List[EpochStats]]
    total_network_bytes: int
    total_network_messages: int
    attestation_messages: int
    epc: EpcModel

    def stats_for_epoch(self, epoch: int) -> List[EpochStats]:
        return [
            stats[epoch]
            for stats in self.node_stats.values()
            if epoch < len(stats)
        ]

    @property
    def epochs_completed(self) -> int:
        return min(len(stats) for stats in self.node_stats.values())


class RexCluster:
    """Build and run a distributed REX deployment."""

    def __init__(
        self,
        topology: Topology,
        config: RexConfig,
        *,
        secure: bool = True,
        nodes_per_machine: int = 2,
        epc: Optional[EpcModel] = None,
        obs: Optional[Observability] = None,
    ):
        self.topology = topology
        self.config = config
        self.secure = secure
        self.obs = obs
        metrics = obs.metrics if obs is not None else None
        n_nodes = topology.n_nodes
        n_machines = (n_nodes + nodes_per_machine - 1) // nodes_per_machine
        self.epc = epc if epc is not None else EpcModel(enclaves_per_machine=nodes_per_machine)

        self.attestation_service = AttestationService()
        self.platforms = [
            Platform(
                f"sgx-machine-{m}", self.attestation_service, epc=self.epc, metrics=metrics
            )
            for m in range(n_machines)
        ]
        self.network = Network(metrics)
        self.hosts: List[RexHost] = []
        for node in range(n_nodes):
            platform = self.platforms[node // nodes_per_machine]
            endpoint = self.network.endpoint(node)
            self.hosts.append(RexHost(node, platform, endpoint))

    def bootstrap(
        self,
        train_shards: Sequence[RatingsDataset],
        test_shards: Sequence[RatingsDataset],
        *,
        global_mean: float = 3.5,
    ) -> None:
        if len(train_shards) != self.topology.n_nodes:
            raise ValueError("one train shard per node required")
        for host in self.hosts:
            host.bootstrap(
                self.config,
                train_shards[host.node_id],
                test_shards[host.node_id],
                self.topology.neighbors(host.node_id),
                secure=self.secure,
                global_mean=global_mean,
            )

    def run(
        self,
        train_shards: Sequence[RatingsDataset],
        test_shards: Sequence[RatingsDataset],
        *,
        global_mean: float = 3.5,
    ) -> ClusterRun:
        """Bootstrap and pump until every node completed ``config.epochs``."""
        self.bootstrap(train_shards, test_shards, global_mean=global_mean)

        target = self.config.epochs
        while True:
            moved = 0
            done = True
            for host in self.hosts:
                moved += host.pump()
                if len(host.epoch_stats) < target:
                    done = False
            if done:
                break
            if moved == 0:
                laggards = [
                    host.node_id for host in self.hosts if len(host.epoch_stats) < target
                ]
                raise RuntimeError(
                    f"protocol stalled: no messages in flight but nodes {laggards} "
                    f"have not reached epoch {target}"
                )
        return ClusterRun(
            config=self.config,
            secure=self.secure,
            topology=self.topology,
            node_stats={host.node_id: host.epoch_stats for host in self.hosts},
            total_network_bytes=self.network.meter.total_bytes,
            total_network_messages=self.network.meter.total_messages,
            attestation_messages=self.network.meter.kind_messages.get("quote", 0),
            epc=self.epc,
        )
