"""REX core: the paper's contribution.

- :mod:`~repro.core.config` -- the experiment vocabulary (REX/MS, RMW/
  D-PSGD, MF/DNN).
- :mod:`~repro.core.app` -- the trusted enclave application
  (Algorithm 2): attestation, secure channels, and the merge / train /
  share / test protocol with the raw-data-sharing fast path.
- :mod:`~repro.core.host` -- the untrusted runtime (Algorithm 1).
- :mod:`~repro.core.cluster` -- a full multi-platform deployment.
- :mod:`~repro.core.store` -- the deduplicating protected data store.
- :mod:`~repro.core.channel` -- AEAD channels with replay protection.
"""

# Enclave-internal classes (SecureChannel, AccountedChannel,
# PlaintextChannel, DataStore) are deliberately NOT re-exported here:
# the package namespace is importable from host-side code, and
# re-exporting them would launder secret-bearing names past the
# REX-B001 boundary rule.  Trusted code imports them from their home
# modules directly.
from repro.core.app import RexEnclaveApp
from repro.core.channel import ReplayError
from repro.core.cluster import ClusterRun, RexCluster
from repro.core.config import (
    CryptoMode,
    Dissemination,
    FaultToleranceConfig,
    ModelKind,
    RexConfig,
    SharingScheme,
)
from repro.core.host import RexHost
from repro.core.stats import EpochStats

__all__ = [
    "ClusterRun",
    "CryptoMode",
    "Dissemination",
    "EpochStats",
    "FaultToleranceConfig",
    "ModelKind",
    "ReplayError",
    "RexCluster",
    "RexConfig",
    "RexEnclaveApp",
    "RexHost",
    "SharingScheme",
]
