"""REX core: the paper's contribution.

- :mod:`~repro.core.config` -- the experiment vocabulary (REX/MS, RMW/
  D-PSGD, MF/DNN).
- :mod:`~repro.core.app` -- the trusted enclave application
  (Algorithm 2): attestation, secure channels, and the merge / train /
  share / test protocol with the raw-data-sharing fast path.
- :mod:`~repro.core.host` -- the untrusted runtime (Algorithm 1).
- :mod:`~repro.core.cluster` -- a full multi-platform deployment.
- :mod:`~repro.core.store` -- the deduplicating protected data store.
- :mod:`~repro.core.channel` -- AEAD channels with replay protection.
"""

from repro.core.app import RexEnclaveApp
from repro.core.channel import (
    AccountedChannel,
    PlaintextChannel,
    ReplayError,
    SecureChannel,
)
from repro.core.cluster import ClusterRun, RexCluster
from repro.core.config import (
    CryptoMode,
    Dissemination,
    ModelKind,
    RexConfig,
    SharingScheme,
)
from repro.core.host import RexHost
from repro.core.stats import EpochStats
from repro.core.store import DataStore

__all__ = [
    "AccountedChannel",
    "ClusterRun",
    "CryptoMode",
    "DataStore",
    "Dissemination",
    "EpochStats",
    "ModelKind",
    "PlaintextChannel",
    "ReplayError",
    "RexCluster",
    "RexConfig",
    "RexEnclaveApp",
    "RexHost",
    "SecureChannel",
    "SharingScheme",
]
