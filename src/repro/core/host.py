"""The untrusted host runtime -- the paper's Algorithm 1.

The host owns everything an enclave must not: the network endpoint, the
dataset files and the bootstrap sequence.  It relays inbound messages into
the enclave (``ecall_input``), proxies outbound sends and quoting requests
as ocalls, and collects the per-epoch statistics the trusted code reports.
It never sees a decrypted payload in the secure build.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.app import RexEnclaveApp
from repro.core.config import RexConfig
from repro.core.stats import EpochStats
from repro.data.dataset import RatingsDataset
from repro.net.serialization import encode_triplets
from repro.net.transport import Endpoint
from repro.tee.enclave import Platform
from repro.tee.errors import UnknownOcall

__all__ = ["RexHost"]


class RexHost:
    """Bootstrap + I/O relay for one REX node (Algorithm 1)."""

    def __init__(
        self,
        node_id: int,
        platform: Platform,
        endpoint: Endpoint,
        *,
        on_stats: Optional[Callable[[EpochStats], None]] = None,
    ):
        self.node_id = node_id
        self.platform = platform
        self.endpoint = endpoint
        self.enclave = platform.create_enclave(RexEnclaveApp, f"rex-node-{node_id}")
        self.epoch_stats: List[EpochStats] = []
        #: Incarnation counter; bumped by :meth:`restart` after a crash.
        self.boot = 0
        #: Scripted Byzantine persona for chaos runs (``None`` = honest);
        #: assigned by :meth:`RexCluster.arm_attacks` before bootstrap.
        self.attack_role: Optional[dict] = None
        #: Extra network identities a sybil-compromised host controls
        #: (clone id -> endpoint); the ``send_as`` ocall routes over them.
        self.sybil_endpoints: Dict[int, Endpoint] = {}
        self._on_stats = on_stats
        self._counter_mark = self.enclave.counters.snapshot()
        self._register_ocalls()

    def _register_ocalls(self) -> None:
        self.enclave.register_ocall("send_message", self._ocall_send)
        self.enclave.register_ocall("get_quote", self.enclave.get_quote)
        self.enclave.register_ocall("report_stats", self._ocall_report_stats)
        self.enclave.register_ocall("send_as", self._ocall_send_as)

    # ------------------------------------------------------------------ #
    # Ocall proxies
    # ------------------------------------------------------------------ #
    def _ocall_send(self, destination: int, kind: str, payload: bytes) -> None:
        self.endpoint.send(int(destination), payload, kind=kind)

    def _ocall_send_as(self, source: int, destination: int, kind: str, payload: bytes) -> None:
        """Send under a cloned identity (sybil persona hosts only).

        An honest host owns exactly one network identity; only a
        compromised host armed with clone endpoints can satisfy this, so
        it fails loudly everywhere else.
        """
        endpoint = self.sybil_endpoints.get(int(source))
        if endpoint is None:
            raise UnknownOcall(f"host {self.node_id} owns no network identity {source}")
        endpoint.send(int(destination), payload, kind=kind)

    # Sanctioned boundary exception: EpochStats carries only aggregate
    # telemetry (counts, byte totals, RMSE) -- never raw triplets or key
    # material -- and the paper's evaluation depends on exporting it.
    def _ocall_report_stats(self, stats: EpochStats) -> None:  # repro-lint: disable=REX-B004
        # Attach the boundary-crossing counts accumulated since the last
        # report; the SGX cost model charges transitions from these.
        counters = self.enclave.counters.snapshot()
        delta = counters.delta(self._counter_mark)
        self._counter_mark = counters
        stats.ecalls = delta.ecalls
        stats.ocalls = delta.ocalls
        stats.transition_bytes = delta.ecall_bytes + delta.ocall_bytes
        self.epoch_stats.append(stats)
        if self._on_stats is not None:
            self._on_stats(stats)

    # ------------------------------------------------------------------ #
    # Lifecycle (Algorithm 1 lines 1-6)
    # ------------------------------------------------------------------ #
    def bootstrap(
        self,
        config: RexConfig,
        train: RatingsDataset,
        test: RatingsDataset,
        neighbors,
        *,
        secure: bool,
        global_mean: float = 3.5,
        resume_epoch: int = 0,
    ) -> None:
        """Read the shard, start the enclave, trigger ``ecall_init``."""
        init_args = {
            "node_id": self.node_id,
            "neighbors": tuple(int(n) for n in neighbors),
            "config": config,
            "train": encode_triplets(train),
            "test": encode_triplets(test),
            "n_users": train.n_users,
            "n_items": train.n_items,
            "global_mean": global_mean,
            "secure": secure,
        }
        # First-boot init args stay byte-identical to the seed runtime; the
        # restart-only keys ride along only when they carry information.
        if self.boot:
            init_args["boot"] = self.boot
            init_args["resume_epoch"] = int(resume_epoch)
        if self.attack_role is not None:
            init_args["attack"] = dict(self.attack_role)
        self.enclave.ecall("ecall_init", init_args)

    def restart(
        self,
        config: RexConfig,
        train: RatingsDataset,
        test: RatingsDataset,
        neighbors,
        *,
        secure: bool,
        global_mean: float = 3.5,
        resume_epoch: int = 0,
    ) -> None:
        """Re-create the enclave after a crash and rejoin the gossip.

        The old enclave's in-memory state (store growth, model, channel
        keys) is lost, exactly like a process kill: the new incarnation
        re-reads its local shard, derives a fresh DH key (so neighbors
        re-attest) and resumes at ``resume_epoch``.
        """
        self.boot += 1
        self.enclave = self.platform.create_enclave(
            RexEnclaveApp, f"rex-node-{self.node_id}.boot{self.boot}"
        )
        self._counter_mark = self.enclave.counters.snapshot()
        self._register_ocalls()
        self.bootstrap(
            config,
            train,
            test,
            neighbors,
            secure=secure,
            global_mean=global_mean,
            resume_epoch=resume_epoch,
        )

    def pump(self) -> int:
        """Relay all pending inbound messages into the enclave."""
        messages = self.endpoint.poll()
        for message in messages:
            self.enclave.ecall("ecall_input", message.source, message.kind, message.payload)
        return len(messages)

    def tick(self) -> int:
        """Advance the enclave's barrier-patience clock (tolerance mode)."""
        return int(self.enclave.ecall("ecall_tick"))

    def notify_peer_down(self, peer: int) -> None:
        """Tell the enclave a neighbor's process died (crash fault)."""
        self.enclave.ecall("ecall_peer_down", int(peer))

    def status(self) -> Dict:
        return self.enclave.ecall("ecall_status")

    # ------------------------------------------------------------------ #
    # Serving (after or between training epochs)
    # ------------------------------------------------------------------ #
    def publish_snapshot(self) -> Dict:
        """Freeze the trained model for serving; returns sanitized meta."""
        return self.enclave.ecall("ecall_publish_snapshot")

    def serve(self, users, k: int, version: Optional[int] = None) -> Dict:
        """Direct (unqueued) top-``k`` query batch against the enclave.

        ``version`` addresses an older published snapshot -- the stale-
        replay surface; the enclave refuses rollbacks when defenses are
        armed.  Omitted, the call shape matches the seed runtime exactly.
        """
        if version is None:
            return self.enclave.ecall("ecall_serve", [int(u) for u in users], int(k))
        return self.enclave.ecall(
            "ecall_serve", [int(u) for u in users], int(k), int(version)
        )
