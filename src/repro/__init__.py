"""REX: TEE-based decentralized recommender systems -- full reproduction.

This library reproduces the IPDPS 2022 paper *"TEE-based decentralized
recommender systems: The raw data sharing redemption"* (Dhasade, Dresevic,
Kermarrec, Pires -- EPFL).  REX is a decentralized collaborative-filtering
recommender in which SGX enclaves let nodes share **raw rating triplets**
instead of model parameters, converging to the same accuracy dramatically
faster and with ~2 orders of magnitude less traffic, while attestation and
sealed channels keep the raw data private end to end.

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.core` -- the REX protocol: trusted enclave app, untrusted
  host, secure channels, deduplicating data store, cluster deployment.
- :mod:`repro.tee`  -- the SGX substrate: enclaves, measurement,
  attestation chain, EPC model, cost model, from-scratch crypto.
- :mod:`repro.ml`   -- matrix factorization and the 215k-parameter DNN
  recommender with decentralized merge rules.
- :mod:`repro.data` -- synthetic MovieLens datasets and partitioners.
- :mod:`repro.net`  -- topologies, transport, wire codecs.
- :mod:`repro.sim`  -- fleet simulators, time/cost models, experiment
  presets for every paper table and figure.
- :mod:`repro.analysis` -- table builders and text rendering.

Quickstart::

    from repro import (RexConfig, SharingScheme, Dissemination,
                       generate_movielens, MOVIELENS_LATEST)
    from repro.data import partition_users_across_nodes
    from repro.net import Topology
    from repro.sim import MfFleetSim

    split = generate_movielens(MOVIELENS_LATEST, seed=42).split(0.7)
    train = partition_users_across_nodes(split.train, 16)
    test = partition_users_across_nodes(split.test, 16)
    config = RexConfig(scheme=SharingScheme.DATA,
                       dissemination=Dissemination.DPSGD, epochs=50)
    result = MfFleetSim(train, test, Topology.small_world(16, k=4),
                        config, global_mean=split.train.global_mean()).run()
    print(result.final_rmse, result.total_bytes)
"""

from repro.core import (
    CryptoMode,
    Dissemination,
    ModelKind,
    RexCluster,
    RexConfig,
    RexEnclaveApp,
    RexHost,
    SharingScheme,
)
from repro.data import (
    MOVIELENS_25M_CAPPED,
    MOVIELENS_LATEST,
    MovieLensSpec,
    RatingsDataset,
    generate_movielens,
)
from repro.ml import DnnRecommender, MatrixFactorization, MfHyperParams, rmse
from repro.net import Topology
from repro.sim import DnnFleetSim, MfFleetSim, RunResult, run_centralized
from repro.tee import AttestationService, Enclave, Platform

__version__ = "1.0.0"

__all__ = [
    "AttestationService",
    "CryptoMode",
    "Dissemination",
    "DnnFleetSim",
    "DnnRecommender",
    "Enclave",
    "MatrixFactorization",
    "MfFleetSim",
    "MfHyperParams",
    "ModelKind",
    "MOVIELENS_25M_CAPPED",
    "MOVIELENS_LATEST",
    "MovieLensSpec",
    "Platform",
    "RatingsDataset",
    "RexCluster",
    "RexConfig",
    "RexEnclaveApp",
    "RexHost",
    "RunResult",
    "SharingScheme",
    "Topology",
    "generate_movielens",
    "rmse",
    "run_centralized",
    "__version__",
]
