"""Run one observed experiment and export ``metrics.json``.

This is the machinery behind ``python -m repro metrics``: it executes
the *distributed* protocol path (:class:`~repro.core.cluster.RexCluster`
with enclaves, attestation and byte-accounted channels), replays the
reported work through the LAN :class:`~repro.sim.time_model.StageTimer`,
and serializes everything the run observed -- per-stage spans, EPC
page-fault counters, per-edge traffic -- into one machine-readable
document CI can archive and gate on.

Document layout (``schema: repro.metrics/v1``)::

    {
      "schema": "repro.metrics/v1",
      "experiment": "fig1", "smoke": true,
      "config": {...},                     # scenario knobs
      "summary": {final_rmse, total_time_s, total_bytes, epochs, ...},
      "counters": [...], "gauges": [...], "histograms": [...],
      "spans": [...],                      # tracer JSONL objects
      "edges": [{"src": 0, "dst": 1, "bytes": n, "messages": m}, ...]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.cluster import RexCluster
from repro.core.config import CryptoMode, Dissemination, RexConfig, SharingScheme
from repro.data.movielens import MovieLensSpec, generate_movielens
from repro.data.partition import partition_users_across_nodes
from repro.ml.mf import MfHyperParams
from repro.net.topology import Topology
from repro.obs import Observability
from repro.sim.distributed import timeline_from_cluster
from repro.sim.recorder import RunResult
from repro.sim.time_model import LAN_TIME_MODEL

__all__ = [
    "METRICS_SCHEMA",
    "ObservedRun",
    "SMOKE_SCENARIO",
    "FULL_SCENARIOS",
    "run_observed_experiment",
    "build_metrics_document",
    "write_metrics_json",
]

METRICS_SCHEMA = "repro.metrics/v1"


@dataclass(frozen=True)
class Scenario:
    """Scenario knobs for one observed cluster run."""

    users: int
    items: int
    ratings: int
    nodes: int
    epochs: int
    share_points: int
    k: int
    dissemination: Dissemination = Dissemination.DPSGD
    scheme: SharingScheme = SharingScheme.DATA

    def as_dict(self) -> Dict[str, object]:
        return {
            "users": self.users,
            "items": self.items,
            "ratings": self.ratings,
            "nodes": self.nodes,
            "epochs": self.epochs,
            "share_points": self.share_points,
            "k": self.k,
            "dissemination": self.dissemination.value,
            "scheme": self.scheme.value,
        }


#: CI benchmark-smoke scenario: small enough to finish in seconds yet
#: large enough for the MF model to converge below the RMSE gate.
SMOKE_SCENARIO = Scenario(
    users=40, items=120, ratings=1_600, nodes=6, epochs=30, share_points=300, k=8
)

#: Full (non-smoke) scenarios, loosely following the paper's setups but
#: sized for a workstation rather than the 8-machine SGX testbed.
FULL_SCENARIOS: Dict[str, Scenario] = {
    "fig1": Scenario(
        users=200, items=1_000, ratings=30_000, nodes=20, epochs=40,
        share_points=300, k=10,
    ),
    "sgx": Scenario(
        users=200, items=1_000, ratings=30_000, nodes=8, epochs=40,
        share_points=300, k=10,
    ),
}


@dataclass
class ObservedRun:
    """Everything ``repro metrics`` produces before serialization."""

    experiment: str
    smoke: bool
    scenario: Scenario
    result: RunResult
    obs: Observability
    cluster: RexCluster


def run_observed_experiment(
    experiment: str,
    *,
    smoke: bool = False,
    seed: int = 0,
    obs: Optional[Observability] = None,
) -> ObservedRun:
    """Execute one fully-observed distributed run.

    The cluster always runs *secure* (enclaves + attestation) with
    :data:`~repro.core.config.CryptoMode.ACCOUNTED` channels, so the
    exported document carries every metric family: enclave transitions,
    EPC paging, per-edge traffic, and the per-stage span timeline.
    """
    if experiment not in FULL_SCENARIOS:
        raise ValueError(
            f"unknown experiment {experiment!r}; choose from {sorted(FULL_SCENARIOS)}"
        )
    scenario = SMOKE_SCENARIO if smoke else FULL_SCENARIOS[experiment]
    if obs is None:
        obs = Observability.create()

    spec = MovieLensSpec(
        name=f"metrics-{scenario.users}u",
        n_ratings=scenario.ratings,
        n_items=scenario.items,
        n_users=scenario.users,
        last_updated=2020,
    )
    split = generate_movielens(spec, seed=42).split(0.7, seed=1)
    train = partition_users_across_nodes(split.train, scenario.nodes, seed=2)
    test = partition_users_across_nodes(split.test, scenario.nodes, seed=2)
    topo = Topology.fully_connected(scenario.nodes)

    config = RexConfig(
        scheme=scenario.scheme,
        dissemination=scenario.dissemination,
        epochs=scenario.epochs,
        share_points=scenario.share_points,
        seed=seed,
        crypto_mode=CryptoMode.ACCOUNTED,
        mf=MfHyperParams(k=scenario.k),
    )
    cluster = RexCluster(topo, config, secure=True, obs=obs)
    run = cluster.run(list(train), list(test), global_mean=split.train.global_mean())
    result = timeline_from_cluster(run, time_model=LAN_TIME_MODEL, obs=obs)
    return ObservedRun(
        experiment=experiment,
        smoke=smoke,
        scenario=scenario,
        result=result,
        obs=obs,
        cluster=cluster,
    )


def _edge_rows(run: ObservedRun) -> List[Dict[str, int]]:
    meter = run.cluster.network.meter
    edge_bytes = meter.edge_bytes()
    edge_messages = meter.edge_messages()
    rows = []
    for (src, dst) in sorted(edge_bytes):
        rows.append(
            {
                "src": src,
                "dst": dst,
                "bytes": edge_bytes[(src, dst)],
                "messages": edge_messages.get((src, dst), 0),
            }
        )
    return rows


def build_metrics_document(run: ObservedRun) -> Dict[str, object]:
    """Serialize one observed run into the ``repro.metrics/v1`` document."""
    result = run.result
    snapshot = run.obs.metrics.snapshot()
    doc: Dict[str, object] = {
        "schema": METRICS_SCHEMA,
        "experiment": run.experiment,
        "smoke": run.smoke,
        "config": run.scenario.as_dict(),
        "summary": {
            "label": result.label,
            "final_rmse": result.final_rmse,
            "total_time_s": result.total_time_s,
            "total_bytes": result.total_bytes,
            "epochs": len(result.records),
            "network_bytes": run.cluster.network.meter.total_bytes,
            "network_messages": run.cluster.network.meter.total_messages,
        },
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "histograms": snapshot["histograms"],
        "spans": [span.to_dict() for span in run.obs.tracer.spans],
        "edges": _edge_rows(run),
    }
    return doc


def write_metrics_json(run: ObservedRun, path: str) -> Dict[str, object]:
    """Build the document and write it to ``path``; returns the document."""
    doc = build_metrics_document(run)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return doc
