"""Metric primitives and the registry that owns them.

One process-wide (or per-cluster) :class:`MetricsRegistry` replaces the
scattered ad-hoc accounting the evaluation grew up with (``EpochStats``
fields, ``TrafficMeter`` dicts, ``TransitionCounters``): every layer
registers named, labelled counters, gauges and fixed-bucket histograms in
the same place, and the whole state can be snapshotted to plain JSON,
restored, and merged across nodes -- the aggregation step a multi-process
deployment needs to produce one ``metrics.json`` per run.

Design constraints (why this is not a Prometheus client):

- **dependency-free** -- nothing outside the standard library;
- **simulation-friendly** -- no hidden wall-clock reads, no background
  threads; values change only when instrumented code says so;
- **mergeable** -- counters and histograms add, gauges keep the last
  value and the running max (the semantics every consumer here wants:
  residency peaks, overcommit peaks).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BYTE_BUCKETS",
    "DEFAULT_COUNT_BUCKETS",
]

LabelsKey = Tuple[Tuple[str, str], ...]
MetricKey = Tuple[str, LabelsKey]

#: Power-of-4 byte buckets: 64 B .. 1 GiB, a useful spread for payloads.
DEFAULT_BYTE_BUCKETS: Tuple[float, ...] = tuple(float(4**i * 64) for i in range(13))

#: Power-of-4 count buckets: 1 .. 16M, for page faults / item counts.
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = tuple(float(4**i) for i in range(13))


def _labels_key(labels: Mapping[str, object]) -> LabelsKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value (work done, bytes moved)."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelsKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def to_dict(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels), "value": self.value}

    def merge(self, other: "Counter") -> None:
        self.value += other.value


class Gauge:
    """Last-set value plus its running maximum (residency, ratios)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value", "max")

    def __init__(self, name: str, labels: LabelsKey):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.max = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.max = max(self.max, self.value)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
            "max": self.max,
        }

    def merge(self, other: "Gauge") -> None:
        # Across nodes "last value" is ill-defined; the peak is what the
        # EPC / residency consumers read, so keep max-of-max and the
        # larger last value.
        self.value = max(self.value, other.value)
        self.max = max(self.max, other.max)


class Histogram:
    """Fixed-bucket histogram: cumulative-free, one count per bucket.

    ``buckets`` are strictly increasing upper edges; an observation lands
    in the first bucket whose edge is >= the value, or in the overflow
    slot past the last edge.  Sum and count ride along for means.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, labels: LabelsKey, buckets: Sequence[float]):
        edges = [float(b) for b in buckets]
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise ValueError("bucket edges must be strictly increasing")
        self.name = name
        self.labels = labels
        self.buckets: Tuple[float, ...] = tuple(edges)
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, float(value))] += 1
        self.sum += float(value)
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def merge(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket edges differ"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.sum += other.sum
        self.count += other.count


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create home for every metric of one run/node/cluster."""

    def __init__(self) -> None:
        self._metrics: Dict[MetricKey, Metric] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def counter(self, name: str, **labels: object) -> Counter:
        return self._get_or_create(Counter, name, _labels_key(labels))

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get_or_create(Gauge, name, _labels_key(labels))

    def histogram(
        self,
        name: str,
        *,
        buckets: Sequence[float] = DEFAULT_COUNT_BUCKETS,
        **labels: object,
    ) -> Histogram:
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(name, key[1], buckets)
            self._metrics[key] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(f"{name!r} is already registered as a {metric.kind}")
        return metric

    def _get_or_create(self, cls, name: str, labels: LabelsKey):
        key = (name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(f"{name!r} is already registered as a {metric.kind}")
        return metric

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str, **labels: object) -> Optional[Metric]:
        return self._metrics.get((name, _labels_key(labels)))

    def value(self, name: str, **labels: object) -> float:
        """Value of one counter/gauge, 0.0 when it never fired."""
        metric = self.get(name, **labels)
        return metric.value if metric is not None else 0.0

    def collect(self, name: str) -> List[Metric]:
        """All label-sets registered under ``name``."""
        return [m for (n, _), m in self._metrics.items() if n == name]

    def total(self, name: str) -> float:
        """Sum of a counter over all its label-sets."""
        return sum(m.value for m in self.collect(name) if isinstance(m, Counter))

    # ------------------------------------------------------------------ #
    # Snapshot / restore / merge
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """Plain-JSON state: counters, gauges, histograms."""
        snap: dict = {"counters": [], "gauges": [], "histograms": []}
        for metric in self._metrics.values():
            snap[metric.kind + "s"].append(metric.to_dict())
        return snap

    @classmethod
    def from_snapshot(cls, snap: Mapping) -> "MetricsRegistry":
        registry = cls()
        for entry in snap.get("counters", ()):
            registry.counter(entry["name"], **entry["labels"]).value = float(entry["value"])
        for entry in snap.get("gauges", ()):
            gauge = registry.gauge(entry["name"], **entry["labels"])
            gauge.value = float(entry["value"])
            gauge.max = float(entry.get("max", entry["value"]))
        for entry in snap.get("histograms", ()):
            hist = registry.histogram(
                entry["name"], buckets=entry["buckets"], **entry["labels"]
            )
            hist.counts = [int(c) for c in entry["counts"]]
            hist.sum = float(entry["sum"])
            hist.count = int(entry["count"])
        return registry

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (cross-node aggregation)."""
        for (name, labels), metric in other._metrics.items():
            if isinstance(metric, Histogram):
                mine = self.histogram(name, buckets=metric.buckets, **dict(labels))
            elif isinstance(metric, Gauge):
                mine = self.gauge(name, **dict(labels))
            else:
                mine = self.counter(name, **dict(labels))
            mine.merge(metric)
        return self
