"""Per-epoch span/counter recording shared by both execution paths.

The MF fleet simulator and the distributed enclave timeline must report
the *same* observability schema -- same span names, same counter names,
same attribute keys -- so that runs from either path can be compared,
merged and consumed by the one ``metrics.json`` format CI archives.
Keeping the recording in one function (instead of two hand-rolled copies)
is what makes the cross-path parity regression test meaningful.

Schema (per epoch)::

    span "epoch"        ts=sim-clock at epoch start, dur=barrier max
      attrs: epoch, rmse, payload_bytes, serialized_bytes, messages
    span "stage.<name>" for merge/train/share/test/network, sequential
      attrs: stage; share/network also carry bytes

    counter sim.epochs                  counter sim.stage.seconds{stage}
    counter share.payload.bytes         counter share.serialized.bytes
    counter share.messages              gauge   sim.test_rmse
    histogram share.payload.bytes_per_epoch
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs import DEFAULT_BYTE_BUCKETS, Observability

__all__ = ["STAGE_ORDER", "record_epoch"]

#: The protocol's serial stage order (Section III-D) plus the network wait.
STAGE_ORDER = ("merge", "train", "share", "test", "network")


def record_epoch(
    obs: Optional[Observability],
    *,
    epoch: int,
    start_s: float,
    duration_s: float,
    stage_seconds: Dict[str, float],
    payload_bytes: int,
    serialized_bytes: int,
    messages: int,
    rmse: float,
) -> Optional[int]:
    """Record one epoch's spans + counters; no-op when ``obs`` is None.

    ``stage_seconds`` carries the mean per-node duration of each stage;
    ``duration_s`` the epoch barrier (max across nodes).  Returns the
    epoch span id so callers can attach extra children.
    """
    if obs is None:
        return None

    m = obs.metrics
    m.counter("sim.epochs").inc()
    for stage in STAGE_ORDER:
        m.counter("sim.stage.seconds", stage=stage).inc(float(stage_seconds[stage]))
    m.counter("share.payload.bytes").inc(payload_bytes)
    m.counter("share.serialized.bytes").inc(serialized_bytes)
    m.counter("share.messages").inc(messages)
    m.gauge("sim.test_rmse").set(rmse)
    m.histogram(
        "share.payload.bytes_per_epoch", buckets=DEFAULT_BYTE_BUCKETS
    ).observe(payload_bytes)

    epoch_span = obs.tracer.record(
        "epoch",
        start_s,
        duration_s,
        epoch=epoch,
        rmse=rmse,
        payload_bytes=payload_bytes,
        serialized_bytes=serialized_bytes,
        messages=messages,
    )
    offset = start_s
    for stage in STAGE_ORDER:
        attrs: dict = {"stage": stage}
        if stage in ("share", "network"):
            attrs["bytes"] = payload_bytes
        obs.tracer.record(
            f"stage.{stage}",
            offset,
            float(stage_seconds[stage]),
            parent=epoch_span,
            **attrs,
        )
        offset += float(stage_seconds[stage])
    return epoch_span
