"""Unified observability layer: metrics registry + simulated-time tracer.

Every layer of the reproduction (enclave transitions, EPC paging, secure
channels, the transport, both simulators) reports into this package so a
run produces one coherent, machine-readable picture of where time and
bytes went -- the ``metrics.json`` artifact the CI benchmark job archives
and gates on.

The package is dependency-free and passive: nothing here starts threads,
reads wall clocks behind your back, or touches the network.  Code under
instrumentation takes an optional :class:`Observability` (or a bare
:class:`MetricsRegistry`) and simply does nothing extra when none is
given, so the hot paths stay cost-free by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.obs.registry import (
    DEFAULT_BYTE_BUCKETS,
    DEFAULT_COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import SimClock, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BYTE_BUCKETS",
    "DEFAULT_COUNT_BUCKETS",
    "SimClock",
    "Span",
    "Tracer",
    "Observability",
]


@dataclass
class Observability:
    """The bundle instrumented code passes around: metrics + tracer."""

    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Tracer = field(default_factory=Tracer)

    @classmethod
    def create(cls, clock: Optional[Callable[[], float]] = None) -> "Observability":
        return cls(metrics=MetricsRegistry(), tracer=Tracer(clock=clock))
