"""Nested spans stamped with *simulated* time.

The evaluation's clock is the :class:`~repro.sim.time_model.TimeModel`'s
output, not the machine's -- the paper's headline numbers are simulated
durations, so the tracer must speak that clock.  A :class:`Tracer` holds
an ordered list of spans; spans are produced two ways:

- ``with tracer.span("merge", node=3):`` -- live instrumentation against
  the tracer's clock (a :class:`SimClock` by default; pass
  ``clock=time.monotonic`` for wall time);
- ``tracer.record("train", start_s, dur_s, parent=epoch_id)`` -- post-hoc
  recording for the simulators, which compute whole stage duration
  vectors analytically and know exact start offsets.

Exports: JSONL (one span object per line -- grep/jq-friendly, the schema
CI archives) and Chrome-trace-viewer JSON (open in ``chrome://tracing``
or Perfetto).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional

__all__ = ["SimClock", "Span", "Tracer"]


class SimClock:
    """A manually advanced clock (seconds); the simulators drive it."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        if dt < 0:
            raise ValueError("time cannot go backwards")
        self._now += float(dt)
        return self._now

    def __call__(self) -> float:
        return self._now


class Span:
    """One completed (or open) span; ``dur`` is None while open."""

    __slots__ = ("id", "parent", "name", "ts", "dur", "attrs")

    def __init__(
        self,
        span_id: int,
        parent: Optional[int],
        name: str,
        ts: float,
        dur: Optional[float],
        attrs: dict,
    ):
        self.id = span_id
        self.parent = parent
        self.name = name
        self.ts = ts
        self.dur = dur
        self.attrs = attrs

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "parent": self.parent,
            "name": self.name,
            "ts": self.ts,
            "dur": self.dur,
            "attrs": self.attrs,
        }


class Tracer:
    """Ordered span collector over a pluggable clock."""

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.clock: Callable[[], float] = clock if clock is not None else SimClock()
        self._spans: List[Span] = []
        self._stack: List[int] = []
        self._next_id = 0

    # ------------------------------------------------------------------ #
    # Producing spans
    # ------------------------------------------------------------------ #
    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        """Live span: starts now, ends (and nests) on exit."""
        node = self._new_span(name, self.clock(), None, self._current_parent(), attrs)
        self._stack.append(node.id)
        try:
            yield node
        finally:
            self._stack.pop()
            node.dur = self.clock() - node.ts

    def record(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        *,
        parent: Optional[int] = None,
        **attrs: object,
    ) -> int:
        """Post-hoc span with explicit timestamps; returns its id.

        ``parent`` nests it under an earlier recorded span; with no
        explicit parent it nests under the innermost open live span.
        """
        if duration_s < 0:
            raise ValueError("span duration must be non-negative")
        if parent is None:
            parent = self._current_parent()
        return self._new_span(name, float(start_s), float(duration_s), parent, attrs).id

    def _current_parent(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    def _new_span(self, name, ts, dur, parent, attrs) -> Span:
        span = Span(self._next_id, parent, name, ts, dur, dict(attrs))
        self._next_id += 1
        self._spans.append(span)
        return span

    # ------------------------------------------------------------------ #
    # Reads / export
    # ------------------------------------------------------------------ #
    @property
    def spans(self) -> List[Span]:
        return list(self._spans)

    def find(self, name: str) -> List[Span]:
        return [s for s in self._spans if s.name == name]

    def children_of(self, span_id: int) -> List[Span]:
        return [s for s in self._spans if s.parent == span_id]

    def depth_of(self, span: Span) -> int:
        depth = 0
        by_id = {s.id: s for s in self._spans}
        while span.parent is not None:
            span = by_id[span.parent]
            depth += 1
        return depth

    def to_jsonl(self) -> str:
        """One JSON object per span, in recording order."""
        return "\n".join(json.dumps(s.to_dict()) for s in self._spans)

    def write_jsonl(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())
            if self._spans:
                fh.write("\n")

    def to_chrome_trace(self) -> dict:
        """Chrome trace-viewer JSON ("X" complete events, ts in µs).

        The span attribute ``node`` (when present) becomes the trace
        ``tid`` so per-node lanes render separately.
        """
        events = []
        for span in self._spans:
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": span.ts * 1e6,
                    "dur": (span.dur or 0.0) * 1e6,
                    "pid": 0,
                    "tid": int(span.attrs.get("node", 0)),
                    "args": span.attrs,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh)
