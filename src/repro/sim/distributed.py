"""Timing the distributed enclave runs (Figures 6-7, Table IV).

The :class:`~repro.core.cluster.RexCluster` executes the *real* protocol
-- enclaves, attestation, sealed channels -- and reports exact per-epoch
work counts.  This module replays those counts through the
:class:`~repro.sim.time_model.StageTimer` under a chosen SGX cost model,
yielding the same :class:`~repro.sim.recorder.RunResult` the figures
consume.  An SGX build is timed with :data:`~repro.tee.cost_model.
SGX1_COST_MODEL` (transitions, AEAD, memory encryption, EPC paging); a
native build with :data:`~repro.tee.cost_model.NATIVE_COST_MODEL`
(plaintext, no enclave, but on-demand page-allocation charges -- the
source of the paper's share-step anomaly).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.cluster import ClusterRun
from repro.core.config import ModelKind
from repro.obs import Observability
from repro.obs.stages import record_epoch
from repro.sim.recorder import MIB, EpochRecord, RunResult
from repro.sim.time_model import DEFAULT_TIME_MODEL, StageTimer, TimeModel
from repro.tee.cost_model import NATIVE_COST_MODEL, SGX1_COST_MODEL, SgxCostModel

__all__ = ["timeline_from_cluster"]


def timeline_from_cluster(
    run: ClusterRun,
    *,
    cost_model: SgxCostModel = None,
    time_model: TimeModel = DEFAULT_TIME_MODEL,
    obs: Optional[Observability] = None,
) -> RunResult:
    """Turn a cluster's reported work into a timed RunResult.

    With an :class:`~repro.obs.Observability` the replay also emits the
    shared per-epoch span/counter schema (:mod:`repro.obs.stages`) plus
    the EPC paging metrics the :class:`StageTimer` reports.
    """
    if cost_model is None:
        cost_model = SGX1_COST_MODEL if run.secure else NATIVE_COST_MODEL
    timer = StageTimer(
        time_model=time_model,
        cost_model=cost_model,
        epc=run.epc,
        metrics=obs.metrics if obs is not None else None,
    )
    cfg = run.config
    result = RunResult(
        label=f"{cfg.label}{' (SGX)' if run.secure else ' (native)'}",
        scheme=cfg.scheme.value,
        dissemination=cfg.dissemination.value,
        topology=run.topology.name,
        n_nodes=run.topology.n_nodes,
        model=cfg.model.value,
        sgx=run.secure,
        metadata={
            "share_points": cfg.share_points,
            "attestation_messages": run.attestation_messages,
        },
    )

    sim_clock = 0.0
    cum_bytes = 0
    for epoch in range(run.epochs_completed):
        stats = run.stats_for_epoch(epoch)
        arrays = {
            name: np.array([getattr(s, name) for s in stats], dtype=np.float64)
            for name in (
                "merged_rows",
                "merged_models",
                "dedup_checked_items",
                "train_samples",
                "serialized_bytes",
                "shared_payload_bytes",
                "shared_messages",
                "shared_empty_messages",
                "test_samples",
                "store_bytes",
                "model_bytes",
                "staging_bytes",
                "ecalls",
                "ocalls",
                "transition_bytes",
            )
        }
        resident = arrays["store_bytes"] + arrays["model_bytes"] + arrays["staging_bytes"]
        transitions = arrays["ecalls"] + arrays["ocalls"]

        if cfg.model is ModelKind.MF:
            stages = timer.mf_stage_times(
                k=cfg.mf.k,
                merged_rows=arrays["merged_rows"],
                dedup_items=arrays["dedup_checked_items"],
                train_samples=arrays["train_samples"],
                serialized_bytes=arrays["serialized_bytes"],
                payload_bytes=arrays["shared_payload_bytes"],
                messages=arrays["shared_messages"],
                empty_messages=arrays["shared_empty_messages"],
                test_samples=arrays["test_samples"],
                resident_bytes=resident,
                staging_bytes=arrays["staging_bytes"],
                transitions=transitions,
                transition_bytes=arrays["transition_bytes"],
            )
        else:
            # model_bytes reflects the true parameter footprint (4 bytes
            # per float, with value + grad + 2 Adam moments per parameter).
            param_count = int(stats[0].model_bytes / (4 * 4))
            stages = timer.dnn_stage_times(
                param_count=param_count,
                merged_models=arrays["merged_models"],
                dedup_items=arrays["dedup_checked_items"],
                train_samples=arrays["train_samples"],
                serialized_bytes=arrays["serialized_bytes"],
                payload_bytes=arrays["shared_payload_bytes"],
                messages=arrays["shared_messages"],
                empty_messages=arrays["shared_empty_messages"],
                test_samples=arrays["test_samples"],
                resident_bytes=resident,
                staging_bytes=arrays["staging_bytes"],
                transitions=transitions,
                transition_bytes=arrays["transition_bytes"],
            )

        durations = StageTimer.epoch_duration(
            stages, overlap_share=cfg.parallel_share
        )
        epoch_start = sim_clock
        sim_clock += float(np.max(durations))
        epoch_bytes = int(arrays["shared_payload_bytes"].sum())
        cum_bytes += epoch_bytes
        rmses = np.array([s.test_rmse for s in stats], dtype=np.float64)
        record_epoch(
            obs,
            epoch=epoch,
            start_s=epoch_start,
            duration_s=sim_clock - epoch_start,
            stage_seconds={name: float(np.mean(v)) for name, v in stages.items()},
            payload_bytes=epoch_bytes,
            serialized_bytes=int(arrays["serialized_bytes"].sum()),
            messages=int(
                arrays["shared_messages"].sum() + arrays["shared_empty_messages"].sum()
            ),
            rmse=float(np.nanmean(rmses)),
        )
        result.records.append(
            EpochRecord(
                epoch=epoch,
                sim_time_s=sim_clock,
                test_rmse=float(np.nanmean(rmses)),
                bytes_sent=epoch_bytes,
                cum_bytes=cum_bytes,
                merge_time_s=float(np.mean(stages["merge"])),
                train_time_s=float(np.mean(stages["train"])),
                share_time_s=float(np.mean(stages["share"])),
                test_time_s=float(np.mean(stages["test"])),
                network_time_s=float(np.mean(stages["network"])),
                memory_mib_mean=float(np.mean(resident)) / MIB,
                memory_mib_max=float(np.max(resident)) / MIB,
            )
        )
    return result
