"""Event-driven simulated-clock kernel shared by every simulation path.

The paper's evaluation tops out at a few hundred nodes because each
execution path owns its own ad-hoc loop: the fleet simulators iterate
``for epoch in range(...)``, the distributed cluster pumps hosts in a
``while`` loop, the serving layer drives ticks by hand.  Scaling to
thousand-node fleets needs the structure every large discrete-event
simulator uses (the cycle-batched dissemination loop of gossip/blockchain
simulators): **one priority queue of timestamped events** that training
epochs, transport ticks, fault/chaos schedules, and serving ticks all
register against.

Determinism is the contract here, pinned two ways:

- **Ordering.**  Events fire in ``(time, key, seq)`` order.  ``key`` is
  an intrinsic, caller-supplied tuple (epoch number, node id, stage
  rank); two events at the same timestamp with different keys fire in
  key order *regardless of insertion order*, so a seeded experiment's
  event trace never depends on dict/set iteration or scheduling-code
  refactors.  ``seq`` (insertion order) only breaks exact ``(time,
  key)`` ties, keeping repeated registrations stable.
- **The trace digest.**  Every dispatched event folds ``(time, kind,
  key)`` into a running SHA-256; :meth:`EventKernel.trace_digest` is the
  one-line fingerprint regression tests and reports pin (same seed ->
  identical digest).

The kernel never reads a wall clock: :attr:`EventKernel.now` is purely
simulated time, advanced only by dispatching events.  Shared module (it
plays every role in one process, like the fleet simulators); see the
trust classification in :mod:`repro.lint.classify`.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Union

__all__ = ["Event", "EventKernel"]

KeyElement = Union[int, float, str]

#: Canonical prefix of the trace-digest transcript (versioned so a
#: semantic change to the encoding cannot silently match old digests).
_DIGEST_DOMAIN = b"repro.sim.kernel/v1"


def _order_key(key: Tuple[KeyElement, ...]) -> Tuple[Tuple[int, object], ...]:
    """Normalize a user key so mixed int/str keys stay comparable.

    Numbers order before strings; within a type, natural order.  This is
    what makes ``(time, key)`` a total order for any key the callers use.
    """
    normalized: List[Tuple[int, object]] = []
    for element in key:
        if isinstance(element, bool):  # bool is an int subclass; pin rank
            normalized.append((0, int(element)))
        elif isinstance(element, (int, float)):
            normalized.append((0, element))
        else:
            normalized.append((1, str(element)))
    return tuple(normalized)


@dataclass(eq=False)
class Event:
    """One scheduled callback.

    ``fn`` takes no arguments -- context rides in the closure.  ``kind``
    names the event taxonomy entry (``fleet.epoch``, ``net.tick``,
    ``faults.tick``, ``serve.tick``, ``gossip.cycle``, ...); ``key`` is
    the intrinsic same-timestamp ordering key.
    """

    time: float
    kind: str
    key: Tuple[KeyElement, ...]
    fn: Callable[[], None]
    seq: int = -1
    cancelled: bool = field(default=False, compare=False)


class EventKernel:
    """A deterministic simulated-clock priority-queue event loop."""

    def __init__(self, *, start: float = 0.0) -> None:
        #: Current simulated time (the timestamp of the last dispatch).
        self.now = float(start)
        #: Events dispatched so far (cancelled events never count).
        self.processed = 0
        self._heap: List[Tuple[float, Tuple, int, Event]] = []
        self._seq = 0
        self._sha = hashlib.sha256(_DIGEST_DOMAIN)

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def at(
        self,
        time: float,
        fn: Callable[[], None],
        *,
        kind: str = "event",
        key: Tuple[KeyElement, ...] = (),
    ) -> Event:
        """Schedule ``fn`` at absolute simulated time ``time``."""
        time = float(time)
        if time < self.now:
            raise ValueError(
                f"cannot schedule {kind!r} at t={time} in the past (now={self.now})"
            )
        event = Event(time=time, kind=str(kind), key=tuple(key), fn=fn, seq=self._seq)
        self._seq += 1
        heapq.heappush(self._heap, (event.time, _order_key(event.key), event.seq, event))
        return event

    def after(
        self,
        delay: float,
        fn: Callable[[], None],
        *,
        kind: str = "event",
        key: Tuple[KeyElement, ...] = (),
    ) -> Event:
        """Schedule ``fn`` ``delay`` simulated seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.at(self.now + float(delay), fn, kind=kind, key=key)

    def every(
        self,
        interval: float,
        fn: Callable[[], object],
        *,
        kind: str = "event",
        key: Tuple[KeyElement, ...] = (),
        start: Optional[float] = None,
    ) -> Event:
        """Recurring event: re-armed after each firing until ``fn``
        returns ``False`` (any other return value, including ``None``,
        continues the series)."""
        if interval <= 0:
            raise ValueError("interval must be positive")

        def fire() -> None:
            if fn() is not False:
                self.after(interval, fire, kind=kind, key=key)

        first = self.now if start is None else float(start)
        return self.at(first, fire, kind=kind, key=key)

    @staticmethod
    def cancel(event: Event) -> None:
        """Mark ``event`` dead; it stays heap-resident but never fires."""
        event.cancelled = True

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return sum(1 for *_rest, event in self._heap if not event.cancelled)

    @property
    def empty(self) -> bool:
        return len(self) == 0

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` when drained."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def step(self) -> Optional[Event]:
        """Dispatch the single next live event; ``None`` when drained."""
        while self._heap:
            _time, _key, _seq, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self._sha.update(
                f"{event.time!r}|{event.kind}|{event.key!r}\n".encode()
            )
            self.processed += 1
            event.fn()
            return event
        return None

    def run(
        self,
        *,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Dispatch events until the queue drains (or a bound trips).

        ``until`` stops before dispatching any event scheduled strictly
        after that time; ``max_events`` bounds this call's dispatches.
        Returns the number of events dispatched by this call.
        """
        dispatched = 0
        while self._heap:
            if max_events is not None and dispatched >= max_events:
                break
            if until is not None:
                upcoming = self.peek_time()
                if upcoming is None or upcoming > until:
                    break
            if self.step() is None:
                break
            dispatched += 1
        return dispatched

    # ------------------------------------------------------------------ #
    # Determinism fingerprint
    # ------------------------------------------------------------------ #
    def trace_digest(self) -> str:
        """SHA-256 over every dispatched ``(time, kind, key)`` so far."""
        return self._sha.copy().hexdigest()
