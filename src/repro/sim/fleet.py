"""Vectorized fleet simulator for MF experiments (Figures 1-4).

The paper's one-node-per-user scenarios simulate 610 decentralized nodes;
running 610 independent node objects with per-node Python loops would
dominate wall-clock, so this simulator stacks every node's parameters into
contiguous tensors and executes each protocol stage for *all nodes at
once* (the HPC guide's "vectorize the outer loop" rule):

- **train** -- one :func:`repro.ml.mf.sgd_step` call per minibatch updates
  all nodes simultaneously: node parameters live in ``(n_nodes * n_users,
  k)`` flattened arrays and each node's batch indexes its own slice.
- **D-PSGD merge** -- the Metropolis-Hastings averaging of every node is
  one sparse-matrix product: ``P' = (W @ (P * seen)) / (W @ seen)`` with
  ``W`` the (n_nodes x n_nodes) MH weight matrix (mask renormalization
  implements the paper's missing-embedding rule).
- **test** -- all nodes' local test sets are concatenated once and every
  epoch evaluates them in a single gather + einsum.

The protocol semantics (epoch barrier, merge-train-share-test order,
stateless share sampling, duplicate suppression) are identical to the
distributed enclave runtime in :mod:`repro.core`; an integration test
cross-checks the two paths.  SGX is *not* modelled here -- like the
paper's simulated experiments, the fleet runs "native"; the enclave
experiments use :mod:`repro.sim.distributed`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro._rng import child_rng
from repro.core.config import Dissemination, RexConfig, SharingScheme
from repro.core.messages import HEADER_BYTES
from repro.data.dataset import RatingsDataset
from repro.ml.mf import sgd_step
from repro.net.serialization import measure_mf_state, measure_triplets
from repro.net.topology import Topology
from repro.obs import Observability
from repro.obs.stages import record_epoch
from repro.sim.kernel import EventKernel
from repro.sim.recorder import MIB, EpochRecord, RunResult
from repro.sim.time_model import DEFAULT_TIME_MODEL, StageTimer, TimeModel

__all__ = ["MfFleetSim", "FleetStores"]


class FleetStores:
    """All nodes' data stores over one immutable global triplet pool.

    Every raw data item circulating in a fleet simulation is a row of the
    global training set (ratings are immutable facts, so a received
    triplet is always byte-identical to the original).  Exploiting that,
    a node's store is represented as an index set into the pool: a boolean
    membership row (duplicate suppression becomes an O(1)-per-item lookup,
    no sorted index maintenance) plus an append-only id array for O(1)
    sampling and training gathers.  Semantics match
    :class:`repro.core.store.DataStore` exactly -- an equivalence test
    pins that -- at a fraction of the cost for 610-node runs.
    """

    def __init__(self, pool: RatingsDataset, n_nodes: int):
        self.pool = pool
        self.n_nodes = n_nodes
        self._member = np.zeros((n_nodes, len(pool)), dtype=bool)
        self._ids: List[np.ndarray] = [np.empty(0, dtype=np.int64) for _ in range(n_nodes)]
        self._sizes = np.zeros(n_nodes, dtype=np.int64)
        self.duplicates_rejected = 0

    def append_unique(self, node: int, pool_ids: np.ndarray) -> int:
        """Add pool rows to a node's store; returns how many were new."""
        if len(pool_ids) == 0:
            return 0
        fresh = np.unique(pool_ids)  # intra-batch duplicates are identical rows
        fresh = fresh[~self._member[node, fresh]]
        self.duplicates_rejected += len(pool_ids) - len(fresh)
        if len(fresh) == 0:
            return 0
        self._member[node, fresh] = True
        self._ids[node] = np.concatenate([self._ids[node], fresh])
        self._sizes[node] += len(fresh)
        return len(fresh)

    def append_all(self, node: int, pool_ids: np.ndarray) -> int:
        """Ablation path: append everything, duplicates included."""
        if len(pool_ids) == 0:
            return 0
        self._member[node, pool_ids] = True
        self._ids[node] = np.concatenate([self._ids[node], pool_ids])
        self._sizes[node] += len(pool_ids)
        return len(pool_ids)

    def sample_ids(self, node: int, n: int, rng: np.random.Generator) -> np.ndarray:
        """Stateless share sample: pool ids of up to ``n`` stored items."""
        size = self._sizes[node]
        if size == 0 or n <= 0:
            return np.empty(0, dtype=np.int64)
        if n >= size:
            picks = rng.integers(0, size, size=n)
        else:
            picks = rng.choice(size, size=n, replace=False)
        return self._ids[node][picks]

    def gather(self, node: int, picks: np.ndarray):
        """Training-batch triplets for local indices ``picks``."""
        rows = self._ids[node][picks]
        return self.pool.users[rows], self.pool.items[rows], self.pool.ratings[rows]

    def size(self, node: int) -> int:
        return int(self._sizes[node])

    @property
    def sizes(self) -> np.ndarray:
        return self._sizes.copy()

    def nbytes(self, node: int) -> int:
        """Footprint a real node store of this content would have
        (triplet arrays + dedup index), for memory accounting."""
        n = int(self._sizes[node])
        return n * (4 + 4 + 4 + 8)


class MfFleetSim:
    """All-nodes-at-once simulator of decentralized MF training."""

    def __init__(
        self,
        train_shards: Sequence[RatingsDataset],
        test_shards: Sequence[RatingsDataset],
        topology: Topology,
        config: RexConfig,
        *,
        global_mean: float,
        time_model: TimeModel = DEFAULT_TIME_MODEL,
    ):
        if len(train_shards) != topology.n_nodes:
            raise ValueError("one train shard per node required")
        if config.mf.np_dtype != np.dtype(np.float32):
            raise ValueError("the fleet simulator requires float32 parameters")
        self.config = config
        self.topology = topology
        self.time_model = time_model
        self.global_mean = float(global_mean)

        first = train_shards[0]
        self.n_users = first.n_users
        self.n_items = first.n_items
        n = topology.n_nodes
        k = config.mf.k
        self.n_nodes = n
        self.k = k

        # Stacked parameters; every node starts from the same init (all
        # nodes run identical code with the same seed, per Section III-A).
        rng_init = child_rng(config.seed, "mf-init")
        scale = config.mf.init_scale
        base_user = rng_init.normal(0.0, scale, size=(self.n_users, k)).astype(np.float32)
        base_item = rng_init.normal(0.0, scale, size=(self.n_items, k)).astype(np.float32)
        self.XU = np.broadcast_to(base_user, (n, self.n_users, k)).copy()
        self.YI = np.broadcast_to(base_item, (n, self.n_items, k)).copy()
        self.BU = np.zeros((n, self.n_users), dtype=np.float32)
        self.BI = np.zeros((n, self.n_items), dtype=np.float32)
        self.SU = np.zeros((n, self.n_users), dtype=bool)
        self.SI = np.zeros((n, self.n_items), dtype=bool)

        # Global triplet pool = concatenation of the initial shards; each
        # node starts owning its own range of pool rows.
        pool = train_shards[0]
        for shard in train_shards[1:]:
            pool = pool.concat(shard)
        self.stores = FleetStores(pool, n)
        offset = 0
        for node, shard in enumerate(train_shards):
            self.stores.append_unique(node, np.arange(offset, offset + len(shard)))
            offset += len(shard)
            self.SU[node, shard.users] = True
            self.SI[node, shard.items] = True

        # Concatenated test sets with per-sample node ids.
        tn, tu, ti, tr = [], [], [], []
        for node, shard in enumerate(test_shards):
            tn.append(np.full(len(shard), node, dtype=np.int64))
            tu.append(shard.users.astype(np.int64))
            ti.append(shard.items.astype(np.int64))
            tr.append(shard.ratings)
        self._test_node = np.concatenate(tn) if tn else np.array([], dtype=np.int64)
        self._test_user = np.concatenate(tu) if tu else np.array([], dtype=np.int64)
        self._test_item = np.concatenate(ti) if ti else np.array([], dtype=np.int64)
        self._test_rating = np.concatenate(tr) if tr else np.array([], dtype=np.float32)
        self._test_counts = np.bincount(self._test_node, minlength=n).astype(np.float64)

        # The globally reachable seen-sets: rows some node has rated.
        self._union_users = len(np.unique(pool.users))
        self._union_items = len(np.unique(pool.items))

        self._rng = child_rng(config.seed, "fleet")
        self._mh_matrix: Optional[sp.csr_matrix] = None
        self._mh_dense: Optional[np.ndarray] = None
        self._adj_matrix: Optional[sp.csr_matrix] = None
        self._masks_saturated = False
        if config.dissemination is Dissemination.DPSGD:
            self._mh_matrix, self._adj_matrix = self._build_weight_matrices()
            # Dense form for the merge matmul: at fleet scale the BLAS
            # GEMM beats the sparse kernel (n_nodes is only hundreds).
            self._mh_dense = self._mh_matrix.toarray()

        #: Per-node resident model bytes (dense parameters + masks).
        self._model_bytes = (
            (self.n_users + self.n_items) * (k + 1) * 4 + self.n_users + self.n_items
        )

        #: The event kernel driving the most recent ``run`` (``None``
        #: before the first run or after a legacy-driver run).
        self.kernel: Optional[EventKernel] = None

    # ------------------------------------------------------------------ #
    # Setup helpers
    # ------------------------------------------------------------------ #
    def _build_weight_matrices(self):
        weights = self.topology.metropolis_hastings_weights()
        rows, cols, vals = [], [], []
        for (i, j), w in weights.items():
            rows.append(i)
            cols.append(j)
            vals.append(w)
        mh = sp.csr_matrix(
            (np.array(vals, dtype=np.float32), (rows, cols)),
            shape=(self.n_nodes, self.n_nodes),
        )
        adjacency = sp.csr_matrix(
            (np.ones(len(rows), dtype=np.float32), (rows, cols)),
            shape=(self.n_nodes, self.n_nodes),
        )
        return mh, adjacency

    # ------------------------------------------------------------------ #
    # Protocol stages, vectorized
    # ------------------------------------------------------------------ #
    def _select_rmw_recipients(self) -> np.ndarray:
        """Each node's randomly chosen neighbor this epoch."""
        recipients = np.empty(self.n_nodes, dtype=np.int64)
        for node in range(self.n_nodes):
            nbrs = self.topology.neighbors(node)
            recipients[node] = nbrs[self._rng.integers(0, len(nbrs))]
        return recipients

    def _draw_share_samples(self) -> List[np.ndarray]:
        """Per-node pool-id arrays of this epoch's share sample."""
        points = self.config.share_points
        return [
            self.stores.sample_ids(node, points, self._rng)
            for node in range(self.n_nodes)
        ]

    def _merge_data(self, samples: List[np.ndarray], recipients: Optional[np.ndarray]):
        """Deliver raw-data shares and append unique items per receiver."""
        incoming: List[List[np.ndarray]] = [[] for _ in range(self.n_nodes)]
        if recipients is not None:  # RMW unicast
            for sender, receiver in enumerate(recipients):
                incoming[int(receiver)].append(samples[sender])
        else:  # D-PSGD broadcast
            for sender in range(self.n_nodes):
                for receiver in self.topology.neighbors(sender):
                    incoming[int(receiver)].append(samples[sender])
        appended = np.zeros(self.n_nodes, dtype=np.int64)
        checked = np.zeros(self.n_nodes, dtype=np.int64)
        staging = np.zeros(self.n_nodes, dtype=np.int64)
        pool = self.stores.pool
        dedup = self.config.dedup
        for node, batches in enumerate(incoming):
            if not batches:
                continue
            ids = np.concatenate(batches)
            checked[node] = len(ids)
            staging[node] = len(ids) * 12
            if dedup:
                added = self.stores.append_unique(node, ids)
            else:
                added = self.stores.append_all(node, ids)
            appended[node] = added
            if added:
                self.SU[node, pool.users[ids]] = True
                self.SI[node, pool.items[ids]] = True
        return appended, checked, staging

    def _merge_models_dpsgd(self) -> np.ndarray:
        """One matrix product merges every node (mask-renormalized).

        While presence masks are still spreading, absent contributors are
        dropped per row and the weights renormalized (``np.where`` keeps
        this branch-free over the big tensors).  Once every node has seen
        every row -- which happens within a few epochs of D-PSGD's
        broadcast flooding -- the doubly-stochastic W makes the
        renormalization a no-op, and the merge collapses to one BLAS
        matmul per parameter group.
        """
        n, n_users, n_items, k = self.n_nodes, self.n_users, self.n_items, self.k
        W, A = self._mh_dense, self._adj_matrix
        merged_rows = A @ np.column_stack([self.SU.sum(1), self.SI.sum(1)]).astype(np.float32)
        incoming_rows = merged_rows.sum(1) - (self.SU.sum(1) + self.SI.sum(1))

        for factors, biases, seen, width in (
            (self.XU, self.BU, self.SU, n_users),
            (self.YI, self.BI, self.SI, n_items),
        ):
            flat = factors.reshape(n, width * k)
            if self._masks_saturated:
                flat[:] = W @ flat
                biases[:] = W @ biases
                continue
            seen_f = seen.astype(np.float32)
            denom = W @ seen_f  # (n, width) renormalization weights
            numer = (W @ (flat * np.repeat(seen_f, k, axis=1))).reshape(n, width, k)
            present = denom > 0
            safe = np.maximum(denom, np.float32(1e-12))
            factors[:] = np.where(present[:, :, None], numer / safe[:, :, None], factors)
            bias_numer = W @ (biases * seen_f)
            biases[:] = np.where(present, bias_numer / safe, biases)
            seen[:] = (A @ seen_f) > 0  # union with neighbors (A has self-loops)
        if not self._masks_saturated and (
            int(self.SU.sum()) == self.n_nodes * self._union_users
            and int(self.SI.sum()) == self.n_nodes * self._union_items
        ):
            # Every node now sees the full globally-rated set.  Rows
            # outside the union stay identical across nodes (same init,
            # never trained), so plain averaging is exact from here on.
            self._masks_saturated = True
        return incoming_rows.astype(np.int64)

    def _merge_models_rmw(self, recipients: np.ndarray) -> np.ndarray:
        """Sequential pairwise averaging from a pre-merge snapshot."""
        snap_XU, snap_YI = self.XU.copy(), self.YI.copy()
        snap_BU, snap_BI = self.BU.copy(), self.BI.copy()
        snap_SU, snap_SI = self.SU.copy(), self.SI.copy()
        merged_rows = np.zeros(self.n_nodes, dtype=np.int64)
        for sender in np.argsort(recipients, kind="stable"):
            receiver = int(recipients[sender])
            merged_rows[receiver] += int(snap_SU[sender].sum() + snap_SI[sender].sum())
            for factors, biases, seen, s_factors, s_biases, s_seen in (
                (self.XU[receiver], self.BU[receiver], self.SU[receiver],
                 snap_XU[sender], snap_BU[sender], snap_SU[sender]),
                (self.YI[receiver], self.BI[receiver], self.SI[receiver],
                 snap_YI[sender], snap_BI[sender], snap_SI[sender]),
            ):
                both = seen & s_seen
                only_alien = s_seen & ~seen
                factors[both] += s_factors[both]
                factors[both] *= 0.5
                biases[both] += s_biases[both]
                biases[both] *= 0.5
                factors[only_alien] = s_factors[only_alien]
                biases[only_alien] = s_biases[only_alien]
                seen |= s_seen
        return merged_rows

    def _train(self) -> np.ndarray:
        """Fixed-batch SGD for all nodes at once via flattened indexing."""
        hp = self.config.mf
        n = self.n_nodes
        flat_XU = self.XU.reshape(n * self.n_users, self.k)
        flat_YI = self.YI.reshape(n * self.n_items, self.k)
        flat_BU = self.BU.reshape(-1)
        flat_BI = self.BI.reshape(-1)
        sizes = self.stores.sizes
        active = np.flatnonzero(sizes > 0)
        if len(active) == 0:
            return np.zeros(n, dtype=np.int64)
        offsets_u = active * self.n_users
        offsets_i = active * self.n_items

        if self.config.adaptive_batches:
            # Ablation: one full pass over the (growing) store per epoch.
            node_batches = np.maximum(1, sizes // hp.batch_size)
        else:
            node_batches = np.full(n, hp.batches_per_epoch, dtype=np.int64)

        samples = np.zeros(n, dtype=np.int64)
        samples[active] = node_batches[active] * hp.batch_size
        for round_index in range(int(node_batches[active].max())):
            # Nodes with fewer batches drop out of later rounds.
            active = np.flatnonzero((sizes > 0) & (node_batches > round_index))
            offsets_u = active * self.n_users
            offsets_i = active * self.n_items
            # Draw one batch per active node, then fuse into a single step.
            picks = (
                self._rng.random((len(active), hp.batch_size)) * sizes[active, None]
            ).astype(np.int64)
            users = np.empty((len(active), hp.batch_size), dtype=np.int64)
            items = np.empty_like(users)
            ratings = np.empty((len(active), hp.batch_size), dtype=np.float32)
            for row, node in enumerate(active):
                u, i, r = self.stores.gather(int(node), picks[row])
                users[row] = u
                items[row] = i
                ratings[row] = r
            sgd_step(
                flat_XU,
                flat_YI,
                flat_BU,
                flat_BI,
                (users + offsets_u[:, None]).ravel(),
                (items + offsets_i[:, None]).ravel(),
                ratings.ravel(),
                self.global_mean,
                hp.learning_rate,
                hp.regularization,
            )
        return samples

    def _test_rmse(self) -> np.ndarray:
        """Per-node local test RMSE in one vectorized pass."""
        if len(self._test_user) == 0:
            return np.full(self.n_nodes, np.nan)
        flat_u = self._test_node * self.n_users + self._test_user
        flat_i = self._test_node * self.n_items + self._test_item
        xu = self.XU.reshape(-1, self.k)[flat_u]
        yi = self.YI.reshape(-1, self.k)[flat_i]
        pred = (
            self.global_mean
            + self.BU.reshape(-1)[flat_u]
            + self.BI.reshape(-1)[flat_i]
            + np.einsum("ij,ij->i", xu, yi)
        )
        np.clip(pred, 0.5, 5.0, out=pred)
        sq = (pred - self._test_rating) ** 2
        sums = np.zeros(self.n_nodes, dtype=np.float64)
        np.add.at(sums, self._test_node, sq)
        with np.errstate(invalid="ignore", divide="ignore"):
            rmse = np.sqrt(sums / self._test_counts)
        return rmse

    # ------------------------------------------------------------------ #
    # The run loop
    # ------------------------------------------------------------------ #
    def run(
        self, obs: Optional[Observability] = None, *, driver: str = "kernel"
    ) -> RunResult:
        """Execute ``config.epochs`` epochs and return the full record.

        With an :class:`~repro.obs.Observability` the run also emits the
        shared per-epoch span/counter schema (see :mod:`repro.obs.stages`).

        ``driver`` selects the scheduler: ``"kernel"`` (default)
        registers each epoch as a ``fleet.epoch`` event on an
        :class:`~repro.sim.kernel.EventKernel` -- the production path
        every other event source (transport ticks, chaos schedules,
        serving ticks) composes with -- while ``"legacy"`` keeps the
        seed's plain epoch loop as the behavior oracle.  The parity
        regression test pins that both drivers produce identical records.
        """
        if driver not in ("kernel", "legacy"):
            raise ValueError(f"unknown driver {driver!r}; use 'kernel' or 'legacy'")
        cfg = self.config
        self._obs = obs
        self._timer = StageTimer(
            time_model=self.time_model,
            metrics=obs.metrics if obs is not None else None,
        )
        self._degrees = self.topology.degrees.astype(np.float64)
        result = RunResult(
            label=cfg.label,
            scheme=cfg.scheme.value,
            dissemination=cfg.dissemination.value,
            topology=self.topology.name,
            n_nodes=self.n_nodes,
            model="mf",
            sgx=None,
            metadata={"share_points": cfg.share_points, "k": self.k},
        )
        self._result = result
        self._sim_clock = 0.0
        self._cum_bytes = 0
        self._pending_samples: Optional[List[np.ndarray]] = None
        self._pending_recipients: Optional[np.ndarray] = None

        if driver == "legacy":
            self.kernel = None
            for epoch in range(cfg.epochs):
                self._epoch_step(epoch)
            return result

        kernel = self.kernel = EventKernel()

        def fire(epoch: int) -> None:
            self._epoch_step(epoch)
            if epoch + 1 < cfg.epochs:
                # The next epoch starts at this epoch's barrier time.
                kernel.at(
                    self._sim_clock,
                    lambda: fire(epoch + 1),
                    kind="fleet.epoch",
                    key=(epoch + 1,),
                )

        kernel.at(0.0, lambda: fire(0), kind="fleet.epoch", key=(0,))
        kernel.run()
        return result

    def _epoch_step(self, epoch: int) -> None:
        """One full protocol epoch (merge -> train -> share -> test).

        All nodes advance together in vectorized stage calls; the caller
        (legacy loop or event kernel) owns only the scheduling.
        """
        cfg = self.config
        obs = self._obs
        merged_rows = np.zeros(self.n_nodes, dtype=np.int64)
        dedup_items = np.zeros(self.n_nodes, dtype=np.int64)
        staging = np.zeros(self.n_nodes, dtype=np.int64)

        # -- merge (messages shared at the end of the previous epoch) --
        if epoch > 0:
            if cfg.scheme is SharingScheme.DATA:
                _, dedup_items, staging = self._merge_data(
                    self._pending_samples, self._pending_recipients
                )
            elif cfg.dissemination is Dissemination.DPSGD:
                merged_rows = self._merge_models_dpsgd()
                staging = (
                    merged_rows * (self.k + 1) * 4
                )  # decoded alien rows resident during merge
            else:
                merged_rows = self._merge_models_rmw(self._pending_recipients)
                staging = merged_rows * (self.k + 1) * 4

        # -- train ------------------------------------------------- --
        train_samples = self._train()

        # -- share -------------------------------------------------- --
        if cfg.dissemination is Dissemination.RMW:
            recipients = self._select_rmw_recipients()
            full_messages = np.ones(self.n_nodes)
            empty_messages = self._degrees - 1
        else:
            recipients = None
            full_messages = self._degrees
            empty_messages = np.zeros(self.n_nodes)

        if cfg.scheme is SharingScheme.DATA:
            samples = self._draw_share_samples()
            content_bytes = np.array(
                [measure_triplets(len(s)) for s in samples], dtype=np.float64
            )
            self._pending_samples = samples
        else:
            content_bytes = np.array(
                [
                    measure_mf_state(
                        int(self.SU[i].sum()), int(self.SI[i].sum()), self.k
                    )
                    for i in range(self.n_nodes)
                ],
                dtype=np.float64,
            )
            self._pending_samples = None
        self._pending_recipients = recipients

        payload_bytes = (
            full_messages * (content_bytes + HEADER_BYTES)
            + empty_messages * HEADER_BYTES
        )

        # -- test ---------------------------------------------------- --
        rmse = self._test_rmse()

        # -- timing / recording -------------------------------------- --
        store_bytes = np.array(
            [self.stores.nbytes(i) for i in range(self.n_nodes)], dtype=np.float64
        )
        resident = store_bytes + self._model_bytes + staging
        stages = self._timer.mf_stage_times(
            k=self.k,
            merged_rows=merged_rows,
            dedup_items=dedup_items,
            train_samples=train_samples,
            serialized_bytes=content_bytes,
            payload_bytes=payload_bytes,
            messages=full_messages,
            empty_messages=empty_messages,
            test_samples=self._test_counts,
            resident_bytes=resident,
            staging_bytes=staging,
        )
        durations = StageTimer.epoch_duration(
            stages, overlap_share=cfg.parallel_share
        )
        epoch_start = self._sim_clock
        self._sim_clock += float(np.max(durations))
        epoch_bytes = int(payload_bytes.sum())
        self._cum_bytes += epoch_bytes
        record_epoch(
            obs,
            epoch=epoch,
            start_s=epoch_start,
            duration_s=self._sim_clock - epoch_start,
            stage_seconds={name: float(np.mean(v)) for name, v in stages.items()},
            payload_bytes=epoch_bytes,
            serialized_bytes=int(content_bytes.sum()),
            messages=int(full_messages.sum() + empty_messages.sum()),
            rmse=float(np.nanmean(rmse)),
        )
        self._result.records.append(
            EpochRecord(
                epoch=epoch,
                sim_time_s=self._sim_clock,
                test_rmse=float(np.nanmean(rmse)),
                bytes_sent=epoch_bytes,
                cum_bytes=self._cum_bytes,
                merge_time_s=float(np.mean(stages["merge"])),
                train_time_s=float(np.mean(stages["train"])),
                share_time_s=float(np.mean(stages["share"])),
                test_time_s=float(np.mean(stages["test"])),
                network_time_s=float(np.mean(stages["network"])),
                memory_mib_mean=float(np.mean(resident)) / MIB,
                memory_mib_max=float(np.max(resident)) / MIB,
            )
        )
