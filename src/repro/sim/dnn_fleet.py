"""Fleet simulator for the DNN recommender (Figure 5).

The paper's DNN experiments use 50 nodes (12-13 users each) with D-PSGD
dissemination; per-node models are heavy (215,001 parameters) but the
node count is small, so this simulator keeps one
:class:`~repro.ml.dnn.DnnRecommender` per node and loops -- the inner
work (minibatch forward/backward, parameter-vector averaging) is already
vectorized NumPy.  Protocol semantics match :class:`~repro.sim.fleet.
MfFleetSim` exactly: epoch barrier, merge - train - share - test, shares
computed from the previous epoch's state.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro._rng import child_rng
from repro.core.config import Dissemination, RexConfig, SharingScheme
from repro.core.messages import HEADER_BYTES
from repro.core.store import DataStore
from repro.data.dataset import RatingsDataset
from repro.ml.dnn.model import DnnRecommender, DnnState
from repro.net.serialization import measure_dnn_state, measure_triplets
from repro.net.topology import Topology
from repro.sim.recorder import MIB, EpochRecord, RunResult
from repro.sim.time_model import DEFAULT_TIME_MODEL, StageTimer, TimeModel

__all__ = ["DnnFleetSim"]


class DnnFleetSim:
    """Per-node-object simulator of decentralized DNN training."""

    def __init__(
        self,
        train_shards: Sequence[RatingsDataset],
        test_shards: Sequence[RatingsDataset],
        topology: Topology,
        config: RexConfig,
        *,
        time_model: TimeModel = DEFAULT_TIME_MODEL,
    ):
        if len(train_shards) != topology.n_nodes:
            raise ValueError("one train shard per node required")
        self.config = config
        self.topology = topology
        self.time_model = time_model
        self.n_nodes = topology.n_nodes
        first = train_shards[0]
        self.n_users, self.n_items = first.n_users, first.n_items

        self.models: List[DnnRecommender] = []
        self.stores: List[DataStore] = []
        for node, shard in enumerate(train_shards):
            # Same seed: all nodes start from identical weights.
            model = DnnRecommender(self.n_users, self.n_items, config.dnn, seed=config.seed)
            model.mark_seen(shard)
            store = DataStore(self.n_users, self.n_items, capacity=max(64, len(shard)))
            store.append_unique(shard)
            self.models.append(model)
            self.stores.append(store)
        self.test_shards = list(test_shards)
        self._rng = child_rng(config.seed, "dnn-fleet")
        self._mh = topology.metropolis_hastings_weights()
        self.param_count = self.models[0].param_count
        self.mlp_param_count = self.models[0].mlp_param_count

    # ------------------------------------------------------------------ #
    def _select_rmw_recipients(self) -> np.ndarray:
        recipients = np.empty(self.n_nodes, dtype=np.int64)
        for node in range(self.n_nodes):
            nbrs = self.topology.neighbors(node)
            recipients[node] = nbrs[self._rng.integers(0, len(nbrs))]
        return recipients

    def _snapshot_states(self) -> List[DnnState]:
        return [model.state() for model in self.models]

    def run(self) -> RunResult:
        cfg = self.config
        timer = StageTimer(time_model=self.time_model)
        degrees = self.topology.degrees.astype(np.float64)
        result = RunResult(
            label=cfg.label,
            scheme=cfg.scheme.value,
            dissemination=cfg.dissemination.value,
            topology=self.topology.name,
            n_nodes=self.n_nodes,
            model="dnn",
            sgx=None,
            metadata={"share_points": cfg.share_points, "param_count": self.param_count},
        )

        sim_clock = 0.0
        cum_bytes = 0
        pending_samples: Optional[List[RatingsDataset]] = None
        pending_recipients: Optional[np.ndarray] = None
        pending_states: Optional[List[DnnState]] = None

        for epoch in range(cfg.epochs):
            merged_models = np.zeros(self.n_nodes, dtype=np.int64)
            dedup_items = np.zeros(self.n_nodes, dtype=np.int64)
            staging = np.zeros(self.n_nodes, dtype=np.float64)

            # -- merge ---------------------------------------------------- #
            if epoch > 0:
                if cfg.scheme is SharingScheme.DATA:
                    incoming: List[List[RatingsDataset]] = [[] for _ in range(self.n_nodes)]
                    if pending_recipients is not None:
                        for sender, receiver in enumerate(pending_recipients):
                            incoming[int(receiver)].append(pending_samples[sender])
                    else:
                        for sender in range(self.n_nodes):
                            for receiver in self.topology.neighbors(sender):
                                incoming[int(receiver)].append(pending_samples[sender])
                    for node, batches in enumerate(incoming):
                        if not batches:
                            continue
                        combined = batches[0]
                        for extra in batches[1:]:
                            combined = combined.concat(extra)
                        dedup_items[node] = len(combined)
                        staging[node] = combined.nbytes
                        if self.stores[node].append_unique(combined):
                            self.models[node].mark_seen(combined)
                else:
                    if pending_recipients is not None:  # RMW
                        for sender, receiver in enumerate(pending_recipients):
                            receiver = int(receiver)
                            self.models[receiver].merge_average(pending_states[sender])
                            merged_models[receiver] += 1
                            staging[receiver] += _dnn_state_bytes(pending_states[sender])
                    else:  # D-PSGD
                        for node in range(self.n_nodes):
                            contributions = []
                            weight_total = 0.0
                            for nb in self.topology.neighbors(node):
                                w = self._mh[(node, int(nb))]
                                contributions.append((pending_states[int(nb)], w))
                                weight_total += w
                                staging[node] += _dnn_state_bytes(pending_states[int(nb)])
                            self.models[node].merge_weighted(
                                contributions, self_weight=1.0 - weight_total
                            )
                            merged_models[node] = len(contributions)

            # -- train ----------------------------------------------------- #
            train_samples = np.zeros(self.n_nodes, dtype=np.int64)
            for node, (model, store) in enumerate(zip(self.models, self.stores)):
                train_samples[node] = model.train_epoch(store.as_dataset(), self._rng)

            # -- share ------------------------------------------------------ #
            if cfg.dissemination is Dissemination.RMW:
                recipients = self._select_rmw_recipients()
                full_messages = np.ones(self.n_nodes)
                empty_messages = degrees - 1
            else:
                recipients = None
                full_messages = degrees
                empty_messages = np.zeros(self.n_nodes)

            if cfg.scheme is SharingScheme.DATA:
                samples = [store.sample(cfg.share_points, self._rng) for store in self.stores]
                content_bytes = np.array(
                    [measure_triplets(len(s)) for s in samples], dtype=np.float64
                )
                pending_samples, pending_states = samples, None
            else:
                states = self._snapshot_states()
                content_bytes = np.array(
                    [
                        measure_dnn_state(
                            int(s.user_seen.sum()),
                            int(s.item_seen.sum()),
                            s.k,
                            s.mlp_params.size,
                        )
                        for s in states
                    ],
                    dtype=np.float64,
                )
                pending_samples, pending_states = None, states
            pending_recipients = recipients

            payload_bytes = (
                full_messages * (content_bytes + HEADER_BYTES)
                + empty_messages * HEADER_BYTES
            )

            # -- test -------------------------------------------------------- #
            rmses = np.array(
                [m.evaluate_rmse(t) for m, t in zip(self.models, self.test_shards)]
            )
            test_samples = np.array([len(t) for t in self.test_shards], dtype=np.float64)

            # -- timing / record ---------------------------------------------- #
            store_bytes = np.array([s.nbytes for s in self.stores], dtype=np.float64)
            model_bytes = np.array([m.resident_bytes for m in self.models], dtype=np.float64)
            resident = store_bytes + model_bytes + staging
            stages = timer.dnn_stage_times(
                param_count=self.param_count,
                merged_models=merged_models,
                dedup_items=dedup_items,
                train_samples=train_samples,
                serialized_bytes=content_bytes,
                payload_bytes=payload_bytes,
                messages=full_messages,
                empty_messages=empty_messages,
                test_samples=test_samples,
                resident_bytes=resident,
                staging_bytes=staging,
            )
            durations = StageTimer.epoch_duration(
                stages, overlap_share=cfg.parallel_share
            )
            sim_clock += float(np.max(durations))
            epoch_bytes = int(payload_bytes.sum())
            cum_bytes += epoch_bytes
            result.records.append(
                EpochRecord(
                    epoch=epoch,
                    sim_time_s=sim_clock,
                    test_rmse=float(np.nanmean(rmses)),
                    bytes_sent=epoch_bytes,
                    cum_bytes=cum_bytes,
                    merge_time_s=float(np.mean(stages["merge"])),
                    train_time_s=float(np.mean(stages["train"])),
                    share_time_s=float(np.mean(stages["share"])),
                    test_time_s=float(np.mean(stages["test"])),
                    network_time_s=float(np.mean(stages["network"])),
                    memory_mib_mean=float(np.mean(resident)) / MIB,
                    memory_mib_max=float(np.max(resident)) / MIB,
                )
            )
        return result


def _dnn_state_bytes(state: DnnState) -> int:
    return (
        state.user_embeddings.nbytes
        + state.item_embeddings.nbytes
        + state.user_seen.nbytes
        + state.item_seen.nbytes
        + state.mlp_params.nbytes
    )
