"""Experiment presets: one entry point per paper table/figure scenario.

Each function reproduces one experimental cell of the paper's evaluation
(Section IV) and returns a :class:`~repro.sim.recorder.RunResult`.  Runs
are cached in memory and on disk (``.repro_cache/``, JSON) keyed by their
full configuration, because several tables/figures read the same runs
(Table II and Figures 1-2 share the one-user scenarios, Table IV and
Figures 6-7 share the SGX runs).

Scaling: paper-length horizons (hundreds to thousands of epochs on a
cluster) are impractical for a test machine, so every preset has a *base*
epoch count sized to reach the convergence plateau, multiplied by the
``REPRO_EPOCH_SCALE`` environment variable (default 0.4 for quick but
meaningful runs; set to 1.0 to reproduce the full horizons).  At reduced
horizons the Table II/III benchmarks use the *joint* error-target rule
(see :func:`repro.analysis.tables.speedup_table`), since the paper's
"MS-final" rule assumes plateaued curves.

Environment knobs:

- ``REPRO_EPOCH_SCALE`` -- epoch multiplier (default 0.4).
- ``REPRO_NO_CACHE=1`` -- disable the on-disk run cache.
- ``REPRO_CACHE_DIR`` -- cache location (default ``<cwd>/.repro_cache``).
"""

from __future__ import annotations

import hashlib
import os
from functools import lru_cache
from pathlib import Path
from typing import Callable, Dict, List, Tuple

from repro.core.config import (
    CryptoMode,
    Dissemination,
    ModelKind,
    RexConfig,
    SharingScheme,
)
from repro.core.cluster import RexCluster
from repro.data.dataset import TrainTestSplit
from repro.data.movielens import MOVIELENS_25M_CAPPED, MOVIELENS_LATEST, generate_movielens
from repro.data.partition import partition_one_user_per_node, partition_users_across_nodes
from repro.ml.dnn.model import DnnHyperParams
from repro.ml.mf import MfHyperParams
from repro.net.topology import Topology
from repro.sim.centralized import run_centralized
from repro.sim.distributed import timeline_from_cluster
from repro.sim.dnn_fleet import DnnFleetSim
from repro.sim.fleet import MfFleetSim
from repro.sim.recorder import RunResult
from repro.sim.time_model import LAN_TIME_MODEL

__all__ = [
    "scaled_epochs",
    "fig1_run",
    "fig1_centralized",
    "fig3_run",
    "fig4_run",
    "fig4_centralized",
    "fig5_run",
    "sgx_run",
    "TOPOLOGIES",
    "SETUPS",
]

#: Dataset / split seeds shared by every experiment.
DATA_SEED = 42
SPLIT_SEED = 1
TOPOLOGY_SEED = 7
RUN_SEED = 0

#: (dissemination, topology) pairs in the paper's table order.
SETUPS: List[Tuple[Dissemination, str]] = [
    (Dissemination.DPSGD, "er"),
    (Dissemination.RMW, "er"),
    (Dissemination.DPSGD, "sw"),
    (Dissemination.RMW, "sw"),
]

TOPOLOGIES = ("er", "sw")


def _epoch_scale() -> float:
    return float(os.environ.get("REPRO_EPOCH_SCALE", "0.4"))


def scaled_epochs(base: int) -> int:
    """Apply the global horizon multiplier (minimum 5 epochs)."""
    return max(5, int(round(base * _epoch_scale())))


# --------------------------------------------------------------------- #
# Shared data and topologies
# --------------------------------------------------------------------- #
@lru_cache(maxsize=None)
def movielens_latest_split() -> TrainTestSplit:
    return generate_movielens(MOVIELENS_LATEST, seed=DATA_SEED).split(0.7, seed=SPLIT_SEED)


@lru_cache(maxsize=None)
def movielens_25m_split() -> TrainTestSplit:
    return generate_movielens(MOVIELENS_25M_CAPPED, seed=DATA_SEED).split(0.7, seed=SPLIT_SEED)


@lru_cache(maxsize=None)
def topology(kind: str, n_nodes: int) -> Topology:
    """The paper's graphs: SW (k=6, p=3%), ER (p=5%), or fully connected."""
    if kind == "sw":
        return Topology.small_world(n_nodes, k=6, rewire_probability=0.03, seed=TOPOLOGY_SEED)
    if kind == "er":
        return Topology.erdos_renyi(n_nodes, p=0.05, seed=TOPOLOGY_SEED)
    if kind == "full":
        return Topology.fully_connected(n_nodes)
    raise ValueError(f"unknown topology kind {kind!r}")


@lru_cache(maxsize=None)
def _one_user_shards() -> Tuple[tuple, tuple]:
    split = movielens_latest_split()
    return (
        tuple(partition_one_user_per_node(split.train)),
        tuple(partition_one_user_per_node(split.test)),
    )


@lru_cache(maxsize=None)
def _multi_user_shards(n_nodes: int) -> Tuple[tuple, tuple]:
    split = movielens_latest_split()
    return (
        tuple(partition_users_across_nodes(split.train, n_nodes, seed=2)),
        tuple(partition_users_across_nodes(split.test, n_nodes, seed=2)),
    )


@lru_cache(maxsize=None)
def _shards_25m(n_nodes: int) -> Tuple[tuple, tuple]:
    split = movielens_25m_split()
    return (
        tuple(partition_users_across_nodes(split.train, n_nodes, seed=2)),
        tuple(partition_users_across_nodes(split.test, n_nodes, seed=2)),
    )


# --------------------------------------------------------------------- #
# Run cache
# --------------------------------------------------------------------- #
_MEMORY_CACHE: Dict[str, RunResult] = {}

#: Bump when run semantics change to invalidate stale disk caches.
_CACHE_VERSION = "v2"


def _cache_dir() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


def _cached(key: str, builder: Callable[[], RunResult]) -> RunResult:
    if key in _MEMORY_CACHE:
        return _MEMORY_CACHE[key]
    digest = hashlib.sha256(f"{_CACHE_VERSION}|{key}".encode()).hexdigest()[:24]
    path = _cache_dir() / f"{digest}.json"
    use_disk = os.environ.get("REPRO_NO_CACHE", "0") != "1"
    if use_disk and path.exists():
        result = RunResult.from_json(path.read_text())
        _MEMORY_CACHE[key] = result
        return result
    result = builder()
    _MEMORY_CACHE[key] = result
    if use_disk:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(result.to_json())
    return result


# --------------------------------------------------------------------- #
# Figure 1 / 2 / Table II: one node per user, MF, 610 nodes
# --------------------------------------------------------------------- #
FIG1_BASE_EPOCHS = 300


def fig1_run(dissemination: Dissemination, topo_kind: str, scheme: SharingScheme) -> RunResult:
    epochs = scaled_epochs(FIG1_BASE_EPOCHS)
    key = f"fig1|{dissemination.value}|{topo_kind}|{scheme.value}|{epochs}"

    def build() -> RunResult:
        train, test = _one_user_shards()
        config = RexConfig(
            scheme=scheme,
            dissemination=dissemination,
            epochs=epochs,
            seed=RUN_SEED,
            share_points=300,
        )
        sim = MfFleetSim(
            list(train),
            list(test),
            topology(topo_kind, 610),
            config,
            global_mean=movielens_latest_split().train.global_mean(),
        )
        return sim.run()

    return _cached(key, build)


def fig1_centralized() -> RunResult:
    epochs = scaled_epochs(60)
    key = f"fig1|centralized|{epochs}"

    def build() -> RunResult:
        split = movielens_latest_split()
        return run_centralized(split.train, split.test, RexConfig(epochs=epochs, seed=RUN_SEED))

    return _cached(key, build)


# --------------------------------------------------------------------- #
# Figure 3: feature-vector size sweep (D-PSGD, SW, one user per node)
# --------------------------------------------------------------------- #
FIG3_BASE_EPOCHS = 120
FIG3_K_VALUES = (5, 10, 20, 40)


def fig3_run(k: int, scheme: SharingScheme) -> RunResult:
    epochs = scaled_epochs(FIG3_BASE_EPOCHS)
    key = f"fig3|k{k}|{scheme.value}|{epochs}"

    def build() -> RunResult:
        train, test = _one_user_shards()
        config = RexConfig(
            scheme=scheme,
            dissemination=Dissemination.DPSGD,
            epochs=epochs,
            seed=RUN_SEED,
            share_points=300,
            mf=MfHyperParams(k=k),
        )
        sim = MfFleetSim(
            list(train),
            list(test),
            topology("sw", 610),
            config,
            global_mean=movielens_latest_split().train.global_mean(),
        )
        return sim.run()

    return _cached(key, build)


# --------------------------------------------------------------------- #
# Figure 4 / Table III: multiple users per node, MF, 50 nodes
# --------------------------------------------------------------------- #
FIG4_BASE_EPOCHS = 300
FIG4_NODES = 50


def fig4_run(dissemination: Dissemination, topo_kind: str, scheme: SharingScheme) -> RunResult:
    epochs = scaled_epochs(FIG4_BASE_EPOCHS)
    key = f"fig4|{dissemination.value}|{topo_kind}|{scheme.value}|{epochs}"

    def build() -> RunResult:
        train, test = _multi_user_shards(FIG4_NODES)
        config = RexConfig(
            scheme=scheme,
            dissemination=dissemination,
            epochs=epochs,
            seed=RUN_SEED,
            share_points=300,
        )
        sim = MfFleetSim(
            list(train),
            list(test),
            topology(topo_kind, FIG4_NODES),
            config,
            global_mean=movielens_latest_split().train.global_mean(),
        )
        return sim.run()

    return _cached(key, build)


def fig4_centralized() -> RunResult:
    return fig1_centralized()  # same dataset, same baseline


# --------------------------------------------------------------------- #
# Figure 5: DNN, 50 nodes, D-PSGD
# --------------------------------------------------------------------- #
FIG5_BASE_EPOCHS = 150


def fig5_run(topo_kind: str, scheme: SharingScheme) -> RunResult:
    epochs = scaled_epochs(FIG5_BASE_EPOCHS)
    key = f"fig5|{topo_kind}|{scheme.value}|{epochs}"

    def build() -> RunResult:
        train, test = _multi_user_shards(FIG4_NODES)
        config = RexConfig(
            scheme=scheme,
            dissemination=Dissemination.DPSGD,
            model=ModelKind.DNN,
            epochs=epochs,
            seed=RUN_SEED,
            share_points=40,
            dnn=DnnHyperParams(),
        )
        sim = DnnFleetSim(
            list(train), list(test), topology(topo_kind, FIG4_NODES), config
        )
        return sim.run()

    return _cached(key, build)


# --------------------------------------------------------------------- #
# Figures 6-7 / Table IV: distributed SGX testbed (8 nodes, 4 machines)
# --------------------------------------------------------------------- #
FIG6_BASE_EPOCHS = 250
FIG7_BASE_EPOCHS = 100
SGX_NODES = 8


def sgx_run(
    dissemination: Dissemination,
    scheme: SharingScheme,
    *,
    sgx: bool,
    large: bool = False,
) -> RunResult:
    """One cell of the SGX testbed matrix (Figs. 6-7, Table IV).

    ``large=False`` is the MovieLens-Latest (610 user) run of Figure 6;
    ``large=True`` the 15,000-user MovieLens-25M run of Figure 7, whose
    model-sharing working set exceeds the per-enclave EPC share.

    The cluster executes the full protocol -- enclaves, mutual
    attestation, sealed channels (byte-accounted AEAD; see
    :class:`~repro.core.config.CryptoMode`) -- and the run is then timed
    under the SGX or native cost model.
    """
    epochs = scaled_epochs(FIG7_BASE_EPOCHS if large else FIG6_BASE_EPOCHS)
    key = f"sgx|{dissemination.value}|{scheme.value}|sgx={sgx}|large={large}|{epochs}"

    def build() -> RunResult:
        if large:
            train, test = _shards_25m(SGX_NODES)
            split = movielens_25m_split()
        else:
            train, test = _multi_user_shards(SGX_NODES)
            split = movielens_latest_split()
        config = RexConfig(
            scheme=scheme,
            dissemination=dissemination,
            epochs=epochs,
            seed=RUN_SEED,
            share_points=300,
            crypto_mode=CryptoMode.ACCOUNTED,
            mf=MfHyperParams(dtype="float64"),  # the C++ original uses Eigen doubles
        )
        cluster = RexCluster(topology("full", SGX_NODES), config, secure=sgx)
        run = cluster.run(list(train), list(test), global_mean=split.train.global_mean())
        # The SGX testbed sits on a fast LAN; epoch cost is compute/crypto
        # bound there, unlike the edge-device simulations.
        return timeline_from_cluster(run, time_model=LAN_TIME_MODEL)

    return _cached(key, build)
