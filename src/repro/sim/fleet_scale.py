"""Thousand-node fleet scaling harness (behind ``repro fleet-bench``).

The paper's evaluation stops at a few hundred simulated nodes; the
production north star needs evidence that the event kernel sustains
1k-10k node fleets.  This module provides that evidence: a vectorized,
cycle-batched gossip dissemination experiment (the standard
epidemic-simulator shape: every cycle, each informed node pushes its
rumor to ``fanout`` random neighbors; messages sent in cycle *t* are
delivered in cycle *t+1*) executed entirely as
:class:`~repro.sim.kernel.EventKernel` events, plus a
:class:`FleetScaleRunner` that sweeps fleet sizes and emits the
``BENCH_fleet.json`` scaling curve (nodes vs sim-steps/s and peak
resident bytes) that the ``fleet-bench`` CI job gates on.

Everything is seeded: the topology, the per-cycle peer choices and hence
the whole dissemination history (pinned by the kernel trace digest and
the coverage curve) are a pure function of ``(seed, n_nodes, degree,
fanout, cycles)``.
"""

from __future__ import annotations

import json
import tracemalloc
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro._rng import child_rng
from repro.core.messages import HEADER_BYTES
from repro.net.serialization import measure_triplets
from repro.net.topology import Topology
from repro.sim.kernel import EventKernel

__all__ = ["GossipFleetSim", "FleetBenchPoint", "FleetScaleRunner", "write_fleet_bench"]

#: Artifact schema tag (bump on breaking change).
SCHEMA = "repro.fleet_bench/v1"


def _ring_lattice(n_nodes: int, degree: int) -> Topology:
    """k-regular ring lattice -- O(n*k) construction, connected by
    design, so 4k-node topologies build in milliseconds (Watts-Strogatz
    rewiring is a per-edge Python loop; at fleet scale the unrewired
    lattice keeps setup out of the measurement)."""
    if degree % 2 != 0:
        raise ValueError("degree must be even (degree/2 neighbors per side)")
    if degree >= n_nodes:
        raise ValueError("degree must be smaller than the node count")
    spans = np.arange(1, degree // 2 + 1)
    nodes = np.arange(n_nodes)
    a = np.repeat(nodes, len(spans))
    b = (a + np.tile(spans, n_nodes)) % n_nodes
    edges = list(zip(a.tolist(), b.tolist()))
    return Topology(n_nodes, edges, name=f"ring-lattice({n_nodes},k={degree})")


class GossipFleetSim:
    """Cycle-batched push-gossip rumor dissemination on the event kernel.

    State is fully vectorized (one bool/int array across all nodes); the
    kernel carries one ``gossip.deliver`` + one ``gossip.cycle`` event
    per cycle, exactly the batched per-cycle message delivery of the
    related decentralized-learning simulators.  One *sim step* is one
    node executing one protocol cycle, so ``sim_steps = n_nodes *
    cycles`` and steps/s measures whole-fleet scheduling throughput.
    """

    def __init__(
        self,
        n_nodes: int,
        *,
        seed: int = 0,
        degree: int = 6,
        fanout: int = 1,
        share_points: int = 100,
        topology: Optional[Topology] = None,
    ):
        if fanout < 1:
            raise ValueError("fanout must be at least one peer per cycle")
        self.n_nodes = int(n_nodes)
        self.seed = int(seed)
        self.fanout = int(fanout)
        self.share_points = int(share_points)
        self.topology = topology if topology is not None else _ring_lattice(n_nodes, degree)
        if self.topology.n_nodes != self.n_nodes:
            raise ValueError("topology size does not match the fleet size")
        # CSR neighbor layout for one vectorized random-peer draw per cycle.
        degrees = self.topology.degrees
        self._offsets = np.concatenate([[0], np.cumsum(degrees)])
        self._flat_neighbors = np.concatenate(
            [self.topology.neighbors(i) for i in range(self.n_nodes)]
        )
        self._degrees = degrees
        self._rng = child_rng(self.seed, "fleet-scale", self.n_nodes)

        #: Nodes that have heard the rumor (node 0 is patient zero).
        self.informed = np.zeros(self.n_nodes, dtype=bool)
        self.informed[0] = True
        self._pending: Optional[np.ndarray] = None  # receiver ids due next cycle
        self.cycles_run = 0
        self.sim_steps = 0
        self.messages = 0
        self.payload_bytes = 0
        self.coverage_curve: List[float] = []

    # ------------------------------------------------------------------ #
    def _deliver(self) -> None:
        """Apply last cycle's batched sends (cycle-batched dissemination)."""
        if self._pending is not None and len(self._pending):
            self.informed[self._pending] = True
        self._pending = None

    def _cycle(self) -> None:
        """Every informed node pushes to ``fanout`` random neighbors."""
        senders = np.flatnonzero(self.informed)
        if len(senders):
            picks = self._rng.integers(
                0, self._degrees[senders], size=(self.fanout, len(senders))
            )
            receivers = self._flat_neighbors[self._offsets[senders] + picks].ravel()
            self._pending = receivers
            self.messages += receivers.size
            self.payload_bytes += receivers.size * (
                measure_triplets(self.share_points) + HEADER_BYTES
            )
        self.sim_steps += self.n_nodes
        self.cycles_run += 1
        self.coverage_curve.append(float(self.informed.mean()))

    def schedule(self, kernel: EventKernel, cycles: int) -> None:
        """Register ``cycles`` rounds of deliver-then-gossip events."""
        for cycle in range(int(cycles)):
            at = float(cycle)
            # Keys carry the fleet size so the kernel trace digest
            # fingerprints *this* experiment, not just a cycle count.
            kernel.at(
                at, self._deliver, kind="gossip.deliver", key=(self.n_nodes, cycle, 0)
            )
            kernel.at(
                at, self._cycle, kind="gossip.cycle", key=(self.n_nodes, cycle, 1)
            )

    def run(self, cycles: int, *, kernel: Optional[EventKernel] = None) -> EventKernel:
        """Run ``cycles`` gossip cycles; returns the (possibly shared)
        kernel so callers can read ``processed`` and the trace digest."""
        if kernel is None:
            kernel = EventKernel()
        self.schedule(kernel, cycles)
        kernel.run()
        self._deliver()  # the final cycle's sends land after the horizon
        return kernel

    @property
    def coverage(self) -> float:
        """Fraction of the fleet the rumor has reached."""
        return float(self.informed.mean())


@dataclass(frozen=True)
class FleetBenchPoint:
    """One fleet size's measured scaling point."""

    nodes: int
    topology: str
    cycles: int
    events: int
    sim_steps: int
    messages: int
    payload_bytes: int
    coverage: float
    wall_s: float
    steps_per_s: float
    events_per_s: float
    peak_traced_bytes: int
    trace_digest: str

    def to_dict(self) -> Dict:
        return asdict(self)


class FleetScaleRunner:
    """Sweep fleet sizes through the kernel-driven gossip experiment.

    Two passes per size: a clean timed pass (``steps_per_s``), then an
    identical pass under :mod:`tracemalloc` for the peak resident bytes
    of the simulation state (the allocation tracer slows execution, so
    it must never contaminate the throughput number).

    ``clock`` is the injected wall-clock (callers pass
    ``time.perf_counter``), the same idiom as
    :func:`repro.tee.crypto.tuning.measure_crossover`: simulation code
    never reads the wall clock itself, so every simulated result stays
    bit-reproducible and only the throughput *measurement* is
    machine-dependent.
    """

    def __init__(
        self,
        sizes: Sequence[int] = (256, 1024, 4096),
        *,
        clock: Callable[[], float],
        cycles: int = 40,
        seed: int = 0,
        degree: int = 6,
        fanout: int = 1,
    ):
        if not sizes:
            raise ValueError("need at least one fleet size")
        self.sizes = tuple(int(s) for s in sizes)
        self.clock = clock
        self.cycles = int(cycles)
        self.seed = int(seed)
        self.degree = int(degree)
        self.fanout = int(fanout)

    def _build(self, n_nodes: int) -> GossipFleetSim:
        return GossipFleetSim(
            n_nodes,
            seed=self.seed,
            degree=self.degree,
            fanout=self.fanout,
        )

    def _measure(self, n_nodes: int) -> FleetBenchPoint:
        # Timed pass: build outside the clock, run inside it.
        sim = self._build(n_nodes)
        kernel = EventKernel()
        sim.schedule(kernel, self.cycles)
        t0 = self.clock()
        kernel.run()
        wall = self.clock() - t0
        sim._deliver()

        # Memory pass: same seeded experiment under the allocation tracer.
        tracing_already = tracemalloc.is_tracing()
        if not tracing_already:
            tracemalloc.start()
        base = tracemalloc.get_traced_memory()[0]
        tracemalloc.reset_peak()
        mem_sim = self._build(n_nodes)
        mem_sim.run(self.cycles)
        peak = tracemalloc.get_traced_memory()[1] - base
        if not tracing_already:
            tracemalloc.stop()

        return FleetBenchPoint(
            nodes=n_nodes,
            topology=sim.topology.name,
            cycles=sim.cycles_run,
            events=kernel.processed,
            sim_steps=sim.sim_steps,
            messages=sim.messages,
            payload_bytes=sim.payload_bytes,
            coverage=sim.coverage,
            wall_s=round(wall, 6),
            steps_per_s=round(sim.sim_steps / wall, 1) if wall > 0 else float("inf"),
            events_per_s=round(kernel.processed / wall, 1) if wall > 0 else float("inf"),
            peak_traced_bytes=max(0, int(peak)),
            trace_digest=kernel.trace_digest(),
        )

    def run(self) -> List[FleetBenchPoint]:
        return [self._measure(n) for n in self.sizes]


def write_fleet_bench(
    points: Sequence[FleetBenchPoint],
    path: str,
    *,
    seed: int,
    cycles: int,
    floor_steps_per_s: Optional[float] = None,
) -> Dict:
    """Serialize the scaling curve as the ``BENCH_fleet.json`` artifact."""
    doc = {
        "schema": SCHEMA,
        "seed": int(seed),
        "cycles": int(cycles),
        "unit": "sim node-steps per wall-clock second",
        "floor_steps_per_s": floor_steps_per_s,
        "points": [p.to_dict() for p in points],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc
