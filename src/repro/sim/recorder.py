"""Run results: the per-epoch series every table and figure reads.

A :class:`RunResult` is the universal output of all three execution paths
(MF fleet simulator, DNN fleet simulator, distributed enclave cluster).
It holds one :class:`EpochRecord` per epoch with the simulated clock, the
mean test RMSE across nodes, traffic and memory, plus the per-stage time
breakdown -- enough to regenerate Figures 1-7 and Tables II-IV.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

__all__ = ["EpochRecord", "RunResult"]

MIB = float(1 << 20)


@dataclass(frozen=True)
class EpochRecord:
    """Aggregated metrics for one epoch (means are across nodes)."""

    epoch: int
    #: Cumulative simulated time at the end of this epoch (barrier max).
    sim_time_s: float
    #: Mean of the per-node local test RMSE.
    test_rmse: float
    #: Total payload bytes sent by all nodes this epoch.
    bytes_sent: int
    #: Cumulative payload bytes since the start of the run.
    cum_bytes: int
    #: Mean per-node stage durations (seconds) this epoch.
    merge_time_s: float = 0.0
    train_time_s: float = 0.0
    share_time_s: float = 0.0
    test_time_s: float = 0.0
    network_time_s: float = 0.0
    #: Mean / max per-node resident memory (MiB).
    memory_mib_mean: float = 0.0
    memory_mib_max: float = 0.0


@dataclass
class RunResult:
    """One complete decentralized (or centralized) training run."""

    label: str
    scheme: str
    dissemination: str
    topology: str
    n_nodes: int
    model: str
    sgx: Optional[bool] = None
    records: List[EpochRecord] = field(default_factory=list)
    metadata: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Series accessors (figure axes)
    # ------------------------------------------------------------------ #
    def times(self) -> List[float]:
        return [r.sim_time_s for r in self.records]

    def rmses(self) -> List[float]:
        return [r.test_rmse for r in self.records]

    def epochs(self) -> List[int]:
        return [r.epoch for r in self.records]

    def cum_bytes(self) -> List[int]:
        return [r.cum_bytes for r in self.records]

    # ------------------------------------------------------------------ #
    # Scalar summaries (table cells)
    # ------------------------------------------------------------------ #
    @property
    def final_rmse(self) -> float:
        return self.records[-1].test_rmse if self.records else float("nan")

    @property
    def best_rmse(self) -> float:
        valid = [r.test_rmse for r in self.records if not math.isnan(r.test_rmse)]
        return min(valid) if valid else float("nan")

    @property
    def total_time_s(self) -> float:
        return self.records[-1].sim_time_s if self.records else 0.0

    @property
    def total_bytes(self) -> int:
        return self.records[-1].cum_bytes if self.records else 0

    def time_to_target(self, target_rmse: float) -> Optional[float]:
        """First simulated time at which the mean RMSE reaches the target.

        This is the quantity Tables II/III ratio between REX and MS.
        Returns ``None`` when the run never reaches the target.
        """
        for record in self.records:
            if not math.isnan(record.test_rmse) and record.test_rmse <= target_rmse:
                return record.sim_time_s
        return None

    def epochs_to_target(self, target_rmse: float) -> Optional[int]:
        for record in self.records:
            if not math.isnan(record.test_rmse) and record.test_rmse <= target_rmse:
                return record.epoch
        return None

    def bytes_per_node_per_epoch(self, *, skip: int = 1) -> float:
        """Steady-state mean traffic per node per epoch (skip warm-up)."""
        usable = self.records[skip:] if len(self.records) > skip else self.records
        if not usable:
            return 0.0
        return sum(r.bytes_sent for r in usable) / (len(usable) * max(1, self.n_nodes))

    def stage_means(self, *, skip: int = 1) -> Dict[str, float]:
        """Mean per-epoch stage durations (Figures 5(a)/6(a)/7(a))."""
        usable = self.records[skip:] if len(self.records) > skip else self.records
        if not usable:
            return {k: 0.0 for k in ("merge", "train", "share", "test", "network")}
        n = len(usable)
        return {
            "merge": sum(r.merge_time_s for r in usable) / n,
            "train": sum(r.train_time_s for r in usable) / n,
            "share": sum(r.share_time_s for r in usable) / n,
            "test": sum(r.test_time_s for r in usable) / n,
            "network": sum(r.network_time_s for r in usable) / n,
        }

    def mean_epoch_time(self, *, skip: int = 1) -> float:
        """Mean simulated epoch duration after ``skip`` warm-up epochs."""
        if len(self.records) <= skip:
            skip = 0
        if not self.records:
            return 0.0
        start_time = self.records[skip - 1].sim_time_s if skip else 0.0
        span = self.records[-1].sim_time_s - start_time
        return span / (len(self.records) - skip)

    def memory_mib(self) -> float:
        """Peak of the per-epoch mean resident memory (Table IV RAM)."""
        if not self.records:
            return 0.0
        return max(r.memory_mib_mean for r in self.records)

    # ------------------------------------------------------------------ #
    # Disk cache
    # ------------------------------------------------------------------ #
    def to_json(self) -> str:
        payload = {
            "label": self.label,
            "scheme": self.scheme,
            "dissemination": self.dissemination,
            "topology": self.topology,
            "n_nodes": self.n_nodes,
            "model": self.model,
            "sgx": self.sgx,
            "metadata": self.metadata,
            "records": [asdict(r) for r in self.records],
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, raw: str) -> "RunResult":
        payload = json.loads(raw)
        records = [EpochRecord(**r) for r in payload.pop("records")]
        return cls(records=records, **payload)
