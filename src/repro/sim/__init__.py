"""Simulation engine: event kernel, fleet simulators, time model, recording.

Mirrors the paper's two evaluation modes: large simulated deployments
(:mod:`~repro.sim.fleet` for MF, :mod:`~repro.sim.dnn_fleet` for the DNN)
and the distributed SGX testbed (:mod:`~repro.core.cluster` executed for
real, then timed by :mod:`~repro.sim.distributed`).  Both default to
kernel-driven scheduling: every execution path registers its work
(training epochs, transport ticks, fault schedules, serving ticks) on
the :mod:`~repro.sim.kernel` event kernel's priority queue, and
:mod:`~repro.sim.fleet_scale` pushes the same machinery to thousand-node
fleets for the ``repro fleet-bench`` scaling curve.  All paths share the
:mod:`~repro.sim.time_model` cost model and produce
:class:`~repro.sim.recorder.RunResult` series; experiment presets matching
each figure/table live in :mod:`~repro.sim.experiments`.
"""

from repro.sim.centralized import run_centralized
from repro.sim.distributed import timeline_from_cluster
from repro.sim.dnn_fleet import DnnFleetSim
from repro.sim.fleet import MfFleetSim
from repro.sim.fleet_scale import FleetScaleRunner, GossipFleetSim
from repro.sim.kernel import Event, EventKernel
from repro.sim.recorder import EpochRecord, RunResult
from repro.sim.time_model import DEFAULT_TIME_MODEL, LAN_TIME_MODEL, StageTimer, TimeModel

__all__ = [
    "DEFAULT_TIME_MODEL",
    "LAN_TIME_MODEL",
    "DnnFleetSim",
    "EpochRecord",
    "Event",
    "EventKernel",
    "FleetScaleRunner",
    "GossipFleetSim",
    "MfFleetSim",
    "RunResult",
    "StageTimer",
    "TimeModel",
    "run_centralized",
    "timeline_from_cluster",
]
