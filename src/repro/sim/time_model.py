"""The simulated-time cost model.

The paper reports wall-clock measured on its testbed; we report simulated
time computed by charging counted work units calibrated, documented costs.
Every headline *ratio* (Table II/III speed-ups, Table IV overheads, the
Figure 1/4 convergence-time gaps) then emerges from the counted work --
bytes serialized and transmitted, SGD samples, embedding rows averaged,
page faults, boundary crossings -- rather than from hard-coded answers.

Calibration targets (Section IV-A): a 2.4 GHz Xeon E5-2630 v3 for the
simulated runs; nodes in the one-user-per-node scenario behave like edge
devices, for which we model a 1 MB/s effective per-node uplink (the
paper's simulator likewise produced hours-long D-PSGD model-sharing runs,
which implies megabyte-per-second-scale effective links for the ~12 MB a
D-PSGD/ER node pushes per epoch).

All costs are per *unit of work*; stage assembly lives in
:class:`StageTimer`, which also applies the SGX cost model for enclave
builds.  Methods accept scalars or NumPy arrays (the fleet simulator
computes all nodes' stage times in one vectorized call).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

from repro.obs import DEFAULT_COUNT_BUCKETS, MetricsRegistry
from repro.tee.cost_model import NATIVE_COST_MODEL, SgxCostModel
from repro.tee.epc import EpcModel

__all__ = ["TimeModel", "StageTimer", "DEFAULT_TIME_MODEL"]

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class TimeModel:
    """Per-unit costs, in seconds.

    Compute costs approximate the paper's 2.4 GHz simulation servers; the
    default network models an edge-device profile (1 MB/s effective
    uplink, 30 ms per payload exchange, 1 ms per barrier ping); the SGX
    testbed uses :data:`LAN_TIME_MODEL` instead.
    """

    # -- matrix factorization ------------------------------------------ #
    #: Fixed cost of one SGD sample (gather, bias update, scatter).
    mf_sgd_sample_base_s: float = 1.2e-6
    #: Additional cost per embedding dimension of one SGD sample.
    mf_sgd_sample_per_k_s: float = 2.5e-7
    #: Cost per float when averaging embedding rows during merge.
    merge_per_float_s: float = 6e-9
    #: Prediction cost for one test sample.
    mf_test_sample_base_s: float = 4e-7
    mf_test_sample_per_k_s: float = 8e-8

    # -- DNN ------------------------------------------------------------ #
    #: Forward+backward cost per sample per model parameter.
    dnn_sample_per_param_s: float = 2e-10
    #: Forward-only fraction for test predictions.
    dnn_test_fraction: float = 0.35

    # -- data handling --------------------------------------------------- #
    #: Duplicate check + append per incoming raw data item.
    dedup_item_s: float = 1.5e-7
    #: Serialization / deserialization per byte.
    serialize_per_byte_s: float = 5e-10

    # -- network ---------------------------------------------------------- #
    #: Effective per-node uplink (edge-device scale for the one-node-per-
    #: user scenario; also covers gossip-protocol framing overheads).
    bandwidth_bytes_per_s: float = 1.0e6
    #: Fixed per-payload-message cost: connection handling, serialization
    #: handshake and scheduling of one gossip exchange.  Calibrated so a
    #: D-PSGD/ER model-sharing epoch lands at the paper's ~10-20 s scale
    #: and the Table II speed-up factors at the paper's order.
    latency_per_message_s: float = 0.03
    #: Cost of a 16-byte empty barrier ping (Algorithm 2's "possibly
    #: empty" messages); these piggyback on keep-alives and cost far less
    #: than a payload exchange.
    empty_message_latency_s: float = 1e-3

    # ------------------------------------------------------------------ #
    def mf_train_time(self, samples: ArrayLike, k: int) -> ArrayLike:
        return samples * (self.mf_sgd_sample_base_s + self.mf_sgd_sample_per_k_s * k)

    def dnn_train_time(self, samples: ArrayLike, param_count: int) -> ArrayLike:
        return samples * (self.dnn_sample_per_param_s * param_count)

    def merge_time(self, rows: ArrayLike, k: int) -> ArrayLike:
        """Averaging ``rows`` embedding rows of width k+1 (factors+bias)."""
        return rows * (k + 1) * self.merge_per_float_s

    def dnn_merge_time(self, models: ArrayLike, param_count: int) -> ArrayLike:
        return models * param_count * self.merge_per_float_s

    def dedup_time(self, items: ArrayLike) -> ArrayLike:
        return items * self.dedup_item_s

    def serialize_time(self, payload_bytes: ArrayLike) -> ArrayLike:
        return payload_bytes * self.serialize_per_byte_s

    def mf_test_time(self, samples: ArrayLike, k: int) -> ArrayLike:
        return samples * (self.mf_test_sample_base_s + self.mf_test_sample_per_k_s * k)

    def dnn_test_time(self, samples: ArrayLike, param_count: int) -> ArrayLike:
        return samples * (self.dnn_sample_per_param_s * param_count) * self.dnn_test_fraction

    def network_time(
        self,
        payload_bytes: ArrayLike,
        messages: ArrayLike,
        empty_messages: ArrayLike = 0.0,
    ) -> ArrayLike:
        """Serial transfer of a node's epoch traffic over its uplink.

        ``messages`` counts payload-carrying exchanges; ``empty_messages``
        the barrier pings, charged at their (much cheaper) rate.
        """
        return (
            payload_bytes / self.bandwidth_bytes_per_s
            + messages * self.latency_per_message_s
            + empty_messages * self.empty_message_latency_s
        )


#: One model shared by the simulated (edge-device) experiments.
DEFAULT_TIME_MODEL = TimeModel()

#: The SGX testbed's network: 4 servers on a 10 GbE LAN (Section IV-A's
#: Xeon E-2288G machines).  With a fast LAN the epoch cost is compute- and
#: crypto-bound, which is the regime where Table IV's overheads appear.
LAN_TIME_MODEL = TimeModel(
    bandwidth_bytes_per_s=1.25e9,
    latency_per_message_s=2e-4,
)


@dataclass(frozen=True)
class StageTimer:
    """Assemble per-stage durations from work counts.

    Applies the SGX cost model: compute stages are scaled by the memory
    encryption / paging multiplier for the node's resident set, the share
    stage is charged AEAD + transition costs (enclave build) or the
    on-demand page-allocation cost (native build -- the source of the
    paper's "REX share is *faster* under SGX" anomaly, Section IV-D).
    """

    time_model: TimeModel = DEFAULT_TIME_MODEL
    cost_model: SgxCostModel = NATIVE_COST_MODEL
    epc: EpcModel = EpcModel()
    #: Optional observability sink; when set, every stage assembly also
    #: reports EPC page-fault counts/histograms and overcommit peaks.
    metrics: Optional[MetricsRegistry] = None

    def mf_stage_times(
        self,
        *,
        k: int,
        merged_rows: ArrayLike,
        dedup_items: ArrayLike,
        train_samples: ArrayLike,
        serialized_bytes: ArrayLike,
        payload_bytes: ArrayLike,
        messages: ArrayLike,
        test_samples: ArrayLike,
        resident_bytes: ArrayLike,
        staging_bytes: ArrayLike,
        transitions: ArrayLike = 0.0,
        transition_bytes: ArrayLike = 0.0,
        empty_messages: ArrayLike = 0.0,
    ) -> Dict[str, ArrayLike]:
        tm, cm = self.time_model, self.cost_model
        multiplier = self._compute_multiplier(resident_bytes)

        merge = (tm.merge_time(merged_rows, k) + tm.dedup_time(dedup_items)) * multiplier
        merge = merge + self._paging(staging_bytes, resident_bytes)

        train = tm.mf_train_time(train_samples, k) * multiplier

        share = (
            tm.serialize_time(serialized_bytes) * multiplier
            + cm.crypto_time(payload_bytes)
            + cm.transition_time(np.asarray(transitions, dtype=float), 0)
            + transition_bytes * cm.marshalling_cost_s_per_byte * (1.0 if cm.enabled else 0.0)
            + cm.native_alloc_time(serialized_bytes)
        )

        test = tm.mf_test_time(test_samples, k) * multiplier
        network = tm.network_time(payload_bytes, messages, empty_messages)
        return {"merge": merge, "train": train, "share": share, "test": test, "network": network}

    def dnn_stage_times(
        self,
        *,
        param_count: int,
        merged_models: ArrayLike,
        dedup_items: ArrayLike,
        train_samples: ArrayLike,
        serialized_bytes: ArrayLike,
        payload_bytes: ArrayLike,
        messages: ArrayLike,
        test_samples: ArrayLike,
        resident_bytes: ArrayLike,
        staging_bytes: ArrayLike,
        transitions: ArrayLike = 0.0,
        transition_bytes: ArrayLike = 0.0,
        empty_messages: ArrayLike = 0.0,
    ) -> Dict[str, ArrayLike]:
        tm, cm = self.time_model, self.cost_model
        multiplier = self._compute_multiplier(resident_bytes)

        merge = (
            tm.dnn_merge_time(merged_models, param_count) + tm.dedup_time(dedup_items)
        ) * multiplier + self._paging(staging_bytes, resident_bytes)
        train = tm.dnn_train_time(train_samples, param_count) * multiplier
        share = (
            tm.serialize_time(serialized_bytes) * multiplier
            + cm.crypto_time(payload_bytes)
            + cm.transition_time(np.asarray(transitions, dtype=float), 0)
            + transition_bytes * cm.marshalling_cost_s_per_byte * (1.0 if cm.enabled else 0.0)
            + cm.native_alloc_time(serialized_bytes)
        )
        test = tm.dnn_test_time(test_samples, param_count) * multiplier
        network = tm.network_time(payload_bytes, messages, empty_messages)
        return {"merge": merge, "train": train, "share": share, "test": test, "network": network}

    # ------------------------------------------------------------------ #
    def _compute_multiplier(self, resident_bytes: ArrayLike) -> ArrayLike:
        if not self.cost_model.enabled:
            return 1.0
        resident = np.asarray(resident_bytes, dtype=float)
        if resident.ndim == 0:
            return self.cost_model.compute_multiplier(float(resident), self.epc)
        return np.array(
            [self.cost_model.compute_multiplier(r, self.epc) for r in resident]
        )

    def _paging(self, touched: ArrayLike, resident: ArrayLike, stage: str = "merge") -> ArrayLike:
        if not self.cost_model.enabled:
            if self.metrics is not None:
                self.metrics.counter("tee.epc.page_faults", stage=stage).inc(0.0)
            return np.zeros_like(np.asarray(touched, dtype=float))
        touched = np.asarray(touched, dtype=float)
        resident = np.asarray(resident, dtype=float)
        if touched.ndim == 0:
            touched = touched.reshape(1)
            resident = resident.reshape(1)
            scalar = True
        else:
            scalar = False
        faults = np.array(
            [self.epc.page_faults(t, r) for t, r in zip(touched, resident)]
        )
        if self.metrics is not None:
            self._observe_epc(stage, faults, resident)
        times = faults * self.cost_model.page_fault_cost_s
        return float(times[0]) if scalar else times

    def _observe_epc(self, stage: str, faults: np.ndarray, resident: np.ndarray) -> None:
        """Report paging activity into the observability registry."""
        m = self.metrics
        m.counter("tee.epc.page_faults", stage=stage).inc(float(faults.sum()))
        hist = m.histogram(
            "tee.epc.page_faults_per_node", buckets=DEFAULT_COUNT_BUCKETS, stage=stage
        )
        for value in faults:
            hist.observe(float(value))
        if len(resident):
            m.gauge("tee.epc.overcommit_ratio").set(
                self.epc.overcommit_ratio(float(resident.max()))
            )

    @staticmethod
    def epoch_duration(stages: Dict[str, ArrayLike], *, overlap_share: bool = False) -> ArrayLike:
        """Per-node epoch duration.

        By default all stages run sequentially plus the network wait
        (Section III-D: merge-train-share-test is serial).  With
        ``overlap_share`` the share stage runs concurrently with training
        -- the extension the paper describes for raw data sharing, whose
        share content is independent of this epoch's training result.
        """
        if overlap_share:
            compute = stages["merge"] + np.maximum(stages["train"], stages["share"]) + stages["test"]
        else:
            compute = stages["merge"] + stages["train"] + stages["share"] + stages["test"]
        return compute + stages["network"]
