"""Centralized training baseline.

Every convergence figure in the paper (Figs. 1, 2, 4) includes a
"Centralized" curve: one model trained on the whole dataset, which
converges fastest in wall time because it sees all data every epoch and
pays no network cost.  Decentralized runs need more epochs ("inherent to
their lack of global knowledge", Section IV-B) but catch up on error.
"""

from __future__ import annotations

from typing import Union

from repro._rng import child_rng
from repro.core.config import ModelKind, RexConfig
from repro.data.dataset import RatingsDataset
from repro.ml.dnn.model import DnnRecommender
from repro.ml.mf import MatrixFactorization
from repro.sim.recorder import MIB, EpochRecord, RunResult
from repro.sim.time_model import DEFAULT_TIME_MODEL, TimeModel

__all__ = ["run_centralized"]


def run_centralized(
    train: RatingsDataset,
    test: RatingsDataset,
    config: RexConfig,
    *,
    epochs: int = None,
    time_model: TimeModel = DEFAULT_TIME_MODEL,
) -> RunResult:
    """Train one model on all data; one epoch is one full pass."""
    epochs = config.epochs if epochs is None else epochs
    rng = child_rng(config.seed, "centralized")

    model: Union[MatrixFactorization, DnnRecommender]
    if config.model is ModelKind.MF:
        hp = config.mf
        model = MatrixFactorization(
            train.n_users, train.n_items, hp, seed=config.seed, global_mean=train.global_mean()
        )
        batches = max(1, len(train) // hp.batch_size)
        epoch_time = float(time_model.mf_train_time(batches * hp.batch_size, hp.k)) + float(
            time_model.mf_test_time(len(test), hp.k)
        )
    else:
        hp = config.dnn
        model = DnnRecommender(train.n_users, train.n_items, hp, seed=config.seed)
        batches = max(1, len(train) // hp.batch_size)
        epoch_time = float(
            time_model.dnn_train_time(batches * hp.batch_size, model.param_count)
        ) + float(time_model.dnn_test_time(len(test), model.param_count))
    model.mark_seen(train)

    result = RunResult(
        label="Centralized",
        scheme="centralized",
        dissemination="none",
        topology="single-node",
        n_nodes=1,
        model=config.model.value,
        sgx=None,
    )
    sim_clock = 0.0
    memory = (train.nbytes + getattr(model, "resident_bytes", 0)) / MIB
    for epoch in range(epochs):
        samples = model.train_epoch(train, rng, batches=batches)
        sim_clock += epoch_time
        result.records.append(
            EpochRecord(
                epoch=epoch,
                sim_time_s=sim_clock,
                test_rmse=model.evaluate_rmse(test),
                bytes_sent=0,
                cum_bytes=0,
                train_time_s=epoch_time,
                memory_mib_mean=memory,
                memory_mib_max=memory,
            )
        )
        del samples
    return result
