"""Ablation -- fixed SGD batches per epoch vs full-data epochs.

"Another point to note when nodes share data is the amount of processing
time required in every epoch, which would continually increase with the
growth of input training data ... We solve this by fixing the number of
batches" (Section III-E).  This ablation runs REX both ways: with
adaptive (full-pass) epochs the per-epoch training time grows with the
store; with the paper's fixed rule it stays flat.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.core.config import Dissemination, RexConfig, SharingScheme
from repro.data.partition import partition_users_across_nodes
from repro.sim import experiments as E
from repro.sim.fleet import MfFleetSim


def _run(adaptive: bool):
    split = E.movielens_latest_split()
    train = partition_users_across_nodes(split.train, 50, seed=2)
    test = partition_users_across_nodes(split.test, 50, seed=2)
    config = RexConfig(
        scheme=SharingScheme.DATA,
        dissemination=Dissemination.DPSGD,
        epochs=E.scaled_epochs(150),
        share_points=300,
        adaptive_batches=adaptive,
        seed=E.RUN_SEED,
    )
    return MfFleetSim(
        train, test, E.topology("sw", 50), config,
        global_mean=split.train.global_mean(),
    ).run()


def test_ablation_fixed_batches(once):
    def build():
        return {flag: _run(flag) for flag in (False, True)}

    runs = once(build)
    fixed, adaptive = runs[False], runs[True]

    def train_curve(run):
        return [r.train_time_s for r in run.records]

    fixed_curve = train_curve(fixed)
    adaptive_curve = train_curve(adaptive)
    rows = [
        ["fixed (paper)", f"{fixed_curve[1] * 1e3:.2f}", f"{fixed_curve[-1] * 1e3:.2f}",
         f"{fixed.final_rmse:.4f}"],
        ["full-pass", f"{adaptive_curve[1] * 1e3:.2f}", f"{adaptive_curve[-1] * 1e3:.2f}",
         f"{adaptive.final_rmse:.4f}"],
    ]
    emit(
        format_table(
            ["epoch policy", "train t @epoch 1 [ms]", "train t @last [ms]", "final RMSE"],
            rows,
            title="Ablation -- fixed batches per epoch vs full-data epochs",
        )
    )

    # Fixed rule: per-epoch training time is flat.
    assert np.isclose(fixed_curve[-1], fixed_curve[1], rtol=0.05)
    # Full-pass rule: training time keeps growing as shared data piles up.
    assert adaptive_curve[-1] > 2 * adaptive_curve[1]
