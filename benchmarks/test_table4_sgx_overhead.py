"""Table IV -- SGX execution-time overhead vs native, with RAM usage.

Paper values (% overhead / RAM MiB): at 610 users -- RMW REX 14%/11.5,
RMW MS 51%/24.7, D-PSGD REX 5%/12.9, D-PSGD MS 70%/53.6; at 15,000 users
-- RMW REX 17%/45.9, RMW MS 91%/83.1, D-PSGD REX 8%/53.9, D-PSGD MS
135%/204.  Shape: MS overhead always exceeds REX overhead (more bytes to
seal, bigger working set), and grows sharply at 15k users where the MS
working set overcommits the EPC.
"""

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.analysis.tables import sgx_overhead_table
from repro.core.config import Dissemination, SharingScheme
from repro.sim import experiments as E

PAPER = {
    ("RMW, REX", False): (11.5, 14), ("RMW, MS", False): (24.7, 51),
    ("D-PSGD, REX", False): (12.9, 5), ("D-PSGD, MS", False): (53.6, 70),
    ("RMW, REX", True): (45.9, 17), ("RMW, MS", True): (83.1, 91),
    ("D-PSGD, REX", True): (53.9, 8), ("D-PSGD, MS", True): (204.0, 135),
}


def test_table4_sgx_overhead(once):
    def build():
        tables = {}
        for large in (False, True):
            pairs = []
            for dissemination in (Dissemination.RMW, Dissemination.DPSGD):
                for scheme in (SharingScheme.DATA, SharingScheme.MODEL):
                    label = f"{dissemination.label}, {scheme.label}"
                    sgx = E.sgx_run(dissemination, scheme, sgx=True, large=large)
                    native = E.sgx_run(dissemination, scheme, sgx=False, large=large)
                    pairs.append((label, sgx, native))
            tables[large] = sgx_overhead_table(pairs)
        return tables

    tables = once(build)

    rows = []
    for large, table in tables.items():
        scale = "15,000 users" if large else "610 users"
        for row in table:
            paper_ram, paper_ovh = PAPER[(row.setup, large)]
            rows.append(
                [scale, row.setup, f"{row.ram_mib:.1f}", f"{row.overhead_pct:.0f}",
                 f"{paper_ram}", f"{paper_ovh}"]
            )
    emit(
        format_table(
            ["scale", "setup", "RAM [MiB]", "overhead [%]",
             "paper RAM", "paper overhead"],
            rows,
            title="Table IV -- SGX overhead over native (same code base)",
        )
    )

    for large, table in tables.items():
        by_setup = {row.setup: row for row in table}
        # All overheads are positive: SGX is never free.
        for row in table:
            assert row.overhead_pct > 0, (large, row.setup)
        # MS pays more than REX under both dissemination schemes.
        assert by_setup["RMW, MS"].overhead_pct > by_setup["RMW, REX"].overhead_pct
        assert by_setup["D-PSGD, MS"].overhead_pct > by_setup["D-PSGD, REX"].overhead_pct
        # MS needs more memory than REX.
        assert by_setup["D-PSGD, MS"].ram_mib > by_setup["D-PSGD, REX"].ram_mib

    # The beyond-EPC regime amplifies the D-PSGD MS overhead.
    assert (
        tables[True][3].overhead_pct > tables[False][3].overhead_pct
    ), "EPC overcommit must raise the D-PSGD MS overhead"
