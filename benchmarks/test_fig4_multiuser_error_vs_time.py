"""Figure 4 -- Multiple users per node, MF: test error vs simulated time.

610 users partitioned over 50 nodes (12-13 users each).  Same shape as
Figure 1 -- REX converges faster than MS, centralized fastest -- but with
smaller margins: data concentration means fewer dissemination rounds are
needed, lowering the network's share of total cost (Section IV-B-b).
"""

from benchmarks.conftest import emit
from repro.analysis.figures import error_vs_time
from repro.analysis.report import render_series
from repro.core.config import SharingScheme
from repro.sim import experiments as E


def test_fig4_multiuser_error_vs_time(once):
    def build():
        panels = {}
        for dissemination, topo in E.SETUPS:
            rex = E.fig4_run(dissemination, topo, SharingScheme.DATA)
            ms = E.fig4_run(dissemination, topo, SharingScheme.MODEL)
            panels[f"{dissemination.label}, {topo.upper()}"] = (rex, ms)
        return panels, E.fig4_centralized()

    panels, central = once(build)

    for panel, (rex, ms) in panels.items():
        emit(f"=== Figure 4 panel: {panel} ===")
        for label, run in (("REX", rex), ("MS", ms), ("Centralized", central)):
            xs, ys = error_vs_time([run])[run.label]
            emit(render_series(f"{panel} / {label}", xs, ys,
                               x_label="sim seconds", y_label="test RMSE"))
        target = max(ms.final_rmse, rex.final_rmse) + 0.002
        t_rex = rex.time_to_target(target)
        t_ms = ms.time_to_target(target)
        assert t_rex is not None and t_ms is not None
        assert t_rex < t_ms, f"{panel}: REX must reach the MS target first"
