"""Figure 3 -- Feature-vector size sweep (D-PSGD, SW, one node per user).

All runs use a fixed epoch horizon (the paper fixes 400 epochs).  Shape:
model sharing's per-round network load grows linearly with the embedding
dimension k at little convergence benefit, while REX's load is constant
in k because only data travels.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.figures import feature_sweep_summary
from repro.analysis.report import format_table
from repro.core.config import SharingScheme
from repro.sim import experiments as E


def test_fig3_feature_vector_sweep(once):
    def build():
        return {
            scheme: {k: E.fig3_run(k, scheme) for k in E.FIG3_K_VALUES}
            for scheme in (SharingScheme.MODEL, SharingScheme.DATA)
        }

    runs = once(build)

    rows = []
    for scheme, by_k in runs.items():
        for k, final_rmse, bytes_per_round in feature_sweep_summary(by_k):
            rows.append([scheme.label, str(k), f"{final_rmse:.4f}", f"{bytes_per_round:,.0f}"])
    emit(
        format_table(
            ["scheme", "k", "final RMSE", "bytes/node/round"],
            rows,
            title="Figure 3 -- Effect of feature-vector size (D-PSGD, SW)",
        )
    )

    ms = feature_sweep_summary(runs[SharingScheme.MODEL])
    rex = feature_sweep_summary(runs[SharingScheme.DATA])

    # MS network load grows ~linearly in k.
    ms_bytes = {k: b for k, _r, b in ms}
    assert ms_bytes[40] > 3.0 * ms_bytes[10]
    assert ms_bytes[20] > 1.5 * ms_bytes[10]

    # REX load is k-independent.
    rex_bytes = [b for _k, _r, b in rex]
    assert max(rex_bytes) == pytest.approx(min(rex_bytes), rel=0.01)

    # Bigger embeddings buy little accuracy at a fixed horizon.
    ms_rmse = {k: r for k, r, _b in ms}
    assert abs(ms_rmse[40] - ms_rmse[10]) < 0.08
