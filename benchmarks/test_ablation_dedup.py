"""Ablation -- duplicate suppression in the raw-data store.

REX's share sampling is stateless, so the same data points are resent
(Section III-E); the store drops duplicates on merge (Algorithm 2 line
16).  Disabling the check lets resent points accumulate: the store (and
hence the enclave working set) grows without bound while convergence
gains nothing, which is why the duplicate check exists.
"""

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.core.config import Dissemination, RexConfig, SharingScheme
from repro.data.partition import partition_users_across_nodes
from repro.sim import experiments as E
from repro.sim.fleet import MfFleetSim


def _run(dedup: bool):
    split = E.movielens_latest_split()
    train = partition_users_across_nodes(split.train, 50, seed=2)
    test = partition_users_across_nodes(split.test, 50, seed=2)
    config = RexConfig(
        scheme=SharingScheme.DATA,
        dissemination=Dissemination.DPSGD,
        epochs=E.scaled_epochs(200),
        share_points=300,
        dedup=dedup,
        seed=E.RUN_SEED,
    )
    sim = MfFleetSim(
        train, test, E.topology("sw", 50), config,
        global_mean=split.train.global_mean(),
    )
    result = sim.run()
    return result, int(sim.stores.sizes.mean())


def test_ablation_dedup(once):
    def build():
        return {flag: _run(flag) for flag in (True, False)}

    runs = once(build)
    (with_dedup, store_on), (without_dedup, store_off) = runs[True], runs[False]

    emit(
        format_table(
            ["dedup", "final RMSE", "mean store items", "peak memory [MiB]"],
            [
                ["on", f"{with_dedup.final_rmse:.4f}", f"{store_on:,}",
                 f"{with_dedup.memory_mib():.1f}"],
                ["off", f"{without_dedup.final_rmse:.4f}", f"{store_off:,}",
                 f"{without_dedup.memory_mib():.1f}"],
            ],
            title="Ablation -- duplicate suppression (REX, D-PSGD, SW, 50 nodes)",
        )
    )

    # Without the check the store balloons with resent duplicates...
    assert store_off > 1.5 * store_on
    assert without_dedup.memory_mib() > with_dedup.memory_mib()
    # ...while accuracy gains nothing.
    assert without_dedup.final_rmse > with_dedup.final_rmse - 0.02
