"""Table III -- Multiple users per node: REX speed-up over MS.

Paper values: D-PSGD/ER 3.3x, RMW/ER 2.4x, D-PSGD/SW 7.5x, RMW/SW 2.8x.
Shape assertions: all speed-ups > 1, and the multi-user speed-ups are more
modest than the one-user ones on average ("the reason why speedup is
lower ... is due to data concentration", Section IV-B-b).
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.analysis.tables import speedup_table
from repro.core.config import SharingScheme
from repro.sim import experiments as E

PAPER_SPEEDUPS = {
    "D-PSGD, ER": 3.3,
    "RMW, ER": 2.4,
    "D-PSGD, SW": 7.5,
    "RMW, SW": 2.8,
}


def test_table3_speedups(once):
    def build():
        multi = []
        for dissemination, topo in E.SETUPS:
            label = f"{dissemination.label}, {topo.upper()}"
            multi.append(
                (
                    label,
                    E.fig4_run(dissemination, topo, SharingScheme.DATA),
                    E.fig4_run(dissemination, topo, SharingScheme.MODEL),
                )
            )
        one_user = []
        for dissemination, topo in E.SETUPS:
            label = f"{dissemination.label}, {topo.upper()}"
            one_user.append(
                (
                    label,
                    E.fig1_run(dissemination, topo, SharingScheme.DATA),
                    E.fig1_run(dissemination, topo, SharingScheme.MODEL),
                )
            )
        return (speedup_table(multi, target_rule="joint", target_margin=0.002),
                speedup_table(one_user, target_rule="joint", target_margin=0.002))

    rows, one_user_rows = once(build)
    emit(
        format_table(
            ["Setup", "Error target", "REX [s]", "MS [s]", "REX speed-up", "paper"],
            [
                row.as_cells(unit="s") + [f"{PAPER_SPEEDUPS[row.setup]}x"]
                for row in rows
            ],
            title="Table III -- Multiple users per node: speed-up at the MS target",
        )
    )

    for row in rows:
        assert row.speedup is not None and row.speedup > 1.0, row.setup

    multi_mean = np.mean([row.speedup for row in rows])
    one_mean = np.mean([row.speedup for row in one_user_rows if row.speedup])
    emit(f"mean speed-up: one-user {one_mean:.1f}x vs multi-user {multi_mean:.1f}x")
    assert multi_mean < one_mean, "data concentration should shrink the gap"
