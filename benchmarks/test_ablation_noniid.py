"""Extension -- pathological non-IID data placement (Section IV-E).

The paper plans to study "the impact of raw data sharing in the context
of pathological non-iid datasets".  This benchmark compares random user
cohorts against taste-clustered cohorts (every node serves users with
similar rating behaviour, so local distributions diverge maximally) for
both sharing schemes.  Expected shape: non-IID placement slows
convergence for both schemes, and REX's raw-data dissemination -- which
physically re-mixes the data across nodes -- recovers at least as well
as model sharing.
"""

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.core.config import Dissemination, RexConfig, SharingScheme
from repro.data.partition import partition_users_across_nodes, partition_users_by_taste
from repro.sim import experiments as E
from repro.sim.fleet import MfFleetSim


def _run(scheme: SharingScheme, pathological: bool):
    split = E.movielens_latest_split()
    if pathological:
        train = partition_users_by_taste(split.train, 50)
        test = partition_users_by_taste(split.test, 50)
    else:
        train = partition_users_across_nodes(split.train, 50, seed=2)
        test = partition_users_across_nodes(split.test, 50, seed=2)
    config = RexConfig(
        scheme=scheme,
        dissemination=Dissemination.DPSGD,
        epochs=E.scaled_epochs(200),
        share_points=300,
        seed=E.RUN_SEED,
    )
    return MfFleetSim(
        train, test, E.topology("sw", 50), config,
        global_mean=split.train.global_mean(),
    ).run()


def test_ablation_noniid(once):
    def build():
        return {
            (scheme, pathological): _run(scheme, pathological)
            for scheme in (SharingScheme.DATA, SharingScheme.MODEL)
            for pathological in (False, True)
        }

    runs = once(build)

    rows = []
    for (scheme, pathological), run in runs.items():
        rows.append(
            [
                scheme.label,
                "taste-clustered" if pathological else "random cohorts",
                f"{run.records[2].test_rmse:.4f}",
                f"{run.final_rmse:.4f}",
            ]
        )
    emit(
        format_table(
            ["scheme", "placement", "RMSE @epoch 2", "final RMSE"],
            rows,
            title="Extension -- pathological non-IID placement (D-PSGD, SW, 50 nodes)",
        )
    )

    rex_iid = runs[(SharingScheme.DATA, False)]
    rex_bad = runs[(SharingScheme.DATA, True)]
    ms_iid = runs[(SharingScheme.MODEL, False)]
    ms_bad = runs[(SharingScheme.MODEL, True)]

    # All four still converge to the same regime.
    finals = [r.final_rmse for r in (rex_iid, rex_bad, ms_iid, ms_bad)]
    assert max(finals) - min(finals) < 0.2
    # REX tolerates the pathological placement at least as well as MS
    # (raw-data dissemination re-mixes the data itself).
    rex_penalty = rex_bad.final_rmse - rex_iid.final_rmse
    ms_penalty = ms_bad.final_rmse - ms_iid.final_rmse
    emit(f"non-IID penalty: REX {rex_penalty:+.4f}, MS {ms_penalty:+.4f}")
    assert rex_penalty < ms_penalty + 0.05
