"""Serving-layer benchmark -- writes ``BENCH_serve.json``.

Not a paper figure: the paper stops at training-time RMSE, and this file
tracks the deployment half this repo adds on top -- the enclave-hosted
serving path (:mod:`repro.serve`).  One seeded end-to-end run per
scenario, all on the simulated clock, so every number is deterministic
for a fixed seed:

- **baseline** -- the default Zipf workload against a trained node;
  pinned floors on simulated throughput and a ceiling on p99 latency.
- **cold vs warm cache** -- the identical trace served with caching
  disabled and enabled; warm must cut mean simulated latency (the
  acceptance gate for the result cache actually earning its keep).
- **EPC pressure** -- the same serving working set against a tiny EPC;
  page faults must appear and must cost latency.
- **quality** -- precision@10 on the synthetic MovieLens stand-in must
  clear a pinned floor.

The JSON artifact is uploaded by the ``serve-bench`` CI job.  Floors are
env-overridable for unusual environments: ``REPRO_BENCH_SERVE_FLOOR_RPS``,
``REPRO_BENCH_SERVE_P99_CEILING_S``, ``REPRO_BENCH_SERVE_P10_FLOOR``.
"""

from __future__ import annotations

import json
import os

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.serve import run_serving_experiment
from repro.serve.server import ServePolicy
from repro.serve.workload import WorkloadSpec
from repro.tee.epc import EpcModel

OUTPUT = "BENCH_serve.json"

#: Simulated-throughput floor (req/s) and p99 ceiling (s) for the
#: baseline scenario.  The reference run measures ~4,000 req/s and
#: p99 ~1.1 ms; the margins absorb deliberate cost-model retuning.
FLOOR_RPS = float(os.environ.get("REPRO_BENCH_SERVE_FLOOR_RPS", "500"))
P99_CEILING_S = float(os.environ.get("REPRO_BENCH_SERVE_P99_CEILING_S", "0.05"))
#: precision@10 floor on the synthetic MovieLens stand-in (~0.07 measured).
P10_FLOOR = float(os.environ.get("REPRO_BENCH_SERVE_P10_FLOOR", "0.03"))

#: Baseline scenario: the tier-1 acceptance configuration.
BASELINE = dict(seed=0, nodes=4, epochs=3, users=40, items=120, ratings=1600)

#: Cache scenario: a service-time-dominated regime (fast ticks, one-tick
#: window, 600-item catalog) where scoring work -- the thing the cache
#: removes -- is what latency is made of.
CACHE_POLICY = ServePolicy(
    batch_window_ticks=1, tick_s=1e-5, max_batch=64, queue_depth=256
)
CACHE_WORKLOAD = WorkloadSpec(seed=0, n_users=80, ticks=300, rate=3.0, zipf_s=1.2)
CACHE_SCENARIO = dict(
    seed=0,
    nodes=4,
    epochs=2,
    users=80,
    items=600,
    ratings=6000,
    policy=CACHE_POLICY,
    workload=CACHE_WORKLOAD,
    quality_probe=False,
)


def _summarize(report) -> dict:
    return {
        "throughput_rps": round(report.throughput_rps, 1),
        "mean_latency_s": report.latency_s["mean"],
        "p50_s": report.latency_s["p50"],
        "p99_s": report.latency_s["p99"],
        "completed": report.completed,
        "shed": report.shed,
        "cache_hits": report.cache["hits"],
        "cache_misses": report.cache["misses"],
        "page_faults": report.epc["page_faults"],
        "overcommit_ratio": report.epc["overcommit_ratio"],
    }


def test_serve_throughput():
    baseline = run_serving_experiment(**BASELINE)
    warm = run_serving_experiment(**CACHE_SCENARIO)
    cold = run_serving_experiment(**CACHE_SCENARIO, topn_capacity=0, hot_capacity=0)
    pressured = run_serving_experiment(
        **BASELINE, epc=EpcModel(total_mib=1.0, usable_mib=0.01), quality_probe=False
    )

    doc = {
        "schema": "repro.serve.bench/v1",
        "floors": {
            "throughput_rps": FLOOR_RPS,
            "p99_ceiling_s": P99_CEILING_S,
            "precision_at_10": P10_FLOOR,
        },
        "baseline": _summarize(baseline),
        "quality": baseline.quality,
        "cache_warm": _summarize(warm),
        "cache_cold": _summarize(cold),
        "epc_pressured": _summarize(pressured),
        "snapshot_digest": baseline.snapshot_digest,
        "trace_digest": baseline.trace_digest,
    }
    with open(OUTPUT, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)

    rows = [
        [
            name,
            f"{s['throughput_rps']:.0f}",
            f"{s['mean_latency_s'] * 1e3:.3f}",
            f"{s['p99_s'] * 1e3:.3f}",
            f"{s['cache_hits']:.0f}",
            f"{s['page_faults']:.0f}",
        ]
        for name, s in (
            ("baseline", doc["baseline"]),
            ("cache warm", doc["cache_warm"]),
            ("cache cold", doc["cache_cold"]),
            ("epc pressured", doc["epc_pressured"]),
        )
    ]
    emit(
        format_table(
            ["scenario", "req/s", "mean ms", "p99 ms", "hits", "faults"],
            rows,
            title=f"Serving throughput (artifact: {OUTPUT})",
        )
    )

    assert baseline.throughput_rps >= FLOOR_RPS, (
        f"simulated throughput regressed: {baseline.throughput_rps:.0f} req/s "
        f"below the {FLOOR_RPS:.0f} floor"
    )
    assert baseline.p99_s <= P99_CEILING_S, (
        f"p99 latency regressed: {baseline.p99_s * 1e3:.2f} ms above the "
        f"{P99_CEILING_S * 1e3:.1f} ms ceiling"
    )
    assert baseline.quality["precision_at_10"] >= P10_FLOOR, (
        f"ranking quality regressed: precision@10 "
        f"{baseline.quality['precision_at_10']:.3f} below {P10_FLOOR}"
    )
    # The result cache must actually buy latency on the same trace.
    assert warm.latency_s["mean"] < cold.latency_s["mean"], (
        f"warm cache did not cut mean latency: warm "
        f"{warm.latency_s['mean'] * 1e6:.1f} us vs cold "
        f"{cold.latency_s['mean'] * 1e6:.1f} us"
    )
    assert warm.cache["hits"] > 0 and cold.cache["hits"] == 0
    # Beyond-EPC serving must page, and paging must cost latency.
    assert pressured.epc["page_faults"] > 0
    assert pressured.latency_s["mean"] > baseline.latency_s["mean"]
