"""Serving-layer benchmark -- writes ``BENCH_serve.json``.

Not a paper figure: the paper stops at training-time RMSE, and this file
tracks the deployment half this repo adds on top -- the enclave-hosted
serving path (:mod:`repro.serve`).  One seeded end-to-end run per
scenario, all on the simulated clock, so every number is deterministic
for a fixed seed:

- **baseline** -- the default Zipf workload against a trained node;
  pinned floors on simulated throughput and a ceiling on p99 latency.
- **cold vs warm cache** -- the identical trace served with caching
  disabled and enabled; warm must cut mean simulated latency (the
  acceptance gate for the result cache actually earning its keep).
- **EPC pressure** -- the same serving working set against a tiny EPC;
  page faults must appear and must cost latency.
- **quality** -- precision@10 on the synthetic MovieLens stand-in must
  clear a pinned floor.
- **fleet peak** -- 8 shards x 2 replicas under the production traffic
  model (diurnal peak + flash crowd) with one replica per shard killed
  at the peak; p99 latency and the shed rate are gated, and zero
  requests may be lost to routing errors.

**Throughput window.**  Every scenario's ``throughput_rps`` is
*capacity* throughput: completions over the **service window**
(``busy_s``, the summed simulated service time of dispatched batches).
The wall window (first arrival to last completion) is reported alongside
as ``wall_throughput_rps`` but never compared across scenarios: an
arrival-bound run's wall throughput measures the workload's request
rate, not the server, so two scenarios with different tick lengths or
arrival processes produce incomparable wall numbers (the old artifact's
"cold cache 61k req/s vs baseline 4k" was exactly this artifact).

The JSON artifact is uploaded by the ``serve-bench`` CI job.  Floors are
env-overridable for unusual environments:
``REPRO_BENCH_SERVE_FLOOR_RPS``, ``REPRO_BENCH_SERVE_P99_CEILING_S``,
``REPRO_BENCH_SERVE_P10_FLOOR``, ``REPRO_BENCH_SERVE_FLEET_P99_CEILING_S``,
``REPRO_BENCH_SERVE_FLEET_SHED_RATE_CEILING``.
"""

from __future__ import annotations

import json
import os

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.serve import run_serving_experiment
from repro.serve.fleet import run_fleet_experiment
from repro.serve.server import ServePolicy
from repro.serve.workload import TrafficSpec, WorkloadSpec
from repro.tee.epc import EpcModel

OUTPUT = "BENCH_serve.json"

#: Capacity-throughput floor (req/s over the service window) and p99
#: ceiling (s) for the baseline scenario.  The reference run measures
#: ~40,000 req/s capacity and p99 ~1.1 ms; the margins absorb deliberate
#: cost-model retuning.
FLOOR_RPS = float(os.environ.get("REPRO_BENCH_SERVE_FLOOR_RPS", "4000"))
P99_CEILING_S = float(os.environ.get("REPRO_BENCH_SERVE_P99_CEILING_S", "0.05"))
#: precision@10 floor on the synthetic MovieLens stand-in (~0.07 measured).
P10_FLOOR = float(os.environ.get("REPRO_BENCH_SERVE_P10_FLOOR", "0.03"))
#: Fleet-lane gates: p99 under crash-at-peak conditions (~1.2 ms
#: measured) and the fraction of offered requests the fleet may shed.
FLEET_P99_CEILING_S = float(
    os.environ.get("REPRO_BENCH_SERVE_FLEET_P99_CEILING_S", "0.05")
)
FLEET_SHED_RATE_CEILING = float(
    os.environ.get("REPRO_BENCH_SERVE_FLEET_SHED_RATE_CEILING", "0.05")
)

#: Baseline scenario: the tier-1 acceptance configuration.
BASELINE = dict(seed=0, nodes=4, epochs=3, users=40, items=120, ratings=1600)

#: Cache scenario: a service-time-dominated regime (fast ticks, one-tick
#: window, 600-item catalog) where scoring work -- the thing the cache
#: removes -- is what latency is made of.
CACHE_POLICY = ServePolicy(
    batch_window_ticks=1, tick_s=1e-5, max_batch=64, queue_depth=256
)
CACHE_WORKLOAD = WorkloadSpec(seed=0, n_users=80, ticks=300, rate=3.0, zipf_s=1.2)
CACHE_SCENARIO = dict(
    seed=0,
    nodes=4,
    epochs=2,
    users=80,
    items=600,
    ratings=6000,
    policy=CACHE_POLICY,
    workload=CACHE_WORKLOAD,
    quality_probe=False,
)

#: Fleet lane: 8 shards x 2 replicas under a diurnal peak + flash crowd,
#: one replica per shard crashed at the traffic peak.
FLEET_SCENARIO = dict(
    seed=0,
    shards=8,
    replicas=2,
    nodes=4,
    epochs=2,
    users=240,
    items=160,
    ratings=6_000,
    traffic=TrafficSpec(
        seed=0,
        n_users=240,
        ticks=240,
        peak_rate=10.0,
        diurnal_period=240,
        day_night_ratio=4.0,
        flash_crowds=1,
        flash_multiplier=6.0,
        flash_duration=12,
    ),
    kill_one_replica_per_shard=True,
)


def _summarize(report) -> dict:
    return {
        # Capacity throughput over the service window -- the one
        # definition every scenario shares (see module docstring).
        "throughput_rps": round(report.capacity_rps, 1),
        "busy_s": report.busy_s,
        "wall_throughput_rps": round(report.throughput_rps, 1),
        "wall_duration_s": report.duration_s,
        "mean_latency_s": report.latency_s["mean"],
        "p50_s": report.latency_s["p50"],
        "p99_s": report.latency_s["p99"],
        "completed": report.completed,
        "shed": report.shed,
        "cache_hits": report.cache["hits"],
        "cache_misses": report.cache["misses"],
        "page_faults": report.epc["page_faults"],
        "overcommit_ratio": report.epc["overcommit_ratio"],
    }


def _summarize_fleet(report) -> dict:
    return {
        "throughput_rps": round(
            report.completed / report.busy_s if report.busy_s > 0 else 0.0, 1
        ),
        "busy_s": report.busy_s,
        "wall_throughput_rps": round(report.throughput_rps, 1),
        "wall_duration_s": report.duration_s,
        "p50_s": report.latency_s["p50"],
        "p99_s": report.latency_s["p99"],
        "offered": report.offered,
        "completed": report.completed,
        "failover": report.failover,
        "shed": report.shed,
        "shed_rate": report.shed_rate,
        "routing_errors": report.routing_errors,
        "crashes": report.crashes,
        "restarts": report.restarts,
        "max_shard_resident_bytes": report.max_shard_resident_bytes,
        "aggregate_resident_bytes": report.aggregate_resident_bytes,
        "shard_cap_bytes": report.per_shard[0]["epc"]["cap_bytes"],
        "ring_digest": report.ring_digest,
        "trace_digest": report.trace_digest,
    }


def test_serve_throughput():
    baseline = run_serving_experiment(**BASELINE)
    warm = run_serving_experiment(**CACHE_SCENARIO)
    cold = run_serving_experiment(**CACHE_SCENARIO, topn_capacity=0, hot_capacity=0)
    pressured = run_serving_experiment(
        **BASELINE, epc=EpcModel(total_mib=1.0, usable_mib=0.01), quality_probe=False
    )
    fleet = run_fleet_experiment(**FLEET_SCENARIO)

    doc = {
        "schema": "repro.serve.bench/v1",
        "floors": {
            "throughput_rps": FLOOR_RPS,
            "p99_ceiling_s": P99_CEILING_S,
            "precision_at_10": P10_FLOOR,
            "fleet_p99_ceiling_s": FLEET_P99_CEILING_S,
            "fleet_shed_rate_ceiling": FLEET_SHED_RATE_CEILING,
        },
        "baseline": _summarize(baseline),
        "quality": baseline.quality,
        "cache_warm": _summarize(warm),
        "cache_cold": _summarize(cold),
        "epc_pressured": _summarize(pressured),
        "fleet_peak": _summarize_fleet(fleet),
        "snapshot_digest": baseline.snapshot_digest,
        "trace_digest": baseline.trace_digest,
    }
    with open(OUTPUT, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)

    rows = [
        [
            name,
            f"{s['throughput_rps']:.0f}",
            f"{s['mean_latency_s'] * 1e3:.3f}",
            f"{s['p99_s'] * 1e3:.3f}",
            f"{s['cache_hits']:.0f}",
            f"{s['page_faults']:.0f}",
        ]
        for name, s in (
            ("baseline", doc["baseline"]),
            ("cache warm", doc["cache_warm"]),
            ("cache cold", doc["cache_cold"]),
            ("epc pressured", doc["epc_pressured"]),
        )
    ]
    fp = doc["fleet_peak"]
    rows.append(
        [
            "fleet peak (8x2)",
            f"{fp['throughput_rps']:.0f}",
            "-",
            f"{fp['p99_s'] * 1e3:.3f}",
            "-",
            f"{fp['failover']:.0f} failovers",
        ]
    )
    emit(
        format_table(
            ["scenario", "req/s", "mean ms", "p99 ms", "hits", "faults"],
            rows,
            title=f"Serving throughput (artifact: {OUTPUT})",
        )
    )

    assert baseline.capacity_rps >= FLOOR_RPS, (
        f"simulated capacity regressed: {baseline.capacity_rps:.0f} req/s "
        f"below the {FLOOR_RPS:.0f} floor"
    )
    assert baseline.p99_s <= P99_CEILING_S, (
        f"p99 latency regressed: {baseline.p99_s * 1e3:.2f} ms above the "
        f"{P99_CEILING_S * 1e3:.1f} ms ceiling"
    )
    assert baseline.quality["precision_at_10"] >= P10_FLOOR, (
        f"ranking quality regressed: precision@10 "
        f"{baseline.quality['precision_at_10']:.3f} below {P10_FLOOR}"
    )
    # One window, one ordering: removing scoring work (the warm cache)
    # must raise capacity throughput on the same trace -- the comparison
    # the old wall-clock numbers inverted.
    assert warm.capacity_rps > cold.capacity_rps, (
        f"warm cache did not raise capacity: warm {warm.capacity_rps:.0f} "
        f"vs cold {cold.capacity_rps:.0f} req/s"
    )
    # The result cache must actually buy latency on the same trace.
    assert warm.latency_s["mean"] < cold.latency_s["mean"], (
        f"warm cache did not cut mean latency: warm "
        f"{warm.latency_s['mean'] * 1e6:.1f} us vs cold "
        f"{cold.latency_s['mean'] * 1e6:.1f} us"
    )
    assert warm.cache["hits"] > 0 and cold.cache["hits"] == 0
    # Beyond-EPC serving must page, and paging must cost latency.
    assert pressured.epc["page_faults"] > 0
    assert pressured.latency_s["mean"] > baseline.latency_s["mean"]
    # Fleet lane: crash-at-peak may shed (bounded) but never misroute.
    assert fleet.routing_errors == 0, "consistent-hash routing misdelivered"
    assert fleet.p99_s <= FLEET_P99_CEILING_S, (
        f"fleet p99 regressed: {fleet.p99_s * 1e3:.2f} ms above the "
        f"{FLEET_P99_CEILING_S * 1e3:.1f} ms ceiling"
    )
    assert fleet.shed_rate <= FLEET_SHED_RATE_CEILING, (
        f"fleet shed rate {fleet.shed_rate:.3f} above the "
        f"{FLEET_SHED_RATE_CEILING:.3f} ceiling"
    )
    assert fleet.crashes == FLEET_SCENARIO["shards"]
    assert fleet.offered == fleet.completed + fleet.shed
