"""Benchmark harness configuration.

Every file in this directory regenerates one table or figure from the
paper's evaluation (see DESIGN.md's per-experiment index).  Heavy runs
are produced by :mod:`repro.sim.experiments`, which caches results on
disk (``.repro_cache/``) so tables and figures that share runs (Table II
and Figures 1-2; Table IV and Figures 6-7) only pay once.

Knobs: ``REPRO_EPOCH_SCALE`` (default 0.4) scales every horizon;
``REPRO_NO_CACHE=1`` forces recomputation.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Measure ``fn`` exactly once (runs are minutes-long simulations)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture()
def once(benchmark):
    def _once(fn):
        return run_once(benchmark, fn)

    return _once


def emit(text: str) -> None:
    """Print a table/figure rendering with visual separation."""
    print("\n" + text + "\n")
