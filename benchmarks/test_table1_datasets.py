"""Table I -- Datasets.

Regenerates the paper's dataset table from the synthetic MovieLens
generators: exact rating/item/user counts, plus measured activity and
sparsity of the generated stand-ins.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.analysis.tables import dataset_table
from repro.data.movielens import MOVIELENS_25M_CAPPED, MOVIELENS_LATEST, generate_movielens


def _measure(dataset):
    return {
        "ratings": len(dataset),
        "items_rated": len(dataset.distinct_items()),
        "users_active": len(dataset.distinct_users()),
        "sparsity": dataset.sparsity,
    }


def test_table1_datasets(once):
    def build():
        rows = []
        for spec in (MOVIELENS_LATEST, MOVIELENS_25M_CAPPED):
            dataset = generate_movielens(spec, seed=42)
            assert len(dataset) == spec.n_ratings
            assert dataset.n_users == spec.n_users
            assert dataset.n_items == spec.n_items
            assert dataset.user_counts().min() >= spec.min_ratings_per_user
            assert len(np.unique(dataset.pair_keys())) == len(dataset)
            rows.append((spec, _measure(dataset)))
        return rows

    rows = once(build)
    emit(
        format_table(
            [
                "dataset", "ratings", "items", "users", "updated",
                "gen_ratings", "gen_items_rated", "gen_users", "gen_sparsity",
            ],
            dataset_table(rows),
            title="Table I -- Datasets (spec targets vs generated)",
        )
    )
