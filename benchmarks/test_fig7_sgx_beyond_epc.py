"""Figure 7 -- SGX vs native beyond the EPC limit (MovieLens 25M, 15k users).

Same 8-node matrix as Figure 6 but with the capped MovieLens-25M dataset,
chosen so the model-sharing working set (Eigen-style double-precision
models plus per-neighbor staging) overcommits the 46.75 MiB per-enclave
EPC share.  Trends match Figure 6 with larger SGX overheads for MS.
"""

from benchmarks.conftest import emit
from repro.analysis.figures import stage_breakdown, volume_per_epoch
from repro.analysis.report import format_table
from repro.core.config import Dissemination, SharingScheme
from repro.sim import experiments as E
from repro.tee.epc import EpcModel


def test_fig7_sgx_beyond_epc(once):
    def build():
        runs = {}
        for dissemination in (Dissemination.RMW, Dissemination.DPSGD):
            for scheme in (SharingScheme.DATA, SharingScheme.MODEL):
                for sgx in (True, False):
                    key = (dissemination.label, scheme.label, "SGX" if sgx else "native")
                    runs[key] = E.sgx_run(dissemination, scheme, sgx=sgx, large=True)
        return runs

    runs = once(build)

    rows = []
    for (diss, scheme, build_kind), run in runs.items():
        stages = stage_breakdown([run])[run.label]
        rows.append(
            [
                f"{diss}, {scheme} ({build_kind})",
                *(f"{stages[s] * 1000:.2f}" for s in ("merge", "train", "share", "test")),
                f"{run.memory_mib():.1f}",
                f"{volume_per_epoch([run])[run.label]:,.0f}",
            ]
        )
    emit(
        format_table(
            ["setup", "merge [ms]", "train [ms]", "share [ms]", "test [ms]",
             "RAM [MiB]", "bytes/node/epoch"],
            rows,
            title="Figure 7 -- 15,000 users (beyond-EPC regime)",
        )
    )

    epc_share_mib = EpcModel(enclaves_per_machine=2).share_bytes / (1 << 20)
    emit(f"per-enclave EPC share: {epc_share_mib:.2f} MiB")

    for diss in ("RMW", "D-PSGD"):
        rex_sgx = runs[(diss, "REX", "SGX")]
        ms_sgx = runs[(diss, "MS", "SGX")]
        # Trends of Fig. 6 persist at 15k users...
        assert volume_per_epoch([ms_sgx])[ms_sgx.label] > 20 * volume_per_epoch(
            [rex_sgx]
        )[rex_sgx.label]
        assert rex_sgx.memory_mib() < ms_sgx.memory_mib()

    # ...and D-PSGD model sharing overcommits its EPC share, which is the
    # regime this figure exists to exercise.
    assert runs[("D-PSGD", "MS", "SGX")].memory_mib() > epc_share_mib

    # The memory footprints dwarf the 610-user runs of Figure 6.
    small = E.sgx_run(Dissemination.DPSGD, SharingScheme.MODEL, sgx=True, large=False)
    assert runs[("D-PSGD", "MS", "SGX")].memory_mib() > 2 * small.memory_mib()
