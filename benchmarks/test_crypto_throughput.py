"""Crypto throughput microbenchmark -- writes ``BENCH_crypto.json``.

Not a paper figure: this file tracks the performance trajectory of the
from-scratch RFC 8439 stack that every ``CryptoMode.REAL`` experiment
pays for.  It measures MB/s per primitive across one shared message-size
grid (every primitive covers every declared size -- a regression test
asserts the artifact can never silently diverge again), locates both
dispatch crossovers (single-message scalar/vector and multi-message
batch, see :mod:`repro.tee.crypto.tuning`), measures the cross-message
lane-batched seal against the sequential per-message path, and times a
secure vs accounted :class:`~repro.core.cluster.RexCluster` run to show
what the cipher costs end to end.

The JSON artifact is uploaded by the ``crypto-bench`` CI job, which
fails if sealed AEAD throughput at the largest size drops below a
pinned floor (``REPRO_BENCH_SEAL_FLOOR_MBPS``) or the batched 8-message
seal stops beating the sequential numpy reference path by the pinned
factor (``REPRO_BENCH_BATCH_FLOOR_SPEEDUP``).
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.core import CryptoMode, Dissemination, RexCluster, RexConfig, SharingScheme
from repro.data.movielens import MovieLensSpec, generate_movielens
from repro.data.partition import partition_users_across_nodes
from repro.ml.mf import MfHyperParams
from repro.net.topology import Topology
from repro.tee.crypto.aead import ChaCha20Poly1305, seal_many
from repro.tee.crypto.backend import aead_backend, native_available, set_aead_backend
from repro.tee.crypto.chacha20 import chacha20_encrypt
from repro.tee.crypto.fastchacha import chacha20_xor
from repro.tee.crypto.poly1305 import poly1305_mac
from repro.tee.crypto.tuning import measure_batch_crossover, measure_crossover

OUTPUT = "BENCH_crypto.json"

#: One sweep grid for every primitive.  ``sizes_bytes`` in the artifact
#: and the per-primitive sample keys are asserted to match exactly.
SIZES = [1024, 16384, 262144, 1048576]

#: Fan-out of the batch-seal measurements (matches the 8-node profile).
BATCH_MESSAGES = 8
#: Per-message size of the headline batched-vs-sequential comparison.
BATCH_MESSAGE_BYTES = 131072


def _default_seal_floor() -> float:
    """Backend-aware floor: OpenSSL-backed hosts must clear a much higher
    bar than the portable NumPy kernel (reference container: ~2 GB/s
    native, ~150 MB/s numpy at 1 MiB)."""
    return 150.0 if native_available() else 40.0


SEAL_FLOOR_MBPS = float(
    os.environ.get("REPRO_BENCH_SEAL_FLOOR_MBPS", "") or _default_seal_floor()
)

#: Floor on ``batch_seal.speedup``: the lane-batched seal under the
#: resolved default backend vs the sequential per-message numpy pipeline
#: (the pre-batching release's hot path).  Numpy-only hosts get a
#: no-regression bar instead: at 128 KiB per message the kernel-dispatch
#: tax is already amortized, so same-backend batching is roughly parity
#: there (its wins are small messages -- see the batch crossover -- and
#: the native backend).
BATCH_FLOOR_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_BATCH_FLOOR_SPEEDUP", "")
    or ("1.5" if native_available() else "0.9")
)

KEY = bytes(range(32))
NONCE = bytes(12)


def _throughput(fn, payload: bytes, *, reps: int = 0) -> float:
    """Best-of-N MB/s for ``fn(payload)`` (N adapted to payload size)."""
    reps = reps or max(3, (1 << 21) // max(1, len(payload)))
    best = None
    for _ in range(reps):
        t0 = time.perf_counter()
        fn(payload)
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return len(payload) / best / 1e6


def _sweep(fn, *, reps_cap: int = 0) -> dict:
    out = {}
    for size in SIZES:
        payload = bytes(i % 256 for i in range(size))
        reps = min(reps_cap, max(3, (1 << 21) // size)) if reps_cap else 0
        out[str(size)] = round(_throughput(fn, payload, reps=reps), 2)
    return out


def _batch_requests(message_bytes: int, messages: int = BATCH_MESSAGES) -> list:
    """One per-neighbor request list, distinct keys like distinct channels."""
    requests = []
    for i in range(messages):
        cipher = ChaCha20Poly1305(bytes((k + i) % 256 for k in range(32)))
        payload = bytes((j * 31 + i) % 256 for j in range(message_bytes))
        requests.append((cipher, NONCE, payload, b""))
    return requests


def _batch_throughput(message_bytes: int, *, sequential: bool, reps: int = 5) -> float:
    requests = _batch_requests(message_bytes)
    aggregate = message_bytes * len(requests)
    best = None
    for _ in range(reps):
        t0 = time.perf_counter()
        if sequential:
            for cipher, nonce, payload, aad in requests:
                cipher.encrypt(nonce, payload, aad)
        else:
            seal_many(requests)
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return aggregate / best / 1e6


def _batch_seal_section() -> dict:
    """Headline batched-vs-sequential numbers, per backend, honestly
    labeled: ``speedup`` compares the new default seal path (lane-batched
    ``seal_many`` on the resolved backend) against the *previous
    release's* path (sequential per-message numpy pipeline)."""
    set_aead_backend("numpy")
    sequential_numpy = _batch_throughput(BATCH_MESSAGE_BYTES, sequential=True)
    batched_numpy = _batch_throughput(BATCH_MESSAGE_BYTES, sequential=False)
    sequential_native = batched_native = None
    if native_available():
        set_aead_backend("native")
        sequential_native = _batch_throughput(BATCH_MESSAGE_BYTES, sequential=True)
        batched_native = _batch_throughput(BATCH_MESSAGE_BYTES, sequential=False)
    set_aead_backend(None)
    batched_default = _batch_throughput(BATCH_MESSAGE_BYTES, sequential=False)
    section = {
        "messages": BATCH_MESSAGES,
        "message_bytes": BATCH_MESSAGE_BYTES,
        "sequential_numpy_mbps": round(sequential_numpy, 2),
        "batched_numpy_mbps": round(batched_numpy, 2),
        "sequential_native_mbps": (
            None if sequential_native is None else round(sequential_native, 2)
        ),
        "batched_native_mbps": None if batched_native is None else round(batched_native, 2),
        "batched_default_mbps": round(batched_default, 2),
        "speedup": round(batched_default / sequential_numpy, 2),
        "speedup_numpy_only": round(batched_numpy / sequential_numpy, 2),
        "speedup_floor": BATCH_FLOOR_SPEEDUP,
    }
    return section


def _cluster_smoke() -> dict:
    """Secure vs accounted wall-clock on an 8-node model-sharing run."""
    spec = MovieLensSpec(name="tiny", n_ratings=1600, n_items=120, n_users=40, last_updated=2020)
    split = generate_movielens(spec, seed=11).split(0.7, seed=3)
    train = partition_users_across_nodes(split.train, 8, seed=2)
    test = partition_users_across_nodes(split.test, 8, seed=2)
    topo = Topology.fully_connected(8)
    results = {}
    for label, mode in (("secure", CryptoMode.REAL), ("accounted", CryptoMode.ACCOUNTED)):
        config = RexConfig(
            scheme=SharingScheme.MODEL,
            dissemination=Dissemination.DPSGD,
            epochs=3,
            crypto_mode=mode,
            mf=MfHyperParams(k=8, batch_size=16, batches_per_epoch=2),
        )
        t0 = time.perf_counter()
        run = RexCluster(topo, config, secure=True).run(
            train, test, global_mean=split.train.global_mean()
        )
        results[label] = {
            "wall_s": round(time.perf_counter() - t0, 3),
            "network_bytes": run.total_network_bytes,
            "network_messages": run.total_network_messages,
        }
    # The ACCOUNTED channel is size-faithful: the cipher must not change
    # a single wire byte count, only the wall-clock.
    assert results["secure"]["network_bytes"] == results["accounted"]["network_bytes"]
    assert results["secure"]["network_messages"] == results["accounted"]["network_messages"]
    results["crypto_overhead_s"] = round(
        results["secure"]["wall_s"] - results["accounted"]["wall_s"], 3
    )
    return results


def test_crypto_throughput():
    cipher = ChaCha20Poly1305(KEY)
    # The scalar reference runs ~0.5 MB/s by design; cap its reps so the
    # MB-scale points don't dominate the whole benchmark's wall-clock.
    sweeps = {
        "chacha20_scalar": _sweep(
            lambda p: chacha20_encrypt(KEY, 1, NONCE, p), reps_cap=3
        ),
        "chacha20_vector": _sweep(lambda p: chacha20_xor(KEY, 1, NONCE, p)),
        "poly1305": _sweep(lambda p: poly1305_mac(KEY, p)),
        "aead_seal": _sweep(lambda p: cipher.encrypt(NONCE, p)),
        "aead_open": {},
        "aead_seal_batch8": {},
    }
    for size in SIZES:
        wire = cipher.encrypt(NONCE, bytes(i % 256 for i in range(size)))
        sweeps["aead_open"][str(size)] = round(
            _throughput(lambda _p, _w=wire: cipher.decrypt(NONCE, _w), b"\x00" * size), 2
        )
        # Batch-seal points on the shared grid: 8 messages whose payloads
        # sum to the grid size, sealed in one seal_many invocation.
        sweeps["aead_seal_batch8"][str(size)] = round(
            _batch_throughput(size // BATCH_MESSAGES, sequential=False), 2
        )

    # Grid consistency: every primitive covers exactly the declared grid.
    for name, sweep in sweeps.items():
        assert sorted(sweep) == sorted(str(s) for s in SIZES), (
            f"{name} was not measured on the declared sizes_bytes grid: "
            f"{sorted(sweep)} != {sorted(str(s) for s in SIZES)}"
        )

    crossover = measure_crossover(time.perf_counter)
    batch_crossover = measure_batch_crossover(time.perf_counter)
    batch = _batch_seal_section()
    cluster = _cluster_smoke()

    doc = {
        "unit": "MB/s",
        "sizes_bytes": SIZES,
        "backend": aead_backend(),
        "native_available": native_available(),
        "primitives": sweeps,
        "dispatch_crossover_bytes": crossover["threshold"],
        "batch_crossover_bytes": batch_crossover["threshold"],
        "batch_seal": batch,
        "cluster_smoke": cluster,
        "seal_floor_mbps": SEAL_FLOOR_MBPS,
    }
    with open(OUTPUT, "w") as fh:
        json.dump(doc, fh, indent=2)

    rows = []
    for name, sweep in sweeps.items():
        for size, mbps in sweep.items():
            rows.append([name, size, f"{mbps:.1f}"])
    rows.append(["dispatch crossover", str(crossover["threshold"]), "bytes"])
    rows.append(["batch crossover", str(batch_crossover["threshold"]), "bytes"])
    rows.append(
        [
            f"batch seal {BATCH_MESSAGES}x{BATCH_MESSAGE_BYTES // 1024}K",
            "-",
            f"{batch['speedup']}x vs sequential numpy",
        ]
    )
    rows.append(["cluster secure", "-", f"{cluster['secure']['wall_s']:.3f} s"])
    rows.append(["cluster accounted", "-", f"{cluster['accounted']['wall_s']:.3f} s"])
    emit(
        format_table(
            ["primitive", "message bytes", "MB/s"],
            rows,
            title=f"Crypto throughput (backend: {doc['backend']}, artifact: {OUTPUT})",
        )
    )

    sealed_at_max = sweeps["aead_seal"][str(max(SIZES))]
    assert sealed_at_max >= SEAL_FLOOR_MBPS, (
        f"sealed throughput regressed: {sealed_at_max:.1f} MB/s at "
        f"{max(SIZES)} bytes is below the {SEAL_FLOOR_MBPS} MB/s floor"
    )
    assert batch["speedup"] >= BATCH_FLOOR_SPEEDUP, (
        f"batched seal regressed: {batch['speedup']}x vs the sequential "
        f"numpy path is below the {BATCH_FLOOR_SPEEDUP}x floor"
    )
