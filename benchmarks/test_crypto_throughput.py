"""Crypto throughput microbenchmark -- writes ``BENCH_crypto.json``.

Not a paper figure: this file tracks the performance trajectory of the
from-scratch RFC 8439 stack that every ``CryptoMode.REAL`` experiment
pays for.  It measures MB/s per primitive across message sizes, locates
the scalar/vector dispatch crossover (see :mod:`repro.tee.crypto.tuning`),
and times a secure vs accounted :class:`~repro.core.cluster.RexCluster`
run to show what the cipher costs end to end.

The JSON artifact is uploaded by the ``crypto-bench`` CI job, which fails
if sealed AEAD throughput at the largest size drops below a pinned floor
(``REPRO_BENCH_SEAL_FLOOR_MBPS`` overrides it for slower hardware).
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.core import CryptoMode, Dissemination, RexCluster, RexConfig, SharingScheme
from repro.data.movielens import MovieLensSpec, generate_movielens
from repro.data.partition import partition_users_across_nodes
from repro.ml.mf import MfHyperParams
from repro.net.topology import Topology
from repro.tee.crypto.aead import ChaCha20Poly1305
from repro.tee.crypto.chacha20 import chacha20_encrypt
from repro.tee.crypto.fastchacha import chacha20_xor
from repro.tee.crypto.poly1305 import poly1305_mac
from repro.tee.crypto.tuning import measure_crossover

OUTPUT = "BENCH_crypto.json"

#: Sweep sizes (bytes) for the vectorized primitives and the full AEAD.
SIZES = [1024, 16384, 262144, 1048576]
#: The unrolled scalar path is ~0.5 MB/s by design (it exists for small
#: messages); sweeping it at MB scale would dominate the whole benchmark.
SCALAR_SIZES = [1024, 4096, 16384, 65536]

#: Sealed AEAD throughput floor at the largest sweep size, in MB/s.  The
#: reference container measures ~100; the floor leaves 5x headroom for
#: noisy shared CI runners.  Raise it as the stack gets faster.
SEAL_FLOOR_MBPS = float(os.environ.get("REPRO_BENCH_SEAL_FLOOR_MBPS", "20"))

KEY = bytes(range(32))
NONCE = bytes(12)


def _throughput(fn, payload: bytes) -> float:
    """Best-of-N MB/s for ``fn(payload)`` (N adapted to payload size)."""
    reps = max(3, (1 << 21) // max(1, len(payload)))
    best = None
    for _ in range(reps):
        t0 = time.perf_counter()
        fn(payload)
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return len(payload) / best / 1e6


def _sweep(fn, sizes) -> dict:
    out = {}
    for size in sizes:
        payload = bytes(i % 256 for i in range(size))
        out[str(size)] = round(_throughput(fn, payload), 2)
    return out


def _cluster_smoke() -> dict:
    """Secure vs accounted wall-clock on an 8-node model-sharing run."""
    spec = MovieLensSpec(name="tiny", n_ratings=1600, n_items=120, n_users=40, last_updated=2020)
    split = generate_movielens(spec, seed=11).split(0.7, seed=3)
    train = partition_users_across_nodes(split.train, 8, seed=2)
    test = partition_users_across_nodes(split.test, 8, seed=2)
    topo = Topology.fully_connected(8)
    results = {}
    for label, mode in (("secure", CryptoMode.REAL), ("accounted", CryptoMode.ACCOUNTED)):
        config = RexConfig(
            scheme=SharingScheme.MODEL,
            dissemination=Dissemination.DPSGD,
            epochs=3,
            crypto_mode=mode,
            mf=MfHyperParams(k=8, batch_size=16, batches_per_epoch=2),
        )
        t0 = time.perf_counter()
        run = RexCluster(topo, config, secure=True).run(
            train, test, global_mean=split.train.global_mean()
        )
        results[label] = {
            "wall_s": round(time.perf_counter() - t0, 3),
            "network_bytes": run.total_network_bytes,
            "network_messages": run.total_network_messages,
        }
    # The ACCOUNTED channel is size-faithful: the cipher must not change
    # a single wire byte count, only the wall-clock.
    assert results["secure"]["network_bytes"] == results["accounted"]["network_bytes"]
    assert results["secure"]["network_messages"] == results["accounted"]["network_messages"]
    results["crypto_overhead_s"] = round(
        results["secure"]["wall_s"] - results["accounted"]["wall_s"], 3
    )
    return results


def test_crypto_throughput():
    cipher = ChaCha20Poly1305(KEY)
    sweeps = {
        "chacha20_scalar": _sweep(lambda p: chacha20_encrypt(KEY, 1, NONCE, p), SCALAR_SIZES),
        "chacha20_vector": _sweep(lambda p: chacha20_xor(KEY, 1, NONCE, p), SIZES),
        "poly1305": _sweep(lambda p: poly1305_mac(KEY, p), SIZES),
        "aead_seal": _sweep(lambda p: cipher.encrypt(NONCE, p), SIZES),
        "aead_open": {},
    }
    for size in SIZES:
        wire = cipher.encrypt(NONCE, bytes(i % 256 for i in range(size)))
        sweeps["aead_open"][str(size)] = round(
            _throughput(lambda _p, _w=wire: cipher.decrypt(NONCE, _w), b"\x00" * size), 2
        )

    crossover = measure_crossover(time.perf_counter)
    cluster = _cluster_smoke()

    doc = {
        "unit": "MB/s",
        "sizes_bytes": SIZES,
        "primitives": sweeps,
        "dispatch_crossover_bytes": crossover["threshold"],
        "cluster_smoke": cluster,
        "seal_floor_mbps": SEAL_FLOOR_MBPS,
    }
    with open(OUTPUT, "w") as fh:
        json.dump(doc, fh, indent=2)

    rows = []
    for name, sweep in sweeps.items():
        for size, mbps in sweep.items():
            rows.append([name, size, f"{mbps:.1f}"])
    rows.append(["dispatch crossover", str(crossover["threshold"]), "bytes"])
    rows.append(["cluster secure", "-", f"{cluster['secure']['wall_s']:.3f} s"])
    rows.append(["cluster accounted", "-", f"{cluster['accounted']['wall_s']:.3f} s"])
    emit(
        format_table(
            ["primitive", "message bytes", "MB/s"],
            rows,
            title=f"Crypto throughput (artifact: {OUTPUT})",
        )
    )

    sealed_at_max = sweeps["aead_seal"][str(max(SIZES))]
    assert sealed_at_max >= SEAL_FLOOR_MBPS, (
        f"sealed throughput regressed: {sealed_at_max:.1f} MB/s at "
        f"{max(SIZES)} bytes is below the {SEAL_FLOOR_MBPS} MB/s floor"
    )
