"""Figure 5 -- Multiple users per node, DNN model (50 nodes, D-PSGD).

(a) per-epoch stage breakdown -- REX slightly faster (no model merge);
(b) data volume per epoch -- MS exchanges the 215,001-parameter model and
dwarfs REX's 40 triplets; (c) test error vs epochs -- SW tracks closely,
ER slightly worse for REX (sparser graph spreads less knowledge).
"""

from benchmarks.conftest import emit
from repro.analysis.figures import error_vs_epochs, stage_breakdown, volume_per_epoch
from repro.analysis.report import format_table, render_series
from repro.core.config import SharingScheme
from repro.sim import experiments as E


def test_fig5_dnn(once):
    def build():
        return {
            topo: {
                scheme: E.fig5_run(topo, scheme)
                for scheme in (SharingScheme.DATA, SharingScheme.MODEL)
            }
            for topo in E.TOPOLOGIES
        }

    runs = once(build)

    # (a) stage breakdown
    rows = []
    for topo, by_scheme in runs.items():
        for scheme, run in by_scheme.items():
            stages = stage_breakdown([run])[run.label]
            rows.append(
                [
                    f"{scheme.label} ({topo.upper()})",
                    *(f"{stages[s] * 1000:.2f}" for s in ("merge", "train", "share", "test")),
                ]
            )
    emit(
        format_table(
            ["setup", "merge [ms]", "train [ms]", "share [ms]", "test [ms]"],
            rows,
            title="Figure 5(a) -- DNN stage breakdown per epoch (mean per node)",
        )
    )

    # (b) volume per epoch
    vol_rows = []
    for topo, by_scheme in runs.items():
        for scheme, run in by_scheme.items():
            vol_rows.append(
                [f"{scheme.label} ({topo.upper()})", f"{volume_per_epoch([run])[run.label]:,.0f}"]
            )
    emit(
        format_table(
            ["setup", "bytes/node/epoch"],
            vol_rows,
            title="Figure 5(b) -- DNN data volume exchanged per epoch",
        )
    )

    # (c) error vs epochs
    for topo, by_scheme in runs.items():
        for scheme, run in by_scheme.items():
            xs, ys = error_vs_epochs([run])[run.label]
            emit(render_series(f"Fig 5(c) {scheme.label} ({topo.upper()})", xs, ys,
                               x_label="epoch", y_label="test RMSE"))

    for topo in E.TOPOLOGIES:
        rex = runs[topo][SharingScheme.DATA]
        ms = runs[topo][SharingScheme.MODEL]
        # (a): REX's epoch is cheaper (no 215k-parameter merge/share).
        rex_stage = rex.stage_means()
        ms_stage = ms.stage_means()
        rex_epoch = sum(rex_stage[s] for s in ("merge", "train", "share", "test"))
        ms_epoch = sum(ms_stage[s] for s in ("merge", "train", "share", "test"))
        assert rex_epoch < ms_epoch, topo
        # (b): orders-of-magnitude traffic gap.
        assert volume_per_epoch([ms])[ms.label] > 100 * volume_per_epoch([rex])[rex.label]

    # (c): on SW the two schemes end close; REX-ER may trail slightly
    # (the paper observes the same), but must stay in the same regime.
    sw_gap = abs(
        runs["sw"][SharingScheme.DATA].final_rmse
        - runs["sw"][SharingScheme.MODEL].final_rmse
    )
    assert sw_gap < 0.15
