"""Table II -- One node per user: REX speed-up over MS at the MS target.

Paper values for reference (full-horizon runs on the authors' cluster):
D-PSGD/ER 18.3x, RMW/ER 11.5x, D-PSGD/SW 7.5x, RMW/SW 2.3x.  The
reproduction asserts the *shape*: every speed-up > 1, and the D-PSGD
speed-ups exceed their RMW counterparts on the same topology (broadcast
model sharing pays the most network time, Section IV-B).
"""

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.analysis.tables import speedup_table
from repro.core.config import SharingScheme
from repro.sim import experiments as E

PAPER_SPEEDUPS = {
    "D-PSGD, ER": 18.3,
    "RMW, ER": 11.5,
    "D-PSGD, SW": 7.5,
    "RMW, SW": 2.3,
}


def test_table2_speedups(once):
    def build():
        pairs = []
        for dissemination, topo in E.SETUPS:
            label = f"{dissemination.label}, {topo.upper()}"
            pairs.append(
                (
                    label,
                    E.fig1_run(dissemination, topo, SharingScheme.DATA),
                    E.fig1_run(dissemination, topo, SharingScheme.MODEL),
                )
            )
        return speedup_table(pairs, target_rule="joint", target_margin=0.002)

    rows = once(build)
    emit(
        format_table(
            ["Setup", "Error target", "REX [min]", "MS [min]", "REX speed-up", "paper"],
            [
                row.as_cells(unit="min") + [f"{PAPER_SPEEDUPS[row.setup]}x"]
                for row in rows
            ],
            title="Table II -- One node per user: speed-up at the MS error target",
        )
    )

    by_setup = {row.setup: row for row in rows}
    for row in rows:
        assert row.speedup is not None, f"{row.setup}: REX never reached the MS target"
        assert row.speedup > 1.0, f"{row.setup}: REX must beat MS"
    # Broadcast (D-PSGD) suffers most from model sharing on each topology.
    assert by_setup["D-PSGD, ER"].speedup > by_setup["RMW, SW"].speedup
