"""Figure 1 -- One node per user, MF: test error vs simulated time.

Four panels ({RMW, D-PSGD} x {ER, SW}, 610 nodes) each with three curves:
REX (raw data sharing), MS (model sharing) and the centralized baseline.
Expected shape: all converge to a similar error; REX reaches it much
sooner in elapsed time; centralized is fastest.
"""

from benchmarks.conftest import emit
from repro.analysis.figures import error_vs_time
from repro.analysis.report import render_series
from repro.core.config import SharingScheme
from repro.sim import experiments as E


def test_fig1_error_vs_time(once):
    def build():
        panels = {}
        for dissemination, topo in E.SETUPS:
            rex = E.fig1_run(dissemination, topo, SharingScheme.DATA)
            ms = E.fig1_run(dissemination, topo, SharingScheme.MODEL)
            panels[f"{dissemination.label}, {topo.upper()}"] = (rex, ms)
        return panels, E.fig1_centralized()

    panels, central = once(build)

    for panel, (rex, ms) in panels.items():
        emit(f"=== Figure 1 panel: {panel} ===")
        for label, run in (("REX", rex), ("MS", ms), ("Centralized", central)):
            series = error_vs_time([run])[run.label]
            emit(render_series(f"{panel} / {label}", *series,
                               x_label="sim seconds", y_label="test RMSE"))

        # Shape assertions per panel: similar final error, REX faster to
        # the MS target, centralized fastest overall.
        # Joint target: reachable by both runs at reduced horizons.
        target = max(ms.final_rmse, rex.final_rmse) + 0.002
        t_rex = rex.time_to_target(target)
        t_ms = ms.time_to_target(target)
        assert t_rex is not None and t_ms is not None
        assert t_rex < t_ms, f"{panel}: REX must reach the MS target first"
        loose_target = max(rex.final_rmse, ms.final_rmse, central.final_rmse) + 0.02
        t_central = central.time_to_target(loose_target)
        assert t_central is not None
        assert t_central <= rex.time_to_target(loose_target)
