"""Ablation -- how much raw data to share per epoch.

The paper treats the share size as a hyper-parameter "and experiment[s]
with several different values in order to pick one that fits well
according to accuracy versus time comparisons" (Section III-E); it
settles on 300 points for MF.  This ablation sweeps the knob on the
multi-user scenario: more points per epoch buy faster convergence in
epochs at a linear traffic cost, with diminishing returns past the
paper's choice.
"""

import os

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.core.config import Dissemination, RexConfig, SharingScheme
from repro.data.partition import partition_users_across_nodes
from repro.sim import experiments as E
from repro.sim.fleet import MfFleetSim

SHARE_SIZES = (30, 100, 300, 1000)


def _run(share_points: int):
    split = E.movielens_latest_split()
    train = partition_users_across_nodes(split.train, 50, seed=2)
    test = partition_users_across_nodes(split.test, 50, seed=2)
    config = RexConfig(
        scheme=SharingScheme.DATA,
        dissemination=Dissemination.DPSGD,
        epochs=E.scaled_epochs(200),
        share_points=share_points,
        seed=E.RUN_SEED,
    )
    return MfFleetSim(
        train, test, E.topology("sw", 50), config,
        global_mean=split.train.global_mean(),
    ).run()


def test_ablation_share_size(once):
    def build():
        return {points: _run(points) for points in SHARE_SIZES}

    runs = once(build)

    joint_target = max(r.final_rmse for r in runs.values()) + 0.002
    rows = []
    for points, run in runs.items():
        t = run.time_to_target(joint_target)
        rows.append(
            [
                str(points),
                f"{run.final_rmse:.4f}",
                f"{run.bytes_per_node_per_epoch():,.0f}",
                "n/a" if t is None else f"{t:.1f}",
            ]
        )
    emit(
        format_table(
            ["points/epoch", "final RMSE", "bytes/node/epoch", "time to joint target [s]"],
            rows,
            title="Ablation -- share size (REX, D-PSGD, SW, 50 nodes)",
        )
    )

    # Traffic is linear in the share size.
    assert runs[1000].bytes_per_node_per_epoch() > 8 * runs[100].bytes_per_node_per_epoch()
    # Sharing more converges at least as low at a fixed horizon.
    assert runs[300].final_rmse <= runs[30].final_rmse + 0.02
