"""Fleet-scaling benchmark -- writes ``BENCH_fleet.json``.

Not a paper figure: the paper's evaluation stops near 100 nodes, and the
ROADMAP's north star needs evidence that the event kernel sustains
1k-10k node fleets.  This file sweeps the kernel-driven gossip
experiment across fleet sizes (256/1k/4k by default) and records nodes
vs sim-steps/s and peak resident bytes.

The JSON artifact is uploaded by the ``fleet-bench`` CI job, which fails
if whole-fleet scheduling throughput drops below a pinned floor.  Knobs
for slower hardware / different lanes:

- ``REPRO_BENCH_FLEET_SIZES``  comma-separated fleet sizes (CI runs the
  256-node point; the full 256/1k/4k curve is the local default)
- ``REPRO_BENCH_FLEET_FLOOR_SPS``  sim-steps/s floor (default 50k; the
  reference container measures millions)
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.sim.fleet_scale import FleetScaleRunner, write_fleet_bench

OUTPUT = "BENCH_fleet.json"

SIZES = [
    int(s)
    for s in os.environ.get("REPRO_BENCH_FLEET_SIZES", "256,1024,4096").split(",")
    if s.strip()
]
CYCLES = int(os.environ.get("REPRO_BENCH_FLEET_CYCLES", "40"))

#: Whole-fleet scheduling throughput floor (sim node-steps per second).
#: The reference container measures 5-50M steps/s across the sweep; the
#: floor leaves two orders of magnitude for noisy shared CI runners.
FLOOR_SPS = float(os.environ.get("REPRO_BENCH_FLEET_FLOOR_SPS", "50000"))


def test_fleet_scaling_curve():
    runner = FleetScaleRunner(SIZES, clock=time.perf_counter, cycles=CYCLES, seed=0)
    points = runner.run()
    doc = write_fleet_bench(
        points, OUTPUT, seed=0, cycles=CYCLES, floor_steps_per_s=FLOOR_SPS
    )
    assert json.loads(json.dumps(doc))["schema"] == "repro.fleet_bench/v1"

    rows = [
        [
            str(p.nodes),
            f"{p.steps_per_s:,.0f}",
            f"{p.peak_traced_bytes / 1e6:.2f}",
            f"{p.coverage:.3f}",
            p.trace_digest[:12],
        ]
        for p in points
    ]
    emit(
        format_table(
            ["nodes", "sim-steps/s", "peak MB", "coverage", "trace"],
            rows,
            title=f"Fleet scaling, {CYCLES} cycles/size (artifact: {OUTPUT})",
        )
    )

    # Every point is a real, seeded experiment that actually disseminated.
    for point in points:
        assert point.sim_steps == point.nodes * CYCLES
        assert point.messages > 0 and point.coverage > 1.0 / point.nodes

    slowest = min(points, key=lambda p: p.steps_per_s)
    assert slowest.steps_per_s >= FLOOR_SPS, (
        f"fleet scheduling regressed: {slowest.nodes}-node fleet ran "
        f"{slowest.steps_per_s:,.0f} sim-steps/s, below the {FLOOR_SPS:,.0f} floor"
    )
