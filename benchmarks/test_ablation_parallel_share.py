"""Extension -- overlapping the share step with training (Section III-D).

"REX could however execute share in parallel with the other tasks, since
raw data sharing is independent of computing steps.  Although our
implementation currently lacks this feature, it could only further
increase the advantages of leveraging REX."  We implement the overlap in
the epoch-duration model and quantify the gain.
"""

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.core.config import Dissemination, RexConfig, SharingScheme
from repro.data.partition import partition_users_across_nodes
from repro.sim import experiments as E
from repro.sim.fleet import MfFleetSim


def _run(parallel: bool):
    split = E.movielens_latest_split()
    train = partition_users_across_nodes(split.train, 50, seed=2)
    test = partition_users_across_nodes(split.test, 50, seed=2)
    config = RexConfig(
        scheme=SharingScheme.DATA,
        dissemination=Dissemination.DPSGD,
        epochs=E.scaled_epochs(150),
        share_points=300,
        parallel_share=parallel,
        seed=E.RUN_SEED,
    )
    return MfFleetSim(
        train, test, E.topology("sw", 50), config,
        global_mean=split.train.global_mean(),
    ).run()


def test_ablation_parallel_share(once):
    def build():
        return _run(False), _run(True)

    serial, overlapped = once(build)

    emit(
        format_table(
            ["share policy", "mean epoch [ms]", "total sim time [s]", "final RMSE"],
            [
                ["serial (paper impl.)", f"{serial.mean_epoch_time() * 1e3:.2f}",
                 f"{serial.total_time_s:.1f}", f"{serial.final_rmse:.4f}"],
                ["overlapped (Sec. III-D)", f"{overlapped.mean_epoch_time() * 1e3:.2f}",
                 f"{overlapped.total_time_s:.1f}", f"{overlapped.final_rmse:.4f}"],
            ],
            title="Extension -- share step overlapped with training (REX)",
        )
    )

    # The overlap can only help, and model quality is untouched (the
    # shared sample never depended on this epoch's training result).
    assert overlapped.total_time_s < serial.total_time_s
    assert abs(overlapped.final_rmse - serial.final_rmse) < 1e-9


def test_parallel_share_rejected_for_model_sharing():
    import pytest

    with pytest.raises(ValueError, match="parallel share"):
        RexConfig(scheme=SharingScheme.MODEL, parallel_share=True)
