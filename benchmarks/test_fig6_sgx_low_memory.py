"""Figure 6 -- SGX vs native below the EPC limit (MovieLens Latest).

8 nodes on 4 simulated SGX machines (2 enclaves each), fully connected.
(a) stage breakdown: REX's merge/share are tiny next to MS's; the native
build is faster overall; (b) memory and network: REX needs less of both;
(c, d) convergence: REX beats MS under SGX with little overhead.

The cluster executes the real protocol (enclaves, mutual attestation,
sealed channels); SGX and native builds are separate runs of the same
code base, exactly as in the paper (Section III-E).
"""

from benchmarks.conftest import emit
from repro.analysis.figures import error_vs_time, stage_breakdown, volume_per_epoch
from repro.analysis.report import format_table, render_series
from repro.core.config import Dissemination, SharingScheme
from repro.sim import experiments as E


def _matrix(large=False):
    runs = {}
    for dissemination in (Dissemination.RMW, Dissemination.DPSGD):
        for scheme in (SharingScheme.DATA, SharingScheme.MODEL):
            for sgx in (True, False):
                key = (dissemination.label, scheme.label, "SGX" if sgx else "native")
                runs[key] = E.sgx_run(dissemination, scheme, sgx=sgx, large=large)
    return runs


def test_fig6_sgx_low_memory(once):
    runs = once(lambda: _matrix(large=False))

    # (a) stage breakdown
    rows = []
    for (diss, scheme, build), run in runs.items():
        stages = stage_breakdown([run])[run.label]
        rows.append(
            [
                f"{diss}, {scheme} ({build})",
                *(f"{stages[s] * 1000:.2f}" for s in ("merge", "train", "share", "test")),
            ]
        )
    emit(
        format_table(
            ["setup", "merge [ms]", "train [ms]", "share [ms]", "test [ms]"],
            rows,
            title="Figure 6(a) -- stage breakdown per epoch, 610 users",
        )
    )

    # (b) memory + network volume
    mem_rows = [
        [f"{d}, {s} ({b})", f"{run.memory_mib():.1f}",
         f"{volume_per_epoch([run])[run.label]:,.0f}"]
        for (d, s, b), run in runs.items()
    ]
    emit(
        format_table(
            ["setup", "RAM [MiB]", "bytes/node/epoch"],
            mem_rows,
            title="Figure 6(b) -- memory and network usage, 610 users",
        )
    )

    # (c)/(d) convergence under SGX
    for diss in ("RMW", "D-PSGD"):
        for scheme in ("REX", "MS"):
            run = runs[(diss, scheme, "SGX")]
            xs, ys = error_vs_time([run])[run.label]
            emit(render_series(f"Fig 6(c,d) {diss}, {scheme} (SGX)", xs, ys,
                               x_label="sim seconds", y_label="test RMSE"))

    # Shape assertions.
    for diss in ("RMW", "D-PSGD"):
        rex_sgx = runs[(diss, "REX", "SGX")]
        ms_sgx = runs[(diss, "MS", "SGX")]
        # REX exchanges far less and uses less memory than MS.
        assert volume_per_epoch([ms_sgx])[ms_sgx.label] > 20 * volume_per_epoch(
            [rex_sgx]
        )[rex_sgx.label]
        assert rex_sgx.memory_mib() < ms_sgx.memory_mib()
        # Native is faster than SGX for the same scheme.
        assert runs[(diss, "REX", "native")].mean_epoch_time() < rex_sgx.mean_epoch_time()
        assert runs[(diss, "MS", "native")].mean_epoch_time() < ms_sgx.mean_epoch_time()
        # REX under SGX still reaches the shared target sooner (c, d).
        target = max(ms_sgx.final_rmse, rex_sgx.final_rmse) + 0.002
        assert rex_sgx.time_to_target(target) is not None
        assert rex_sgx.time_to_target(target) < ms_sgx.time_to_target(target)
