"""Figure 2 -- One node per user, MF: network usage and error vs epochs.

Row 1: cumulative data exchanged -- REX sits ~2 orders of magnitude below
MS in every setup.  Row 2: test error per *epoch* -- REX and MS evolve
similarly (the win is per-epoch cost, not epoch count).
"""

from benchmarks.conftest import emit
from repro.analysis.figures import bytes_vs_epochs, error_vs_epochs
from repro.analysis.report import render_series
from repro.core.config import SharingScheme
from repro.sim import experiments as E


def test_fig2_network_and_epochs(once):
    def build():
        panels = {}
        for dissemination, topo in E.SETUPS:
            rex = E.fig1_run(dissemination, topo, SharingScheme.DATA)
            ms = E.fig1_run(dissemination, topo, SharingScheme.MODEL)
            panels[f"{dissemination.label}, {topo.upper()}"] = (rex, ms)
        return panels

    panels = once(build)

    for panel, (rex, ms) in panels.items():
        emit(f"=== Figure 2 panel: {panel} ===")
        for label, run in (("REX", rex), ("MS", ms)):
            xs, ys = bytes_vs_epochs([run])[run.label]
            emit(render_series(f"{panel} / {label} traffic", xs, ys,
                               x_label="epoch", y_label="cumulative bytes"))
            exs, eys = error_vs_epochs([run])[run.label]
            emit(render_series(f"{panel} / {label} error", exs, eys,
                               x_label="epoch", y_label="test RMSE"))

        # Row-1 shape: REX's traffic is orders of magnitude below MS's.
        ratio = ms.total_bytes / max(1, rex.total_bytes)
        emit(f"{panel}: MS/REX traffic ratio = {ratio:.0f}x")
        assert ratio > 30, f"{panel}: expected a large traffic gap, got {ratio:.1f}x"

        # Row-2 shape: similar per-epoch error evolution.
        assert abs(rex.final_rmse - ms.final_rmse) < 0.12
