"""Shared fixtures: small, fast datasets and topologies.

Unit and integration tests run on a miniature MovieLens-shaped dataset
(40 users / 120 items / 1,600 ratings) so the whole suite stays fast; the
full Table I presets are exercised by dedicated dataset tests and by the
benchmark harness.
"""

from __future__ import annotations

import pytest

from repro.data.dataset import TrainTestSplit
from repro.data.movielens import MovieLensSpec, generate_movielens
from repro.net.topology import Topology

TINY_SPEC = MovieLensSpec(
    name="tiny",
    n_ratings=1600,
    n_items=120,
    n_users=40,
    last_updated=2020,
)


def pytest_addoption(parser):
    parser.addoption(
        "--chaos-seed",
        action="store",
        type=int,
        default=7,
        help="experiment seed for the chaos/fault-injection tests; every fault "
        "schedule is a pure function of (seed, plan), so re-running with the "
        "seed printed by a failing chaos test replays it exactly",
    )


@pytest.fixture(scope="session")
def chaos_seed(request) -> int:
    """The seed chaos tests derive their fault schedules from."""
    return int(request.config.getoption("--chaos-seed"))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """On a chaos-test failure, print the exact replay command."""
    outcome = yield
    report = outcome.get_result()
    if (
        report.when == "call"
        and report.failed
        and "chaos_seed" in getattr(item, "fixturenames", ())
    ):
        seed = item.config.getoption("--chaos-seed")
        report.sections.append(
            (
                "chaos replay",
                f"deterministic replay: pytest {item.nodeid} --chaos-seed={seed}",
            )
        )


@pytest.fixture(scope="session")
def tiny_dataset():
    return generate_movielens(TINY_SPEC, seed=11)


@pytest.fixture(scope="session")
def tiny_split(tiny_dataset) -> TrainTestSplit:
    return tiny_dataset.split(0.7, seed=3)


@pytest.fixture(scope="session")
def ring8() -> Topology:
    return Topology.ring(8)


@pytest.fixture(scope="session")
def full4() -> Topology:
    return Topology.fully_connected(4)
