"""Shared fixtures: small, fast datasets and topologies.

Unit and integration tests run on a miniature MovieLens-shaped dataset
(40 users / 120 items / 1,600 ratings) so the whole suite stays fast; the
full Table I presets are exercised by dedicated dataset tests and by the
benchmark harness.
"""

from __future__ import annotations

import pytest

from repro.data.dataset import TrainTestSplit
from repro.data.movielens import MovieLensSpec, generate_movielens
from repro.net.topology import Topology

TINY_SPEC = MovieLensSpec(
    name="tiny",
    n_ratings=1600,
    n_items=120,
    n_users=40,
    last_updated=2020,
)


@pytest.fixture(scope="session")
def tiny_dataset():
    return generate_movielens(TINY_SPEC, seed=11)


@pytest.fixture(scope="session")
def tiny_split(tiny_dataset) -> TrainTestSplit:
    return tiny_dataset.split(0.7, seed=3)


@pytest.fixture(scope="session")
def ring8() -> Topology:
    return Topology.ring(8)


@pytest.fixture(scope="session")
def full4() -> Topology:
    return Topology.fully_connected(4)
