"""Matrix factorization: training, prediction, masks and merge rules."""

import numpy as np
import pytest

from repro._rng import child_rng
from repro.data.dataset import RatingsDataset
from repro.ml.mf import MatrixFactorization, MfHyperParams, sgd_step


def _model(n_users=12, n_items=30, seed=0, **hp):
    params = MfHyperParams(k=4, **hp) if hp else MfHyperParams(k=4)
    return MatrixFactorization(n_users, n_items, params, seed=seed, global_mean=3.0)


class TestHyperParams:
    def test_paper_defaults(self):
        hp = MfHyperParams()
        assert hp.k == 10
        assert hp.learning_rate == 0.005
        assert hp.regularization == 0.1

    @pytest.mark.parametrize(
        "kwargs",
        [{"k": 0}, {"learning_rate": 0.0}, {"batch_size": 0}, {"dtype": "int32"}],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            MfHyperParams(**kwargs)


class TestTraining:
    def test_training_reduces_error(self, tiny_split):
        train, test = tiny_split.train, tiny_split.test
        model = MatrixFactorization(
            train.n_users, train.n_items, MfHyperParams(),
            seed=0, global_mean=train.global_mean(),
        )
        model.mark_seen(train)
        rng = child_rng(0, "t")
        before = model.evaluate_rmse(test)
        for _ in range(30):
            model.train_epoch(train, rng, batches=len(train) // 64)
        after = model.evaluate_rmse(test)
        assert after < before - 0.03

    def test_fixed_batches_per_epoch(self, tiny_split):
        model = _model(tiny_split.train.n_users, tiny_split.train.n_items)
        rng = child_rng(0, "t")
        samples = model.train_epoch(tiny_split.train, rng)
        assert samples == model.hp.batches_per_epoch * model.hp.batch_size

    def test_empty_data_trains_nothing(self):
        model = _model()
        empty = RatingsDataset.empty(12, 30)
        assert model.train_epoch(empty, child_rng(0, "t")) == 0

    def test_sgd_step_handles_duplicate_indices(self):
        X = np.zeros((3, 2), dtype=np.float32)
        Y = np.zeros((3, 2), dtype=np.float32)
        b = np.zeros(3, dtype=np.float32)
        c = np.zeros(3, dtype=np.float32)
        u = np.array([0, 0, 0])
        i = np.array([1, 1, 1])
        r = np.array([5.0, 5.0, 5.0], dtype=np.float32)
        sgd_step(X, Y, b, c, u, i, r, 3.0, lr=0.1, lam=0.0)
        # Three accumulated bias updates of lr*err each.
        assert b[0] == pytest.approx(3 * 0.1 * 2.0)
        assert c[1] == pytest.approx(3 * 0.1 * 2.0)

    def test_sgd_step_moves_toward_target(self):
        rng = child_rng(1, "x")
        X = rng.normal(0, 0.1, (2, 3)).astype(np.float32)
        Y = rng.normal(0, 0.1, (2, 3)).astype(np.float32)
        b = np.zeros(2, dtype=np.float32)
        c = np.zeros(2, dtype=np.float32)
        u = np.array([0])
        i = np.array([0])
        r = np.array([5.0], dtype=np.float32)
        def err():
            return 5.0 - (3.0 + b[0] + c[0] + X[0] @ Y[0])
        e0 = abs(err())
        for _ in range(50):
            sgd_step(X, Y, b, c, u, i, r, 3.0, lr=0.05, lam=0.0)
        assert abs(err()) < e0 * 0.2

    def test_float64_dtype_supported(self):
        model = MatrixFactorization(5, 5, MfHyperParams(k=2, dtype="float64"), seed=0)
        assert model.user_factors.dtype == np.float64
        data = RatingsDataset(np.array([0]), np.array([1]), np.array([4.0], dtype=np.float32),
                              n_users=5, n_items=5)
        model.train_epoch(data, child_rng(0, "t"))
        assert model.user_factors.dtype == np.float64


class TestPrediction:
    def test_predictions_clipped_to_rating_range(self):
        model = _model()
        model.user_bias[:] = 100.0
        preds = model.predict(np.array([0, 1]), np.array([0, 1]))
        assert (preds == 5.0).all()

    def test_unclipped_available(self):
        model = _model()
        model.user_bias[:] = 100.0
        preds = model.predict(np.array([0]), np.array([0]), clip=False)
        assert preds[0] > 5.0

    def test_cold_start_predicts_global_mean(self):
        model = _model()
        model.user_factors[:] = 0
        model.item_factors[:] = 0
        preds = model.predict(np.array([0]), np.array([0]))
        assert preds[0] == pytest.approx(3.0)

    def test_rmse_nan_on_empty(self):
        model = _model()
        assert np.isnan(model.evaluate_rmse(RatingsDataset.empty(12, 30)))


class TestMasks:
    def test_mark_seen(self):
        model = _model()
        data = RatingsDataset(np.array([1, 2]), np.array([3, 4]),
                              np.array([1.0, 2.0], dtype=np.float32), n_users=12, n_items=30)
        model.mark_seen(data)
        assert model.user_seen[[1, 2]].all()
        assert model.item_seen[[3, 4]].all()
        assert model.user_seen.sum() == 2

    def test_state_wire_bytes_track_seen_rows(self):
        model = _model()
        empty_state = model.state()
        data = RatingsDataset(np.arange(5), np.arange(5),
                              np.ones(5, dtype=np.float32), n_users=12, n_items=30)
        model.mark_seen(data)
        assert model.state().wire_bytes() > empty_state.wire_bytes()

    def test_wire_bytes_double_precision(self):
        model = _model()
        st = model.state()
        assert st.wire_bytes(float_bytes=8) >= st.wire_bytes(float_bytes=4)


class TestMergeAverage:
    """RMW merge semantics (Sections III-C1 and III-C2)."""

    def _two_models(self):
        a = _model(seed=1)
        b = _model(seed=2)
        return a, b

    def test_both_seen_rows_averaged(self):
        a, b = self._two_models()
        a.user_seen[0] = b.user_seen[0] = True
        expected = 0.5 * (a.user_factors[0] + b.user_factors[0])
        a.merge_average(b.state())
        np.testing.assert_allclose(a.user_factors[0], expected, rtol=1e-6)

    def test_alien_only_rows_copied(self):
        a, b = self._two_models()
        b.user_seen[1] = True
        alien_row = b.user_factors[1].copy()
        a.merge_average(b.state())
        np.testing.assert_array_equal(a.user_factors[1], alien_row)
        assert a.user_seen[1]

    def test_self_only_rows_kept(self):
        a, b = self._two_models()
        a.user_seen[2] = True
        mine = a.user_factors[2].copy()
        a.merge_average(b.state())
        np.testing.assert_array_equal(a.user_factors[2], mine)

    def test_unseen_rows_untouched(self):
        a, b = self._two_models()
        before = a.item_factors[5].copy()
        a.merge_average(b.state())
        np.testing.assert_array_equal(a.item_factors[5], before)

    def test_seen_becomes_union(self):
        a, b = self._two_models()
        a.user_seen[0] = True
        b.user_seen[1] = True
        a.merge_average(b.state())
        assert a.user_seen[0] and a.user_seen[1]

    def test_biases_merged_with_factors(self):
        a, b = self._two_models()
        a.user_seen[0] = b.user_seen[0] = True
        a.user_bias[0], b.user_bias[0] = 1.0, 3.0
        a.merge_average(b.state())
        assert a.user_bias[0] == pytest.approx(2.0)


class TestMergeWeighted:
    """D-PSGD merge with Metropolis-Hastings weights."""

    def test_weighted_average_with_self(self):
        a = _model(seed=1)
        b = _model(seed=2)
        a.user_seen[0] = b.user_seen[0] = True
        expected = 0.75 * a.user_factors[0] + 0.25 * b.user_factors[0]
        a.merge_weighted([(b.state(), 0.25)], self_weight=0.75)
        np.testing.assert_allclose(a.user_factors[0], expected, rtol=1e-5)

    def test_missing_embedding_rule(self):
        """Rows the node has not seen take the neighbors' (renormalized)
        average -- "we consider only those of its neighbors"."""
        a = _model(seed=1)
        b = _model(seed=2)
        c = _model(seed=3)
        b.user_seen[4] = c.user_seen[4] = True
        expected = 0.5 * (b.user_factors[4] + c.user_factors[4])
        a.merge_weighted([(b.state(), 0.3), (c.state(), 0.3)], self_weight=0.4)
        np.testing.assert_allclose(a.user_factors[4], expected, rtol=1e-5)

    def test_nobody_seen_row_untouched(self):
        a = _model(seed=1)
        b = _model(seed=2)
        before = a.user_factors[6].copy()
        a.merge_weighted([(b.state(), 0.5)], self_weight=0.5)
        np.testing.assert_array_equal(a.user_factors[6], before)

    def test_weights_renormalized_over_present(self):
        a = _model(seed=1)
        b = _model(seed=2)
        c = _model(seed=3)
        a.user_seen[0] = b.user_seen[0] = True  # c has not seen row 0
        expected = (0.5 * a.user_factors[0] + 0.2 * b.user_factors[0]) / 0.7
        a.merge_weighted([(b.state(), 0.2), (c.state(), 0.3)], self_weight=0.5)
        np.testing.assert_allclose(a.user_factors[0], expected, rtol=1e-5)


class TestStateRoundtrip:
    def test_state_is_a_copy(self):
        model = _model()
        state = model.state()
        state.user_factors[:] = 99.0
        assert not (model.user_factors == 99.0).any()

    def test_load_state_restores(self):
        a = _model(seed=1)
        b = _model(seed=2)
        b.load_state(a.state())
        np.testing.assert_array_equal(a.user_factors, b.user_factors)
        np.testing.assert_array_equal(a.user_seen, b.user_seen)

    def test_param_count(self):
        model = _model(n_users=12, n_items=30)
        assert model.param_count == (12 + 30) * (4 + 1)

    def test_resident_bytes_positive(self):
        assert _model().resident_bytes > 0


class TestFleetArrayViews:
    def test_model_over_external_arrays(self):
        k = 4
        XU = np.zeros((2, 12, k), dtype=np.float32)
        YI = np.zeros((2, 30, k), dtype=np.float32)
        BU = np.zeros((2, 12), dtype=np.float32)
        BI = np.zeros((2, 30), dtype=np.float32)
        SU = np.zeros((2, 12), dtype=bool)
        SI = np.zeros((2, 30), dtype=bool)
        model = MatrixFactorization(
            12, 30, MfHyperParams(k=k), seed=0,
            arrays=(XU[0], YI[0], BU[0], BI[0], SU[0], SI[0]),
        )
        model.user_bias[3] = 7.0
        assert BU[0, 3] == 7.0  # writes go through the stacked storage
