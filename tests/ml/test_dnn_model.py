"""The DNN recommender: architecture, training, merging, Adam."""

import numpy as np
import pytest

from repro._rng import child_rng
from repro.data.dataset import RatingsDataset
from repro.ml.dnn.layers import Parameter
from repro.ml.dnn.model import DnnHyperParams, DnnRecommender
from repro.ml.dnn.optim import Adam, Sgd


def _small_model(seed=0):
    hp = DnnHyperParams(k=4, hidden=(8, 6), batch_size=16, batches_per_epoch=2)
    return DnnRecommender(10, 20, hp, seed=seed)


class TestArchitecture:
    def test_paper_parameter_count(self):
        """610 users + 9,000 items at k=20 with the default hidden sizes
        give exactly the paper's 215,001 parameters."""
        model = DnnRecommender(610, 9000, DnnHyperParams(), seed=0)
        assert model.param_count == 215_001

    def test_mlp_and_embedding_split(self):
        model = DnnRecommender(610, 9000, DnnHyperParams(), seed=0)
        assert model.param_count == model.mlp_param_count + (610 + 9000) * 20

    def test_output_clipped_to_rating_range(self):
        model = _small_model()
        preds = model.predict(np.array([0, 1]), np.array([0, 1]))
        assert ((0.5 <= preds) & (preds <= 5.0)).all()

    def test_final_relu_keeps_output_nonnegative(self):
        model = _small_model()
        raw = model.predict(np.arange(10), np.arange(10), clip=False)
        assert (raw >= 0).all()

    def test_same_seed_identical_weights(self):
        a, b = _small_model(seed=3), _small_model(seed=3)
        np.testing.assert_array_equal(a.mlp_vector(), b.mlp_vector())

    def test_hyperparam_validation(self):
        with pytest.raises(ValueError):
            DnnHyperParams(k=0)
        with pytest.raises(ValueError):
            DnnHyperParams(hidden=())


class TestTraining:
    def test_training_reduces_error(self, tiny_split):
        train, test = tiny_split.train, tiny_split.test
        hp = DnnHyperParams(k=8, hidden=(32, 16), learning_rate=2e-3,
                            batch_size=64, batches_per_epoch=8)
        model = DnnRecommender(train.n_users, train.n_items, hp, seed=0)
        model.mark_seen(train)
        rng = child_rng(0, "t")
        before = model.evaluate_rmse(test)
        for _ in range(25):
            model.train_epoch(train, rng)
        assert model.evaluate_rmse(test) < before - 0.2

    def test_fixed_batch_budget(self, tiny_split):
        model = _small_model()
        # Re-home the model onto the tiny dataset's id space.
        hp = DnnHyperParams(k=4, hidden=(8, 6), batch_size=16, batches_per_epoch=2)
        model = DnnRecommender(tiny_split.train.n_users, tiny_split.train.n_items, hp, seed=0)
        samples = model.train_epoch(tiny_split.train, child_rng(0, "t"))
        assert samples == 32

    def test_empty_data_no_op(self):
        model = _small_model()
        assert model.train_epoch(RatingsDataset.empty(10, 20), child_rng(0, "t")) == 0

    def test_rmse_nan_on_empty(self):
        assert np.isnan(_small_model().evaluate_rmse(RatingsDataset.empty(10, 20)))


class TestStateAndMerge:
    def test_state_roundtrip(self):
        a, b = _small_model(seed=1), _small_model(seed=2)
        b.load_state(a.state())
        np.testing.assert_array_equal(a.mlp_vector(), b.mlp_vector())
        np.testing.assert_array_equal(a.user_embeddings.value, b.user_embeddings.value)

    def test_state_is_a_copy(self):
        model = _small_model()
        state = model.state()
        state.mlp_params[:] = 42.0
        assert not (model.mlp_vector() == 42.0).all()

    def test_merge_average_mlp(self):
        a, b = _small_model(seed=1), _small_model(seed=2)
        expected = 0.5 * (a.mlp_vector() + b.mlp_vector())
        a.merge_average(b.state())
        np.testing.assert_allclose(a.mlp_vector(), expected, rtol=1e-6)

    def test_merge_average_embeddings_masked(self):
        a, b = _small_model(seed=1), _small_model(seed=2)
        b.user_seen[2] = True
        alien = b.user_embeddings.value[2].copy()
        a.merge_average(b.state())
        np.testing.assert_array_equal(a.user_embeddings.value[2], alien)

    def test_merge_weighted_mlp(self):
        a, b = _small_model(seed=1), _small_model(seed=2)
        expected = 0.7 * a.mlp_vector() + 0.3 * b.mlp_vector()
        a.merge_weighted([(b.state(), 0.3)], self_weight=0.7)
        np.testing.assert_allclose(a.mlp_vector(), expected, rtol=1e-5)

    def test_merge_weighted_missing_embedding_rule(self):
        a, b = _small_model(seed=1), _small_model(seed=2)
        b.item_seen[5] = True
        alien = b.item_embeddings.value[5].copy()
        a.merge_weighted([(b.state(), 0.3)], self_weight=0.7)
        np.testing.assert_allclose(a.item_embeddings.value[5], alien, rtol=1e-6)

    def test_wire_bytes_include_dense_mlp(self):
        model = _small_model()
        state = model.state()
        assert state.wire_bytes() >= state.mlp_params.size * 4

    def test_resident_bytes_cover_adam_moments(self):
        model = _small_model()
        # value + grad + two moments = 4 floats per parameter.
        assert model.resident_bytes >= model.param_count * 4 * 4


class TestOptimizers:
    def test_sgd_step(self):
        p = Parameter(np.array([1.0, 2.0]))
        p.grad[:] = [1.0, -1.0]
        Sgd([p], learning_rate=0.5).step()
        np.testing.assert_allclose(p.value, [0.5, 2.5])

    def test_adam_first_step_is_lr_sized(self):
        p = Parameter(np.array([1.0]))
        p.grad[:] = [10.0]
        Adam([p], learning_rate=0.1, weight_decay=0.0).step()
        # Bias-corrected first Adam step is ~lr * sign(grad).
        assert p.value[0] == pytest.approx(1.0 - 0.1, abs=1e-4)

    def test_adam_weight_decay_shrinks_weights(self):
        p_decay = Parameter(np.array([1.0]))
        p_plain = Parameter(np.array([1.0]))
        for _ in range(10):
            p_decay.grad[:] = 0.0
            p_plain.grad[:] = 0.0
            Adam([p_decay], learning_rate=0.01, weight_decay=0.5).step()
        assert p_decay.value[0] < p_plain.value[0]

    def test_adam_converges_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = Adam([p], learning_rate=0.2, weight_decay=0.0)
        for _ in range(200):
            opt.zero_grad()
            p.grad[:] = 2 * (p.value - 3.0)
            opt.step()
        assert p.value[0] == pytest.approx(3.0, abs=0.05)

    def test_zero_grad(self):
        p = Parameter(np.array([1.0]))
        p.grad[:] = 5.0
        Adam([p]).zero_grad()
        assert p.grad[0] == 0.0
