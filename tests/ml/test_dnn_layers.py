"""Layer backprop verified against numerical gradients."""

import numpy as np
import pytest

from repro._rng import child_rng
from repro.ml.dnn.layers import Dropout, Linear, Parameter, ReLU, Sequential


def numerical_gradient(f, x, eps=1e-4):
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for idx in range(flat.size):
        orig = flat[idx]
        flat[idx] = orig + eps
        plus = f()
        flat[idx] = orig - eps
        minus = f()
        flat[idx] = orig
        gflat[idx] = (plus - minus) / (2 * eps)
    return grad


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(3, 5, child_rng(0, "l"))
        out = layer.forward(np.ones((4, 3), dtype=np.float32), training=False)
        assert out.shape == (4, 5)

    def test_weight_gradient_matches_numerical(self):
        rng = child_rng(0, "l")
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(5, 3)).astype(np.float32)

        def loss():
            return float((layer.forward(x, training=True) ** 2).sum())

        layer.forward(x, training=True)
        grad_out = 2.0 * layer.forward(x, training=True)
        layer.weight.zero_grad()
        layer.backward(grad_out)
        numeric = numerical_gradient(loss, layer.weight.value)
        np.testing.assert_allclose(layer.weight.grad, numeric, rtol=1e-2, atol=1e-3)

    def test_bias_gradient_matches_numerical(self):
        rng = child_rng(1, "l")
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3)).astype(np.float32)

        def loss():
            return float((layer.forward(x, training=True) ** 2).sum())

        grad_out = 2.0 * layer.forward(x, training=True)
        layer.bias.zero_grad()
        layer.backward(grad_out)
        numeric = numerical_gradient(loss, layer.bias.value)
        np.testing.assert_allclose(layer.bias.grad, numeric, rtol=1e-2, atol=1e-3)

    def test_input_gradient_matches_numerical(self):
        rng = child_rng(2, "l")
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3)).astype(np.float32)

        def loss():
            return float((layer.forward(x, training=True) ** 2).sum())

        grad_out = 2.0 * layer.forward(x, training=True)
        grad_in = layer.backward(grad_out)
        numeric = numerical_gradient(loss, x)
        # float32 central differences are only good to ~1e-2 absolute here.
        np.testing.assert_allclose(grad_in, numeric, rtol=3e-2, atol=1e-2)

    def test_backward_before_forward_rejected(self):
        layer = Linear(3, 2, child_rng(0, "l"))
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2), dtype=np.float32))

    def test_param_count(self):
        layer = Linear(7, 4, child_rng(0, "l"))
        assert layer.param_count == 7 * 4 + 4


class TestReLU:
    def test_forward_clamps_negatives(self):
        relu = ReLU()
        out = relu.forward(np.array([[-1.0, 2.0]], dtype=np.float32), training=False)
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_backward_masks_gradient(self):
        relu = ReLU()
        relu.forward(np.array([[-1.0, 2.0]], dtype=np.float32), training=True)
        grad = relu.backward(np.array([[5.0, 5.0]], dtype=np.float32))
        np.testing.assert_array_equal(grad, [[0.0, 5.0]])

    def test_backward_before_forward_rejected(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.ones((1, 2), dtype=np.float32))


class TestDropout:
    def test_identity_in_eval_mode(self):
        drop = Dropout(0.5, child_rng(0, "d"))
        x = np.ones((8, 8), dtype=np.float32)
        np.testing.assert_array_equal(drop.forward(x, training=False), x)

    def test_training_zeroes_and_rescales(self):
        drop = Dropout(0.5, child_rng(0, "d"))
        x = np.ones((64, 64), dtype=np.float32)
        out = drop.forward(x, training=True)
        zero_fraction = float((out == 0).mean())
        assert 0.3 < zero_fraction < 0.7
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)  # inverted dropout scaling

    def test_zero_probability_is_identity(self):
        drop = Dropout(0.0, child_rng(0, "d"))
        x = np.ones((4, 4), dtype=np.float32)
        out = drop.forward(x, training=True)
        np.testing.assert_array_equal(out, x)
        np.testing.assert_array_equal(drop.backward(x), x)

    def test_backward_uses_same_mask(self):
        drop = Dropout(0.5, child_rng(0, "d"))
        x = np.ones((16, 16), dtype=np.float32)
        out = drop.forward(x, training=True)
        grad = drop.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad == 0, out == 0)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0, child_rng(0, "d"))


class TestSequential:
    def test_composes_layers(self):
        rng = child_rng(0, "s")
        net = Sequential([Linear(3, 4, rng), ReLU(), Linear(4, 1, rng)])
        out = net.forward(np.ones((2, 3), dtype=np.float32), training=False)
        assert out.shape == (2, 1)

    def test_end_to_end_gradient_matches_numerical(self):
        rng = child_rng(3, "s")
        net = Sequential([Linear(3, 4, rng), ReLU(), Linear(4, 1, rng)])
        x = rng.normal(size=(5, 3)).astype(np.float32) + 0.5

        def loss():
            return float((net.forward(x, training=True) ** 2).sum())

        grad_out = 2.0 * net.forward(x, training=True)
        for p in net.parameters():
            p.zero_grad()
        net.backward(grad_out)
        first_linear = net.layers[0]
        numeric = numerical_gradient(loss, first_linear.weight.value)
        np.testing.assert_allclose(first_linear.weight.grad, numeric, rtol=2e-2, atol=2e-3)

    def test_parameters_collects_all(self):
        rng = child_rng(0, "s")
        net = Sequential([Linear(3, 4, rng), ReLU(), Linear(4, 1, rng)])
        assert len(net.parameters()) == 4  # two weights + two biases


class TestParameter:
    def test_zero_grad(self):
        p = Parameter(np.ones((2, 2)))
        p.grad += 3.0
        p.zero_grad()
        assert (p.grad == 0).all()

    def test_float32_storage(self):
        p = Parameter(np.ones((2, 2), dtype=np.float64))
        assert p.value.dtype == np.float32
